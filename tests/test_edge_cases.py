"""Edge-case coverage across the API surface: builder arithmetic, intrinsic
evaluation, table/space error paths, the top-level package, lazy imports."""

import math

import numpy as np
import pytest

import repro
from repro.ir.builder import E, IndexExpr, NestBuilder
from repro.ir.interp import InterpreterError, run_nest
from repro.ir.nodes import BinOp, Call, Const
from repro.unroll.space import UnrollSpace
from repro.unroll.tables import OffsetTable, build_tables

class TestTopLevelPackage:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quick_workflow(self):
        b = repro.NestBuilder("intro")
        J, I = b.loops(("J", 0, "N"), ("I", 0, "M"))
        b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
        nest = b.build()
        result = repro.choose_unroll(nest, repro.dec_alpha(), bound=2)
        text = repro.format_nest(
            repro.unroll_and_jam(nest, result.unroll).main)
        assert repro.parse_nest(text).loops[0].index == "J"

    def test_machine_lazy_attributes(self):
        import repro.machine as machine_pkg

        assert callable(machine_pkg.simulate)
        assert machine_pkg.CacheSimulator(64, 4).num_sets == 16
        with pytest.raises(AttributeError):
            machine_pkg.nonexistent_thing

class TestBuilderArithmetic:
    def test_index_rsub_and_rmul(self):
        b = NestBuilder("t")
        I = b.loop("I", 0, 9)
        ref = b.ref("A", 10 - I, 3 * I).node
        assert ref.subscripts[0].coeff("I") == -1
        assert ref.subscripts[0].const == 10
        assert ref.subscripts[1].coeff("I") == 3

    def test_index_plus_param_string(self):
        b = NestBuilder("t")
        I = b.loop("I", 0, 9)
        ref = b.ref("A", I + "N").node
        assert ref.subscripts[0].param_coeffs == (("N", 1),)

    def test_expr_reverse_ops(self):
        b = NestBuilder("t")
        I = b.loop("I", 0, 9)
        node = (2.0 - b.ref("A", I)).node
        assert isinstance(node, BinOp) and node.op == "-"
        assert isinstance(node.left, Const) and node.left.value == 2.0
        node = (2.0 / b.ref("A", I)).node
        assert node.op == "/"
        neg = (-b.ref("A", I)).node
        assert neg.op == "-" and isinstance(neg.left, Const)

    def test_index_expr_not_an_expression_value(self):
        b = NestBuilder("t")
        I = b.loop("I", 0, 9)
        with pytest.raises(TypeError):
            E(I)

    def test_bad_subscript_type(self):
        b = NestBuilder("t")
        b.loop("I", 0, 9)
        with pytest.raises(TypeError):
            b.ref("A", 1.5)

class TestIntrinsics:
    @pytest.mark.parametrize("func,arg,expected", [
        ("sqrt", 4.0, 2.0),
        ("abs", -3.0, 3.0),
        ("exp", 0.0, 1.0),
        ("sin", 0.0, 0.0),
        ("cos", 0.0, 1.0),
    ])
    def test_unary_intrinsics(self, func, arg, expected):
        b = NestBuilder("t")
        I = b.loop("I", 0, 0)
        b.assign(b.ref("A", I), b.call(func, arg))
        arrays = {"A": np.zeros(1)}
        run_nest(b.build(), {}, arrays)
        assert arrays["A"][0] == pytest.approx(expected)

    def test_binary_intrinsics(self):
        b = NestBuilder("t")
        I = b.loop("I", 0, 0)
        b.assign(b.ref("A", I), b.call("max", 2.0, 5.0)
                 + b.call("min", 2.0, 5.0))
        arrays = {"A": np.zeros(1)}
        run_nest(b.build(), {}, arrays)
        assert arrays["A"][0] == 7.0

    def test_unknown_intrinsic_raises(self):
        b = NestBuilder("t")
        I = b.loop("I", 0, 0)
        b.assign(b.ref("A", I), b.call("gamma", 1.0))
        with pytest.raises(InterpreterError):
            run_nest(b.build(), {}, {"A": np.zeros(1)})

class TestTablesAndSpaceErrors:
    def nest(self):
        b = NestBuilder("t")
        I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
        b.assign(b.ref("A", I, J), b.ref("A", I, J) + 1.0)
        return b.build()

    def test_point_outside_space_rejected(self):
        space = UnrollSpace.for_dims(2, [0], 2)
        tables = build_tables(self.nest(), space)
        with pytest.raises(ValueError):
            tables.point((5, 0))

    def test_point_caching(self):
        space = UnrollSpace.for_dims(2, [0], 2)
        tables = build_tables(self.nest(), space)
        a = tables.point((1, 0))
        b2 = tables.point((1, 0))
        assert a is b2

    def test_all_points(self):
        space = UnrollSpace.for_dims(2, [0], 2)
        tables = build_tables(self.nest(), space)
        points = tables.all_points()
        assert len(points) == 3
        assert [p.u for p in points] == [(0, 0), (1, 0), (2, 0)]

    def test_offset_table_box_sum_empty_dims(self):
        space = UnrollSpace(2, (), ())
        table = OffsetTable.from_counts(space, lambda u: 7)
        assert table.box_sum(()) == 7

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError):
            UnrollSpace(2, (0,), (-1,))

class TestInterpreterEdges:
    def test_zero_trip_loop(self):
        b = NestBuilder("t")
        I = b.loop("I", 5, 4)  # empty range
        b.assign(b.ref("A", I), 1.0)
        arrays = {"A": np.zeros(6)}
        run_nest(b.build(), {}, arrays)
        assert not arrays["A"].any()

    def test_index_readable_as_scalar(self):
        """Loop indices can appear as values (e.g. A(I) = I * 0.5)."""
        b = NestBuilder("t")
        I = b.loop("I", 0, 3)
        b.assign(b.ref("A", I), b.scalar("I") * 0.5)
        arrays = {"A": np.zeros(4)}
        run_nest(b.build(), {}, arrays)
        assert np.allclose(arrays["A"], [0, 0.5, 1.0, 1.5])

    def test_unbound_array(self):
        b = NestBuilder("t")
        I = b.loop("I", 0, 1)
        b.assign(b.ref("A", I), b.ref("Z", I))
        with pytest.raises(InterpreterError):
            run_nest(b.build(), {}, {"A": np.zeros(2)})
