"""The paper's literal window algorithms (Figures 2/3/5) versus the exact
lattice counts, including the documented divergence cases."""

import pytest

from repro.baselines.brute_force import measure_unrolled
from repro.ir.builder import NestBuilder
from repro.reuse.locality import innermost_localized_space
from repro.reuse.ugs import partition_ugs
from repro.unroll.paper_tables import gss_table, gts_table, rrs_table
from repro.unroll.space import UnrollSpace
from repro.unroll.streams import group_count, stream_chains

def figure1_nest():
    b = NestBuilder("fig1")
    I, J = b.loops(("I", 2, "N"), ("J", 0, "N"))
    b.assign(b.ref("A", I, J), b.ref("A", I - 2, J) + 1.0)
    return b.build()

def chain_nest():
    b = NestBuilder("chain")
    I, J = b.loops(("I", 2, "N"), ("J", 0, "N"))
    b.assign(b.ref("C", I, J),
             b.ref("A", I, J) + b.ref("A", I - 1, J) + b.ref("A", I - 2, J))
    return b.build()

def ugs_of(nest, array):
    return next(s for s in partition_ugs(nest) if s.array == array)

class TestFigure1Example:
    """Section 4.2's worked example: the A(I,J) def and A(I-2,J) use merge
    at unroll vector (2, 0)."""

    def test_table_entries(self):
        nest = figure1_nest()
        space = UnrollSpace.for_dims(2, [0], 4)
        localized = innermost_localized_space(nest)
        table = gts_table(ugs_of(nest, "A"), space, localized)
        # offsets 0 and 1 create 2 new GTSs each; from offset 2 on, the
        # copy of A(I-2,J) lands on an existing group: only 1 new GTS.
        assert table.entries[(0,)] == 2
        assert table.entries[(1,)] == 2
        assert table.entries[(2,)] == 1
        assert table.entries[(3,)] == 1

    def test_sum_matches_exact_count(self):
        nest = figure1_nest()
        space = UnrollSpace.for_dims(2, [0], 4)
        localized = innermost_localized_space(nest)
        ugs = ugs_of(nest, "A")
        table = gts_table(ugs, space, localized)
        for u in space:
            exact = group_count(ugs, u, space.dims, localized)
            assert table.sum(u) == exact, u

    def test_figure1_value_at_two(self):
        """Unrolling I by 2 yields 5 GTSs (checked in the paper's Figure 1
        narrative and against the unrolled code)."""
        nest = figure1_nest()
        space = UnrollSpace.for_dims(2, [0], 4)
        table = gts_table(ugs_of(nest, "A"), space,
                          innermost_localized_space(nest))
        assert table.sum(space.embed((2,))) == 5

class TestWindowBookkeeping:
    def test_three_leader_chain_windows(self):
        """A(I), A(I-1), A(I-2): the superleader windows must not double
        subtract when a leader merges with two earlier ones."""
        nest = chain_nest()
        space = UnrollSpace.for_dims(2, [0], 5)
        localized = innermost_localized_space(nest)
        ugs = ugs_of(nest, "A")
        table = gts_table(ugs, space, localized)
        for u in space:
            exact = group_count(ugs, u, space.dims, localized)
            assert table.sum(u) == exact, u

    def test_gss_windows(self):
        nest = chain_nest()
        space = UnrollSpace.for_dims(2, [0], 5)
        localized = innermost_localized_space(nest)
        ugs = ugs_of(nest, "A")
        table = gss_table(ugs, space, localized)
        # spatially the whole chain shares lines from the start (H_S kills
        # the I row): one GSS at every unroll amount.
        for u in space:
            assert table.sum(u) == 1

class TestRRSTable:
    def test_rrs_counts_match_chains(self):
        nest = chain_nest()
        space = UnrollSpace.for_dims(2, [0], 5)
        ugs = ugs_of(nest, "A")
        table = rrs_table(ugs, space)
        for u in space:
            exact = stream_chains(ugs, u, space.dims).memory_ops
            assert table.sum(u) == exact, u

    def test_def_use_rrs_merging(self):
        nest = figure1_nest()
        space = UnrollSpace.for_dims(2, [0], 4)
        ugs = ugs_of(nest, "A")
        table = rrs_table(ugs, space)
        for u in space:
            exact = stream_chains(ugs, u, space.dims).memory_ops
            assert table.sum(u) == exact, u

class TestKernelAgreement:
    @pytest.mark.parametrize("kernel_name", ["jacobi", "dmxpy1", "gmtry.3",
                                             "cond.9", "vpenta.7"])
    def test_gts_tables_agree_on_kernels(self, kernel_name):
        from repro.kernels import kernel_by_name

        nest = kernel_by_name(kernel_name).nest
        localized = innermost_localized_space(nest)
        dims = [lv for lv in range(nest.depth - 1)][:1]
        space = UnrollSpace.for_dims(nest.depth, dims, 4)
        for ugs in partition_ugs(nest):
            table = gts_table(ugs, space, localized)
            for u in space:
                exact = group_count(ugs, u, space.dims, localized)
                assert table.sum(u) == exact, (ugs.array, u)

class TestDocumentedDivergence:
    def test_mixed_sign_merge_is_missed_by_windows(self):
        """Constants (0,0) vs (1,-2) over a two-loop unroll: the copies do
        merge (offset difference (1,-2)), the window scheme cannot see it.
        This is the reproduction's documented fidelity gap of the paper's
        pseudocode; the exact lattice count is the reference."""
        b = NestBuilder("mixed")
        I, J, K = b.loops(("I", 0, "N"), ("J", 2, "N"), ("K", 0, "N"))
        b.assign(b.ref("C", I, J, K),
                 b.ref("A", I, J, K) + b.ref("A", I + 1, J - 2, K))
        nest = b.build()
        space = UnrollSpace(3, (0, 1), (2, 2))
        localized = innermost_localized_space(nest)
        ugs = ugs_of(nest, "A")
        u = space.embed((2, 2))
        exact = group_count(ugs, u, space.dims, localized)
        paper = gts_table(ugs, space, localized).sum(u)
        assert paper > exact  # the window scheme over-counts groups
        # and the exact count is what the materialized body shows:
        # (C(I,J,K) contributes 3x3 = 9 distinct store groups)
        measured = measure_unrolled(nest, u, line_size=4)
        assert measured.gts == exact + 9
