"""Scalar-replacement code generation: semantics preservation and
agreement with the plan's memory-operation counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.builder import NestBuilder
from repro.ir.interp import run_nest
from repro.kernels.suite import (
    cond9,
    dflux17,
    dmxpy0,
    gmtry3,
    jacobi,
    mmjik,
    shal,
    sor,
    vpenta7,
)
from repro.unroll.scalar_replacement import plan_scalar_replacement
from repro.unroll.sr_codegen import (
    ScalarReplacementError,
    format_scalar_replaced,
    run_scalar_replaced,
    scalar_replace,
)
from repro.unroll.transform import unroll_and_jam

def assert_equivalent(nest, bindings, shapes, seed=0, scalars=None):
    rng = np.random.default_rng(seed)
    base = {name: rng.standard_normal(shape) for name, shape in shapes.items()}
    expected = {k: v.copy() for k, v in base.items()}
    actual = {k: v.copy() for k, v in base.items()}
    run_nest(nest, bindings, expected, scalars=dict(scalars or {}))
    sr = scalar_replace(nest)
    run_scalar_replaced(sr, bindings, actual, scalars=dict(scalars or {}))
    for name in base:
        assert np.allclose(expected[name], actual[name]), name
    return sr

class TestSemantics:
    def test_simple_lag_chain(self):
        b = NestBuilder("lag")
        I = b.loop("I", 2, 30)
        b.assign(b.ref("C", I), b.ref("A", I) + b.ref("A", I - 2))
        sr = assert_equivalent(b.build(), {}, {"A": (40,), "C": (40,)})
        # one load of A per iteration instead of two, plus the C store
        assert sr.memory_ops_per_iteration == 2
        assert len(sr.prologue) == 2  # preload A(lo-1), A(lo-2)
        assert len(sr.rotations) == 2

    def test_flow_chain_through_def(self):
        """gmtry-style: RM(I,J) written, RM(I-1,J) read -- the store feeds
        the next outer iteration only after unrolling; within one row the
        read is a plain load."""
        kernel = gmtry3(12)
        assert_equivalent(kernel.nest, {"N": 12},
                          {"RM": (16, 16), "PIV": (16,)})

    def test_accumulator_hoisting(self):
        b = NestBuilder("acc")
        J, I = b.loops(("J", 0, 10), ("I", 0, 20))
        b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
        sr = assert_equivalent(b.build(), {}, {"A": (12,), "B": (22,)})
        # A(J) hoisted: only B's load remains in the body
        assert sr.memory_ops_per_iteration == 1
        assert len(sr.epilogue) == 1  # the sunk store of A(J)

    def test_def_then_use_same_iteration(self):
        b = NestBuilder("forward")
        I = b.loop("I", 0, 30)
        b.assign(b.ref("A", I), b.ref("B", I) * 2.0)
        b.assign(b.ref("C", I), b.ref("A", I) + 1.0)
        sr = assert_equivalent(b.build(), {}, {"A": (32,), "B": (32,),
                                               "C": (32,)})
        # A's re-read comes from the register: B load, A store, C store
        assert sr.memory_ops_per_iteration == 3

    def test_def_to_use_across_iterations(self):
        b = NestBuilder("carried")
        I = b.loop("I", 1, 30)
        b.assign(b.ref("A", I), b.ref("A", I - 1) * 0.5 + 1.0)
        sr = assert_equivalent(b.build(), {}, {"A": (32,)})
        # the A(I-1) load is replaced by the rotated register
        assert sr.memory_ops_per_iteration == 1
        assert len(sr.rotations) == 1

    def test_vpenta_lookahead_chain(self):
        """Reads ahead of the write (F(K,J+1), F(K,J+2)): the chain flows
        from the reads into the def at negative distance."""
        kernel = vpenta7(10)
        assert_equivalent(kernel.nest, {"N": 10},
                          {"F": (14, 14), "X": (14, 14), "Y": (14, 14)})

    @pytest.mark.parametrize("factory", [jacobi, cond9, dmxpy0, sor, shal,
                                         dflux17, mmjik],
                             ids=lambda f: f.__name__)
    def test_kernels_preserved(self, factory):
        kernel = factory(8)
        bindings = {k: 8 for k in kernel.bindings}
        shapes = {name: tuple(min(e, 20) for e in shape)
                  for name, shape in kernel.shapes.items()}
        assert_equivalent(kernel.nest, bindings, shapes,
                          scalars={"omega": 1.3})

    def test_after_unroll_and_jam(self):
        """The paper's pipeline: unroll-and-jam, then scalar replace."""
        kernel = jacobi(11)
        main = unroll_and_jam(kernel.nest, (2, 0)).main
        # run the jammed nest directly vs its scalar-replaced form on the
        # aligned region only (main covers lo..hi in steps of 3; pick a
        # divisible trip count: 1..9 is 9 iterations)
        bindings = {"N": 9}
        shapes = {"A": (13, 13), "B": (13, 13)}
        rng = np.random.default_rng(3)
        base = {n: rng.standard_normal(s) for n, s in shapes.items()}
        expected = {k: v.copy() for k, v in base.items()}
        actual = {k: v.copy() for k, v in base.items()}
        run_nest(main, bindings, expected)
        run_scalar_replaced(scalar_replace(main), bindings, actual)
        for name in base:
            assert np.allclose(expected[name], actual[name])

class TestPlanAgreement:
    @pytest.mark.parametrize("factory", [jacobi, cond9, dmxpy0, sor, shal,
                                         vpenta7, gmtry3],
                             ids=lambda f: f.__name__)
    def test_memory_ops_match_plan(self, factory):
        """The generated code issues exactly the memory operations the
        plan (and therefore the tables) predicted."""
        nest = factory(10).nest
        plan = plan_scalar_replacement(nest)
        sr = scalar_replace(nest)
        assert sr.memory_ops_per_iteration == plan.memory_ops

    def test_memory_ops_match_plan_after_unroll(self):
        nest = unroll_and_jam(jacobi(10).nest, (3, 0)).main
        plan = plan_scalar_replacement(nest)
        sr = scalar_replace(nest)
        assert sr.memory_ops_per_iteration == plan.memory_ops

class TestSafetyAndFormat:
    def test_aliasing_rejected(self):
        b = NestBuilder("alias")
        I, J = b.loops(("I", 0, 10), ("J", 0, 10))
        b.assign(b.ref("A", I, J), b.ref("A", J, I) + 1.0)
        with pytest.raises(ScalarReplacementError):
            scalar_replace(b.build())

    def test_read_only_shape_mix_allowed(self):
        b = NestBuilder("readmix")
        I, J = b.loops(("I", 0, 10), ("J", 0, 10))
        b.assign(b.ref("C", I, J), b.ref("A", I, J) + b.ref("A", J, I))
        scalar_replace(b.build())  # no writes to A: safe

    def test_format_output(self):
        b = NestBuilder("lag")
        I = b.loop("I", 2, 30)
        b.assign(b.ref("C", I), b.ref("A", I) + b.ref("A", I - 2))
        text = format_scalar_replaced(scalar_replace(b.build()))
        assert "DO I" in text
        assert "a_t0_1 = a_t0_0" in text or "=" in text

@st.composite
def sr_random_nest(draw):
    """Random 2-deep SIV nests with one written array (no aliasing)."""
    b = NestBuilder("rand")
    I, J = b.loops(("I", 2, 12), ("J", 2, 12))
    n_stmts = draw(st.integers(1, 3))
    for s in range(n_stmts):
        terms = []
        for _ in range(draw(st.integers(1, 3))):
            arr = draw(st.sampled_from(["A", "B"]))
            o1 = draw(st.integers(-2, 2))
            o2 = draw(st.integers(-2, 2))
            terms.append(b.ref(arr, I + o1, J + o2))
        rhs = terms[0]
        for t in terms[1:]:
            rhs = rhs + t
        w1 = draw(st.integers(-1, 1))
        w2 = draw(st.integers(-1, 1))
        b.assign(b.ref("A", I + w1, J + w2), rhs * 0.5)
    return b.build()

@settings(max_examples=30, deadline=None)
@given(sr_random_nest(), st.integers(0, 5))
def test_random_nests_semantics(nest, seed):
    shapes = {"A": (18, 18), "B": (18, 18)}
    assert_equivalent(nest, {}, shapes, seed=seed)
