"""Static reuse-distance profiles and the set-associative miss model.

Unit-level coverage of the chain validated end-to-end by
``benchmarks/bench_reuse_profile.py``: the binomial
:func:`~repro.machine.cache.miss_probability` model, the per-reference
histograms of :func:`~repro.reuse.profile.reuse_profile`, the
:class:`~repro.reuse.profile.AssocMissModel` pricing hook, and the
engine/api/featurizer plumbing around them (docs/REUSE.md).
"""

import math
from fractions import Fraction

import pytest

import repro.api as api
from repro.engine import AnalysisEngine
from repro.ir.builder import NestBuilder
from repro.machine.cache import CacheSpec, miss_probability
from repro.machine.presets import dec_alpha
from repro.reuse.profile import AssocMissModel, reuse_profile

def streaming_nest():
    b = NestBuilder("stream")
    I = b.loop("I", 0, "N")
    b.assign(b.ref("A", I), b.ref("B", I) * 2.0)
    return b.build()

def mm_jik():
    b = NestBuilder("mmjik")
    J, I, K = b.loops(("J", 0, "N"), ("I", 0, "N"), ("K", 0, "N"))
    b.assign(b.ref("C", I, J),
             b.ref("C", I, J) + b.ref("A", I, K) * b.ref("B", K, J))
    return b.build()

class TestCacheSpec:
    def test_derived_geometry(self):
        spec = CacheSpec(1024, 4, 4)
        assert spec.num_sets == 64
        assert spec.num_lines == 256

    def test_for_machine_matches_fields(self):
        machine = dec_alpha()
        spec = CacheSpec.for_machine(machine)
        assert spec.size_words == machine.cache_size_words
        assert spec.line_words == machine.cache_line_words
        assert spec.assoc == machine.cache_assoc

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheSpec(0, 4, 1)
        with pytest.raises(ValueError):
            CacheSpec(64, 4, 0)

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            CacheSpec(100, 4, 3)

    def test_describe_names_the_shape(self):
        assert "direct-mapped" in CacheSpec(512, 4, 1).describe()
        assert "fully-assoc" in CacheSpec(32, 4, 8).describe()
        assert "4-way" in CacheSpec(1024, 4, 4).describe()

class TestMissProbability:
    DIRECT = CacheSpec(512, 4, 1)  # 128 sets

    def test_cold_distance_always_misses(self):
        assert miss_probability(None, self.DIRECT) == 1.0
        assert miss_probability(math.inf, self.DIRECT) == 1.0
        assert miss_probability(math.nan, self.DIRECT) == 1.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            miss_probability(-1, self.DIRECT)

    def test_lru_guarantee_below_associativity(self):
        spec = CacheSpec(1024, 4, 4)
        for d in range(4):
            assert miss_probability(d, spec) == 0.0
        assert miss_probability(4, spec) > 0.0

    def test_fully_associative_is_exact_stack_distance(self):
        spec = CacheSpec(32, 4, 8)  # one set, 8 ways
        assert miss_probability(7, spec) == 0.0
        assert miss_probability(8, spec) == 1.0

    def test_direct_mapped_is_binomial_complement(self):
        # assoc=1: P(hit) = (1 - 1/S)^d exactly.
        sets = self.DIRECT.num_sets
        for d in (1, 10, 100):
            expected = 1.0 - (1.0 - 1.0 / sets) ** d
            assert miss_probability(d, self.DIRECT) == \
                pytest.approx(expected)

    def test_monotone_in_distance(self):
        spec = CacheSpec(1024, 4, 4)
        probs = [miss_probability(d, spec) for d in (4, 16, 64, 256, 4096)]
        assert probs == sorted(probs)
        assert probs[-1] <= 1.0

    def test_huge_distance_saturates(self):
        assert miss_probability(10 ** 9, self.DIRECT) == 1.0

class TestReuseProfileBins:
    def test_streaming_is_spatial_plus_leader(self):
        profile = reuse_profile(streaming_nest(), line_size=4, trip=100)
        assert profile.depth == 1
        assert len(profile.refs) == 2
        for ref in profile.refs:
            kinds = {b.kind: b for b in ref.bins}
            # 3 of 4 touches reuse the line at delay 1; the leader is cold.
            assert kinds["spatial"].fraction == pytest.approx(0.75)
            assert kinds["spatial"].delay == pytest.approx(1.0)
            assert kinds["cold"].distance is None

    def test_fractions_sum_to_one(self):
        for nest in (streaming_nest(), mm_jik()):
            profile = reuse_profile(nest, line_size=4, trip=40)
            for ref in profile.refs:
                assert sum(b.fraction for b in ref.bins) == \
                    pytest.approx(1.0)

    def test_mm_jik_mechanisms(self):
        """The paper's running example (column-major): C(I,J) is invariant
        in innermost K, B(K,J) streams its contiguous subscript along K,
        and A(I,K)'s contiguous subscript I is the middle loop so its
        line reuse waits a full K trip."""
        profile = reuse_profile(mm_jik(), line_size=4, trip=40)
        by_array = {}
        for ref in profile.refs:
            by_array.setdefault(ref.array, ref)
        c_kinds = {b.kind for b in by_array["C"].bins}
        assert c_kinds == {"temporal"}
        assert by_array["C"].bins[0].delay == pytest.approx(1.0)
        a_kinds = {b.kind: b for b in by_array["A"].bins}
        assert a_kinds["spatial"].delay == pytest.approx(40.0)
        b_kinds = {b.kind: b for b in by_array["B"].bins}
        assert b_kinds["spatial"].delay == pytest.approx(1.0)
        assert b_kinds["temporal"].delay == pytest.approx(40.0)

    def test_distance_scales_with_lines_per_iteration(self):
        profile = reuse_profile(mm_jik(), line_size=4, trip=40)
        for ref in profile.refs:
            for b in ref.bins:
                if b.distance is not None and b.delay is not None:
                    assert b.distance == pytest.approx(
                        max(b.delay, 1.0) * profile.lines_per_iteration) \
                        or b.distance == pytest.approx(
                            b.delay * profile.lines_per_iteration)

    def test_trip_scales_outer_carried_distance(self):
        short = reuse_profile(mm_jik(), line_size=4, trip=10)
        long = reuse_profile(mm_jik(), line_size=4, trip=100)
        # B(K,J)'s temporal reuse is carried by I (delay = trip).
        def b_temporal(profile):
            for ref in profile.refs:
                if ref.array == "B":
                    for b in ref.bins:
                        if b.kind == "temporal":
                            return b.delay
            return None
        assert b_temporal(long) == pytest.approx(10 * b_temporal(short))

class TestNestProfileSummaries:
    def test_miss_ratio_between_0_and_1(self):
        profile = reuse_profile(mm_jik(), line_size=4, trip=24)
        for spec in (CacheSpec(512, 4, 1), CacheSpec(1024, 4, 4),
                     CacheSpec(32, 4, 8)):
            assert 0.0 <= profile.miss_ratio(spec) <= 1.0

    def test_misses_per_iteration_is_ratio_times_refs(self):
        profile = reuse_profile(mm_jik(), line_size=4, trip=24)
        spec = CacheSpec(1024, 4, 4)
        assert profile.misses_per_iteration(spec) == pytest.approx(
            profile.miss_ratio(spec) * len(profile.refs))

    def test_bigger_cache_never_misses_more(self):
        profile = reuse_profile(mm_jik(), line_size=4, trip=24)
        small = profile.miss_ratio(CacheSpec(256, 4, 4))
        big = profile.miss_ratio(CacheSpec(16384, 4, 4))
        assert big <= small

    def test_cold_fraction_streaming(self):
        profile = reuse_profile(streaming_nest(), line_size=4, trip=100)
        assert profile.cold_fraction() == pytest.approx(0.25)

    def test_carried_fractions_shape(self):
        profile = reuse_profile(mm_jik(), line_size=4, trip=40)
        carried = profile.carried_fractions()
        assert len(carried) == 3
        assert sum(carried) == pytest.approx(1.0)
        # Innermost-carried reuse (C and A at delay 1) dominates.
        assert carried[-1] >= 0.5

    def test_to_dict_is_json_shaped(self):
        import json
        doc = reuse_profile(mm_jik(), line_size=4, trip=40).to_dict()
        json.dumps(doc)
        assert doc["nest"] == "mmjik"
        assert doc["depth"] == 3 and doc["trip"] == 40
        assert {r["array"] for r in doc["refs"]} == {"A", "B", "C"}

class TestAssocMissModel:
    def test_conflict_is_exact_fraction(self):
        profile = reuse_profile(mm_jik(), line_size=4, trip=24)
        model = AssocMissModel(profile, CacheSpec(512, 4, 1))
        assert isinstance(model.conflict, Fraction)
        assert 0 <= model.conflict <= 1

    def test_misses_prices_hits_by_conflict(self):
        class Point:
            cache_cost = Fraction(1, 2)
            memory_ops = Fraction(4)
        profile = reuse_profile(mm_jik(), line_size=4, trip=24)
        model = AssocMissModel(profile, CacheSpec(512, 4, 1))
        expected = Fraction(1, 2) + Fraction(7, 2) * model.conflict
        assert model.misses(Point()) == expected

    def test_misses_never_below_equation1(self):
        class Point:
            cache_cost = Fraction(3)
            memory_ops = Fraction(2)  # scalar replacement took ops away
        profile = reuse_profile(streaming_nest(), line_size=4, trip=100)
        model = AssocMissModel(profile, CacheSpec(512, 4, 1))
        assert model.misses(Point()) == Fraction(3)

    def test_for_machine_uses_machine_geometry(self):
        machine = dec_alpha()
        profile = reuse_profile(mm_jik(),
                                line_size=machine.cache_line_words, trip=24)
        model = AssocMissModel.for_machine(profile, machine)
        assert model.spec == CacheSpec.for_machine(machine)

class TestEngineAndApi:
    def test_engine_memoizes_by_structural_key(self):
        engine = AnalysisEngine()
        machine = dec_alpha()
        first = engine.reuse_profile(mm_jik(), machine, trip=50)
        assert engine.metrics.counter("cache.profile.miss") == 1
        again = engine.reuse_profile(mm_jik(), machine, trip=50)
        assert again is first
        assert engine.metrics.counter("cache.profile.hit") == 1
        # A different trip is a different profile.
        engine.reuse_profile(mm_jik(), machine, trip=51)
        assert engine.metrics.counter("cache.profile.miss") == 2

    def test_api_verb_coerces_source(self):
        source = """
        DO I = 0, N
          A(I) = B(I) * 2.0
        ENDDO
        """
        profile = api.reuse_profile(source, machine="alpha", trip=100)
        assert profile.depth == 1
        assert len(profile.refs) == 2
        assert profile.line_size == dec_alpha().cache_line_words

    def test_optimize_cache_model_assoc_runs(self):
        report_binary = api.optimize(mm_jik(), machine="alpha", bound=2)
        report_assoc = api.optimize(mm_jik(), machine="alpha", bound=2,
                                    cache_model="assoc")
        assert report_assoc.unroll is not None
        assert report_binary.unroll is not None

    def test_optimize_rejects_unknown_cache_model(self):
        with pytest.raises(ValueError):
            api.optimize(mm_jik(), machine="alpha", cache_model="magic")

class TestFeaturizerV2:
    def test_v2_extends_v1_prefix(self):
        from repro.predict.features import feature_names, featurize
        machine = dec_alpha()
        names1 = feature_names(version=1)
        names2 = feature_names(version=2)
        assert names2[:len(names1)] == names1
        assert len(names2) > len(names1)
        assert any(n.startswith("rp_") for n in names2)
        v1 = featurize(mm_jik(), machine, version=1)
        v2 = featurize(mm_jik(), machine, version=2)
        assert v2[:len(v1)] == v1
        assert len(v2) == len(names2)

    def test_unknown_version_rejected(self):
        from repro.predict.features import feature_names, featurize
        with pytest.raises(ValueError):
            feature_names(version=3)
        with pytest.raises(ValueError):
            featurize(mm_jik(), dec_alpha(), version=99)

    def test_default_model_still_v1(self):
        from repro.predict import load_default_model
        model = load_default_model()
        assert model.feature_version == 1
        assert model.describe()["feature_schema_version"] == 1
