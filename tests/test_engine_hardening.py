"""Engine hardening for the serving layer: thread safety, corrupt disk
cache recovery, and histogram-derived latency percentiles."""

from __future__ import annotations

import json
import threading

import pytest

from repro.engine import AnalysisEngine
from repro.engine.metrics import BUCKET_BOUNDS, Metrics, StageStats
from repro.kernels import all_kernels
from repro.machine.presets import dec_alpha
from repro.unroll.optimize import choose_unroll

class TestConcurrentEngine:
    def test_threaded_optimize_parity(self):
        """Hammer one engine from many threads: no exceptions, and every
        answer matches the sequential reference."""
        engine = AnalysisEngine(capacity=4)  # smaller than the working set:
        machine = dec_alpha()                # eviction races under load too
        kernels = all_kernels()[:6]
        expected = {kernel.name: choose_unroll(kernel.nest, machine,
                                               bound=3).unroll
                    for kernel in kernels}
        errors: list[str] = []

        def hammer() -> None:
            try:
                for _ in range(2):
                    for kernel in kernels:
                        result = engine.optimize(kernel.nest, machine,
                                                 bound=3)
                        if result.unroll != expected[kernel.name]:
                            errors.append(
                                f"{kernel.name}: {result.unroll} != "
                                f"{expected[kernel.name]}")
            except Exception as err:  # pragma: no cover - the regression
                errors.append(f"{type(err).__name__}: {err}")

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[:5]
        counters = engine.metrics.counters
        probes = counters.get("cache.tables.hit", 0) + \
            counters.get("cache.tables.miss", 0)
        assert probes == 6 * 2 * len(kernels)

    def test_threaded_disk_cache(self, tmp_path):
        """Concurrent writers through the atomic-rename path leave only
        valid JSON entries behind."""
        engine = AnalysisEngine(disk_cache=True, cache_dir=tmp_path)
        machine = dec_alpha()
        kernels = all_kernels()[:4]

        def hammer() -> None:
            for kernel in kernels:
                engine.optimize(kernel.nest, machine, bound=3)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        entries = list(tmp_path.glob("tables-*.json"))
        assert entries
        for entry in entries:
            json.loads(entry.read_text())  # every entry is complete JSON
        assert not list(tmp_path.glob("*.tmp*"))  # no leftover temp files

class TestCorruptDiskCache:
    @pytest.mark.parametrize("mangle", [
        lambda text: "{definitely not json",
        lambda text: text[: len(text) // 2],  # truncated mid-write
        lambda text: "",
    ])
    def test_corrupt_entry_evicted_and_recomputed(self, tmp_path, mangle):
        machine = dec_alpha()
        nest = all_kernels()[0].nest
        writer = AnalysisEngine(disk_cache=True, cache_dir=tmp_path)
        expected = writer.optimize(nest, machine, bound=3).unroll
        entries = list(tmp_path.glob("tables-*.json"))
        assert entries
        for entry in entries:
            entry.write_text(mangle(entry.read_text()))

        reader = AnalysisEngine(disk_cache=True, cache_dir=tmp_path)
        result = reader.optimize(nest, machine, bound=3)  # must not raise
        assert result.unroll == expected
        assert reader.metrics.counter("cache.disk.error") >= 1
        assert reader.metrics.counter("cache.disk.evict") >= 1
        # The corrupt entry was replaced by a freshly computed valid one.
        for entry in tmp_path.glob("tables-*.json"):
            json.loads(entry.read_text())
        # A third engine now loads it cleanly from disk.
        third = AnalysisEngine(disk_cache=True, cache_dir=tmp_path)
        assert third.optimize(nest, machine, bound=3).unroll == expected
        assert third.metrics.counter("cache.disk.hit") >= 1
        assert third.metrics.counter("cache.disk.error") == 0

    def test_unreadable_entry_is_a_miss(self, tmp_path):
        engine = AnalysisEngine(disk_cache=True, cache_dir=tmp_path / "sub")
        machine = dec_alpha()
        nest = all_kernels()[0].nest
        engine.optimize(nest, machine, bound=3)  # cache dir auto-created
        assert engine.metrics.counter("cache.disk.store") >= 1

class TestPercentiles:
    def test_empty_and_single_observation(self):
        stats = StageStats()
        assert stats.percentile(0.5) == 0.0
        stats.observe(0.0042)
        assert stats.percentile(0.5) == pytest.approx(0.0042)
        assert stats.percentile(0.99) == pytest.approx(0.0042)

    def test_percentiles_are_ordered_and_bounded(self):
        stats = StageStats()
        for value in [0.0001] * 50 + [0.003] * 30 + [0.04] * 15 + [0.7] * 5:
            stats.observe(value)
        p50, p95, p99 = (stats.percentile(q) for q in (0.50, 0.95, 0.99))
        assert stats.min <= p50 <= p95 <= p99 <= stats.max
        assert p50 <= BUCKET_BOUNDS[1]  # the median is in the small bucket
        assert p99 >= 0.04  # the tail reaches the slow observations

    def test_open_bucket_clamps_to_max(self):
        stats = StageStats()
        for value in (15.0, 20.0, 30.0):  # all beyond the last bound
            stats.observe(value)
        assert stats.percentile(0.99) <= stats.max
        assert stats.percentile(0.5) >= BUCKET_BOUNDS[-1]

    def test_rank_validation(self):
        stats = StageStats()
        stats.observe(0.1)
        stats.observe(0.2)
        with pytest.raises(ValueError):
            stats.percentile(0.0)
        with pytest.raises(ValueError):
            stats.percentile(1.5)

    def test_to_dict_and_merge_carry_percentiles(self):
        a = Metrics()
        b = Metrics()
        for value in (0.001, 0.002, 0.003):
            a.observe("stage.x", value)
        for value in (0.1, 0.2):
            b.observe("stage.x", value)
        a.merge(b.snapshot())
        merged = a.stages["stage.x"]
        assert merged.count == 5
        payload = merged.to_dict()
        for key in ("p50_s", "p95_s", "p99_s"):
            assert key in payload
        assert payload["p50_s"] <= payload["p95_s"] <= payload["p99_s"]
        assert payload["p99_s"] <= merged.max

    def test_thread_safe_counters(self):
        metrics = Metrics()

        def spin() -> None:
            for _ in range(2000):
                metrics.count("hits")
                metrics.observe("stage.y", 0.001)

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("hits") == 16000
        assert metrics.stages["stage.y"].count == 16000
