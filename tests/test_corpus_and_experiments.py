"""Corpus generator and experiment-driver tests (shape assertions for the
paper's claims, on reduced workloads for speed)."""

from fractions import Fraction

import pytest

from repro.corpus import CorpusConfig, generate_corpus
from repro.dependence import build_dependence_graph
from repro.experiments.ablation import run_bruteforce_parity
from repro.experiments.figures import evaluate_kernel, format_figure, run_figure
from repro.experiments.table1 import run_table1, summarize_reports
from repro.experiments.table2 import format_table2, run_table2
from repro.ir.validate import validate_nest
from repro.kernels.suite import cond9, dmxpy1, jacobi, mmjik
from repro.machine import dec_alpha, hp_pa_risc

SMALL = CorpusConfig(routines=120, seed=7)

class TestCorpus:
    def test_deterministic(self):
        a = generate_corpus(SMALL)
        b = generate_corpus(SMALL)
        assert [n.name for n in a] == [n.name for n in b]
        assert a[0].body == b[0].body

    def test_different_seeds_differ(self):
        a = generate_corpus(CorpusConfig(routines=30, seed=1))
        b = generate_corpus(CorpusConfig(routines=30, seed=2))
        assert any(x.body != y.body for x, y in zip(a, b))

    def test_routines_are_valid_nests(self):
        for nest in generate_corpus(SMALL):
            validate_nest(nest, require_siv=False)

    def test_depth_and_statement_bounds(self):
        for nest in generate_corpus(SMALL):
            assert 1 <= nest.depth <= SMALL.max_depth
            assert 1 <= len(nest.body) <= SMALL.max_statements

class TestTable1:
    def test_input_dependences_dominate(self):
        """The paper's headline: most dependence-graph space is input
        dependences the UGS model never computes."""
        report = run_table1(SMALL)
        assert report.total_input_share > 0.5
        assert report.space_saved_fraction > 0.5

    def test_band_counts_partition_routines(self):
        report = run_table1(SMALL)
        assert sum(report.band_counts) == report.routines_with_deps
        assert report.routines_with_deps <= report.routines_total

    def test_report_format_contains_all_bands(self):
        text = run_table1(SMALL).format()
        for label in ("0%", "90%-100%", "total input dependences"):
            assert label in text

    def test_summarize_empty(self):
        report = summarize_reports([], routines_total=0)
        assert report.total_input_share == 0.0
        assert report.space_saved_fraction == 0.0

    def test_consistency_with_direct_count(self):
        corpus = generate_corpus(SMALL)
        total = 0
        inputs = 0
        for nest in corpus:
            graph = build_dependence_graph(nest)
            if graph.total_count:
                total += graph.total_count
                inputs += graph.input_count
        report = run_table1(SMALL)
        assert report.total_dependences == total
        assert report.total_input == inputs

class TestTable2:
    def test_rows_cover_suite(self):
        rows = run_table2()
        assert len(rows) == 19
        assert all(row.original_balance > 1 for row in rows)

    def test_format(self):
        text = format_table2(run_table2())
        assert "mmjik" in text and "Table 2" in text

class TestFigures:
    def test_cache_model_never_loses_to_original(self):
        """On the Alpha, the Cache configuration must improve (or match)
        every evaluated kernel -- no pessimization."""
        for kernel in (jacobi(48), dmxpy1(64), cond9(48)):
            row = evaluate_kernel(kernel, dec_alpha(), bound=4)
            assert row.normalized_cache <= 1.02, kernel.name

    def test_alpha_cache_model_beats_no_cache_on_stencils(self):
        """The Figure 8 signature: the cache-aware model wins where misses
        dominate (large stencils on the small-cache machine)."""
        row = evaluate_kernel(jacobi(120), dec_alpha(), bound=4)
        assert row.normalized_cache < row.normalized_no_cache

    def test_pa_risc_models_agree_when_cache_is_big(self):
        """The Figure 9 signature: with the working set cached, both models
        perform the same."""
        row = evaluate_kernel(jacobi(48), hp_pa_risc(), bound=4)
        assert row.normalized_cache == pytest.approx(row.normalized_no_cache,
                                                     abs=0.05)

    def test_run_figure_and_format(self):
        rows = run_figure(dec_alpha(), bound=2, kernels=[dmxpy1(48),
                                                         mmjik(16)])
        text = format_figure(rows, "Figure 8")
        assert "dmxpy1" in text and "MEAN" in text

class TestAblationParity:
    def test_table_matches_bruteforce_on_subset(self):
        rows = run_bruteforce_parity(dec_alpha(), bound=2,
                                     kernels=[jacobi(48), dmxpy1(48),
                                              mmjik(16)])
        for row in rows:
            assert row.objectives_match, row.name
            assert row.bodies_materialized == 0 or row.bodies_materialized > 0
