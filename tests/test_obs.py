"""The observability layer: spans, propagation, profiling.

Covers the tentpole contracts of :mod:`repro.obs`:

* span nesting and parent/child wiring (including across the engine's
  process pool -- worker spans come back rooted under the batch span);
* the bounded ring buffer (oldest spans dropped first);
* Chrome ``trace_event`` export structure;
* structured JSON log lines (``REPRO_LOG=json`` equivalent);
* the disabled fast path (``span(...)`` yields ``None``, records nothing);
* the opt-in profiler (gating, nesting, summary, write).
"""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.engine import AnalysisEngine
from repro.kernels import kernel_by_name
from repro.machine.presets import dec_alpha
from repro.obs import trace as trace_mod

@pytest.fixture
def tracer():
    """A fresh enabled tracer installed globally; restored afterwards."""
    fresh = obs.Tracer(enabled=True)
    previous = obs.set_tracer(fresh)
    try:
        yield fresh
    finally:
        obs.set_tracer(previous)

@pytest.fixture
def profiler():
    fresh = obs.Profiler(enabled=True)
    previous = obs.set_profiler(fresh)
    try:
        yield fresh
    finally:
        obs.set_profiler(previous)

def _by_name(tracer: obs.Tracer) -> dict[str, obs.Span]:
    spans = {}
    for span_obj in tracer.spans():
        spans.setdefault(span_obj.name, span_obj)
    return spans

class TestSpans:
    def test_nesting_builds_parent_child_links(self, tracer):
        with obs.span("outer") as outer:
            assert obs.current_trace_id() == outer.trace_id
            with obs.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
            with obs.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None
        assert obs.current_context() is None
        # Children finish (and record) before the parent.
        assert [s.name for s in tracer.spans()] == ["inner", "sibling",
                                                    "outer"]

    def test_attributes_and_durations(self, tracer):
        with obs.span("work", kind="test") as span_obj:
            span_obj.set(items=3)
        recorded = tracer.spans()[0]
        assert recorded.attrs == {"kind": "test", "items": 3}
        assert recorded.duration_us >= 0
        assert recorded.start_us > 0

    def test_separate_roots_get_separate_trace_ids(self, tracer):
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        first, second = tracer.spans()
        assert first.trace_id != second.trace_id

    def test_disabled_span_yields_none_and_records_nothing(self):
        disabled = obs.Tracer(enabled=False)
        previous = obs.set_tracer(disabled)
        try:
            with obs.span("invisible") as span_obj:
                assert span_obj is None
            assert obs.current_context() is None
        finally:
            obs.set_tracer(previous)
        assert len(disabled) == 0

    def test_ring_buffer_drops_oldest(self):
        small = obs.Tracer(enabled=True, buffer_size=5)
        previous = obs.set_tracer(small)
        try:
            for index in range(12):
                with obs.span(f"s{index}"):
                    pass
        finally:
            obs.set_tracer(previous)
        assert len(small) == 5
        assert [s.name for s in small.spans()] == [f"s{i}"
                                                   for i in range(7, 12)]

    def test_activate_adopts_remote_context(self, tracer):
        with obs.span("root") as root:
            remote = obs.current_context()
        with obs.activate(remote):
            with obs.span("adopted") as adopted:
                pass
        assert adopted.trace_id == root.trace_id
        assert adopted.parent_id == root.span_id
        # A None context is a no-op: the next span starts a new trace.
        with obs.activate(None):
            with obs.span("fresh") as fresh:
                pass
        assert fresh.parent_id is None

    def test_span_roundtrips_through_dict(self, tracer):
        with obs.span("wire", n=1) as span_obj:
            pass
        restored = obs.Span.from_dict(span_obj.to_dict())
        assert restored.to_dict() == span_obj.to_dict()

class TestExports:
    def test_chrome_trace_structure(self, tracer):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        doc = tracer.chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert isinstance(event["ts"], int)
            assert isinstance(event["dur"], int)
            assert event["args"]["trace_id"]
        inner = next(e for e in events if e["name"] == "inner")
        outer = next(e for e in events if e["name"] == "outer")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        # The document must be plain JSON.
        json.dumps(doc)

    def test_write_chrome(self, tracer, tmp_path):
        with obs.span("persisted"):
            pass
        target = tmp_path / "nested" / "trace.json"
        tracer.write_chrome(target)
        doc = json.loads(target.read_text())
        assert doc["traceEvents"][0]["name"] == "persisted"

    def test_json_log_lines(self):
        stream = io.StringIO()
        logging_tracer = obs.Tracer(enabled=True, log_format="json",
                                    log_stream=stream)
        previous = obs.set_tracer(logging_tracer)
        try:
            with obs.span("logged", detail="x"):
                pass
        finally:
            obs.set_tracer(previous)
        lines = [json.loads(line) for line in
                 stream.getvalue().strip().splitlines()]
        assert len(lines) == 1
        record = lines[0]
        assert record["event"] == "span"
        assert record["name"] == "logged"
        assert record["attrs"] == {"detail": "x"}
        assert record["trace_id"] and record["span_id"]
        assert record["duration_ms"] >= 0

    def test_closed_log_stream_does_not_raise(self):
        stream = io.StringIO()
        stream.close()
        logging_tracer = obs.Tracer(enabled=True, log_format="json",
                                    log_stream=stream)
        previous = obs.set_tracer(logging_tracer)
        try:
            with obs.span("survives"):
                pass
        finally:
            obs.set_tracer(previous)
        assert len(logging_tracer) == 1

class TestEngineIntegration:
    def test_analyze_records_stage_spans(self, tracer):
        engine = AnalysisEngine()
        with obs.span("test.root"):
            engine.analyze(kernel_by_name("jacobi").nest)
        names = {s.name for s in tracer.spans()}
        assert {"test.root", "engine.analyze", "engine.dependence_graph",
                "ugs.partition"} <= names
        spans = _by_name(tracer)
        assert spans["engine.analyze"].parent_id == \
            spans["test.root"].span_id
        assert spans["ugs.partition"].parent_id == \
            spans["engine.analyze"].span_id
        # Every span belongs to the one trace the root opened.
        assert {s.trace_id for s in tracer.spans()} == \
            {spans["test.root"].trace_id}

    def test_pool_spans_survive_optimize_many(self, tracer):
        nests = [kernel_by_name(name).nest
                 for name in ("jacobi", "mmjik", "sor", "afold")]
        engine = AnalysisEngine()
        with obs.span("test.batch") as root:
            report = engine.optimize_many(nests, dec_alpha(), bound=2,
                                          workers=2)
        assert all(item.ok for item in report.items)
        spans = tracer.spans()
        # One trace end to end, even across the process-pool hop.
        assert {s.trace_id for s in spans} == {root.trace_id}
        optimize_spans = [s for s in spans if s.name == "engine.optimize"]
        assert len(optimize_spans) == len(nests)
        batch_span = next(s for s in spans if s.name == "engine.optimize_many")
        assert batch_span.parent_id == root.span_id
        # Worker spans chain up to the batch span (directly or via an
        # ancestor recorded in the same buffer).
        by_id = {s.span_id: s for s in spans}
        for span_obj in optimize_spans:
            node = span_obj
            seen = set()
            while node.parent_id and node.parent_id in by_id \
                    and node.span_id not in seen:
                seen.add(node.span_id)
                node = by_id[node.parent_id]
            assert node is batch_span or node is root \
                or node.span_id == batch_span.span_id
        # Shipped-back spans are not re-delivered on the report items.
        assert all(item.spans is None for item in report.items)

class TestProfiler:
    def test_disabled_profiler_records_nothing(self):
        quiet = obs.Profiler(enabled=False)
        with quiet.profile("stage.analyze"):
            sum(range(100))
        assert quiet.summary()["stages"] == {}
        assert quiet.summary()["enabled"] is False

    def test_summary_aggregates_calls_and_hot_functions(self, profiler):
        def busy():
            return sum(i * i for i in range(2000))

        for _ in range(3):
            with profiler.profile("stage.test"):
                busy()
        summary = profiler.summary()
        assert summary["enabled"] is True
        stage = summary["stages"]["stage.test"]
        assert stage["calls"] == 3
        assert stage["total_s"] > 0
        assert stage["top"], "expected hot functions"
        for entry in stage["top"]:
            assert set(entry) == {"function", "ncalls", "cumtime_s"}

    def test_nested_profile_gets_wall_time_only(self, profiler):
        with profiler.profile("outer"):
            with profiler.profile("inner"):
                sum(range(1000))
        summary = profiler.summary()["stages"]
        assert summary["outer"]["calls"] == 1
        assert summary["inner"]["calls"] == 1
        assert summary["inner"]["total_s"] > 0
        # cProfile cannot nest: the inner stage has no function table.
        assert summary["inner"]["top"] == []
        assert summary["outer"]["top"]

    def test_write_dumps_json(self, profiler, tmp_path):
        with profiler.profile("stage.io"):
            pass
        target = profiler.write(tmp_path / "out" / "p.profile.json")
        doc = json.loads(target.read_text())
        assert doc["stages"]["stage.io"]["calls"] == 1

    def test_engine_profiles_stages_when_enabled(self):
        profiler = obs.Profiler(enabled=True)
        engine = AnalysisEngine(profiler=profiler)
        engine.optimize(kernel_by_name("jacobi").nest, dec_alpha(), bound=2)
        stages = profiler.summary()["stages"]
        assert "stage.analyze" in stages
        assert "stage.optimize" in stages

class TestEnvConfiguration:
    def test_env_flags_control_fresh_tracer(self, monkeypatch):
        monkeypatch.setenv(trace_mod.TRACE_ENV, "1")
        monkeypatch.setenv(trace_mod.TRACE_BUFFER_ENV, "7")
        monkeypatch.setenv(trace_mod.LOG_ENV, "json")
        fresh = obs.Tracer()
        assert fresh.enabled
        assert fresh._spans.maxlen == 7
        assert fresh.log_format == "json"

    def test_env_off_by_default(self, monkeypatch):
        monkeypatch.delenv(trace_mod.TRACE_ENV, raising=False)
        assert not obs.Tracer().enabled

    def test_profile_env_flag(self, monkeypatch):
        monkeypatch.setenv(obs.PROFILE_ENV, "true")
        assert obs.Profiler().enabled
        monkeypatch.delenv(obs.PROFILE_ENV)
        assert not obs.Profiler().enabled

    def test_configure_updates_global_in_place(self):
        previous = obs.set_tracer(obs.Tracer(enabled=False))
        try:
            tracer = obs.configure(enabled=True, buffer_size=3)
            assert tracer is obs.get_tracer()
            for index in range(5):
                with obs.span(f"c{index}"):
                    pass
            assert len(tracer) == 3
        finally:
            obs.set_tracer(previous)
