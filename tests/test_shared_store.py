"""The mmap-backed cross-process shared table store.

Covers the read-mostly contract of :mod:`repro.engine.shared`: publish
from one handle, read from another, generation bumps on every swap,
stale readers refreshing on miss, eviction at the entry cap, corruption
degrading to typed misses (never exceptions), and the engine-level
integration -- a second engine with the same ``shared_dir`` serves
tables without a single build.
"""

from __future__ import annotations

import struct

from repro import api
from repro.engine import AnalysisEngine
from repro.engine.shared import SharedTableStore
from repro.unroll.space import UnrollSpace

def _tables(name: str = "jacobi"):
    engine = AnalysisEngine()
    nest = api.coerce_nest(name)
    space = UnrollSpace(nest.depth, (0,), (3,))
    return engine.tables(nest, space, line_size=4), nest

class TestStore:
    def test_publish_then_read_from_second_handle(self, tmp_path):
        tables, _ = _tables()
        writer = SharedTableStore(tmp_path)
        assert writer.put("k1", tables)
        assert writer.generation == 1

        reader = SharedTableStore(tmp_path)
        loaded = reader.get("k1")
        assert loaded is not None
        assert reader.hits == 1
        # The round-trip is exact: re-serializing reproduces the bytes.
        from repro.unroll.serialize import tables_to_json

        assert tables_to_json(loaded) == tables_to_json(tables)

    def test_miss_refreshes_to_newer_generation(self, tmp_path):
        tables, _ = _tables()
        a = SharedTableStore(tmp_path)
        b = SharedTableStore(tmp_path)
        assert b.get("later") is None  # genuinely absent
        a.put("later", tables)
        # b's mmap predates the publish; the miss path re-reads CURRENT.
        assert b.get("later") is not None
        assert b.generation == a.generation == 1

    def test_put_is_idempotent_and_merges(self, tmp_path):
        tables, _ = _tables()
        store = SharedTableStore(tmp_path)
        assert store.put("a", tables)
        assert store.put("a", tables)  # already present: no new segment
        assert store.generation == 1
        assert store.put("b", tables)
        assert store.generation == 2
        fresh = SharedTableStore(tmp_path)
        assert fresh.get_blob("a") is not None
        assert fresh.get_blob("b") is not None

    def test_eviction_at_capacity(self, tmp_path):
        tables, _ = _tables()
        store = SharedTableStore(tmp_path, max_entries=3)
        for i in range(5):
            assert store.put(f"k{i}", tables)
        assert len(store._index) == 3
        assert store.get_blob("k4") is not None
        assert store.get_blob("k0") is None

    def test_old_segments_are_garbage_collected(self, tmp_path):
        tables, _ = _tables()
        store = SharedTableStore(tmp_path)
        for i in range(4):
            store.put(f"k{i}", tables)
        segments = list(tmp_path.glob("segment-*.bin"))
        assert len(segments) == 1

    def test_mixed_nest_and_ugs_entries_coexist(self, tmp_path):
        """Whole-nest tables and ``ugs-`` blobs share one segment: the
        key prefixes keep the namespaces disjoint and both kinds survive
        a remap."""
        tables, _ = _tables()
        store = SharedTableStore(tmp_path)
        assert store.put("a" * 64, tables)
        assert store.put_blob("ugs-" + "b" * 32, b'{"k": 1}')
        fresh = SharedTableStore(tmp_path)
        assert fresh.get("a" * 64) is not None
        assert fresh.get_blob("ugs-" + "b" * 32) == b'{"k": 1}'
        assert fresh.get_blob("a" * 64) is not None  # same blob surface

    def test_mixed_eviction_is_kind_blind(self, tmp_path):
        """At the entry cap, insertion order decides eviction regardless
        of entry kind; old segments are still collected down to one."""
        tables, _ = _tables()
        store = SharedTableStore(tmp_path, max_entries=3)
        assert store.put("nest0", tables)
        for i in range(3):
            assert store.put_blob(f"ugs-{i:032d}", b"blob")
        # Cap is 3: the oldest (the nest-level entry) fell out.
        assert store.get_blob("nest0") is None
        assert all(store.get_blob(f"ugs-{i:032d}") is not None
                   for i in range(3))
        # Now push the nest entry back and age out one UGS blob.
        assert store.put("nest1", tables)
        assert store.get_blob("ugs-" + "0" * 31 + "0") is None
        assert store.get_blob("nest1") is not None
        assert len(list(tmp_path.glob("segment-*.bin"))) == 1

    def test_corrupt_segment_degrades_to_miss(self, tmp_path):
        tables, _ = _tables()
        SharedTableStore(tmp_path).put("k", tables)
        segment = next(tmp_path.glob("segment-*.bin"))
        segment.write_bytes(b"junk-that-is-not-a-segment-header")
        fresh = SharedTableStore(tmp_path)
        assert fresh.get("k") is None
        assert fresh.errors >= 1

    def test_truncated_index_degrades_to_miss(self, tmp_path):
        tables, _ = _tables()
        SharedTableStore(tmp_path).put("k", tables)
        segment = next(tmp_path.glob("segment-*.bin"))
        raw = bytearray(segment.read_bytes())
        # Claim one more entry than the index actually holds.
        magic, version, gen, count, isize = \
            struct.unpack_from("!4sBQII", raw, 0)
        struct.pack_into("!4sBQII", raw, 0, magic, version, gen,
                         count + 1, isize)
        segment.write_bytes(bytes(raw))
        fresh = SharedTableStore(tmp_path)
        assert fresh.get("k") is None

    def test_unwritable_directory_disables_store(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        store = SharedTableStore(blocker / "sub")
        assert store.stats()["enabled"] is False
        assert store.get("k") is None
        tables, _ = _tables()
        assert not store.put("k", tables)

    def test_stats_shape(self, tmp_path):
        store = SharedTableStore(tmp_path)
        stats = store.stats()
        assert set(stats) == {"enabled", "generation", "entries", "hits",
                              "misses", "publishes", "errors"}

class TestEngineIntegration:
    def test_second_engine_reads_published_tables(self, tmp_path):
        nest = api.coerce_nest("jacobi")
        machine = api.coerce_machine("alpha")
        first = AnalysisEngine(shared_dir=tmp_path)
        first.optimize(nest, machine, bound=3)
        assert first.shared.publishes >= 1

        second = AnalysisEngine(shared_dir=tmp_path)
        second.optimize(nest, machine, bound=3)
        counters = second.metrics.snapshot()["counters"]
        assert counters.get("cache.shared.hit", 0) >= 1
        assert counters.get("cache.tables.miss", 0) == 0
        assert second.shared.publishes == 0

    def test_shared_stats_in_cache_stats(self, tmp_path):
        engine = AnalysisEngine(shared_dir=tmp_path)
        assert engine.cache_stats()["shared"]["enabled"] is True
        assert AnalysisEngine().cache_stats().get("shared") is None
