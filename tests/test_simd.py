"""repro.simd: statement dependence graphs, SLP packing, the lane cost
model, packed execution, and the vectorized search wiring.

The load-bearing invariant (also enforced at corpus scale by
``benchmarks/bench_simd.py``): ``run_packed`` is bit-identical to the
scalar ``run_unrolled`` oracle for every nest and every unroll vector,
because pack lanes are pairwise loop-independent and the lockstep
schedule respects every loop-independent statement edge.
"""

import random
from fractions import Fraction

import numpy as np
import pytest

from repro.ir.builder import NestBuilder
from repro.ir.interp import InterpreterError, run_unrolled
from repro.ir.packed import run_packed
from repro.machine.model import MachineModel
from repro.machine.presets import dec_alpha, future_wide, mips_r10k
from repro.simd import (
    PackSet,
    SimdReport,
    base_temp_names,
    build_packs,
    build_statement_graph,
    estimate_packs,
    format_report,
    ref_lane_class,
    schedule_packs,
    statement_shape,
    vectorize_jammed,
    vectorize_nest,
)
from repro.simd.depgraph import StatementDep, StatementGraph
from repro.simd.packer import MAX_PACK_STATEMENTS, Pack
from repro.unroll.optimize import choose_unroll
from repro.unroll.transform import unroll_and_jam

def jacobi_like():
    b = NestBuilder("jac")
    I, J = b.loops(("I", 1, 10), ("J", 1, 10))
    b.assign(b.ref("A", I, J),
             (b.ref("B", I - 1, J) + b.ref("B", I + 1, J)
              + b.ref("B", I, J - 1) + b.ref("B", I, J + 1)) * 0.25)
    return b.build()

def temp_square():
    # t = B(J, I); A(I, J) = t * t -- the defs are stride (not unit) in
    # I, so they can only be packed by use-def extension.
    b = NestBuilder("tsq")
    I, J = b.loops(("I", 0, 7), ("J", 0, 7))
    b.assign(b.scalar("t"), b.ref("B", J, I))
    b.assign(b.ref("A", I, J), b.scalar("t") * b.scalar("t"))
    return b.build()

# -- statement dependence graph ------------------------------------------------

class TestStatementGraph:
    def test_cross_copy_dep_becomes_loop_independent(self):
        # A(I,J) = A(I+1,J): copy 0 reads what copy 1 writes, so the
        # original carried dependence is loop-independent after jamming.
        b = NestBuilder("anti")
        I, J = b.loops(("I", 0, 9), ("J", 0, 9))
        b.assign(b.ref("A", I, J), b.ref("A", I + 1, J) + 1.0)
        jammed = unroll_and_jam(b.build(), (1, 0)).main
        graph = build_statement_graph(jammed)
        assert graph.n == 2
        assert not graph.independent(0, 1)
        kinds = {(d.src, d.dst, d.kind) for d in graph.deps
                 if d.loop_independent}
        assert (0, 1, "anti") in kinds

    def test_independent_copies_have_no_li_edges(self):
        jammed = unroll_and_jam(jacobi_like(), (3, 0)).main
        graph = build_statement_graph(jammed)
        assert graph.n == 4
        for i in range(4):
            for j in range(4):
                assert graph.independent(i, j) == (i != j)

    def test_carried_edges_are_tagged_not_constraining(self):
        # A(I,J) = A(I,J-1): carried by the (jammed) inner loop; the
        # copies remain lockstep-compatible.
        b = NestBuilder("carried")
        I, J = b.loops(("I", 0, 9), ("J", 1, 9))
        b.assign(b.ref("A", I, J), b.ref("A", I, J - 1) * 0.5)
        jammed = unroll_and_jam(b.build(), (1, 0)).main
        graph = build_statement_graph(jammed)
        carried = graph.carried()
        assert carried and all(d.level is not None for d in carried)
        assert any(d.level == 1 and d.kind == "flow" for d in carried)
        assert graph.independent(0, 1)

    def test_scalar_temp_edges(self):
        jammed = unroll_and_jam(temp_square(), (1, 0)).main
        graph = build_statement_graph(jammed)
        by_via = {}
        for d in graph.deps:
            by_via.setdefault(d.via, []).append(d)
        # t -> t*t flow inside each copy, for both the base name and the
        # renamed private copy.
        assert any(d.kind == "flow" and d.loop_independent
                   for d in by_via["t"])
        assert any(d.kind == "flow" and d.loop_independent
                   for d in by_via["t__I1"])

    def test_read_before_write_is_carried_flow(self):
        # s is read before its first write: the value arrives around the
        # innermost loop (the interpreter's shared-seed fallback).
        b = NestBuilder("rbw")
        I, J = b.loops(("I", 0, 5), ("J", 0, 5))
        b.assign(b.ref("A", I, J), b.scalar("s") + 1.0)
        b.assign(b.scalar("s"), b.ref("B", I, J))
        graph = build_statement_graph(unroll_and_jam(b.build(), (0, 0)).main)
        carried = [d for d in graph.deps if d.via == "s" and d.kind == "flow"
                   and d.level == 1]
        assert carried and carried[0].src == 1 and carried[0].dst == 0

# -- packer --------------------------------------------------------------------

class TestPacker:
    def test_base_temp_names_cover_every_copy(self):
        base = base_temp_names(temp_square(), (2, 0))
        assert base == {"t": "t", "t__I1": "t", "t__I2": "t"}

    def test_copies_are_isomorphic(self):
        jammed = unroll_and_jam(jacobi_like(), (2, 0)).main
        base = base_temp_names(jacobi_like(), (2, 0))
        shapes = {statement_shape(s, base) for s in jammed.body}
        assert len(shapes) == 1

    def test_ref_lane_classes(self):
        b = NestBuilder("cls")
        I, J = b.loops(("I", 0, 9), ("J", 0, 9))
        b.assign(b.ref("A", I, J), b.ref("B", I, J))
        refs_of = lambda u: tuple(
            s.rhs for s in unroll_and_jam(b.build(), u).main.body)
        assert ref_lane_class(refs_of((3, 0))) == ("unit", 1)

        b2 = NestBuilder("cls2")
        I, J = b2.loops(("I", 0, 9), ("J", 0, 9))
        b2.assign(b2.ref("A", I, J), b2.ref("B", J, I))
        packs = unroll_and_jam(b2.build(), (2, 0)).main.body
        # B(J, I): unrolling I moves the *second* subscript -> stride.
        assert ref_lane_class(tuple(s.rhs for s in packs))[0] == "stride"

        splat = (b.ref("C", J).node,) * 3
        assert ref_lane_class(splat) == ("splat", 0)

    def test_unit_stride_copies_pack(self):
        report = vectorize_nest(jacobi_like(), (3, 0), future_wide())
        assert report.packs == ((0, 1, 2, 3),)
        assert report.packed_fraction == 1.0

    def test_width_splits_long_runs(self):
        report = vectorize_nest(jacobi_like(), (7, 0), future_wide())
        assert report.packs == ((0, 1, 2, 3), (4, 5, 6, 7))

    def test_dependent_copies_do_not_pack(self):
        b = NestBuilder("dep")
        I, J = b.loops(("I", 0, 9), ("J", 0, 9))
        b.assign(b.ref("A", I, J), b.ref("A", I + 1, J) + 1.0)
        report = vectorize_nest(b.build(), (3, 0), future_wide())
        assert report.packs == ()

    def test_use_def_extension_pulls_strided_defs(self):
        report = vectorize_nest(temp_square(), (3, 0), future_wide())
        lanes = set(report.packs)
        # the A-store copies seed; the t-def copies arrive by extension
        assert len(lanes) == 2
        assert report.packed_fraction == 1.0

    def test_width_one_machine_packs_nothing(self):
        report = vectorize_nest(jacobi_like(), (3, 0), dec_alpha())
        assert report.packs == ()
        assert report.estimate.vector_cycles == report.estimate.scalar_cycles

    def test_oversized_body_is_not_packed(self):
        jammed = unroll_and_jam(jacobi_like(), (3, 0)).main
        graph = build_statement_graph(jammed)
        assert MAX_PACK_STATEMENTS == 512
        packs = build_packs(jammed, graph, width=4)
        assert len(packs) == 1
        # the same body reported oversized yields the empty set
        small = build_packs(jammed, graph, width=1)
        assert len(small) == 0

# -- schedule ------------------------------------------------------------------

class TestSchedule:
    def _four_stmt_graph(self, deps):
        b = NestBuilder("sched")
        I, J = b.loops(("I", 0, 3), ("J", 0, 3))
        for k in range(4):
            b.assign(b.ref("A", I + k, J), b.ref("B", I + k, J))
        nest = b.build()
        return StatementGraph(nest, tuple(
            StatementDep(s, d, "flow", None, "A") for s, d in deps))

    def test_textual_order_without_packs(self):
        graph = self._four_stmt_graph([(0, 1), (2, 3)])
        _, order = schedule_packs(graph, PackSet(()))
        assert order == ((0,), (1,), (2,), (3,))

    def test_pack_lanes_stay_grouped(self):
        graph = self._four_stmt_graph([])
        packset = PackSet((Pack((0, 2)), Pack((1, 3))))
        kept, order = schedule_packs(graph, packset)
        assert len(kept) == 2
        assert set(order) == {(0, 2), (1, 3)}

    def test_contracted_cycle_splits_a_pack(self):
        # The classic SLP counterexample: packs {0,2} and {1,3} with
        # edges 0->1 and 3->2 contract to a 2-cycle.
        graph = self._four_stmt_graph([(0, 1), (3, 2)])
        packset = PackSet((Pack((0, 2)), Pack((1, 3))))
        kept, order = schedule_packs(graph, packset)
        assert [p.lanes for p in kept] == [(1, 3)]
        assert order == ((0,), (1, 3), (2,))

    def test_schedule_respects_every_li_edge(self):
        graph = self._four_stmt_graph([(0, 3), (1, 2)])
        packset = PackSet((Pack((0, 1)),))
        _, order = schedule_packs(graph, packset)
        position = {}
        for g, group in enumerate(order):
            for stmt in group:
                position[stmt] = g
        for dep in graph.deps:
            assert position[dep.src] <= position[dep.dst]

# -- lane cost model -----------------------------------------------------------

class TestCostModel:
    def test_empty_packset_matches_scalar(self):
        jammed = unroll_and_jam(jacobi_like(), (1, 0)).main
        est = estimate_packs(jammed, PackSet(()), future_wide())
        assert est.vector_cycles == est.scalar_cycles
        assert est.overhead_cycles == 0

    def test_unit_stride_pack_collapses_memory(self):
        nest = jacobi_like()
        report = vectorize_nest(nest, (3, 0), future_wide())
        est = report.estimate
        # 4 copies x (4 loads + 1 store) scalar; packed: 4 unit lane
        # groups + 1 vector store.
        assert est.scalar_mem_ops == 20
        assert est.vector_mem_ops == 5
        assert est.improved
        assert est.speedup > 2

    def test_splat_and_gather_are_charged(self):
        machine = future_wide()
        b = NestBuilder("gather")
        I, J = b.loops(("I", 0, 9), ("J", 0, 9))
        b.assign(b.scalar("t"), b.ref("B", J, I))
        b.assign(b.ref("A", I, J), b.scalar("t") * b.ref("C", J))
        report = vectorize_nest(b.build(), (1, 0), machine)
        est = report.estimate
        # C(J) is a splat across lanes; B(J, I) in the extension pack is
        # a per-lane gather.
        assert est.overhead_cycles >= machine.splat_cost + machine.gather_penalty

    def test_miss_cycles_added_to_both_sides(self):
        jammed = unroll_and_jam(jacobi_like(), (3, 0)).main
        base = base_temp_names(jacobi_like(), (3, 0))
        graph = build_statement_graph(jammed)
        packs = build_packs(jammed, graph, 4, base)
        a = estimate_packs(jammed, packs, future_wide())
        m = estimate_packs(jammed, packs, future_wide(),
                           miss_cycles=Fraction(7))
        assert m.scalar_cycles - a.scalar_cycles == 7
        assert m.vector_cycles - a.vector_cycles == 7

    def test_report_dict_and_format(self):
        report = vectorize_nest(jacobi_like(), (3, 0), future_wide())
        doc = report.to_dict()
        assert doc["packs"] == [[0, 1, 2, 3]]
        assert doc["improved"] is True
        assert 0 < doc["packed_fraction"] <= 1
        text = format_report(report)
        assert "packs:" in text and "speedup:" in text

# -- packed execution ----------------------------------------------------------

def _run_both(nest, u, shapes, bindings=None, scalars=None, seed=0,
              width=4):
    rng = np.random.default_rng(seed)
    base = {n: rng.standard_normal(s) for n, s in shapes.items()}
    ref = {k: v.copy() for k, v in base.items()}
    got = {k: v.copy() for k, v in base.items()}
    run_unrolled(nest, u, bindings or {}, ref,
                 dict(scalars) if scalars else None)
    run_packed(nest, u, bindings or {}, got,
               dict(scalars) if scalars else None, width=width)
    return ref, got

class TestRunPacked:
    @pytest.mark.parametrize("u", [(0, 0), (1, 0), (3, 0), (5, 0)])
    def test_jacobi_parity(self, u):
        shapes = {"A": (12, 12), "B": (12, 12)}
        ref, got = _run_both(jacobi_like(), u, shapes)
        for name in shapes:
            assert np.array_equal(ref[name], got[name]), (name, u)

    @pytest.mark.parametrize("u", [(1, 0), (2, 0), (4, 0)])
    def test_scalar_temp_parity(self, u):
        shapes = {"A": (8, 8), "B": (8, 8)}
        ref, got = _run_both(temp_square(), u, shapes,
                             scalars={"t": 3.25})
        for name in shapes:
            assert np.array_equal(ref[name], got[name]), (name, u)

    def test_dependent_copies_parity(self):
        # packs rejected, but the jammed schedule must still match
        b = NestBuilder("dep")
        I, J = b.loops(("I", 0, 9), ("J", 0, 9))
        b.assign(b.ref("A", I, J), b.ref("A", I + 1, J) + 1.0)
        ref, got = _run_both(b.build(), (3, 0), {"A": (11, 11)})
        assert np.array_equal(ref["A"], got["A"])

    def test_width_one_degrades_to_jammed_order(self):
        ref, got = _run_both(jacobi_like(), (3, 0),
                             {"A": (12, 12), "B": (12, 12)}, width=1)
        assert np.array_equal(ref["A"], got["A"])

    def test_machine_supplies_width(self):
        nest = jacobi_like()
        rng = np.random.default_rng(3)
        base = {"A": rng.standard_normal((12, 12)),
                "B": rng.standard_normal((12, 12))}
        ref = {k: v.copy() for k, v in base.items()}
        got = {k: v.copy() for k, v in base.items()}
        run_unrolled(nest, (3, 0), {}, ref)
        run_packed(nest, (3, 0), {}, got, machine=future_wide())
        assert np.array_equal(ref["A"], got["A"])

    def test_validation_matches_run_unrolled(self):
        nest = jacobi_like()
        arrays = {"A": np.zeros((12, 12)), "B": np.zeros((12, 12))}
        with pytest.raises(InterpreterError):
            run_packed(nest, (0, 1), {}, arrays)
        with pytest.raises(InterpreterError):
            run_packed(nest, (0,), {}, arrays)
        with pytest.raises(InterpreterError):
            run_packed(nest, (-1, 0), {}, arrays)

# -- fuzzed corpus parity ------------------------------------------------------

def _fuzz_nest(rng: random.Random, name: str):
    """Random 2-3 deep nests with shifted reads, in-place updates and
    scalar temporaries -- everything the packed executor must survive."""
    depth = rng.choice([2, 2, 3])
    n = 7 if depth == 2 else 5
    b = NestBuilder(name)
    specs = [(nm, 2, 2 + n) for nm in ("I", "J", "K")[:depth]]
    idx = list(b.loops(*specs))
    arrays = ["A", "B", "C"]
    for s in range(rng.randint(1, 3)):
        use_temp = rng.random() < 0.4
        terms = []
        for _ in range(rng.randint(1, 3)):
            arr = rng.choice(arrays)
            perm = list(range(depth))
            if rng.random() < 0.3:
                rng.shuffle(perm)
            terms.append(b.ref(arr, *(idx[p] + rng.randint(-2, 2)
                                      for p in perm)))
        rhs = terms[0]
        for t in terms[1:]:
            rhs = rhs + t if rng.random() < 0.7 else rhs * t
        if use_temp:
            b.assign(b.scalar(f"t{s}"), rhs)
            rhs = b.scalar(f"t{s}") * 0.5
        w = rng.choice(arrays)
        b.assign(b.ref(w, *(iv + rng.randint(-1, 1) for iv in idx)), rhs)
    return b.build(), depth, n

NESTS_PER_CHUNK = 25

@pytest.mark.parametrize("chunk", range(20))
def test_fuzzed_packed_parity(chunk):
    """>= 500 fuzzed nests, several unrolls each: run_packed must be
    bit-identical to run_unrolled on every array."""
    rng = random.Random(20260 + chunk)
    for k in range(NESTS_PER_CHUNK):
        nest, depth, n = _fuzz_nest(rng, f"fuzz{chunk}_{k}")
        side = n + 7  # indices span [0, n+4] after offsets
        shape = (side,) * depth
        if depth == 2:
            unrolls = [(0, 0), (rng.randint(1, 3), 0)]
        else:
            unrolls = [(rng.randint(0, 2), rng.randint(0, 2), 0)]
        for u in unrolls:
            nprng = np.random.default_rng(1000 * chunk + k)
            base = {a: nprng.standard_normal(shape) for a in "ABC"}
            ref = {a: v.copy() for a, v in base.items()}
            got = {a: v.copy() for a, v in base.items()}
            run_unrolled(nest, u, {}, ref, {})
            run_packed(nest, u, {}, got, {}, width=4)
            for a in base:
                assert np.array_equal(ref[a], got[a]), (nest.name, u, a)

# -- vectorized search wiring --------------------------------------------------

class TestVectorizedSearch:
    def test_scalar_machine_falls_back_bit_identical(self):
        nest = jacobi_like()
        plain = choose_unroll(nest, dec_alpha(), bound=6)
        simd = choose_unroll(nest, dec_alpha(), bound=6, vectorize=True)
        assert (plain.unroll, plain.objective, plain.feasible) \
            == (simd.unroll, simd.objective, simd.feasible)

    def test_default_path_unchanged_by_flag(self):
        nest = jacobi_like()
        a = choose_unroll(nest, future_wide(), bound=6)
        b = choose_unroll(nest, future_wide(), bound=6, vectorize=False)
        assert (a.unroll, a.objective, a.feasible) \
            == (b.unroll, b.objective, b.feasible)

    def test_vectorized_objective_prefers_full_lanes(self):
        nest = jacobi_like()
        machine = future_wide()
        simd = choose_unroll(nest, machine, bound=8, vectorize=True)
        copies = simd.unroll[0] + 1
        assert copies % machine.vector_width_words == 0
        report = vectorize_nest(nest, simd.unroll, machine)
        assert report.estimate.improved

    def test_infeasible_space_returns_zero_vector(self):
        nest = jacobi_like()
        tiny = mips_r10k().with_registers(1)
        result = choose_unroll(nest, tiny, bound=6, vectorize=True)
        assert result.unroll == (0, 0)

    def test_mips_preset_has_lanes(self):
        assert mips_r10k().vector_width_words == 2
        assert future_wide().vector_width_words == 4
        assert future_wide().has_vector_unit
        assert not dec_alpha().has_vector_unit

# -- engine / api facade -------------------------------------------------------

class TestEngineAndApi:
    def test_engine_simd_report_memoized(self):
        from repro.engine import AnalysisEngine

        engine = AnalysisEngine()
        nest = jacobi_like()
        a = engine.simd_report(nest, future_wide(), (3, 0))
        b = engine.simd_report(nest, future_wide(), (3, 0))
        assert a is b
        assert engine.metrics.counter("cache.simd.hits") == 1
        assert engine.metrics.counter("cache.simd.misses") == 1

    def test_api_vectorize_returns_result_and_report(self):
        import repro

        result, report = repro.vectorize("jacobi", machine="future",
                                         bound=4)
        assert isinstance(report, SimdReport)
        assert report.unroll == result.unroll
        assert report.machine == "future-wide"

    def test_api_vectorize_explicit_unroll(self):
        import repro

        _, report = repro.vectorize("jacobi", machine="future",
                                    unroll=(3, 0), bound=4)
        assert report.unroll == (3, 0)
        assert report.packs
