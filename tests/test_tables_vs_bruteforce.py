"""The project's central invariant (DESIGN.md #1): the precomputed tables
must agree, at every unroll vector, with quantities measured on the
actually-unrolled loop body by the independent brute-force path."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import measure_unrolled
from repro.ir.builder import NestBuilder
from repro.unroll.space import UnrollSpace
from repro.unroll.tables import build_tables

LINE = 4
TRIP = 100

def check_agreement(nest, dims, bound=3, line=LINE):
    space = UnrollSpace.for_dims(nest.depth, dims, bound)
    tables = build_tables(nest, space, line_size=line, trip=TRIP)
    for u in space:
        predicted = tables.point(u)
        measured = measure_unrolled(nest, u, line_size=line, trip=TRIP)
        assert predicted.flops == measured.flops, (u, "flops")
        assert predicted.gts == measured.gts, (u, "gts")
        assert predicted.gss == measured.gss, (u, "gss")
        assert predicted.memory_ops == measured.memory_ops, (u, "memory_ops")
        assert predicted.registers == measured.registers, (u, "registers")
        assert predicted.cache_cost == measured.cache_cost, (u, "cache_cost")

class TestHandWrittenNests:
    def test_paper_intro(self):
        b = NestBuilder("intro")
        J, I = b.loops(("J", 0, "N"), ("I", 0, "M"))
        b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
        check_agreement(b.build(), dims=[0], bound=4)

    def test_figure1_merging(self):
        """The Figure 1 example: A(I,J) def and A(I-2,J) use merge at
        unroll 2 of the I loop."""
        b = NestBuilder("fig1")
        I, J = b.loops(("I", 2, "N"), ("J", 0, "N"))
        b.assign(b.ref("A", I, J), b.ref("A", I - 2, J) + 1.0)
        check_agreement(b.build(), dims=[0], bound=4)

    def test_matmul_two_loops(self):
        b = NestBuilder("mm")
        J, I, K = b.loops(("J", 0, "N"), ("I", 0, "N"), ("K", 0, "N"))
        b.assign(b.ref("C", I, J),
                 b.ref("C", I, J) + b.ref("A", I, K) * b.ref("B", K, J))
        check_agreement(b.build(), dims=[0, 1], bound=3)

    def test_stencil(self):
        b = NestBuilder("stencil")
        I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
        b.assign(b.ref("A", I, J),
                 b.ref("B", I, J) + b.ref("B", I - 1, J) + b.ref("B", I + 1, J)
                 + b.ref("B", I, J - 1) + b.ref("B", I, J + 1))
        check_agreement(b.build(), dims=[0], bound=4)

    def test_figure6_multiple_generators(self):
        """Figure 6: a def A(I+1,J) feeding reads of A(I,J)."""
        b = NestBuilder("fig6")
        I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
        b.assign(b.ref("A", I + 1, J), b.ref("A", I, J) + b.ref("B", I, J))
        b.assign(b.ref("C", I, J), b.ref("A", I, J) * 2.0)
        check_agreement(b.build(), dims=[0], bound=4)

    def test_reversed_direction_refs(self):
        """References walking backwards: negative merge offsets."""
        b = NestBuilder("rev")
        I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
        b.assign(b.ref("C", I, J),
                 b.ref("A", 4 - I, J) + b.ref("A", 2 - I, J))
        check_agreement(b.build(), dims=[0], bound=4)

    def test_strided_subscripts(self):
        b = NestBuilder("strided")
        I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
        b.assign(b.ref("C", I, J),
                 b.ref("A", 2 * I, J) + b.ref("A", 2 * I + 1, J)
                 + b.ref("A", 2 * I + 4, J))
        check_agreement(b.build(), dims=[0], bound=4)

    def test_unused_dim_does_not_multiply(self):
        """Unrolling a loop absent from a UGS's subscripts must not grow
        its group counts."""
        b = NestBuilder("absent")
        I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
        b.assign(b.ref("C", I, J), b.ref("B", J) * 2.0)
        space = UnrollSpace.for_dims(2, [0], 4)
        tables = build_tables(b.build(), space, line_size=LINE, trip=TRIP)
        b_tables = next(t for t in tables.per_ugs if t.ugs.array == "B")
        # B(J) does not subscript I: its identical copies collapse to one
        # group and one load however far I is unrolled.
        assert b_tables.gts.box_sum((0,)) == b_tables.gts.box_sum((4,)) == 1
        assert b_tables.rrs.box_sum((0,)) == b_tables.rrs.box_sum((4,)) == 1
        # The C(I,J) stores, by contrast, multiply with the unroll factor.
        c_tables = next(t for t in tables.per_ugs if t.ugs.array == "C")
        assert c_tables.rrs.box_sum((4,)) == 5
        check_agreement(b.build(), dims=[0], bound=4)

    def test_three_deep_two_unrolled(self):
        b = NestBuilder("deep")
        I, J, K = b.loops(("I", 0, "N"), ("J", 0, "N"), ("K", 0, "N"))
        b.assign(b.ref("A", I, K),
                 b.ref("A", I, K) + b.ref("B", J, K) * b.ref("C", I, J))
        check_agreement(b.build(), dims=[0, 1], bound=2)

# ---------------------------------------------------------------------------
# Randomized agreement
# ---------------------------------------------------------------------------

@st.composite
def random_nest_2d(draw):
    """Random SIV separable 2-deep nests over a couple of arrays."""
    b = NestBuilder("rand")
    I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
    index_choices = [I, J]
    n_stmts = draw(st.integers(1, 2))
    arrays_2d = ["A", "B"]
    for s in range(n_stmts):
        terms = []
        n_reads = draw(st.integers(1, 3))
        for _ in range(n_reads):
            arr = draw(st.sampled_from(arrays_2d))
            o1 = draw(st.integers(-2, 2))
            o2 = draw(st.integers(-2, 2))
            first = draw(st.sampled_from([0, 1]))
            idx1, idx2 = index_choices[first], index_choices[1 - first]
            terms.append(b.ref(arr, idx1 + o1, idx2 + o2))
        rhs = terms[0]
        for t in terms[1:]:
            rhs = rhs + t
        warr = draw(st.sampled_from(["A", "B", "D"]))
        w1 = draw(st.integers(-1, 1))
        b.assign(b.ref(warr, I + w1, J), rhs)
    return b.build()

@settings(max_examples=25, deadline=None)
@given(random_nest_2d(), st.integers(0, 3))
def test_random_nests_agree(nest, u0):
    space = UnrollSpace.for_dims(2, [0], 3)
    tables = build_tables(nest, space, line_size=LINE, trip=TRIP)
    u = space.embed((u0,))
    predicted = tables.point(u)
    measured = measure_unrolled(nest, u, line_size=LINE, trip=TRIP)
    assert predicted.gts == measured.gts
    assert predicted.gss == measured.gss
    assert predicted.memory_ops == measured.memory_ops
    assert predicted.registers == measured.registers
    assert predicted.cache_cost == measured.cache_cost

class TestMonotoneMerging:
    """DESIGN.md invariant #3: once merged, always merged -- group counts
    per copy never increase with more unrolling."""

    def test_gts_growth_is_subadditive(self):
        b = NestBuilder("fig1")
        I, J = b.loops(("I", 2, "N"), ("J", 0, "N"))
        b.assign(b.ref("A", I, J), b.ref("A", I - 2, J) + 1.0)
        space = UnrollSpace.for_dims(2, [0], 6)
        tables = build_tables(b.build(), space, line_size=LINE)
        prev_increment = None
        prev = None
        for k in range(7):
            value = tables.point(space.embed((k,))).gts
            if prev is not None:
                increment = value - prev
                if prev_increment is not None:
                    assert increment <= prev_increment
                prev_increment = increment
            prev = value
