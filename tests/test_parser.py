"""Parser tests including printer round-trips over the whole kernel suite."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.builder import NestBuilder
from repro.ir.nodes import ArrayRef, BinOp, Call, Const, ScalarVar
from repro.ir.parser import ParseError, parse_nest
from repro.ir.printer import format_nest
from repro.kernels import all_kernels

class TestBasicParsing:
    def test_simple_nest(self):
        nest = parse_nest("""
            ! a comment
            DO I = 1, N
              DO J = 0, M
                A(I, J) = B(I, J-1) + 2
              ENDDO
            ENDDO
        """)
        assert nest.index_names == ("I", "J")
        assert nest.description == "a comment"
        assert nest.loops[0].upper.param_coeffs == (("N", 1),)
        stmt = nest.body[0]
        assert isinstance(stmt.lhs, ArrayRef)
        assert stmt.lhs.subscripts[0].coeff("I") == 1
        read = stmt.rhs.left
        assert read.subscripts[1].const == -1

    def test_strided_subscripts(self):
        nest = parse_nest("""
            DO I = 0, N
              A(2*I+1) = B(3*I - 2)
            ENDDO
        """)
        assert nest.body[0].lhs.subscripts[0].coeff("I") == 2
        assert nest.body[0].lhs.subscripts[0].const == 1
        assert nest.body[0].rhs.subscripts[0].coeff("I") == 3
        assert nest.body[0].rhs.subscripts[0].const == -2

    def test_param_subscript(self):
        nest = parse_nest("""
            DO I = 0, N
              A(I + N) = B(I)
            ENDDO
        """)
        assert nest.body[0].lhs.subscripts[0].param_coeffs == (("N", 1),)

    def test_step_and_scalar_statement(self):
        nest = parse_nest("""
            DO I = 0, 20, 2
              t = B(I) * alpha
              A(I) = t + t
            ENDDO
        """)
        assert nest.loops[0].step == 2
        assert isinstance(nest.body[0].lhs, ScalarVar)
        assert nest.scalar_temporaries() == ("t",)

    def test_intrinsic_call(self):
        nest = parse_nest("""
            DO I = 0, 9
              A(I) = sqrt(B(I)) + abs(C(I))
            ENDDO
        """)
        call = nest.body[0].rhs.left
        assert isinstance(call, Call) and call.func == "sqrt"

    def test_unary_minus_and_parens(self):
        nest = parse_nest("""
            DO I = 0, 9
              A(I) = -(B(I) - 1) * 0.5
            ENDDO
        """)
        assert isinstance(nest.body[0].rhs, BinOp)

    def test_negative_bounds(self):
        nest = parse_nest("""
            DO I = -3, N-1
              A(I) = 0
            ENDDO
        """)
        assert nest.loops[0].lower.const == -3
        assert nest.loops[0].upper.const == -1

class TestErrors:
    @pytest.mark.parametrize("source,fragment", [
        ("", "empty"),
        ("DO I = 0, N\nENDDO", "no statements"),
        ("DO I = 0, N\n A(I) = 1\n", "unclosed"),
        ("A(I) = 1", "outside loops"),
        ("DO I = 0, N\n A(I) = 1\nENDDO\nENDDO", "unmatched"),
        ("DO I = 0, N\n A(I) = 1\n DO J = 0, N\n  B(J) = 1\n ENDDO\nENDDO",
         "perfect"),
        ("DO I = 0, J\n A(I) = 1\nENDDO", ""),  # J unknown: becomes param, ok
        ("DO I = 0, N\n A(I = 1\nENDDO", "expected"),
        ("DO I = 0, N\n A(I) = 1 1\nENDDO", "trailing"),
        ("DO I = 0, N\n sqrt(I) = 1\nENDDO", "assign"),
    ])
    def test_error_cases(self, source, fragment):
        if fragment == "":
            parse_nest(source)  # legal corner case
            return
        with pytest.raises(ParseError) as err:
            parse_nest(source)
        assert fragment.lower() in str(err.value).lower()

class TestRoundTrip:
    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.name)
    def test_kernel_round_trip(self, kernel):
        text = format_nest(kernel.nest)
        reparsed = parse_nest(text, name=kernel.nest.name)
        assert reparsed.loops == kernel.nest.loops
        assert reparsed.body == kernel.nest.body

    def test_unrolled_nest_round_trip(self):
        from repro.unroll.transform import unroll_and_jam
        nest = all_kernels()[0].nest
        main = unroll_and_jam(nest, (2, 0)).main
        reparsed = parse_nest(format_nest(main))
        assert reparsed.loops == main.loops
        assert reparsed.body == main.body

    def test_jammed_temp_names_round_trip(self):
        # The per-copy renamed temporaries (t__I1, t__I1_J1, ...) must
        # survive print -> parse as the same scalar variables.
        from repro.unroll.transform import unroll_and_jam

        b = NestBuilder("jammed_temps")
        I, J, K = b.loops(("I", 0, "N"), ("J", 0, "N"), ("K", 0, "N"))
        b.assign(b.scalar("t"), b.ref("B", I, J, K))
        b.assign(b.ref("A", I, J, K), b.scalar("t") * b.scalar("t"))
        nest = b.build()
        main = unroll_and_jam(nest, (1, 2, 0)).main
        text = format_nest(main)
        assert "t__I1_J1" in text and "t__J2" in text
        reparsed = parse_nest(text, name=main.name)
        assert reparsed.loops == main.loops
        assert reparsed.body == main.body
        assert reparsed.structural_key() == main.structural_key()
        assert set(reparsed.scalar_temporaries()) \
            == set(main.scalar_temporaries())

@st.composite
def printable_nest(draw):
    b = NestBuilder("rt")
    I, J = b.loops(("I", draw(st.integers(-2, 2)), "N"),
                   ("J", 0, draw(st.sampled_from(["N", "M", 7]))))
    terms = []
    for _ in range(draw(st.integers(1, 3))):
        arr = draw(st.sampled_from(["A", "B"]))
        c = draw(st.sampled_from([1, 2, -1]))
        o = draw(st.integers(-3, 3))
        terms.append(b.ref(arr, c * I + o, J + draw(st.integers(-2, 2))))
    rhs = terms[0]
    for t in terms[1:]:
        op = draw(st.sampled_from(["+", "-", "*"]))
        rhs = {"+": rhs + t, "-": rhs - t, "*": rhs * t}[op]
    b.assign(b.ref("OUT", I, J), rhs * draw(st.sampled_from([0.5, 2.0, 1.0])))
    return b.build()

@settings(max_examples=40, deadline=None)
@given(printable_nest())
def test_random_round_trip(nest):
    reparsed = parse_nest(format_nest(nest), name=nest.name)
    assert reparsed.loops == nest.loops
    assert reparsed.body == nest.body
