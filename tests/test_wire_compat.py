"""v1 wire compatibility: committed golden requests against the v2 stack.

``tests/golden/wire_v1/*.json`` are frozen v1 JSON exchanges -- the
request bytes an old client sends and the contract facts its author
could have depended on (status code, ``ok``, stable fields, the legacy
``error.type``).  Each golden file is replayed with a bare
``http.client`` connection (no :class:`repro.serve.client.Client`, no
negotiation -- exactly what a v1 client does) against:

* a live v2 :class:`~repro.serve.server.AnalysisServer`, and
* the cluster router (single worker), whose error envelope and routing
  must stay byte-compatible with single-process serving.

Also pins the v2 additions v1 clients silently ride on: the unified
error envelope carries the new ``code``/``kind``/``retryable`` fields
next to the frozen ``type`` alias, and the same request answered over
the binary-frame transport produces the same document.

The CI ``wire-compat`` job runs exactly this module.
"""

from __future__ import annotations

import http.client
import json
import pathlib

import pytest

from repro.engine import AnalysisEngine
from repro.serve.batcher import BatchConfig
from repro.serve.client import Client
from repro.serve.server import ServeConfig, ServerThread

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden" / "wire_v1"
GOLDEN = sorted(GOLDEN_DIR.glob("*.json"))

def _replay(port: int, case: dict) -> tuple[int, dict]:
    """One golden exchange over a bare v1-style connection."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        if "raw_body" in case:
            body = case["raw_body"].encode("utf-8")
        elif "body" in case:
            body = json.dumps(case["body"]).encode("utf-8")
        else:
            body = None
        conn.request(case["method"], case["path"], body=body,
                     headers={"Content-Type": "application/json"}
                     if body is not None else {})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()

def _assert_case(case: dict, status: int, doc: dict) -> None:
    expect = case["expect"]
    assert status == expect["status"], (case["name"], status, doc)
    if "ok" in expect:
        assert doc.get("ok") is expect["ok"], (case["name"], doc)
    for key, value in expect.get("equals", {}).items():
        assert doc.get(key) == value, (case["name"], key, doc.get(key))
    for key in expect.get("fields", []):
        assert key in doc, (case["name"], key, sorted(doc))
    for key in expect.get("absent", []):
        assert key not in doc, (case["name"], key, doc.get(key))
    if "error_type" in expect:
        err = doc["error"]
        # The frozen v1 contract field...
        assert err["type"] == expect["error_type"], (case["name"], err)
        # ...and the v2 envelope additions riding next to it.
        assert err["code"] == err["type"]
        for field in ("kind", "message", "retryable", "retry_after"):
            assert field in err, (case["name"], field, sorted(err))

@pytest.fixture(scope="module")
def server_port():
    config = ServeConfig(port=0, batch=BatchConfig(deadline_s=0.005))
    with ServerThread(config, AnalysisEngine()) as handle:
        yield handle.port

def test_golden_corpus_is_nonempty():
    assert len(GOLDEN) >= 6

@pytest.mark.parametrize("path", GOLDEN, ids=lambda p: p.stem)
def test_v1_golden_against_v2_server(server_port, path):
    case = json.loads(path.read_text())
    status, doc = _replay(server_port, case)
    _assert_case(case, status, doc)

def test_v1_golden_against_cluster_router():
    from repro.cluster import ClusterConfig, ClusterThread

    config = ClusterConfig(workers=1, port=0, probe_interval_s=0.25,
                           worker_deadline_ms=5.0)
    with ClusterThread(config) as handle:
        for path in GOLDEN:
            case = json.loads(path.read_text())
            status, doc = _replay(handle.port, case)
            _assert_case(case, status, doc)

def test_binary_transport_matches_v1_documents(server_port):
    """The same request over the v2 frame transport yields the same
    document a v1 JSON client gets -- encoding changes nothing."""
    json_client = Client(port=server_port, transport="json")
    frame_client = Client(port=server_port, transport="binary")
    try:
        for case in (json.loads(p.read_text()) for p in GOLDEN):
            if case["method"] != "POST" or "body" not in case:
                continue
            kind = case["path"].rsplit("/", 1)[-1]
            body = case["body"]
            params = {k: v for k, v in body.items()
                      if k not in ("nest", "machine")}
            status_j, doc_j = json_client.call(
                kind, body["nest"], body.get("machine"), params)
            status_b, doc_b = frame_client.call(
                kind, body["nest"], body.get("machine"), params)
            assert status_j == status_b == case["expect"]["status"]
            assert doc_j == doc_b, case["name"]
    finally:
        json_client.close()
        frame_client.close()
