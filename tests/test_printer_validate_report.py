"""Direct tests for the printer, the validator and the report module."""

import pytest

from repro.ir.builder import NestBuilder
from repro.ir.nodes import ArrayRef, BinOp, Call, Const, ScalarVar, Subscript
from repro.ir.printer import format_expr, format_nest
from repro.ir.validate import (
    ValidationError,
    check_separable,
    check_siv,
    is_siv_separable,
    validate_nest,
)
from repro.machine import dec_alpha
from repro.unroll.report import optimization_report, reuse_summary

class TestPrinter:
    def test_precedence_parentheses(self):
        # (a + b) * c needs parens; a + b * c does not
        a, b, c = (ScalarVar(x) for x in "abc")
        assert format_expr(BinOp("*", BinOp("+", a, b), c)) == "(a + b) * c"
        assert format_expr(BinOp("+", a, BinOp("*", b, c))) == "a + b * c"

    def test_right_associative_subtraction(self):
        a, b, c = (ScalarVar(x) for x in "abc")
        assert format_expr(BinOp("-", a, BinOp("-", b, c))) == "a - (b - c)"

    def test_division_grouping(self):
        a, b, c = (ScalarVar(x) for x in "abc")
        assert format_expr(BinOp("/", a, BinOp("*", b, c))) == "a / (b * c)"

    def test_integral_constants_printed_clean(self):
        assert format_expr(Const(2.0)) == "2"
        assert format_expr(Const(0.25)) == "0.25"

    def test_call_formatting(self):
        expr = Call("sqrt", (ScalarVar("x"),))
        assert format_expr(expr) == "sqrt(x)"

    def test_nest_structure(self):
        b = NestBuilder("t", "demo")
        I = b.loop("I", 1, "N")
        b.assign(b.ref("A", I), b.ref("A", I) + 1.0)
        text = format_nest(b.build())
        lines = text.splitlines()
        assert lines[0] == "! demo"
        assert lines[1] == "DO I = 1, N"
        assert lines[-1] == "ENDDO"

    def test_step_printed(self):
        from repro.unroll.transform import unroll_and_jam

        b = NestBuilder("t")
        I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
        b.assign(b.ref("A", I, J), 1.0)
        main = unroll_and_jam(b.build(), (3, 0)).main
        assert "DO I = 0, N, 4" in format_nest(main)

class TestValidate:
    def test_valid_nest_passes(self):
        b = NestBuilder("ok")
        I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
        b.assign(b.ref("A", I, J), b.ref("B", J, I) + 1.0)
        validate_nest(b.build())

    def test_miv_subscript_flagged(self):
        ref = ArrayRef("A", (Subscript.of({"I": 1, "J": 1}),))
        problems = check_siv(ref)
        assert problems and "SIV" in problems[0]

    def test_non_separable_flagged(self):
        ref = ArrayRef("A", (Subscript.of({"I": 1}), Subscript.of({"I": 1})))
        problems = check_separable(ref)
        assert problems and "not separable" in problems[0]

    def test_unknown_index_rejected(self):
        b = NestBuilder("bad")
        I = b.loop("I", 0, "N")
        b.assign(b.ref("A", I), 1.0)
        nest = b.build()
        from repro.ir.nodes import LoopNest, Statement

        rogue = Statement(ArrayRef("A", (Subscript.of({"Z": 1}),)),
                          Const(1.0))
        broken = LoopNest(nest.name, nest.loops, (rogue,))
        with pytest.raises(ValidationError):
            validate_nest(broken)

    def test_inconsistent_rank_rejected(self):
        b = NestBuilder("rank")
        I = b.loop("I", 0, "N")
        b.assign(b.ref("A", I), b.ref("A", I, I) + 1.0)
        with pytest.raises(ValidationError):
            validate_nest(b.build(), require_siv=False)

    def test_is_siv_separable_predicate(self):
        b = NestBuilder("afold")
        I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
        b.assign(b.ref("A", I), b.ref("A", I) + b.ref("B", I + J))
        assert not is_siv_separable(b.build())

    def test_duplicate_indices_rejected(self):
        from repro.ir.nodes import Bound, Loop, LoopNest, Statement

        loops = (Loop("I", Bound(0), Bound(5)), Loop("I", Bound(0), Bound(5)))
        body = (Statement(ArrayRef("A", (Subscript.of({"I": 1}),)),
                          Const(1.0)),)
        with pytest.raises(ValidationError):
            validate_nest(LoopNest("dup", loops, body))

class TestReport:
    def test_reuse_summary_lists_sets(self):
        from repro.kernels.suite import jacobi

        text = reuse_summary(jacobi(12).nest)
        assert "UGS[B" in text and "g_T=" in text

    def test_optimization_report_sections(self):
        from repro.kernels.suite import dmxpy1

        text = optimization_report(dmxpy1(24).nest, dec_alpha(), bound=3)
        for marker in ("unroll-and-jam report", "machine balance",
                       "chosen unroll vector", "scheduled body",
                       "transformed"):
            assert marker in text, marker

    def test_quiet_report_omits_code(self):
        from repro.kernels.suite import dmxpy1

        text = optimization_report(dmxpy1(24).nest, dec_alpha(), bound=3,
                                   show_code=False)
        assert "DO " not in text
