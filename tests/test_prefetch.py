"""Software-prefetch pass tests: plan structure and simulated effect."""

from fractions import Fraction

import pytest

from repro.ir.builder import NestBuilder
from repro.kernels.suite import dmxpy1, jacobi
from repro.machine import MachineModel, dec_alpha
from repro.machine.simulator import simulate
from repro.unroll.prefetch import format_plan, plan_prefetch, prefetch_distance

def streaming_nest():
    b = NestBuilder("stream")
    I = b.loop("I", 0, "N")
    b.assign(b.ref("A", I), b.ref("B", I) * 2.0 + b.ref("C", I))
    return b.build()

def column_walk_nest():
    # the innermost loop (J) drives the *second* array dimension: stride-N
    # walks with no spatial locality, so every line is touched once
    b = NestBuilder("col")
    I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
    b.assign(b.ref("A", I, J), b.ref("B", I, J) + 1.0)
    return b.build()

class TestPlan:
    def test_loads_planned_stores_not(self):
        plan = plan_prefetch(streaming_nest(), dec_alpha())
        from repro.ir.matrixform import occurrences

        occs = {o.position: o for o in occurrences(streaming_nest())}
        arrays = {occs[c.position].array for c in plan.candidates}
        assert arrays == {"B", "C"}

    def test_spatial_streams_marked_per_line(self):
        plan = plan_prefetch(streaming_nest(), dec_alpha())
        assert all(c.per_line for c in plan.candidates)

    def test_column_walk_every_iteration(self):
        plan = plan_prefetch(column_walk_nest(), dec_alpha())
        b_cands = [c for c in plan.candidates]
        assert len(b_cands) == 1
        assert not b_cands[0].per_line

    def test_invariant_streams_skipped(self):
        b = NestBuilder("inv")
        J, I = b.loops(("J", 0, "N"), ("I", 0, "N"))
        b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
        plan = plan_prefetch(b.build(), dec_alpha())
        arrays = set()
        from repro.ir.matrixform import occurrences

        occs = {o.position: o for o in occurrences(b.build())}
        for c in plan.candidates:
            arrays.add(occs[c.position].array)
        assert "A" not in arrays

    def test_distance_covers_latency(self):
        nest = streaming_nest()
        machine = dec_alpha()
        d = prefetch_distance(nest, machine)
        # 3 memory ops per iteration, miss penalty 24 -> about 8 iterations
        assert 4 <= d <= 24

    def test_format(self):
        text = format_plan(plan_prefetch(streaming_nest(), dec_alpha()))
        assert "PREFETCH" in text

class TestSimulatedEffect:
    def test_prefetch_reduces_stalls_on_column_walk(self):
        nest = column_walk_nest()
        shapes = {"A": (68, 68), "B": (68, 68)}
        machine = dec_alpha()
        plain = simulate(nest, machine, {"N": 63}, shapes)
        fetched = simulate(nest, machine, {"N": 63}, shapes,
                           software_prefetch=True)
        assert fetched.cycles < plain.cycles
        assert fetched.stall_misses < plain.stall_misses
        assert fetched.prefetch_ops > 0

    def test_prefetch_costs_issue_slots(self):
        nest = column_walk_nest()
        shapes = {"A": (68, 68), "B": (68, 68)}
        machine = dec_alpha()
        plain = simulate(nest, machine, {"N": 63}, shapes)
        fetched = simulate(nest, machine, {"N": 63}, shapes,
                           software_prefetch=True)
        assert fetched.memory_ops > plain.memory_ops

    def test_small_working_set_only_cold_misses_helped(self):
        nest = streaming_nest()
        shapes = {"A": (40,), "B": (40,), "C": (40,)}
        machine = dec_alpha()
        warm = simulate(nest, machine, {"N": 30}, shapes)
        fetched = simulate(nest, machine, {"N": 30}, shapes,
                           software_prefetch=True)
        # prefetching still hides the cold misses, at instruction cost
        assert fetched.memory_ops > warm.memory_ops
        assert fetched.cycles <= warm.cycles

    @pytest.mark.parametrize("factory", [jacobi, dmxpy1],
                             ids=lambda f: f.__name__)
    def test_prefetch_helps_memory_bound_kernels(self, factory):
        kernel = factory(96)
        machine = dec_alpha()
        plain = simulate(kernel.nest, machine, kernel.bindings, kernel.shapes)
        fetched = simulate(kernel.nest, machine, kernel.bindings,
                           kernel.shapes, software_prefetch=True)
        assert fetched.cycles < plain.cycles
