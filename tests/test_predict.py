"""The learned fast tier (``repro.predict``) end to end.

Covers the subsystem's contracts layer by layer: the featurizer is
deterministic across every nest shape ``coerce_nest`` accepts; the
trainer's artifact round-trips through ``save_artifact``/``load_model``
bit-for-bit in behavior and refuses to ship below the accuracy floor;
the predictor rejects malformed or mismatched artifacts loudly; the
wire protocol carries ``tier`` as v2 header flag bits without touching
the frozen v1 shape; and the server serves ``tier=fast`` answers,
echoes ``tier=exact``, falls back on low-confidence ``tier=auto``
(never returning a low-confidence fast answer), and validates every
fast answer against the exact engine asynchronously.

Also rides along: the client's 429 backoff with and without a
``Retry-After`` hint, and the ``ServeClient`` deprecation warning.
"""

from __future__ import annotations

import json
import random
import time
import warnings

import pytest

from repro import api
from repro.corpus import CorpusConfig
from repro.corpus.generator import generate_corpus
from repro.engine import AnalysisEngine
from repro.predict.features import (FEATURE_SCHEMA_VERSION, featurize,
                                    feature_names)
from repro.predict.model import (ModelFormatError, Prediction,
                                 UnrollPredictor, default_model_path,
                                 load_default_model, load_model)
from repro.predict.train import (Example, TrainConfig, TrainError,
                                 build_artifact, fit_heads, save_artifact)
from repro.serve import protocol
from repro.serve.batcher import BatchConfig
from repro.serve.client import Client, ServeClient
from repro.serve.protocol import ProtocolError
from repro.serve.server import ServeConfig, ServerThread

JACOBI_SOURCE = (
    "DO I = 1, N\n"
    "  DO J = 1, N\n"
    "    A(I, J) = (B(I-1, J) + B(I+1, J) + B(I, J-1) + B(I, J+1))"
    " * 0.25\n"
    "  ENDDO\n"
    "ENDDO"
)

def _server(**kwargs) -> ServerThread:
    batch = kwargs.pop("batch", None) or BatchConfig(deadline_s=0.005)
    config = ServeConfig(port=0, batch=batch, **kwargs)
    return ServerThread(config, AnalysisEngine())

def _counters(client: Client) -> dict:
    _status, doc = client.metrics()
    return doc["metrics"]["counters"]

def _wait_counter(client: Client, name: str, minimum: int = 1,
                  timeout_s: float = 8.0) -> dict:
    """Poll /metrics until ``name`` reaches ``minimum`` (async
    validation lands on the event loop, not in the request)."""
    deadline = time.monotonic() + timeout_s
    while True:
        counters = _counters(client)
        if counters.get(name, 0) >= minimum:
            return counters
        if time.monotonic() > deadline:
            return counters
        time.sleep(0.05)

# -- the featurizer (satellite: determinism across nest shapes) ---------------

class TestFeaturizer:
    def test_schema_is_stable(self):
        names = feature_names()
        assert len(names) == len(set(names))  # no duplicate features
        machine = api.coerce_machine("alpha")
        vector = featurize(api.coerce_nest("jacobi"), machine)
        assert len(vector) == len(names)
        assert all(isinstance(value, float) for value in vector)
        assert FEATURE_SCHEMA_VERSION == 1

    def test_same_nest_every_shape_same_features(self, tmp_path):
        """Source string, serialized dict, file path, and kernel name
        all coerce to the same interned nest -- and must featurize (and
        therefore predict) identically."""
        path = tmp_path / "jacobi.nest"
        path.write_text(JACOBI_SOURCE)
        shapes = [
            api.coerce_nest(JACOBI_SOURCE),
            api.coerce_nest({"name": "jacobi", "source": JACOBI_SOURCE}),
            api.coerce_nest(str(path)),
        ]
        machine = api.coerce_machine("alpha")
        vectors = [featurize(nest, machine) for nest in shapes]
        assert vectors[0] == vectors[1] == vectors[2]

        predictor = load_default_model()
        assert predictor is not None, "default artifact must be committed"
        predictions = [predictor.predict(nest, machine) for nest in shapes]
        assert predictions[0] == predictions[1] == predictions[2]

    def test_featurize_is_pure(self):
        nest = api.coerce_nest("jacobi")
        machine = api.coerce_machine("alpha")
        assert featurize(nest, machine) == featurize(nest, machine)
        # Parameters are features: changing them must move the vector.
        assert featurize(nest, machine, bound=3) != \
            featurize(nest, machine, bound=8)

# -- the trainer --------------------------------------------------------------

def _synthetic_examples(count: int = 32) -> list[Example]:
    """Tiny labeled set over real corpus nests (labels synthetic -- the
    round-trip tests care about determinism, not accuracy)."""
    machine = api.coerce_machine("alpha")
    nests = [nest for nest in
             generate_corpus(CorpusConfig(routines=count * 2, seed=1997))
             if nest.depth == 2][:count]
    assert len(nests) >= 8
    return [
        Example(name=nest.name,
                features=featurize(nest, machine),
                label=(2, 0) if index % 2 else (4, 0),
                depth=2, machine="alpha")
        for index, nest in enumerate(nests)
    ]

class TestTrainer:
    def test_artifact_round_trips_through_disk(self, tmp_path):
        config = TrainConfig(epochs=5)
        examples = _synthetic_examples()
        heads = fit_heads(examples, config)
        artifact = build_artifact(heads, config,
                                  {"held_out_top1": 0.99})
        probe = UnrollPredictor(artifact)

        path = save_artifact(artifact, tmp_path / "model.json")
        loaded = load_model(path)
        assert loaded.model_id == probe.model_id
        assert loaded.model_id.startswith("predict-v1-")
        for example in examples:
            a = probe.predict_vector(example.features, example.depth)
            b = loaded.predict_vector(example.features, example.depth)
            assert a == b
            assert 0.0 < b.confidence <= 1.0

    def test_fit_is_seeded(self):
        config = TrainConfig(epochs=3)
        examples = _synthetic_examples(16)
        assert fit_heads(examples, config) == fit_heads(examples, config)

    def test_save_refuses_below_accuracy_floor(self, tmp_path):
        config = TrainConfig(epochs=2)
        examples = _synthetic_examples(16)
        artifact = build_artifact(fit_heads(examples, config), config,
                                  {"held_out_top1": 0.40})
        target = tmp_path / "weak.json"
        with pytest.raises(TrainError, match="below the accuracy floor"):
            save_artifact(artifact, target)
        assert not target.exists()
        # --force ships it anyway (experimentation path).
        save_artifact(artifact, target, force=True)
        assert load_model(target).metrics["held_out_top1"] == 0.40

    def test_committed_default_model_clears_the_floor(self):
        predictor = load_default_model()
        assert predictor is not None
        assert predictor.metrics["held_out_top1"] >= 0.85
        assert predictor.supports_depth(1)
        assert predictor.supports_depth(2)

# -- artifact validation ------------------------------------------------------

class TestArtifactFormat:
    @pytest.fixture()
    def artifact(self):
        return json.loads(default_model_path().read_text())

    def test_wrong_format_version(self, artifact):
        artifact["format_version"] = 99
        with pytest.raises(ModelFormatError, match="format"):
            UnrollPredictor(artifact)

    def test_wrong_feature_schema_version(self, artifact):
        artifact["feature_schema"]["version"] = 0
        with pytest.raises(ModelFormatError, match="schema"):
            UnrollPredictor(artifact)

    def test_mismatched_feature_names(self, artifact):
        artifact["feature_schema"]["names"][0] = "not-a-real-feature"
        with pytest.raises(ModelFormatError, match="feature names"):
            UnrollPredictor(artifact)

    def test_missing_depth_heads(self, artifact):
        artifact["depths"] = {}
        with pytest.raises(ModelFormatError, match="depth heads"):
            UnrollPredictor(artifact)

    def test_malformed_weights(self, artifact):
        head = artifact["depths"]["2"]
        head["weights"] = head["weights"][:1]  # class count mismatch
        with pytest.raises(ModelFormatError, match="weights"):
            UnrollPredictor(artifact)

    def test_unknown_algorithm(self, artifact):
        artifact["algorithm"] = "gradient-boosted-llm"
        with pytest.raises(ModelFormatError, match="algorithm"):
            UnrollPredictor(artifact)

    def test_load_model_bad_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ModelFormatError, match="JSON"):
            load_model(path)
        with pytest.raises(ModelFormatError, match="cannot read"):
            load_model(tmp_path / "absent.json")

# -- the wire: tier as v2 header flag bits ------------------------------------

class TestProtocolTier:
    def test_tierless_document_has_no_tier_anywhere(self):
        encoded = protocol.encode_request_frame(
            "optimize", {"nest": "jacobi"})
        frame, doc = protocol.decode_frame(encoded)
        assert not frame.flags & (protocol.FLAG_TIER_FAST
                                  | protocol.FLAG_TIER_AUTO)
        assert "tier" not in doc
        spec, _frame = protocol.parse_frame_request(encoded)
        assert spec.tier is None

    @pytest.mark.parametrize("tier,flag", [
        ("fast", protocol.FLAG_TIER_FAST),
        ("auto", protocol.FLAG_TIER_AUTO),
    ])
    def test_fast_and_auto_ride_in_the_header(self, tier, flag):
        encoded = protocol.encode_request_frame(
            "optimize", {"nest": "jacobi", "tier": tier})
        frame, doc = protocol.decode_frame(encoded)
        assert frame.flags & flag
        assert "tier" not in doc  # moved out of the payload...
        spec, _frame = protocol.parse_frame_request(encoded)
        assert spec.tier == tier  # ...and restored on parse

    def test_explicit_exact_stays_a_payload_field(self):
        encoded = protocol.encode_request_frame(
            "optimize", {"nest": "jacobi", "tier": "exact"})
        frame, doc = protocol.decode_frame(encoded)
        assert not frame.flags & (protocol.FLAG_TIER_FAST
                                  | protocol.FLAG_TIER_AUTO)
        assert doc["tier"] == "exact"
        spec, _frame = protocol.parse_frame_request(encoded)
        assert spec.tier == "exact"

    def test_cache_key_separates_tiers(self):
        """A tier=fast frame's payload bytes equal the tier-less
        frame's (the tier moved into the header), so the response cache
        key must fold the flag bits in or fast answers would poison
        exact ones."""
        plain = protocol.peek_frame(protocol.encode_request_frame(
            "optimize", {"nest": "jacobi"}))
        fast = protocol.peek_frame(protocol.encode_request_frame(
            "optimize", {"nest": "jacobi", "tier": "fast"}))
        assert plain.payload_bytes == fast.payload_bytes
        assert protocol.request_cache_key(plain) != \
            protocol.request_cache_key(fast)

    def test_both_tier_bits_is_a_bad_frame(self):
        encoded = protocol._encode_frame(
            protocol.FRAME_REQUEST, protocol._KIND_CODES["optimize"], 0,
            None, {"nest": "jacobi"},
            extra_flags=protocol.FLAG_TIER_FAST | protocol.FLAG_TIER_AUTO)
        with pytest.raises(ProtocolError, match="both tier flag bits"):
            protocol.parse_frame_request(encoded)

    def test_tier_in_header_and_payload_is_a_bad_frame(self):
        encoded = protocol._encode_frame(
            protocol.FRAME_REQUEST, protocol._KIND_CODES["optimize"], 0,
            None, {"nest": "jacobi", "tier": "fast"},
            extra_flags=protocol.FLAG_TIER_FAST)
        with pytest.raises(ProtocolError, match="both header flags"):
            protocol.parse_frame_request(encoded)

    def test_document_tier_validation(self):
        with pytest.raises(ProtocolError, match="one of"):
            protocol.spec_from_document(
                "optimize", {"nest": "jacobi", "tier": "warp"}, "alpha")
        with pytest.raises(ProtocolError, match="only to optimize"):
            protocol.spec_from_document(
                "analyze", {"nest": "jacobi", "tier": "fast"}, "alpha")
        # An explicit exact is harmless on any verb.
        spec = protocol.spec_from_document(
            "analyze", {"nest": "jacobi", "tier": "exact"}, "alpha")
        assert spec.tier == "exact"

# -- serving ------------------------------------------------------------------

class TestServeTiers:
    def test_fast_tier_end_to_end(self):
        predictor = load_default_model()
        machine = api.coerce_machine("alpha")
        expected = predictor.predict(api.coerce_nest("jacobi"), machine)
        with _server() as handle:
            client = Client(port=handle.port, transport="json")
            status, doc = client.optimize("jacobi", tier="fast")
            assert status == 200 and doc["ok"]
            assert doc["tier"] == "fast"
            assert tuple(doc["unroll"]) == expected.unroll
            assert doc["confidence"] == pytest.approx(expected.confidence)
            assert doc["model_id"] == predictor.model_id
            assert doc["structural_key"]
            # The async exact validation lands in the counters.
            counters = _wait_counter(client, "predict.validated")
            assert counters["predict.fast_served"] >= 1
            assert counters["predict.validated"] >= 1
            assert counters["predict.validated"] >= \
                counters.get("predict.mismatch", 0)
            client.close()

    def test_exact_tier_is_echoed(self):
        with _server() as handle:
            client = Client(port=handle.port, transport="json")
            status, doc = client.optimize("jacobi", bound=4,
                                          tier="exact")
            plain = client.optimize("afold", bound=4)
            client.close()
        assert status == 200 and doc["tier"] == "exact"
        assert "confidence" not in doc
        assert "tier" not in plain[1]  # tier-less stays frozen-v1 shaped

    def test_auto_never_serves_low_confidence(self):
        """Forced-low-confidence: with the floor above any reachable
        softmax probability, tier=auto must always fall back to the
        exact engine (a fast answer below the floor is the one
        forbidden outcome)."""
        with _server(auto_confidence=1.1) as handle:
            client = Client(port=handle.port, transport="json")
            for name in ("jacobi", "afold"):
                status, doc = client.optimize(name, tier="auto")
                assert status == 200 and doc["ok"]
                assert doc["tier"] == "exact"
                assert "confidence" not in doc
            counters = _counters(client)
            client.close()
        assert counters["predict.low_confidence"] >= 2
        assert counters.get("predict.fast_served", 0) == 0

    def test_auto_serves_fast_above_floor(self):
        with _server(auto_confidence=0.0) as handle:
            client = Client(port=handle.port, transport="json")
            status, doc = client.optimize("jacobi", tier="auto")
            client.close()
        assert status == 200 and doc["tier"] == "fast"

    def test_predict_disabled_falls_back_to_exact(self):
        with _server(predict=False) as handle:
            client = Client(port=handle.port, transport="json")
            status, doc = client.optimize("jacobi", tier="fast")
            _h, health = client.healthz()
            counters = _counters(client)
            client.close()
        assert status == 200 and doc["tier"] == "exact"
        assert "confidence" not in doc
        assert counters["predict.unsupported"] >= 1
        assert health["tiers"]["supported"] == ["exact"]
        assert health["tiers"]["model"] is None

    def test_health_advertises_tiers_and_model(self):
        with _server() as handle:
            client = Client(port=handle.port, transport="json")
            _status, health = client.healthz()
            client.close()
        tiers = health["tiers"]
        assert tiers["supported"] == ["exact", "fast", "auto"]
        assert tiers["model"]["model_id"].startswith("predict-v1-")
        assert tiers["auto_confidence"] > 0

    def test_fast_tier_binary_json_parity(self):
        """The same tier=fast request over both transports yields the
        same document -- the header flag bits change nothing."""
        with _server() as handle:
            json_client = Client(port=handle.port, transport="json")
            frame_client = Client(port=handle.port, transport="binary")
            status_j, doc_j = json_client.optimize("jacobi", tier="fast")
            status_b, doc_b = frame_client.optimize("jacobi", tier="fast")
            json_client.close()
            frame_client.close()
        assert status_j == status_b == 200
        assert doc_j == doc_b

    def test_unsupported_params_fall_back(self):
        """Parameters outside the trained space go to the exact engine
        (the model only ever answers what it was trained on)."""
        with _server() as handle:
            client = Client(port=handle.port, transport="json")
            status, doc = client.optimize("jacobi", tier="fast",
                                          max_loops=1)
            counters = _counters(client)
            client.close()
        assert status == 200 and doc["tier"] == "exact"
        assert counters["predict.unsupported"] >= 1

# -- the api facade -----------------------------------------------------------

class TestPredictFacade:
    def test_predict_unroll_matches_default_model(self):
        prediction = api.predict_unroll("jacobi")
        assert isinstance(prediction, Prediction)
        predictor = load_default_model()
        expected = predictor.predict(api.coerce_nest("jacobi"),
                                     api.coerce_machine("alpha"))
        assert prediction == expected

    def test_predict_unroll_accepts_model_path(self):
        prediction = api.predict_unroll("jacobi",
                                        model=default_model_path())
        assert prediction is not None
        assert prediction.model_id == load_default_model().model_id

# -- client 429 backoff (satellite) -------------------------------------------

class _Scripted429Client(Client):
    """A Client whose transport is a canned status script -- isolates
    the retry/backoff loop in ``call`` from any socket."""

    def __init__(self, statuses: list[int], headers: dict | None = None,
                 **kwargs):
        super().__init__(port=1, **kwargs)
        self._script = list(statuses)
        self._canned_headers = dict(headers or {})

    def _call_once(self, kind, nest, machine, params):
        self.last_headers = dict(self._canned_headers)
        status = self._script.pop(0) if self._script else 200
        return status, {"ok": status == 200, "status": status}

@pytest.fixture()
def record_sleep(monkeypatch):
    slept: list[float] = []
    monkeypatch.setattr(time, "sleep", slept.append)
    monkeypatch.setattr(random, "random", lambda: 1.0)  # jitter -> 1.0x
    return slept

class TestClientBackoff:
    def test_default_backoff_without_retry_after(self, record_sleep):
        """No Retry-After header: capped exponential from
        ``backoff_base_s``, doubling per retry."""
        client = _Scripted429Client([429, 429, 429, 200],
                                    backoff_base_s=0.05,
                                    backoff_cap_s=2.0)
        status, doc = client.optimize("jacobi")
        assert status == 200 and doc["ok"]
        assert client.last_retries == 3
        assert record_sleep == pytest.approx([0.05, 0.10, 0.20])

    def test_default_backoff_hits_the_cap(self, record_sleep):
        client = _Scripted429Client([429] * 4 + [200],
                                    backoff_base_s=0.6,
                                    backoff_cap_s=1.0)
        status, _doc = client.optimize("jacobi")
        assert status == 200
        # 0.6, 1.2->cap, 2.4->cap, 4.8->cap
        assert record_sleep == pytest.approx([0.6, 1.0, 1.0, 1.0])

    def test_retry_after_hint_wins(self, record_sleep):
        client = _Scripted429Client([429, 429, 200],
                                    headers={"retry-after": "0.25"},
                                    backoff_base_s=0.05)
        status, _doc = client.optimize("jacobi")
        assert status == 200
        assert record_sleep == pytest.approx([0.25, 0.25])

    def test_retry_after_hint_is_capped_too(self, record_sleep):
        client = _Scripted429Client([429, 200],
                                    headers={"retry-after": "30"},
                                    backoff_cap_s=2.0)
        status, _doc = client.optimize("jacobi")
        assert status == 200
        assert record_sleep == pytest.approx([2.0])

    def test_jitter_spans_half_to_full(self, monkeypatch):
        slept: list[float] = []
        monkeypatch.setattr(time, "sleep", slept.append)
        monkeypatch.setattr(random, "random", lambda: 0.0)
        client = _Scripted429Client([429, 200], backoff_base_s=0.2)
        client.optimize("jacobi")
        assert slept == pytest.approx([0.1])  # 0.2 * (0.5 + 0.5*0)

    def test_retry_budget_exhausts(self, record_sleep):
        client = _Scripted429Client([429] * 10, max_retries=2)
        status, doc = client.optimize("jacobi")
        assert status == 429 and not doc["ok"]
        assert client.last_retries == 2
        assert len(record_sleep) == 2

# -- ServeClient deprecation (satellite) --------------------------------------

class TestDeprecatedAlias:
    def test_serve_client_warns_once(self):
        api._WARNED.discard("repro.serve.client.ServeClient")
        with pytest.warns(DeprecationWarning,
                          match="ServeClient is deprecated"):
            ServeClient(port=1)
        # Once per process: the second construction is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ServeClient(port=1)

    def test_alias_still_is_a_client(self):
        assert issubclass(ServeClient, Client)
