"""Tests for the unroll-and-jam source transformation and safety bounds."""

import numpy as np
import pytest

from repro.ir.builder import NestBuilder
from repro.ir.interp import run_nest, run_unrolled
from repro.ir.nodes import ArrayRef, ScalarVar
from repro.ir.printer import format_nest
from repro.unroll.safety import UNBOUNDED, max_safe_unroll, safe_unroll_bounds
from repro.unroll.transform import TransformError, unroll_and_jam

def paper_intro_nest():
    b = NestBuilder("intro")
    J, I = b.loops(("J", 0, "N"), ("I", 0, "M"))
    b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
    return b.build()

def matmul():
    b = NestBuilder("mm")
    J, I, K = b.loops(("J", 0, "N"), ("I", 0, "N"), ("K", 0, "N"))
    b.assign(b.ref("C", I, J),
             b.ref("C", I, J) + b.ref("A", I, K) * b.ref("B", K, J))
    return b.build()

class TestTransformStructure:
    def test_paper_intro_example(self):
        """Unrolling J by 1 reproduces the section 3.3 transformed loop."""
        unrolled = unroll_and_jam(paper_intro_nest(), (1, 0))
        main = unrolled.main
        assert main.loops[0].step == 2
        assert main.loops[1].step == 1
        assert len(main.body) == 2
        # Second copy writes A(J+1).
        second = main.body[1]
        assert isinstance(second.lhs, ArrayRef)
        assert second.lhs.subscripts[0].const == 1

    def test_copies_count(self):
        unrolled = unroll_and_jam(matmul(), (2, 3, 0))
        assert unrolled.copies == 12
        assert len(unrolled.main.body) == 12

    def test_copy_order_lexicographic(self):
        unrolled = unroll_and_jam(matmul(), (1, 1, 0))
        # loop order is (J, I); C(I,J) has J in subscript 1, I in subscript 0
        offsets = [(s.lhs.subscripts[1].const, s.lhs.subscripts[0].const)
                   for s in unrolled.main.body]
        assert offsets == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_scalar_temps_renamed(self):
        b = NestBuilder("temp")
        I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
        b.assign(b.scalar("t"), b.ref("B", I, J))
        b.assign(b.ref("A", I, J), b.scalar("t") * b.scalar("alpha"))
        unrolled = unroll_and_jam(b.build(), (1, 0))
        names = [s.lhs.name for s in unrolled.main.body
                 if isinstance(s.lhs, ScalarVar)]
        assert names[0] == "t"
        assert names[1] != "t" and names[1].startswith("t__")
        # loop-invariant input scalar is NOT renamed
        last_rhs = unrolled.main.body[-1].rhs
        assert "alpha" in format_nest(unrolled.main)

    def test_rejects_bad_vectors(self):
        nest = paper_intro_nest()
        with pytest.raises(TransformError):
            unroll_and_jam(nest, (0, 1))
        with pytest.raises(TransformError):
            unroll_and_jam(nest, (1,))
        with pytest.raises(TransformError):
            unroll_and_jam(nest, (-1, 0))

    def test_printer_roundtrip_smoke(self):
        text = format_nest(unroll_and_jam(matmul(), (1, 0, 0)).main)
        assert "DO J" in text and ", 2" in text

class TestTransformSemantics:
    @pytest.mark.parametrize("u", [(1, 0, 0), (2, 0, 0), (1, 2, 0), (3, 3, 0)])
    @pytest.mark.parametrize("n", [5, 7])
    def test_matmul_preserved(self, u, n):
        nest = matmul()
        rng = np.random.default_rng(42)
        base = {
            "A": rng.standard_normal((n + 1, n + 1)),
            "B": rng.standard_normal((n + 1, n + 1)),
            "C": np.zeros((n + 1, n + 1)),
        }
        ref = {k: v.copy() for k, v in base.items()}
        out = {k: v.copy() for k, v in base.items()}
        run_nest(nest, {"N": n}, ref)
        run_unrolled(nest, u, {"N": n}, out)
        assert np.allclose(ref["C"], out["C"])

class TestSafety:
    def test_no_deps_unbounded(self):
        # A(I,J) = B(I,J): no cross-iteration dependence at all.
        b = NestBuilder("copy")
        I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
        b.assign(b.ref("A", I, J), b.ref("B", I, J))
        assert max_safe_unroll(b.build(), 0) == UNBOUNDED

    def test_forward_dep_unbounded(self):
        # A(I,J) = A(I-1,J): carried by I with positive inner part (zero):
        # jamming preserves it for any unroll amount.
        b = NestBuilder("fwd")
        I, J = b.loops(("I", 1, "N"), ("J", 0, "N"))
        b.assign(b.ref("A", I, J), b.ref("A", I - 1, J) + 1.0)
        assert max_safe_unroll(b.build(), 0) == UNBOUNDED

    def test_interchange_preventing_dep_blocks(self):
        # A(I,J) = A(I-1,J+1): distance (1,-1) -- the classic (<,>) pattern.
        b = NestBuilder("skew")
        I, J = b.loops(("I", 1, "N"), ("J", 0, "N"))
        b.assign(b.ref("A", I, J), b.ref("A", I - 1, J + 1) + 1.0)
        assert max_safe_unroll(b.build(), 0) == 0

    def test_distance_two_allows_one(self):
        # Distance (2,-1): blocks of 2 iterations never contain both ends.
        b = NestBuilder("skew2")
        I, J = b.loops(("I", 2, "N"), ("J", 0, "N"))
        b.assign(b.ref("A", I, J), b.ref("A", I - 2, J + 1) + 1.0)
        assert max_safe_unroll(b.build(), 0) == 1

    def test_safety_semantics_on_skewed_dep(self):
        """The bound from test above is tight: u=1 must preserve semantics."""
        b = NestBuilder("skew2")
        I, J = b.loops(("I", 2, 9), ("J", 0, 8))
        b.assign(b.ref("A", I, J), b.ref("A", I - 2, J + 1) + 1.0)
        nest = b.build()
        ref = {"A": np.arange(110.0).reshape(10, 11)}
        out = {"A": ref["A"].copy()}
        run_nest(nest, {}, ref)
        run_unrolled(nest, (1, 0), {}, out)
        assert np.array_equal(ref["A"], out["A"])

    def test_input_deps_never_constrain(self):
        b = NestBuilder("reads")
        I, J = b.loops(("I", 1, "N"), ("J", 0, "N"))
        b.assign(b.ref("C", I, J), b.ref("A", I - 1, J + 1) + b.ref("A", I, J))
        assert max_safe_unroll(b.build(), 0) == UNBOUNDED

    def test_bounds_vector(self):
        b = NestBuilder("skew")
        I, J, K = b.loops(("I", 1, "N"), ("J", 0, "N"), ("K", 0, "N"))
        b.assign(b.ref("A", I, J, K), b.ref("A", I - 1, J + 1, K) + 1.0)
        bounds = safe_unroll_bounds(b.build())
        assert bounds[0] == 0
        assert bounds[1] == UNBOUNDED
        assert bounds[2] == 0  # innermost pinned by convention
