"""Tests for the IR node layer: subscripts, expressions, nests."""

import pytest

from repro.ir.builder import NestBuilder
from repro.ir.nodes import (
    ArrayRef,
    BinOp,
    Bound,
    Const,
    ScalarVar,
    Subscript,
    expr_flops,
    shift_expr,
)

def simple_nest():
    b = NestBuilder("axpy2d")
    I, J = b.loops(("I", 0, "N"), ("J", 0, "M"))
    b.assign(b.ref("A", I, J),
             b.ref("A", I, J) + b.scalar("alpha") * b.ref("B", I, J + 1))
    return b.build()

class TestSubscript:
    def test_of_normalizes_and_drops_zero_coeffs(self):
        s = Subscript.of({"I": 1, "J": 0}, const=2)
        assert s.loop_coeffs == (("I", 1),)
        assert s.const == 2

    def test_coeff_lookup(self):
        s = Subscript.of({"I": 3})
        assert s.coeff("I") == 3
        assert s.coeff("J") == 0

    def test_shift(self):
        s = Subscript.of({"I": 2}, const=1)
        assert s.shifted({"I": 3}).const == 7
        assert s.shifted({"J": 3}) is s

    def test_evaluate_with_params(self):
        s = Subscript.of({"I": 1}, const=-1, param_coeffs={"N": 1})
        assert s.evaluate({"I": 4, "N": 10}) == 13

    def test_pretty(self):
        assert Subscript.of({"I": 1}, const=1).pretty() == "I+1"
        assert Subscript.of({"I": -1}).pretty() == "-I"
        assert Subscript.of({}, const=0).pretty() == "0"

class TestExpressions:
    def test_binop_validates_operator(self):
        with pytest.raises(ValueError):
            BinOp("%", Const(1.0), Const(2.0))

    def test_flop_count(self):
        nest = simple_nest()
        assert nest.flops_per_iteration() == 2  # one + and one *

    def test_shift_expr_renames_temps(self):
        expr = BinOp("+", ScalarVar("t"), ScalarVar("alpha"))
        shifted = shift_expr(expr, {}, renames={"t": "t_1"})
        assert shifted.left == ScalarVar("t_1")
        assert shifted.right == ScalarVar("alpha")

    def test_shift_expr_moves_subscripts(self):
        ref = ArrayRef("A", (Subscript.of({"I": 1}),))
        shifted = shift_expr(ref, {"I": 2})
        assert shifted.subscripts[0].const == 2

class TestBounds:
    def test_bound_of_int_str(self):
        assert Bound.of(4).evaluate({}) == 4
        assert Bound.of("N").evaluate({"N": 9}) == 9

    def test_bound_plus(self):
        assert Bound.of("N").plus(-1).evaluate({"N": 9}) == 8

    def test_bound_of_rejects_float(self):
        with pytest.raises(TypeError):
            Bound.of(1.5)

class TestNest:
    def test_structure(self):
        nest = simple_nest()
        assert nest.depth == 2
        assert nest.index_names == ("I", "J")
        assert nest.loop_position("J") == 1
        assert nest.array_names() == ("A", "B")

    def test_parameters(self):
        nest = simple_nest()
        assert set(nest.parameters()) == {"N", "M"}

    def test_scalar_temporaries_empty_when_only_reads(self):
        assert simple_nest().scalar_temporaries() == ()

    def test_builder_requires_loops_and_body(self):
        with pytest.raises(ValueError):
            NestBuilder("x").build()
        b = NestBuilder("y")
        b.loop("I", 0, 4)
        with pytest.raises(ValueError):
            b.build()

class TestBuilderIndexArithmetic:
    def test_index_addition(self):
        b = NestBuilder("t")
        I = b.loop("I", 0, 7)
        ref = b.ref("A", I + 3).node
        assert ref.subscripts[0].const == 3

    def test_index_negation_and_scaling(self):
        b = NestBuilder("t")
        I = b.loop("I", 0, 7)
        ref = b.ref("A", 2 * I - 1, -I).node
        assert ref.subscripts[0].coeff("I") == 2
        assert ref.subscripts[0].const == -1
        assert ref.subscripts[1].coeff("I") == -1

    def test_param_subscript(self):
        b = NestBuilder("t")
        I = b.loop("I", 0, "N")
        ref = b.ref("A", I + "N").node
        assert ref.subscripts[0].param_coeffs == (("N", 1),)
