"""End-to-end property: for random nests, any unroll vector the safety
analysis admits preserves program semantics under the interpreter."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.builder import NestBuilder
from repro.ir.interp import run_nest, run_unrolled
from repro.unroll.safety import safe_unroll_bounds

@st.composite
def nest_with_unroll(draw):
    """A random 2-deep nest plus an unroll vector inside its safety box."""
    b = NestBuilder("rand")
    I, J = b.loops(("I", 3, 14), ("J", 3, 14))
    n_stmts = draw(st.integers(1, 2))
    for _ in range(n_stmts):
        terms = []
        for _ in range(draw(st.integers(1, 3))):
            arr = draw(st.sampled_from(["A", "B"]))
            o1 = draw(st.integers(-3, 3))
            o2 = draw(st.integers(-3, 3))
            terms.append(b.ref(arr, I + o1, J + o2))
        rhs = terms[0]
        for t in terms[1:]:
            rhs = rhs + t
        # writes may collide with reads: this is where safety bites
        warr = draw(st.sampled_from(["A", "C"]))
        w1 = draw(st.integers(-2, 2))
        w2 = draw(st.integers(-2, 2))
        b.assign(b.ref(warr, I + w1, J + w2), rhs * 0.5)
    nest = b.build()
    bounds = safe_unroll_bounds(nest)
    max_u = min(bounds[0], 4)
    u0 = draw(st.integers(0, max_u)) if max_u > 0 else 0
    return nest, (u0, 0)

@settings(max_examples=40, deadline=None)
@given(nest_with_unroll())
def test_safe_unroll_preserves_semantics(case):
    nest, u = case
    rng = np.random.default_rng(0)
    base = {name: rng.standard_normal((22, 22))
            for name in ("A", "B", "C")}
    expected = {k: v.copy() for k, v in base.items()}
    actual = {k: v.copy() for k, v in base.items()}
    run_nest(nest, {}, expected)
    run_unrolled(nest, u, {}, actual)
    for name in base:
        assert np.array_equal(expected[name], actual[name]), (name, u)
