"""The serving layer, end to end over real loopback sockets.

Covers the tentpole contracts: request/response for every verb and nest
shape, duplicate-request coalescing (the second identical request does
not recompute), queue-full 429 backpressure with ``Retry-After``,
request-size limits, per-request timeouts, structured error kinds, and
the graceful-shutdown drain (both in-process and as a real
``python -m repro serve`` child taking SIGTERM mid-flight).
"""

from __future__ import annotations

import http.client
import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import api
from repro.engine import AnalysisEngine
from repro.serve.batcher import BatchConfig
from repro.serve.client import ServeClient, build_workload, run_load
from repro.serve.protocol import parse_request, ProtocolError
from repro.serve.server import ServeConfig, ServerThread

_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")

def _server(**kwargs) -> ServerThread:
    """A fresh server+engine on an ephemeral port."""
    batch = kwargs.pop("batch", None) or BatchConfig(deadline_s=0.005)
    config = ServeConfig(port=0, batch=batch, **kwargs)
    return ServerThread(config, AnalysisEngine())

class TestEndToEnd:
    def test_optimize_matches_library(self):
        with _server() as handle:
            client = ServeClient(port=handle.port)
            status, doc = client.optimize("jacobi", bound=4)
            client.close()
        assert status == 200 and doc["ok"]
        expected = api.optimize("jacobi", "alpha", bound=4,
                                engine=AnalysisEngine())
        assert tuple(doc["unroll"]) == expected.unroll
        assert doc["feasible"] == expected.feasible
        assert doc["balance"] == pytest.approx(float(expected.balance))

    def test_all_nest_shapes_resolve(self):
        source = "DO J = 0, N\n  DO I = 0, M\n" \
                 "    A(I, J) = A(I, J) + B(I)\n  ENDDO\nENDDO"
        serialized = api.serialize_nest(api.coerce_nest("jacobi"))
        with _server() as handle:
            client = ServeClient(port=handle.port)
            by_name = client.optimize("jacobi", bound=3)
            by_source = client.optimize(source, bound=3)
            by_dict = client.optimize(serialized, bound=3)
            client.close()
        assert by_name[0] == by_source[0] == by_dict[0] == 200
        # The serialized twin shares the structural key (and the cache).
        assert by_dict[1]["structural_key"] == by_name[1]["structural_key"]
        assert by_dict[1]["unroll"] == by_name[1]["unroll"]

    def test_analyze_and_transform_verbs(self):
        with _server() as handle:
            client = ServeClient(port=handle.port)
            a_status, analysis = client.analyze("jacobi")
            t_status, transformed = client.transform("jacobi", bound=4)
            e_status, explicit = client.transform("jacobi", unroll=[2, 0])
            client.close()
        assert a_status == 200 and analysis["kind"] == "analyze"
        assert analysis["depth"] == 2 and len(analysis["safety"]) == 2
        assert t_status == 200 and "DO" in transformed["source"]
        assert transformed["copies"] >= 1
        assert e_status == 200 and explicit["unroll"] == [2, 0]
        assert explicit["copies"] == 3

    def test_health_and_metrics_documents(self):
        with _server() as handle:
            client = ServeClient(port=handle.port)
            client.optimize("jacobi", bound=3)
            h_status, health = client.healthz()
            m_status, metrics = client.metrics()
            client.close()
        assert h_status == 200 and health["status"] == "ok"
        assert m_status == 200
        assert metrics["metrics"]["counters"]["serve.requests"] == 1
        stage = metrics["metrics"]["stages"]["stage.optimize"]
        for key in ("p50_s", "p95_s", "p99_s"):  # satellite: percentiles
            assert key in stage
        assert metrics["cache"]["memory"]["tables"] == 1

class TestErrors:
    def test_unknown_kernel_is_404(self):
        with _server() as handle:
            client = ServeClient(port=handle.port)
            status, doc = client.optimize("definitely-not-a-kernel")
            client.close()
        assert status == 404
        assert doc["error"]["type"] == "unknown_kernel"

    def test_parse_error_is_400(self):
        with _server() as handle:
            client = ServeClient(port=handle.port)
            status, doc = client.optimize("DO I = 0, N\n  garbage(\nENDDO")
            bad_dict = client.optimize({"source": "DO broken"})
            client.close()
        assert status == 400 and doc["error"]["type"] == "parse_error"
        assert bad_dict[0] == 400
        assert bad_dict[1]["error"]["type"] == "parse_error"

    def test_malformed_requests(self):
        with _server() as handle:
            client = ServeClient(port=handle.port)
            no_nest = client.request("POST", "/v1/optimize", {})
            bad_machine = client.optimize("jacobi", machine="cray")
            bad_field = client.request("POST", "/v1/optimize",
                                       {"nest": "jacobi", "bogus": 1})
            bad_unroll = client.transform("jacobi", unroll=[-1, 0])
            wrong_method = client.request("GET", "/v1/optimize")
            no_route = client.request("GET", "/nope")
            raw = http.client.HTTPConnection("127.0.0.1", handle.port,
                                             timeout=10)
            raw.request("POST", "/v1/optimize", body=b"{not json",
                        headers={"content-type": "application/json"})
            not_json = raw.getresponse()
            not_json.read()
            raw.close()
            client.close()
        assert no_nest[0] == 400
        assert bad_machine[0] == 400
        assert bad_machine[1]["error"]["type"] == "unknown_machine"
        assert bad_field[0] == 400 and "bogus" in \
            bad_field[1]["error"]["message"]
        assert bad_unroll[0] == 400
        assert wrong_method[0] == 405
        assert no_route[0] == 404
        assert not_json.status == 400

    def test_oversized_body_is_413(self):
        with _server(max_body=256) as handle:
            client = ServeClient(port=handle.port)
            status, doc = client.optimize("DO I = 0, N\n"
                                          + "  A(I) = B(I) * 2\n" * 50
                                          + "ENDDO")
            client.close()
        assert status == 413
        assert doc["error"]["type"] == "payload_too_large"

    def test_request_timeout_is_504(self):
        with _server(request_timeout_s=0.005) as handle:
            client = ServeClient(port=handle.port)
            status, doc = client.optimize("mmjik", bound=8)
            client.close()
            assert status == 504 and doc["error"]["type"] == "timeout"
            assert handle.engine.metrics.counter("serve.timeouts") == 1

class TestCoalescing:
    def test_concurrent_duplicates_share_one_computation(self):
        # A generous deadline holds the batch open long enough that both
        # identical requests land in the same flush window.
        batch = BatchConfig(deadline_s=0.25, max_batch=16)
        with _server(batch=batch) as handle:
            results: list[tuple[int, dict]] = []
            lock = threading.Lock()

            def fire():
                client = ServeClient(port=handle.port)
                outcome = client.optimize("jacobi", bound=4)
                client.close()
                with lock:
                    results.append(outcome)

            threads = [threading.Thread(target=fire) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            metrics = handle.engine.metrics
            # All three answered identically from ONE engine computation.
            assert metrics.counter("engine.optimize") == 1
            assert metrics.counter("serve.coalesced") == 2
            # A later identical request is a serve-side cache hit.
            client = ServeClient(port=handle.port)
            late = client.optimize("jacobi", bound=4)
            client.close()
            assert metrics.counter("engine.optimize") == 1
            assert metrics.counter("serve.cache.hit") == 1
        assert [status for status, _ in results] == [200, 200, 200]
        vectors = {tuple(doc["unroll"]) for _, doc in results}
        assert len(vectors) == 1 and tuple(late[1]["unroll"]) in vectors

    def test_distinct_params_do_not_coalesce(self):
        with _server() as handle:
            client = ServeClient(port=handle.port)
            first = client.optimize("jacobi", bound=2)
            second = client.optimize("jacobi", bound=4)
            client.close()
            assert handle.engine.metrics.counter("serve.cache.hit") == 0
        assert first[0] == second[0] == 200

class TestSimdParam:
    def test_simd_report_matches_library(self):
        with _server() as handle:
            client = ServeClient(port=handle.port)
            status, doc = client.optimize("jacobi", machine="future",
                                          bound=4, simd=True)
            client.close()
        assert status == 200 and doc["ok"]
        result, report = api.vectorize("jacobi", machine="future", bound=4,
                                       engine=AnalysisEngine())
        assert tuple(doc["unroll"]) == result.unroll
        assert doc["simd"] == json.loads(json.dumps(report.to_dict()))

    def test_simd_and_plain_requests_have_distinct_keys(self):
        with _server() as handle:
            client = ServeClient(port=handle.port)
            _, plain = client.optimize("jacobi", machine="future", bound=4)
            _, simd = client.optimize("jacobi", machine="future", bound=4,
                                      simd=True)
            client.close()
            assert handle.engine.metrics.counter("serve.cache.hit") == 0
        assert "simd" not in plain
        assert "simd" in simd

    def test_simd_jobs_are_not_poolable(self):
        from repro.serve.batcher import MicroBatcher, _Job

        machine = type("M", (), {"name": "m"})()

        def job(params):
            return _Job(kind="optimize", key=(), nest=None, machine=machine,
                        params=params, unroll=None)

        assert not MicroBatcher._poolable([job({"simd": True, "bound": 4}),
                                           job({"simd": True, "bound": 4})])
        assert MicroBatcher._poolable([job({"bound": 4}),
                                       job({"bound": 4})])

class TestBackpressure:
    def test_queue_full_returns_429_with_retry_after(self):
        # One-job queue, one-at-a-time flushes, single worker thread: a
        # burst of distinct cold requests must overflow admission.
        batch = BatchConfig(queue_limit=1, max_batch=1, deadline_s=0.005,
                            threads=1)
        kernels = ["jacobi", "mmjik", "sor", "afold", "dmxpy1",
                   "vpenta.7", "gmtry.3", "btrix.1"]
        with _server(batch=batch) as handle:
            statuses: list[int] = []
            retry_after: list[str | None] = []
            lock = threading.Lock()

            def fire(name: str) -> None:
                conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                                  timeout=30)
                body = json.dumps({"nest": name, "bound": 4}).encode()
                conn.request("POST", "/v1/optimize", body=body)
                response = conn.getresponse()
                response.read()
                with lock:
                    statuses.append(response.status)
                    if response.status == 429:
                        retry_after.append(
                            response.getheader("Retry-After"))
                conn.close()

            threads = [threading.Thread(target=fire, args=(name,))
                       for name in kernels]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # Overflow must have produced 429s, and the queue recovers.
            assert 429 in statuses
            assert statuses.count(200) >= 1
            assert set(statuses) <= {200, 429}
            assert all(value and int(value) >= 1 for value in retry_after)
            assert handle.engine.metrics.counter("serve.rejected") >= 1
            client = ServeClient(port=handle.port)
            recovered = client.optimize("jacobi", bound=4)
            client.close()
            assert recovered[0] == 200

    def test_load_generator_retries_429_honoring_retry_after(self):
        """The same overflow-prone server, driven through run_load:
        the generator's capped jittered backoff (seeded by the server's
        Retry-After) must convert shed requests into eventual 200s."""
        batch = BatchConfig(queue_limit=1, max_batch=1, deadline_s=0.005,
                            threads=1)
        kernels = ["jacobi", "mmjik", "sor", "afold", "dmxpy1",
                   "vpenta.7", "gmtry.3", "btrix.1"]
        with _server(batch=batch) as handle:
            stats = run_load("127.0.0.1", handle.port,
                             [("optimize", name) for name in kernels],
                             concurrency=len(kernels), max_retries=8,
                             backoff_cap_s=0.5, bound=4)
        # Shedding happened (else the scenario proves nothing), every
        # shed request was retried to completion, and per-endpoint
        # percentiles cover all completions.
        assert stats["retries"] >= 1
        assert handle.engine.metrics.counter("serve.rejected") >= 1
        assert stats["statuses"] == {"200": len(kernels)}
        assert stats["rate_2xx"] == 1.0
        endpoint = stats["latency_by_endpoint_s"]["optimize"]
        assert endpoint["count"] == len(kernels)
        assert 0.0 < endpoint["p50"] <= endpoint["p95"] <= endpoint["p99"]

    def test_client_exposes_response_headers(self):
        with _server() as handle:
            client = ServeClient(port=handle.port)
            status, _ = client.optimize("jacobi", bound=4)
            client.close()
        assert status == 200
        assert "content-type" in client.last_headers

class TestGracefulShutdown:
    def test_inprocess_drain_answers_all_accepted(self):
        batch = BatchConfig(deadline_s=0.05, max_batch=32)
        handle = _server(batch=batch).start()
        results: list[int] = []
        lock = threading.Lock()
        kernels = ["jacobi", "mmjik", "sor", "afold", "dmxpy1", "shal"]

        def fire(name: str) -> None:
            client = ServeClient(port=handle.port)
            status, _ = client.optimize(name, bound=4)
            client.close()
            with lock:
                results.append(status)

        threads = [threading.Thread(target=fire, args=(name,))
                   for name in kernels]
        for thread in threads:
            thread.start()
        time.sleep(0.02)  # let requests reach the queue
        handle.stop()  # request shutdown while work is in flight
        for thread in threads:
            thread.join(timeout=30)
        assert results == [200] * len(kernels)

    def test_sigterm_child_drains_and_exits_zero(self, tmp_path):
        metrics_out = tmp_path / "final_metrics.json"
        env = dict(os.environ,
                   PYTHONPATH=_SRC + os.pathsep
                   + os.environ.get("PYTHONPATH", ""))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--batch-deadline-ms", "50",
             "--metrics-out", str(metrics_out)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            text=True)
        try:
            line = proc.stdout.readline()
            assert "listening on" in line, line
            port = int(line.rsplit(":", 1)[1])
            assert port > 0
            statuses: list[int] = []
            lock = threading.Lock()
            started = threading.Barrier(7)

            def fire(name: str) -> None:
                conn = http.client.HTTPConnection("127.0.0.1", port,
                                                  timeout=60)
                conn.connect()  # accepted before the SIGTERM below
                started.wait()
                body = json.dumps({"nest": name, "bound": 6}).encode()
                conn.request("POST", "/v1/optimize", body=body)
                response = conn.getresponse()
                doc = json.loads(response.read())
                with lock:
                    statuses.append(response.status)
                    assert doc.get("ok") is True, doc
                conn.close()

            kernels = ["jacobi", "mmjik", "sor", "afold", "dmxpy1", "shal"]
            threads = [threading.Thread(target=fire, args=(name,))
                       for name in kernels]
            for thread in threads:
                thread.start()
            started.wait()  # all connections established, requests going out
            time.sleep(0.05)  # requests now in flight
            proc.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=60)
            code = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # Every accepted request was answered, and the exit was clean.
        assert statuses == [200] * len(kernels)
        assert code == 0
        flushed = json.loads(metrics_out.read_text())
        assert flushed["metrics"]["counters"]["serve.requests"] == \
            len(kernels)

class TestProtocolUnits:
    def test_parse_request_validates(self):
        spec = parse_request("optimize",
                             json.dumps({"nest": "jacobi", "bound": 3,
                                         "machine": "pa"}).encode())
        assert spec.kind == "optimize" and spec.machine == "pa"
        assert spec.params == {"bound": 3}
        with pytest.raises(ProtocolError) as err:
            parse_request("optimize", b"[1, 2]")
        assert err.value.status == 400
        with pytest.raises(ProtocolError):
            parse_request("optimize", json.dumps({"nest": "x",
                                                  "bound": "big"}).encode())
        with pytest.raises(ProtocolError) as err:
            parse_request("explode", b"{}")
        assert err.value.status == 404

    def test_workload_builder_duplicate_fraction(self):
        workload = build_workload(38, duplicate_fraction=0.5)
        names = [nest for _, nest in workload]
        assert len(workload) == 38 and len(set(names)) == 19

class TestLoadGenerator:
    def test_run_load_reports_stats(self):
        with _server() as handle:
            stats = run_load("127.0.0.1", handle.port,
                             build_workload(12, duplicate_fraction=0.5),
                             concurrency=4, bound=3)
        assert stats["completed"] == 12
        assert stats["rate_2xx"] == 1.0
        assert stats["throughput_rps"] > 0
        assert 0 < stats["latency_s"]["p50"] <= stats["latency_s"]["max"]
