"""Tests for dependence-graph exports (networkx, DOT, summaries)."""

import networkx as nx

from repro.dependence import build_dependence_graph
from repro.dependence.export import (
    dependence_cycles,
    statement_graph,
    summarize,
    to_dot,
    to_networkx,
)
from repro.ir.builder import NestBuilder

def recurrence_nest():
    # A(I) = A(I-1) + B(I): flow recurrence on statement 0
    b = NestBuilder("rec")
    I = b.loop("I", 1, "N")
    b.assign(b.ref("A", I), b.ref("A", I - 1) + b.ref("B", I))
    return b.build()

def pipeline_nest():
    # S0 writes T, S1 reads T: forward statement dependence, no cycle
    b = NestBuilder("pipe")
    I = b.loop("I", 0, "N")
    b.assign(b.ref("T", I), b.ref("A", I) * 2.0)
    b.assign(b.ref("C", I), b.ref("T", I) + 1.0)
    return b.build()

class TestNetworkx:
    def test_nodes_cover_occurrences(self):
        graph = build_dependence_graph(recurrence_nest())
        g = to_networkx(graph)
        # A(I-1) read, B(I) read, A(I) write
        assert g.number_of_nodes() == 3

    def test_edge_attributes(self):
        graph = build_dependence_graph(recurrence_nest())
        g = to_networkx(graph)
        kinds = {data["kind"] for _, _, data in g.edges(data=True)}
        assert "flow" in kinds

    def test_input_filter(self):
        graph = build_dependence_graph(recurrence_nest())
        full = to_networkx(graph, include_input=True)
        lean = to_networkx(graph, include_input=False)
        assert lean.number_of_edges() <= full.number_of_edges()

class TestStatementGraph:
    def test_pipeline_edge(self):
        graph = build_dependence_graph(pipeline_nest())
        g = statement_graph(graph)
        assert g.has_edge(0, 1)
        assert "flow" in g[0][1]["kinds"]

    def test_recurrence_self_edge(self):
        graph = build_dependence_graph(recurrence_nest())
        g = statement_graph(graph)
        assert g.has_edge(0, 0)

class TestCycles:
    def test_recurrence_detected(self):
        graph = build_dependence_graph(recurrence_nest())
        assert dependence_cycles(graph) == [[0]]

    def test_pipeline_acyclic(self):
        graph = build_dependence_graph(pipeline_nest())
        assert dependence_cycles(graph) == []

class TestDotAndSummary:
    def test_dot_contains_edges(self):
        graph = build_dependence_graph(recurrence_nest())
        dot = to_dot(graph)
        assert dot.startswith("digraph")
        assert "flow" in dot
        assert "->" in dot

    def test_dot_parses_with_networkx_pydot_free(self):
        # structural sanity only: balanced braces, one line per edge
        graph = build_dependence_graph(pipeline_nest())
        dot = to_dot(graph)
        assert dot.count("{") == dot.count("}")

    def test_summary_mentions_counts(self):
        graph = build_dependence_graph(recurrence_nest())
        text = summarize(graph)
        assert "flow" in text and "recurrence" in text
