"""Seeded adversarial fuzz of the central invariant: tables == brute force
on strided, permuted-subscript, two-unrolled-dim nests."""

import random

import pytest

from repro.baselines.brute_force import measure_unrolled
from repro.ir.builder import NestBuilder
from repro.unroll.space import UnrollSpace
from repro.unroll.tables import build_tables

FIELDS = ("gts", "gss", "memory_ops", "registers", "cache_cost", "flops")

def adversarial_nest(rng: random.Random, name: str):
    b = NestBuilder(name)
    I, J, K = b.loops(("I", 4, 20), ("J", 4, 20), ("K", 4, 20))
    idx = [I, J, K]
    for _ in range(rng.randint(1, 3)):
        terms = []
        for _ in range(rng.randint(1, 4)):
            arr = rng.choice(["A", "B"])
            perm = rng.sample(range(3), 2)
            c1 = rng.choice([1, 1, 1, 2, -1])
            c2 = rng.choice([1, 1, 2])
            o1, o2 = rng.randint(-3, 3), rng.randint(-3, 3)
            terms.append(b.ref(arr, c1 * idx[perm[0]] + o1,
                               c2 * idx[perm[1]] + o2))
        rhs = terms[0]
        for t in terms[1:]:
            rhs = rhs + t
        wsel = rng.sample(range(3), 2)
        b.assign(b.ref(rng.choice(["A", "D"]),
                       idx[wsel[0]] + rng.randint(-1, 1), idx[wsel[1]]), rhs)
    return b.build()

@pytest.mark.parametrize("seed", range(12))
def test_adversarial_agreement(seed):
    rng = random.Random(1000 + seed)
    nest = adversarial_nest(rng, f"fuzz{seed}")
    space = UnrollSpace(3, (0, 1), (2, 2))
    tables = build_tables(nest, space, line_size=4, trip=100)
    for u in space:
        predicted = tables.point(u)
        measured = measure_unrolled(nest, u, line_size=4, trip=100)
        for field in FIELDS:
            assert getattr(predicted, field) == getattr(measured, field), \
                (seed, u, field)

@pytest.mark.parametrize("line_size", [1, 2, 4, 8, 16])
def test_agreement_across_line_sizes(line_size):
    """The spatial model must agree for any cache-line geometry."""
    rng = random.Random(7)
    nest = adversarial_nest(rng, "lines")
    space = UnrollSpace(3, (0, 1), (2, 2))
    tables = build_tables(nest, space, line_size=line_size, trip=100)
    for u in space:
        predicted = tables.point(u)
        measured = measure_unrolled(nest, u, line_size=line_size, trip=100)
        assert predicted.gss == measured.gss, (line_size, u)
        assert predicted.cache_cost == measured.cache_cost, (line_size, u)
