"""Loop interchange and normalization tests, including semantics
preservation through the interpreter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.builder import NestBuilder
from repro.ir.interp import run_nest
from repro.reuse.locality import nest_memory_cost
from repro.transforms import (
    InterchangeError,
    best_loop_order,
    legal_permutations,
    normalize_nest,
    permutation_is_legal,
    permute,
)
from repro.transforms.interchange import memory_order

def copy_nest():
    b = NestBuilder("copy")
    I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
    b.assign(b.ref("A", I, J), b.ref("B", I, J) * 2.0)
    return b.build()

def skewed_nest():
    # A(I,J) = A(I-1,J+1): distance (1,-1) forbids interchange.
    b = NestBuilder("skew")
    I, J = b.loops(("I", 1, "N"), ("J", 0, "N"))
    b.assign(b.ref("A", I, J), b.ref("A", I - 1, J + 1) + 1.0)
    return b.build()

def run_both(nest, order, shapes, bindings, seed=0):
    rng = np.random.default_rng(seed)
    base = {n: rng.standard_normal(s) for n, s in shapes.items()}
    a = {k: v.copy() for k, v in base.items()}
    b_ = {k: v.copy() for k, v in base.items()}
    run_nest(nest, bindings, a)
    run_nest(permute(nest, order), bindings, b_)
    return a, b_

class TestLegality:
    def test_identity_always_legal(self):
        assert permutation_is_legal(skewed_nest(), (0, 1))

    def test_independent_nest_fully_permutable(self):
        assert legal_permutations(copy_nest()) == [(0, 1), (1, 0)]

    def test_skewed_dep_blocks_interchange(self):
        assert not permutation_is_legal(skewed_nest(), (1, 0))
        assert legal_permutations(skewed_nest()) == [(0, 1)]

    def test_forward_dep_allows_interchange(self):
        b = NestBuilder("fwd")
        I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
        b.assign(b.ref("A", I, J), b.ref("A", I - 1, J - 1) + 1.0)
        assert permutation_is_legal(b.build(), (1, 0))

    def test_bad_permutation_rejected(self):
        with pytest.raises(InterchangeError):
            permutation_is_legal(copy_nest(), (0, 0))

    def test_illegal_permute_raises(self):
        with pytest.raises(InterchangeError):
            permute(skewed_nest(), (1, 0))

    def test_input_dependences_ignored(self):
        b = NestBuilder("reads")
        I, J = b.loops(("I", 1, "N"), ("J", 0, "N"))
        b.assign(b.ref("C", I, J), b.ref("A", I - 1, J + 1) + b.ref("A", I, J))
        assert permutation_is_legal(b.build(), (1, 0))

class TestSemantics:
    def test_copy_interchange_equivalent(self):
        a, b_ = run_both(copy_nest(), (1, 0),
                         {"A": (12, 12), "B": (12, 12)}, {"N": 10})
        assert np.array_equal(a["A"], b_["A"])

    def test_matmul_all_orders_equivalent(self):
        b = NestBuilder("mm")
        I, J, K = b.loops(("I", 0, 7), ("J", 0, 7), ("K", 0, 7))
        b.assign(b.ref("C", I, J),
                 b.ref("C", I, J) + b.ref("A", I, K) * b.ref("B", K, J))
        nest = b.build()
        shapes = {"A": (8, 8), "B": (8, 8), "C": (8, 8)}
        orders = legal_permutations(nest)
        assert len(orders) == 6  # reduction: fully permutable
        baseline = None
        for order in orders:
            a, b_ = run_both(nest, order, shapes, {})
            if baseline is None:
                baseline = a["C"]
            assert np.allclose(baseline, b_["C"]), order

    def test_forward_dep_interchange_equivalent(self):
        b = NestBuilder("fwd")
        I, J = b.loops(("I", 1, 10), ("J", 1, 10))
        b.assign(b.ref("A", I, J), b.ref("A", I - 1, J - 1) + 1.0)
        a, b_ = run_both(b.build(), (1, 0), {"A": (12, 12)}, {})
        assert np.array_equal(a["A"], b_["A"])

class TestMemoryOrder:
    def test_column_major_prefers_first_index_innermost(self):
        """A(I,J) with column-major storage wants I (the contiguous
        dimension) innermost."""
        b = NestBuilder("sweep")
        I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
        b.assign(b.ref("A", I, J), b.ref("A", I, J) + 1.0)
        order, cost = best_loop_order(b.build(), line_size=4)
        assert order == (1, 0)  # J outer, I inner

    def test_memory_order_never_increases_cost(self):
        nests = [copy_nest(), skewed_nest()]
        for nest in nests:
            before, _ = nest_memory_cost(nest, line_size=4)
            after, _ = nest_memory_cost(memory_order(nest), line_size=4)
            assert after <= before

    def test_memory_order_respects_legality(self):
        # the skewed nest must stay in its original order even though the
        # interchanged order would be cheaper for column-major A.
        assert memory_order(skewed_nest()).loops[0].index == "I"

    def test_memory_order_identity_returns_same_object(self):
        b = NestBuilder("good")
        J, I = b.loops(("J", 0, "N"), ("I", 0, "N"))
        b.assign(b.ref("A", I, J), b.ref("A", I, J) + 1.0)
        nest = b.build()
        assert memory_order(nest) is nest

class TestNormalize:
    def test_shifts_bounds_and_subscripts(self):
        b = NestBuilder("off")
        I = b.loop("I", 3, 12)
        b.assign(b.ref("A", I), b.ref("B", I - 3) + 1.0)
        norm = normalize_nest(b.build())
        assert norm.loops[0].lower.const == 0
        assert norm.loops[0].upper.const == 9
        stmt = norm.body[0]
        assert stmt.lhs.subscripts[0].const == 3
        assert stmt.rhs.left.subscripts[0].const == 0

    def test_symbolic_lower_bound(self):
        b = NestBuilder("sym")
        I = b.loop("I", "L", "N")
        b.assign(b.ref("A", I), b.ref("A", I) + 1.0)
        norm = normalize_nest(b.build())
        upper = dict(norm.loops[0].upper.param_coeffs)
        assert upper == {"N": 1, "L": -1}
        sub_params = dict(norm.body[0].lhs.subscripts[0].param_coeffs)
        assert sub_params == {"L": 1}

    def test_already_normalized_untouched(self):
        b = NestBuilder("norm")
        I = b.loop("I", 0, "N")
        b.assign(b.ref("A", I), b.ref("A", I) + 1.0)
        nest = b.build()
        assert normalize_nest(nest) is nest

    def test_semantics_preserved(self):
        b = NestBuilder("off2")
        I, J = b.loops(("I", 2, 11), ("J", 5, 14))
        b.assign(b.ref("A", I, J), b.ref("A", I - 1, J - 2) + b.ref("B", I, J))
        nest = b.build()
        norm = normalize_nest(nest)
        rng = np.random.default_rng(4)
        base = {"A": rng.standard_normal((16, 16)),
                "B": rng.standard_normal((16, 16))}
        a = {k: v.copy() for k, v in base.items()}
        b_ = {k: v.copy() for k, v in base.items()}
        run_nest(nest, {}, a)
        run_nest(norm, {}, b_)
        assert np.array_equal(a["A"], b_["A"])

    def test_step_rejected(self):
        from repro.ir.nodes import Bound, Loop, LoopNest
        b = NestBuilder("tmp")
        I = b.loop("I", 1, 9)
        b.assign(b.ref("A", I), b.ref("A", I) + 1.0)
        nest = b.build()
        stepped = LoopNest(nest.name,
                           (Loop("I", Bound(1), Bound(9), 2),), nest.body)
        with pytest.raises(ValueError):
            normalize_nest(stepped)

@st.composite
def permutable_nest(draw):
    """Random read-only-B nests: no loop-carried output constraints, so
    every permutation is legal and must preserve semantics."""
    b = NestBuilder("rand")
    I, J, K = b.loops(("I", 0, 6), ("J", 0, 6), ("K", 0, 6))
    idx = [I, J, K]
    terms = []
    for _ in range(draw(st.integers(1, 3))):
        offs = [draw(st.integers(0, 2)) for _ in range(3)]
        terms.append(b.ref("B", idx[0] + offs[0], idx[1] + offs[1],
                           idx[2] + offs[2]))
    rhs = terms[0]
    for t in terms[1:]:
        rhs = rhs + t
    b.assign(b.ref("A", I, J, K), rhs)
    return b.build()

@settings(max_examples=15, deadline=None)
@given(permutable_nest(), st.permutations(range(3)))
def test_random_permutation_semantics(nest, order):
    order = tuple(order)
    if not permutation_is_legal(nest, order):
        return
    rng = np.random.default_rng(0)
    base = {"A": np.zeros((7, 7, 7)), "B": rng.standard_normal((9, 9, 9))}
    a = {k: v.copy() for k, v in base.items()}
    b_ = {k: v.copy() for k, v in base.items()}
    run_nest(nest, {}, a)
    run_nest(permute(nest, order), {}, b_)
    assert np.array_equal(a["A"], b_["A"])
