"""Two real processes hammering one disk-cache directory.

The contract under test (docs/ENGINE.md, hardened for the cluster's
per-shard namespaces being only a *convention*): readers never lock,
writers publish entries with write-to-temp + atomic ``os.replace``, and
a corrupt entry is recovered by recomputing and atomically overwriting
-- never by unlinking, which could race away another process's freshly
replaced good entry.  One process continuously mangles the cache entry
in place (torn-write bytes) while both processes keep re-reading it
with fresh engines; every single answer must still be correct, and the
directory must end with a clean, loadable entry.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import repro
from repro.engine import AnalysisEngine
from repro.kernels import all_kernels
from repro.machine.presets import dec_alpha

WORKER = r"""
import json, pathlib, random, sys, time

role, cache_dir, name, expected, seconds = sys.argv[1:6]
cache = pathlib.Path(cache_dir)
expected = tuple(json.loads(expected))
random.seed(role)

from repro.engine import AnalysisEngine
from repro.kernels import kernel_by_name
from repro.machine.presets import dec_alpha

nest = kernel_by_name(name).nest
machine = dec_alpha()
deadline = time.monotonic() + float(seconds)
iterations = errors = 0
while time.monotonic() < deadline:
    if role == "corruptor":
        for entry in cache.glob("tables-*.json"):
            try:
                text = entry.read_text()
                # Torn in-place write: what a crashed non-atomic writer
                # would leave behind.
                entry.write_text(text[: random.randrange(0, len(text))])
            except OSError:
                pass
    # A fresh engine per iteration forces the disk path every time.
    engine = AnalysisEngine(disk_cache=True, cache_dir=cache)
    result = engine.optimize(nest, machine, bound=3)
    if tuple(result.unroll) != expected:
        print(f"{role}: wrong answer {result.unroll}", file=sys.stderr)
        sys.exit(1)
    errors += engine.metrics.counter("cache.disk.error")
    iterations += 1
print(json.dumps({"role": role, "iterations": iterations,
                  "disk_errors": errors}))
"""

def test_concurrent_corruption_and_recompute(tmp_path):
    cache = tmp_path / "cache"
    machine = dec_alpha()
    kernel = all_kernels()[0]
    seed = AnalysisEngine(disk_cache=True, cache_dir=cache)
    expected = seed.optimize(kernel.nest, machine, bound=3).unroll
    assert list(cache.glob("tables-*.json"))

    script = tmp_path / "worker.py"
    script.write_text(WORKER)
    src_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    procs = [
        subprocess.Popen(
            [sys.executable, str(script), role, str(cache),
             kernel.name, json.dumps(list(expected)), "3.0"],
            env={"PYTHONPATH": src_root, "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        for role in ("corruptor", "reader")]
    results = {}
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, f"worker failed: {err}"
        stats = json.loads(out.splitlines()[-1])
        results[stats["role"]] = stats

    # Both processes made real progress and the corruptor really did
    # force corrupt-entry recoveries.
    assert results["reader"]["iterations"] >= 3
    assert results["corruptor"]["iterations"] >= 3
    assert (results["reader"]["disk_errors"]
            + results["corruptor"]["disk_errors"]) >= 1

    # The directory converged to a clean, loadable entry.
    entries = list(cache.glob("tables-*.json"))
    assert entries
    final = AnalysisEngine(disk_cache=True, cache_dir=cache)
    assert final.optimize(kernel.nest, machine, bound=3).unroll == expected
