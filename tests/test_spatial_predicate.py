"""Edge cases of the canonical group-spatial predicate (minimal-residual
folding, localized freedom, integrality)."""

from fractions import Fraction

import pytest

from repro.linalg import Matrix, VectorSpace
from repro.reuse.group import spatial_constants_related

def inner(depth, axis=None):
    axis = depth - 1 if axis is None else axis
    return VectorSpace.spanned_by_axes([axis], depth)

H2 = Matrix([[1, 0], [0, 1]])  # A(I, J) with loops (I, J)

class TestBasicResidual:
    def test_within_line(self):
        assert spatial_constants_related(H2, (3, 0), inner(2), line_size=4)

    def test_beyond_line(self):
        assert not spatial_constants_related(H2, (4, 0), inner(2),
                                             line_size=4)

    def test_no_cap(self):
        assert spatial_constants_related(H2, (400, 0), inner(2),
                                         line_size=None)

    def test_other_dims_must_match(self):
        # (1, 1): second dim differs and nothing bridges it
        assert not spatial_constants_related(H2, (1, 1), VectorSpace.zero(2),
                                             line_size=4)

    def test_localized_bridges_other_dim(self):
        # J localized: the second-dim difference is absorbed by motion
        assert spatial_constants_related(H2, (1, 5), inner(2), line_size=4)

class TestLocalizedFreedomOnFirstDim:
    def test_innermost_walks_contiguous_dim(self):
        """Loops (J, I) with A(I, J): H maps the innermost loop to the
        first dimension; any first-dim difference folds to zero."""
        h = Matrix([[0, 1], [1, 0]])
        assert spatial_constants_related(h, (100, 0), inner(2),
                                         line_size=4)

    def test_strided_innermost_folds_modulo_stride(self):
        """A(3*K): motion changes the first dim in steps of 3; residuals
        fold into [0, 3), so any delta is within a 4-word line."""
        h = Matrix([[3]])
        assert spatial_constants_related(h, (7,), inner(1), line_size=4)
        # with a 1-word line only exact multiples of 3 share a "line"
        assert not spatial_constants_related(h, (7,), inner(1), line_size=1)
        assert spatial_constants_related(h, (6,), inner(1), line_size=1)

class TestIntegrality:
    def test_fractional_motion_rejected(self):
        """A(I, 2K) vs A(I, 2K+1): aligning the second dim needs half an
        iteration -- no spatial relation."""
        h = Matrix([[1, 0], [0, 2]])
        assert not spatial_constants_related(h, (0, 1), inner(2),
                                             line_size=4)

    def test_even_offset_accepted(self):
        h = Matrix([[1, 0], [0, 2]])
        assert spatial_constants_related(h, (0, 4), inner(2), line_size=4)

class TestZeroLocalizedSpace:
    def test_same_cell_only(self):
        assert spatial_constants_related(H2, (2, 0), VectorSpace.zero(2),
                                         line_size=4)
        assert not spatial_constants_related(H2, (2, 1),
                                             VectorSpace.zero(2),
                                             line_size=4)
