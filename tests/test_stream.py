"""Streaming corpus optimization and structural dedup.

:meth:`AnalysisEngine.optimize_stream` must agree item-for-item with
:meth:`optimize_many` (modulo yield order under a pool), survive poisoned
entries mid-stream, and fan representative results out to structural
twins without re-running them -- in both the batch and streaming paths.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.corpus import CorpusConfig, iter_corpus
from repro.engine import AnalysisEngine, BatchError
from repro.ir.builder import NestBuilder
from repro.machine.presets import dec_alpha

def _twin(name, outer="J", inner="I", array="A"):
    b = NestBuilder(name)
    j, i = b.loops((outer, 0, "N"), (inner, 0, "M"))
    b.assign(b.ref(array, j), b.ref(array, j) + b.ref("B", i))
    return b.build()

@pytest.fixture(scope="module")
def corpus():
    return list(iter_corpus(CorpusConfig(seed=42), count=12))

def _by_index(items):
    return sorted(items, key=lambda item: item.index)

def _decisions(items):
    return [(item.index, item.name, item.ok,
             item.result.unroll if item.ok else item.error)
            for item in _by_index(items)]

class TestBatchDedup:
    def test_twins_fan_out_from_one_run(self):
        engine = AnalysisEngine()
        nests = [_twin("a"), _twin("b", outer="JJ"), _twin("c"),
                 _twin("z", array="Z")]
        report = engine.optimize_many(nests, dec_alpha(), bound=3)
        counters = engine.metrics.snapshot()["counters"]
        assert counters["engine.dedup.hits"] == 2
        # Only the two distinct structures were analyzed.
        assert counters["cache.tables.miss"] == 2
        assert counters.get("cache.tables.hit", 0) == 0
        assert [item.name for item in report.items] == ["a", "b", "c", "z"]
        assert all(item.ok for item in report.items)
        decisions = {item.name: item.result.unroll for item in report.items}
        assert decisions["a"] == decisions["b"] == decisions["c"]
        # Fanned items report the caller's nest, not the representative's.
        twins = {item.name: item.result.nest.name for item in report.items}
        assert twins == {"a": "a", "b": "b", "c": "c", "z": "z"}

    def test_dedup_matches_undeduplicated_decisions(self, corpus):
        doubled = list(corpus) + list(corpus)
        machine = dec_alpha()
        engine = AnalysisEngine()
        report = engine.optimize_many(doubled, machine, bound=2)
        counters = engine.metrics.snapshot()["counters"]
        assert counters["engine.dedup.hits"] >= len(corpus)
        reference = AnalysisEngine(ugs_cache=False).optimize_many(
            list(corpus), machine, bound=2)
        want = [item.result.unroll for item in reference.items]
        got = [item.result.unroll for item in report.items]
        assert got == want + want

    def test_dedup_with_parallel_workers(self, corpus):
        doubled = list(corpus) + list(corpus)
        report = AnalysisEngine().optimize_many(doubled, dec_alpha(),
                                                bound=2, workers=2)
        assert [item.index for item in report.items] == \
            list(range(len(doubled)))
        half = len(corpus)
        firsts = [item.result.unroll for item in report.items[:half]]
        seconds = [item.result.unroll for item in report.items[half:]]
        assert firsts == seconds

class TestStreamSerial:
    def test_matches_optimize_many(self, corpus):
        machine = dec_alpha()
        want = AnalysisEngine().optimize_many(corpus, machine, bound=2)
        engine = AnalysisEngine()
        got = list(engine.optimize_stream(iter(corpus), machine, bound=2))
        assert _decisions(got) == _decisions(want.items)
        # Serial streaming preserves input order as it goes.
        assert [item.index for item in got] == list(range(len(corpus)))
        counters = engine.metrics.snapshot()["counters"]
        assert counters["stream.runs"] == 1
        assert counters["stream.items"] == len(corpus)

    def test_poisoned_entries_are_reported_items(self, corpus):
        engine = AnalysisEngine()
        nests = [corpus[0], 42, BatchError("bad", "no such nest"),
                 corpus[1]]
        got = list(engine.optimize_stream(iter(nests), dec_alpha(),
                                          bound=2))
        assert [item.ok for item in got] == [True, False, False, True]
        assert "not a loop nest" in got[1].error
        assert got[2].error == "no such nest"

    def test_twins_dedup_within_window(self):
        engine = AnalysisEngine()
        nests = [_twin("a"), _twin("b"), _twin("z", array="Z"), _twin("c")]
        got = list(engine.optimize_stream(iter(nests), dec_alpha(),
                                          bound=2))
        counters = engine.metrics.snapshot()["counters"]
        assert counters["engine.dedup.hits"] == 2
        assert counters["stream.items"] == 2
        assert [item.name for item in got] == ["a", "b", "z", "c"]
        assert got[1].result.nest.name == "b"
        assert got[0].result.unroll == got[1].result.unroll

    def test_window_of_one_forgets(self):
        engine = AnalysisEngine()
        nests = [_twin("a"), _twin("z", array="Z"), _twin("b")]
        list(engine.optimize_stream(iter(nests), dec_alpha(), bound=2,
                                    window=1))
        counters = engine.metrics.snapshot()["counters"]
        # "a" was evicted from the 1-slot window by "z", so "b" re-ran.
        assert counters.get("engine.dedup.hits", 0) == 0
        assert counters["stream.items"] == 3

    def test_lazy_consumption(self, corpus):
        """The stream pulls from the source as it yields -- nothing
        materializes the corpus up front."""
        pulled = []

        def source():
            for nest in corpus:
                pulled.append(nest.name)
                yield nest

        stream = AnalysisEngine().optimize_stream(source(), dec_alpha(),
                                                  bound=2)
        first = next(stream)
        assert first.ok
        assert len(pulled) == 1
        stream.close()

class TestStreamParallel:
    def test_matches_optimize_many(self, corpus):
        machine = dec_alpha()
        want = AnalysisEngine().optimize_many(corpus, machine, bound=2)
        engine = AnalysisEngine()
        got = list(engine.optimize_stream(iter(corpus), machine, bound=2,
                                          workers=2, chunk_size=3))
        assert _decisions(got) == _decisions(want.items)
        counters = engine.metrics.snapshot()["counters"]
        # Either the pool ran (chunks counted) or the sandbox forced the
        # serial fallback (counted too) -- both deliver every item.
        assert counters.get("stream.chunks", 0) > 0 or \
            counters.get("batch.pool_fallback", 0) > 0

    def test_twins_against_in_flight_chunks(self):
        engine = AnalysisEngine()
        nests = [_twin("a"), _twin("b"), _twin("z", array="Z"), _twin("c")]
        got = list(engine.optimize_stream(iter(nests), dec_alpha(),
                                          bound=2, workers=2,
                                          chunk_size=2))
        counters = engine.metrics.snapshot()["counters"]
        assert counters["engine.dedup.hits"] == 2
        by_name = {item.name: item for item in got}
        assert set(by_name) == {"a", "b", "c", "z"}
        assert all(item.ok for item in got)
        assert by_name["a"].result.unroll == by_name["b"].result.unroll
        assert by_name["b"].result.nest.name == "b"

class TestApiFacade:
    def test_optimize_stream_coerces_and_streams(self):
        got = list(api.optimize_stream(["jacobi", "nosuchkernel", "afold"],
                                       bound=3))
        assert [item.ok for item in got] == [True, False, True]
        assert got[0].name == "jacobi"
        assert "nosuchkernel" in got[1].error
        want = api.optimize("jacobi", bound=3)
        assert got[0].result.unroll == want.unroll

    def test_exported_from_package_root(self):
        import repro

        assert repro.optimize_stream is api.optimize_stream
