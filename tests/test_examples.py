"""Every shipped example must run cleanly end to end (subprocess smoke
tests with output sanity checks)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": ("Semantics check", []),
    "matmul_tuning.py": ("simulated", []),
    "stencil_pipeline.py": ("speedup", []),
    "dependence_savings.py": ("Table 1", ["150"]),
    "machine_comparison.py": ("beta_M", []),
    "prefetch_future.py": ("staircase", []),
}

@pytest.mark.parametrize("script,expected,args",
                         [(k, v[0], v[1]) for k, v in CASES.items()],
                         ids=list(CASES))
def test_example_runs(script, expected, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout

def test_all_examples_covered():
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    assert shipped == set(CASES)
