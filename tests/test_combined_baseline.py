"""Combined permutation + unroll search: decision quality vs cost."""

import pytest

from repro.baselines.combined import combined_brute_force, permute_then_table
from repro.ir.builder import NestBuilder
from repro.kernels.suite import dmxpy0, mmjik
from repro.machine import dec_alpha

def bad_order_sweep():
    """A(I,J) swept with I outer and J inner: memory order would swap."""
    b = NestBuilder("sweep")
    I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
    b.assign(b.ref("A", I, J), b.ref("A", I, J) * 0.5 + b.ref("B", I, J))
    return b.build()

class TestCombined:
    def test_brute_force_explores_orders(self):
        result = combined_brute_force(bad_order_sweep(), dec_alpha(),
                                      bound=2)
        # memory order on column-major arrays puts I (first dim) innermost
        assert result.order == (1, 0)
        assert result.bodies_materialized >= 6

    def test_permute_then_table_matches_brute_objective(self):
        nest = bad_order_sweep()
        machine = dec_alpha()
        brute = combined_brute_force(nest, machine, bound=2)
        table = permute_then_table(nest, machine, bound=2)
        assert table.order == brute.order
        assert table.objective == brute.objective
        assert table.bodies_materialized == 0

    def test_permutation_improves_over_unroll_only(self):
        """For the badly-ordered sweep, permuting is worth more than any
        in-order unrolling."""
        from repro.unroll.optimize import choose_unroll

        nest = bad_order_sweep()
        machine = dec_alpha()
        unroll_only = choose_unroll(nest, machine, bound=2)
        combined = permute_then_table(nest, machine, bound=2)
        assert combined.objective <= unroll_only.objective

    @pytest.mark.parametrize("factory", [dmxpy0, mmjik],
                             ids=lambda f: f.__name__)
    def test_kernels_objectives_close(self, factory):
        """On the kernels, the cheap pipeline lands on the exhaustive
        search's objective (or within the search-order tie band)."""
        kernel = factory(16)
        machine = dec_alpha()
        brute = combined_brute_force(kernel.nest, machine, bound=2)
        table = permute_then_table(kernel.nest, machine, bound=2)
        assert table.objective <= brute.objective * 2 + 1

    def test_legality_respected(self):
        b = NestBuilder("skew")
        I, J = b.loops(("I", 1, "N"), ("J", 0, "N"))
        b.assign(b.ref("A", I, J), b.ref("A", I - 1, J + 1) + 1.0)
        result = combined_brute_force(b.build(), dec_alpha(), bound=2)
        assert result.order == (0, 1)  # interchange is illegal here
