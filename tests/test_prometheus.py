"""Prometheus exposition: golden file, invariants, content negotiation.

The exposition contract of :mod:`repro.obs.prom`:

* a golden-file test pins the exact text rendered for a deterministic
  metrics snapshot (``tests/golden/metrics.prom``);
* label values are escaped per the exposition spec (backslash, double
  quote, newline);
* histogram ``_bucket`` series are cumulative and monotone, close with
  ``le="+Inf"``, and ``_sum``/``_count`` agree with the JSON snapshot;
* ``GET /metrics`` content-negotiates: the default JSON document is
  unchanged, ``Accept: text/plain`` or ``?format=prometheus`` switches
  to the text exposition;
* ``python -m repro metrics --from`` renders the same text offline.

Plus the :class:`StageStats` percentile regression tests (single
observation, identical merged observations, degenerate histograms).
"""

from __future__ import annotations

import http.client
import json
import pathlib
import re

import pytest

from repro.cli import main as cli_main
from repro.engine import AnalysisEngine
from repro.engine.metrics import BUCKET_BOUNDS, Metrics, StageStats
from repro.obs import prom
from repro.serve.batcher import BatchConfig
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServerThread

GOLDEN = pathlib.Path(__file__).parent / "golden" / "metrics.prom"

def golden_snapshot() -> Metrics:
    """A fully deterministic Metrics object (no wall-clock timers)."""
    metrics = Metrics()
    metrics.count("engine.optimize", 7)
    metrics.count("tables.hit", 5)
    metrics.count("tables.miss", 2)
    for seconds in (2e-5, 8e-5, 3e-4, 3e-4, 0.002, 0.04, 0.4, 2.5, 15.0):
        metrics.observe("stage.optimize", seconds)
    metrics.observe("stage.analyze", 0.005)
    return metrics

GOLDEN_GAUGES = {"repro_uptime_seconds": 12.5, "repro_queue_depth": 3}

def parse_samples(text: str) -> dict[str, float]:
    """``{'family{labels}': value}`` for every non-comment line."""
    samples: dict[str, float] = {}
    for line in text.strip().splitlines():
        if line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
    return samples

class TestGoldenFile:
    def test_exposition_matches_golden(self):
        text = prom.snapshot_to_exposition(golden_snapshot().snapshot(),
                                           gauges=GOLDEN_GAUGES)
        assert text == GOLDEN.read_text(), \
            "exposition drifted from tests/golden/metrics.prom; if the " \
            "change is intentional, regenerate via " \
            "`python -m tests.test_prometheus`"

    def test_golden_text_parses(self):
        text = GOLDEN.read_text()
        assert text.endswith("\n")
        name_re = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*")
        for line in text.strip().splitlines():
            if line.startswith("# TYPE"):
                assert line.split()[3] in ("counter", "gauge", "histogram")
                continue
            if line.startswith("#"):
                continue
            assert name_re.match(line), line
            float(line.rsplit(" ", 1)[1])

class TestExpositionInvariants:
    def test_label_escaping(self):
        text = prom.render_exposition(
            {'weird\\name"with\nnewline': 1}, {}, BUCKET_BOUNDS)
        assert r'name="weird\\name\"with\nnewline"' in text

    def test_escape_label_roundtrip_chars(self):
        assert prom.escape_label('a"b') == r'a\"b'
        assert prom.escape_label("a\\b") == r"a\\b"
        assert prom.escape_label("a\nb") == r"a\nb"

    def test_sanitize_metric_name(self):
        assert prom.sanitize_metric_name("cache.hit-rate") == \
            "cache_hit_rate"
        assert prom.sanitize_metric_name("9lives")[0] == "_"

    def test_buckets_cumulative_monotone_and_closed(self):
        snapshot = golden_snapshot().snapshot()
        text = prom.snapshot_to_exposition(snapshot)
        samples = parse_samples(text)
        for stage, data in snapshot["stages"].items():
            series = [samples[f'{prom.STAGE_FAMILY}_bucket'
                              f'{{stage="{stage}",le="{bound}"}}']
                      for bound in ("1e-05", "0.0001", "0.001", "0.01",
                                    "0.1", "1", "10", "+Inf")]
            assert series == sorted(series), f"{stage} not monotone"
            assert series[-1] == data["count"]

    def test_sum_count_agree_with_json_snapshot(self):
        snapshot = golden_snapshot().snapshot()
        samples = parse_samples(prom.snapshot_to_exposition(snapshot))
        for stage, data in snapshot["stages"].items():
            assert samples[f'{prom.STAGE_FAMILY}_sum{{stage="{stage}"}}'] \
                == pytest.approx(data["total_s"])
            assert samples[f'{prom.STAGE_FAMILY}_count{{stage="{stage}"}}'] \
                == data["count"]

    def test_counters_match_snapshot(self):
        snapshot = golden_snapshot().snapshot()
        samples = parse_samples(prom.snapshot_to_exposition(snapshot))
        for name, value in snapshot["counters"].items():
            assert samples[f'{prom.COUNTER_FAMILY}{{name="{name}"}}'] \
                == value

    def test_short_histogram_padded_to_inf(self):
        stages = {"degenerate": {"count": 2, "total_s": 0.5,
                                 "histogram": [2]}}
        samples = parse_samples(
            prom.render_exposition({}, stages, BUCKET_BOUNDS))
        assert samples['repro_stage_duration_seconds_bucket'
                       '{stage="degenerate",le="+Inf"}'] == 2

    def test_document_to_exposition_adds_gauges(self):
        document = {
            "uptime_s": 4.25, "queue_depth": 1, "in_flight": 2,
            "cache": {"hit_rates": {"tables": 0.75}},
            "metrics": golden_snapshot().snapshot(),
        }
        text = prom.document_to_exposition(document)
        samples = parse_samples(text)
        assert samples["repro_uptime_seconds"] == 4.25
        assert samples["repro_queue_depth"] == 1
        assert samples["repro_in_flight"] == 2
        assert samples["repro_cache_hit_rate_tables"] == 0.75

class TestServeContentNegotiation:
    @pytest.fixture(scope="class")
    def server(self):
        config = ServeConfig(port=0, batch=BatchConfig(deadline_s=0.005))
        with ServerThread(config, AnalysisEngine()) as handle:
            client = ServeClient(port=handle.port)
            client.optimize("jacobi", bound=2)  # populate some metrics
            yield handle
            client.close()

    def _get(self, server, path: str, accept: str | None = None):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            headers = {"Accept": accept} if accept else {}
            conn.request("GET", path, headers=headers)
            response = conn.getresponse()
            return (response.status, response.getheader("content-type"),
                    response.read().decode("utf-8"))
        finally:
            conn.close()

    def test_default_stays_json(self, server):
        status, content_type, body = self._get(server, "/metrics")
        assert status == 200
        assert content_type == "application/json"
        document = json.loads(body)
        assert "metrics" in document and "uptime_s" in document

    def test_accept_text_plain_switches_to_exposition(self, server):
        status, content_type, body = self._get(server, "/metrics",
                                               accept="text/plain")
        assert status == 200
        assert content_type == prom.CONTENT_TYPE
        assert "# TYPE repro_counter_total counter" in body
        assert "repro_uptime_seconds" in body

    def test_query_format_prometheus(self, server):
        status, content_type, body = self._get(
            server, "/metrics?format=prometheus")
        assert status == 200
        assert content_type == prom.CONTENT_TYPE
        samples = parse_samples(body)
        assert samples['repro_counter_total{name="engine.optimize"}'] >= 1

    def test_exposition_agrees_with_json_document(self, server):
        _, _, json_body = self._get(server, "/metrics")
        _, _, text = self._get(server, "/metrics?format=prometheus")
        document = json.loads(json_body)
        samples = parse_samples(text)
        for name, value in document["metrics"]["counters"].items():
            assert samples[f'repro_counter_total{{name="{name}"}}'] == value
        for stage, data in document["metrics"]["stages"].items():
            assert samples[f'repro_stage_duration_seconds_count'
                           f'{{stage="{stage}"}}'] == data["count"]

    def test_unknown_format_falls_back_to_json(self, server):
        status, content_type, _ = self._get(server,
                                            "/metrics?format=pickle")
        assert status == 200
        assert content_type == "application/json"

class TestMetricsCli:
    def test_metrics_from_file(self, capsys, tmp_path):
        document = {"uptime_s": 1.0,
                    "metrics": golden_snapshot().snapshot()}
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(document))
        code = cli_main(["metrics", "--from", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "# TYPE repro_counter_total counter" in out
        assert "repro_uptime_seconds 1" in out

    def test_metrics_from_file_json_format(self, capsys, tmp_path):
        document = {"metrics": golden_snapshot().snapshot()}
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(document))
        code = cli_main(["metrics", "--from", str(path), "--format",
                         "json"])
        out = capsys.readouterr().out
        assert code == 0
        assert json.loads(out)["metrics"]["counters"]["tables.hit"] == 5

    def test_metrics_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["metrics", "--from", str(tmp_path / "absent.json")])

class TestStagePercentileRegression:
    """StageStats percentiles for degenerate histograms.

    A single-observation stage (every stage on a cold quick run) must
    report that observation for every percentile -- not 0.0 or a bucket
    bound -- and merged identical observations behave the same way.
    """

    def test_single_observation_is_exact(self):
        stats = StageStats()
        stats.observe(0.5)
        for q in (0.5, 0.95, 0.99, 1.0):
            assert stats.percentile(q) == 0.5
        assert stats.to_dict()["p95_s"] == 0.5

    def test_merged_identical_observations(self):
        local = StageStats()
        local.observe(0.03)
        remote = StageStats()
        remote.observe(0.03)
        local.merge_dict(remote.to_dict())
        assert local.count == 2
        assert local.percentile(0.95) == 0.03

    def test_merged_snapshot_without_histogram_stays_in_range(self):
        stats = StageStats()
        stats.merge_dict({"count": 4, "total_s": 8.0, "min_s": 1.5,
                          "max_s": 2.5, "histogram": []})
        for q in (0.5, 0.95, 0.99):
            assert 1.5 <= stats.percentile(q) <= 2.5

    def test_percentiles_stay_inside_observed_range(self):
        stats = StageStats()
        for seconds in (0.011, 0.012, 0.013, 0.09):
            stats.observe(seconds)
        for q in (0.25, 0.5, 0.75, 0.95, 0.99):
            assert stats.min <= stats.percentile(q) <= stats.max

    def test_invalid_rank_rejected(self):
        stats = StageStats()
        stats.observe(0.1)
        with pytest.raises(ValueError):
            stats.percentile(0.0)
        with pytest.raises(ValueError):
            stats.percentile(1.5)

    def test_empty_stage_answers_zero(self):
        assert StageStats().percentile(0.95) == 0.0

class TestFederatedExposition:
    """The cluster router's multi-shard document (docs/CLUSTER.md)."""

    def _document(self) -> dict:
        shard0 = Metrics()
        shard0.count("serve.responses_2xx", 3)
        shard0.observe("stage.analysis", 0.02)
        shard1 = Metrics()
        shard1.count("serve.responses_2xx", 2)
        router = Metrics()
        router.count("cluster.requests", 5)
        return {
            "federated": True,
            "uptime_s": 12.5,
            "cluster": {"target": 2, "ready": 2, "generation": 4,
                        "pending": 1, "states": {"ready": 2}},
            "router": {"metrics": router.snapshot()},
            "metrics": {},  # merged view not used by the exposition
            "shards": {
                "0": {"uptime_s": 10.0, "queue_depth": 1, "in_flight": 2,
                      "metrics": shard0.snapshot()},
                "1": {"uptime_s": 9.0, "queue_depth": 0, "in_flight": 0,
                      "metrics": shard1.snapshot()},
            },
        }

    def test_per_shard_labels_and_cluster_gauges(self):
        text = prom.document_to_exposition(self._document())
        assert "repro_cluster_workers_ready 2" in text
        assert "repro_cluster_generation 4" in text
        assert 'repro_shard_up{shard="0"} 1' in text
        assert 'repro_shard_queue_depth{shard="0"} 1' in text
        assert ('repro_counter_total{name="serve.responses_2xx",'
                'shard="0"} 3') in text
        assert ('repro_counter_total{name="serve.responses_2xx",'
                'shard="1"} 2') in text
        assert ('repro_counter_total{name="cluster.requests",'
                'shard="router"} 5') in text
        assert ('repro_stage_duration_seconds_count'
                '{stage="stage.analysis",shard="0"} 1') in text

    def test_type_headers_appear_once_per_family(self):
        text = prom.document_to_exposition(self._document())
        assert text.count("# TYPE repro_counter_total counter") == 1
        assert text.count(
            "# TYPE repro_stage_duration_seconds histogram") == 1

    def test_cli_renders_a_saved_federated_document(self, tmp_path,
                                                    capsys):
        saved = tmp_path / "federated.json"
        saved.write_text(json.dumps(self._document()))
        assert cli_main(["metrics", "--from", str(saved)]) == 0
        out = capsys.readouterr().out
        assert 'shard="1"' in out
        assert "repro_cluster_workers_target 2" in out

    def test_empty_cluster_document_renders(self):
        text = prom.document_to_exposition(
            {"shards": {}, "cluster": {}, "uptime_s": 0.0})
        assert "repro_cluster_workers_ready 0" in text

def _regenerate_golden() -> None:
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(prom.snapshot_to_exposition(
        golden_snapshot().snapshot(), gauges=GOLDEN_GAUGES))
    print(f"wrote {GOLDEN}")

if __name__ == "__main__":
    _regenerate_golden()
