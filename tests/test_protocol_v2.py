"""The v2 wire protocol: codec round-trips, frame fuzz, error schema.

Three properties the data plane stands on, proved without sockets:

* **round-trip fidelity** -- any JSON-shaped document survives
  ``pack_obj``/``unpack_obj`` unchanged, re-encoding a decoded frame is
  byte-identical (the determinism the server's encoded-response cache
  keys on), and a request parsed from a frame yields the same
  ``RequestSpec`` -- and the same structural key -- as the JSON path;
* **malformed input is typed** -- random truncations, bit flips, and
  depth bombs raise a 400 ``bad_frame`` :class:`ProtocolError`, never
  an uncaught exception (a frame-speaking server can therefore always
  answer with the error envelope instead of dropping the socket);
* **one error schema** -- every catalogued code produces the full
  ``{ok, error: {type, code, kind, message, retryable, retry_after}}``
  document with ``type`` aliasing ``code`` for v1 clients.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import api
from repro.serve import protocol
from repro.serve.protocol import (
    ERROR_CATALOG,
    FRAME_REQUEST,
    KINDS,
    MACHINE_IDS,
    ProtocolError,
    decode_frame,
    encode_request_frame,
    encode_response_frame,
    error_payload,
    pack_obj,
    parse_frame_request,
    parse_request,
    peek_frame,
    request_cache_key,
    unpack_obj,
)

def _random_obj(rng: random.Random, depth: int = 0) -> object:
    """A random JSON-shaped value (the full pack_obj domain sans bytes)."""
    choices = ["none", "bool", "int", "float", "str"]
    if depth < 3:
        choices += ["list", "dict"]
    pick = rng.choice(choices)
    if pick == "none":
        return None
    if pick == "bool":
        return rng.random() < 0.5
    if pick == "int":
        return rng.randint(-2**62, 2**62)
    if pick == "float":
        return rng.choice([0.0, -1.5, 3.14159, 1e300, -2e-9])
    if pick == "str":
        return "".join(rng.choice("abcXYZ017 é中") for _ in
                       range(rng.randint(0, 12)))
    if pick == "list":
        return [_random_obj(rng, depth + 1)
                for _ in range(rng.randint(0, 4))]
    return {f"k{i}": _random_obj(rng, depth + 1)
            for i in range(rng.randint(0, 4))}

class TestPackedCodec:
    def test_round_trips_random_documents(self):
        rng = random.Random(1997)
        for _ in range(300):
            obj = _random_obj(rng)
            assert unpack_obj(pack_obj(obj)) == obj

    def test_bytes_round_trip(self):
        blob = bytes(range(256))
        assert unpack_obj(pack_obj({"blob": blob})) == {"blob": blob}

    def test_deterministic_under_key_order(self):
        a = pack_obj({"x": 1, "y": [True, None], "z": "s"})
        b = pack_obj({"z": "s", "y": [True, None], "x": 1})
        assert a == b

    def test_rejects_unpackable_values(self):
        with pytest.raises(ValueError):
            pack_obj({"bad": object()})
        with pytest.raises(ValueError):
            pack_obj({1: "non-string key"})
        with pytest.raises(ValueError):
            pack_obj(2**70)

    def test_depth_bomb_both_directions(self):
        nested: object = 0
        for _ in range(40):
            nested = [nested]
        with pytest.raises(ValueError):
            pack_obj(nested)
        # Hand-build a 40-deep packed list: [ [ [ ... 0 ... ] ] ]
        packed = b"i" + (0).to_bytes(8, "big")
        for _ in range(40):
            packed = b"l" + (1).to_bytes(4, "big") + packed
        with pytest.raises(ProtocolError):
            unpack_obj(packed)

    def test_truncation_fuzz_is_typed(self):
        rng = random.Random(7)
        packed = pack_obj({"nest": "jacobi", "bound": 4,
                           "xs": [1.5, None, "s", True]})
        for cut in range(len(packed)):
            with pytest.raises(ProtocolError) as err:
                unpack_obj(packed[:cut] if cut else b"")
            assert err.value.error_type == "bad_frame"
        for _ in range(200):
            blob = bytes(rng.randrange(256)
                         for _ in range(rng.randint(0, 64)))
            try:
                unpack_obj(blob)
            except ProtocolError:
                pass  # typed rejection is the contract

class TestFrames:
    def test_request_round_trip_all_verbs_and_machines(self):
        nest = api.coerce_nest("jacobi")
        key = nest.structural_key()
        doc = {"nest": api.serialize_nest(nest), "bound": 4}
        for kind in KINDS:
            for machine in (*MACHINE_IDS, "custom-box", None):
                body = encode_request_frame(kind, dict(doc), key=key,
                                            machine=machine)
                spec, frame = parse_frame_request(body)
                assert spec.kind == kind
                assert frame.key == key
                assert spec.machine == (machine or "alpha")
                if machine in MACHINE_IDS:
                    # Registered presets ride the header byte, not the
                    # payload.
                    assert frame.machine_id == MACHINE_IDS[machine]
                    assert "machine" not in frame.payload()
                assert api.coerce_nest(spec.nest).structural_key() == key

    def test_reencode_is_byte_identical(self):
        nest = api.coerce_nest("mmjik")
        body = encode_request_frame(
            "optimize", {"nest": api.serialize_nest(nest), "bound": 3},
            key=nest.structural_key(), machine="alpha")
        frame, payload = decode_frame(body)
        again = encode_request_frame(frame.kind, payload,
                                     key=frame.key_raw,
                                     machine=frame.machine)
        assert again == body

    def test_frame_spec_matches_json_spec(self):
        nest = api.coerce_nest("jacobi")
        doc = {"nest": api.serialize_nest(nest), "machine": "pa",
               "bound": 5, "trip": 64}
        json_spec = parse_request("optimize", json.dumps(doc).encode())
        frame_spec, _ = parse_frame_request(
            encode_request_frame("optimize", doc, machine="pa"))
        assert frame_spec == json_spec
        assert (api.coerce_nest(frame_spec.nest).structural_key()
                == api.coerce_nest(json_spec.nest).structural_key())

    def test_response_and_error_frames(self):
        ok = encode_response_frame({"ok": True, "kind": "optimize"},
                                   kind="optimize")
        frame, payload = decode_frame(ok)
        assert frame.ftype == protocol.FRAME_RESPONSE
        assert payload["ok"] is True
        err = encode_response_frame(error_payload("overloaded", "busy",
                                                  retry_after=0.5),
                                    error=True)
        frame, payload = decode_frame(err)
        assert frame.ftype == protocol.FRAME_ERROR
        assert payload["error"]["retry_after"] == 0.5

    def test_cache_key_ignores_header_key(self):
        """A lying client must not be able to poison the fast-path cache:
        the key is (verb, machine, payload digest), never the header."""
        doc = {"nest": "jacobi"}
        honest = peek_frame(encode_request_frame(
            "optimize", doc, key=api.coerce_nest("jacobi").structural_key(),
            machine="alpha"))
        liar = peek_frame(encode_request_frame(
            "optimize", doc, key=b"\x17" * 32, machine="alpha"))
        assert honest.key != liar.key
        assert request_cache_key(honest) == request_cache_key(liar)
        other = peek_frame(encode_request_frame(
            "optimize", {"nest": "mmjik"}, machine="alpha"))
        assert request_cache_key(other) != request_cache_key(honest)

    def test_header_fuzz_is_typed(self):
        nest = api.coerce_nest("jacobi")
        body = encode_request_frame(
            "optimize", {"nest": api.serialize_nest(nest)},
            key=nest.structural_key(), machine="alpha")
        # Every truncation point.
        for cut in range(len(body)):
            with pytest.raises(ProtocolError):
                peek_frame(body[:cut])
        # Every single-byte corruption of the prefix + header either
        # still parses or raises the typed error -- never anything else.
        rng = random.Random(23)
        for offset in range(4 + 45):  # length prefix + packed header
            corrupt = bytearray(body)
            corrupt[offset] ^= 1 + rng.randrange(255)
            try:
                parse_frame_request(bytes(corrupt))
            except ProtocolError as err:
                assert err.status in (400, 404)

    def test_specific_header_rejections(self):
        good = encode_request_frame("optimize", {"nest": "jacobi"},
                                    machine="alpha")
        wrong_magic = bytearray(good)
        wrong_magic[4:8] = b"NOPE"
        with pytest.raises(ProtocolError) as err:
            peek_frame(bytes(wrong_magic))
        assert "magic" in str(err.value)
        wrong_version = bytearray(good)
        wrong_version[8] = 99
        with pytest.raises(ProtocolError) as err:
            peek_frame(bytes(wrong_version))
        assert "version" in str(err.value)
        # A response frame on the request path is rejected, typed.
        response = encode_response_frame({"ok": True})
        with pytest.raises(ProtocolError):
            parse_frame_request(response)
        # Key flag set but the key bytes all zero.
        zero_key = bytearray(encode_request_frame(
            "optimize", {"nest": "jacobi"}, key=b"\x01" * 32))
        zero_key[13:45] = b"\x00" * 32  # the header's 32 key bytes
        with pytest.raises(ProtocolError):
            peek_frame(bytes(zero_key))

    def test_unknown_kind_and_machine_ids(self):
        nest_doc = {"nest": "jacobi"}
        raw = bytearray(encode_request_frame("optimize", nest_doc))
        raw[9 + 1] = 201  # kind code slot
        with pytest.raises(ProtocolError):
            parse_frame_request(bytes(raw))
        raw = bytearray(encode_request_frame("optimize", nest_doc))
        raw[9 + 3] = 250  # machine id slot
        with pytest.raises(ProtocolError):
            parse_frame_request(bytes(raw))

class TestErrorSchema:
    def test_every_catalogued_code(self):
        for code, (kind, retryable) in ERROR_CATALOG.items():
            doc = error_payload(code, "boom")
            assert doc["ok"] is False
            err = doc["error"]
            assert err["code"] == code == err["type"]
            assert err["kind"] == kind
            assert err["retryable"] is retryable
            assert err["retry_after"] is None
            assert err["message"] == "boom"

    def test_unknown_code_defaults_to_client(self):
        err = error_payload("never-heard-of-it", "m")["error"]
        assert err["kind"] == "client" and err["retryable"] is False

    def test_protocol_error_payload_carries_retry_after(self):
        exc = ProtocolError(429, "overloaded", "queue full",
                            retry_after=1.25)
        doc = exc.payload()
        assert doc["error"]["retry_after"] == 1.25
        assert doc["error"]["retryable"] is True

    def test_frame_and_json_error_bodies_agree(self):
        doc = error_payload("unknown_kernel", "no such kernel")
        via_frame = decode_frame(encode_response_frame(doc, error=True))[1]
        via_json = json.loads(json.dumps(doc))
        assert via_frame == via_json
