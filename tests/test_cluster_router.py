"""Router behavior against fake in-process workers (no subprocesses).

Covers the routing contracts of docs/CLUSTER.md: sticky structural-key
routing of identical nests, least-pending fallback for unparseable
bodies, failover re-route when the owning worker dies mid-request,
503-with-Retry-After when no worker is READY, and 502 when every
candidate fails.  The workers here are tiny asyncio HTTP servers living
on the test's own event loop, so each scenario is exact and fast.
"""

from __future__ import annotations

import asyncio
import json

from repro.cluster.membership import DRAINING, READY
from repro.cluster.router import ClusterRouter, SHARD_HEADER
from repro.cluster.supervisor import ClusterConfig
from repro.serve.http import Request

class FakeWorker:
    """A minimal keep-alive HTTP worker that echoes its shard id.

    ``mode='hang-up'`` accepts the request and closes the connection
    without answering -- a worker dying mid-request.
    """

    def __init__(self, slot: int, mode: str = "ok"):
        self.slot = slot
        self.mode = mode
        self.requests = 0
        self.server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    async def start(self) -> "FakeWorker":
        self.server = await asyncio.start_server(self._handle,
                                                 "127.0.0.1", 0)
        self.port = self.server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line or not line.strip():
                    break
                headers = {}
                while True:
                    header = await reader.readline()
                    if header in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = header.decode().partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0"))
                if length:
                    await reader.readexactly(length)
                self.requests += 1
                if self.mode == "hang-up":
                    break
                body = json.dumps({"ok": True, "shard": self.slot,
                                   "trace": headers.get(
                                       "x-repro-trace-id")}).encode()
                writer.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"content-type: application/json\r\n"
                    b"content-length: " + str(len(body)).encode() +
                    b"\r\nconnection: keep-alive\r\n\r\n" + body)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

def make_router(**overrides) -> ClusterRouter:
    config = ClusterConfig(workers=0, probe_timeout_s=2.0, **overrides)
    return ClusterRouter(config)

async def enroll(router: ClusterRouter, worker: FakeWorker,
                 state: str = READY) -> None:
    info = router.membership.transition(worker.slot, state)
    info.port = worker.port

def post(kind: str, payload: dict | bytes) -> Request:
    body = payload if isinstance(payload, bytes) \
        else json.dumps(payload).encode()
    return Request("POST", f"/v1/{kind}", {}, body, keep_alive=True)

def parse(raw: bytes) -> tuple[int, dict, dict]:
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body) if body else {}

class TestRouting:
    def test_identical_nests_stick_to_one_worker(self):
        async def scenario():
            router = make_router()
            workers = [await FakeWorker(slot).start() for slot in range(3)]
            for worker in workers:
                await enroll(router, worker)
            shards = set()
            for _ in range(6):
                raw = await router._respond(post("optimize",
                                                 {"nest": "mmjik"}))
                status, headers, doc = parse(raw)
                assert status == 200 and doc["ok"]
                shards.add(headers[SHARD_HEADER])
            # ...while a different nest may land elsewhere, the same
            # nest never moves.
            assert len(shards) == 1
            for worker in workers:
                await worker.stop()

        asyncio.run(scenario())

    def test_structural_key_ignores_machine_and_params(self):
        async def scenario():
            router = make_router()
            for machine in ("alpha", "pa"):
                for bound in (2, 5):
                    key = router.structural_key(json.dumps(
                        {"nest": "mmjik", "machine": machine,
                         "bound": bound}).encode())
                    assert key == router.structural_key(
                        json.dumps({"nest": "mmjik"}).encode())

        asyncio.run(scenario())

    def test_key_cache_is_bounded_and_reused(self):
        async def scenario():
            router = make_router(key_cache=4)
            body = json.dumps({"nest": "mmjik"}).encode()
            first = router.structural_key(body)
            assert router.structural_key(body) == first
            assert len(router._keys) == 1
            for index in range(10):  # unknown kernels cache None too
                router.structural_key(
                    json.dumps({"nest": f"nope-{index}"}).encode())
            assert len(router._keys) <= 4

        asyncio.run(scenario())

    def test_unparseable_body_falls_back_to_least_pending(self):
        async def scenario():
            router = make_router()
            workers = [await FakeWorker(slot).start() for slot in range(2)]
            for worker in workers:
                await enroll(router, worker)
            router.membership.workers[0].pending = 7  # slot 1 is idle
            raw = await router._respond(post("optimize", b"this is not json"))
            status, headers, _ = parse(raw)
            assert status == 200
            assert headers[SHARD_HEADER] == "1"
            assert router.metrics.counter("cluster.routed_fallback") == 1
            for worker in workers:
                await worker.stop()

        asyncio.run(scenario())

    def test_failover_when_owner_dies_mid_request(self):
        async def scenario():
            router = make_router()
            good = await FakeWorker(0).start()
            bad = await FakeWorker(1, mode="hang-up").start()
            await enroll(router, good)
            await enroll(router, bad)
            # Find a nest the ring assigns to the hang-up worker so the
            # first attempt really dies mid-request.
            kernel = None
            for name in ("mmjik", "mmjki", "jacobi", "sor", "afold",
                         "dmxpy0", "dmxpy1", "shal", "gmtry.3"):
                key = router.structural_key(
                    json.dumps({"nest": name}).encode())
                if router.membership.ring.lookup(key) == "w1":
                    kernel = name
                    break
            assert kernel is not None
            raw = await router._respond(post("optimize", {"nest": kernel}))
            status, headers, doc = parse(raw)
            assert status == 200 and doc["shard"] == 0
            assert headers[SHARD_HEADER] == "0"
            assert bad.requests == 1  # it really was tried first
            assert router.metrics.counter("cluster.failovers") == 1
            # The supervisor is asked to re-probe the suspect quickly.
            assert router.supervisor._probe_misses.get(1, 0) >= 1
            await good.stop()
            await bad.stop()

        asyncio.run(scenario())

    def test_503_with_retry_after_when_all_draining(self):
        async def scenario():
            router = make_router()
            worker = await FakeWorker(0).start()
            await enroll(router, worker, state=DRAINING)
            raw = await router._respond(post("optimize", {"nest": "mmjik"}))
            status, headers, doc = parse(raw)
            assert status == 503
            assert "retry-after" in headers
            assert doc["error"]["type"] == "no_workers"
            await worker.stop()

        asyncio.run(scenario())

    def test_502_when_every_candidate_fails(self):
        async def scenario():
            router = make_router(retry_attempts=2)
            workers = [await FakeWorker(slot, mode="hang-up").start()
                       for slot in range(2)]
            for worker in workers:
                await enroll(router, worker)
            raw = await router._respond(post("optimize", {"nest": "mmjik"}))
            status, headers, doc = parse(raw)
            assert status == 502
            assert doc["error"]["type"] == "worker_unavailable"
            assert "retry-after" in headers
            for worker in workers:
                await worker.stop()

        asyncio.run(scenario())

    def test_ring_stability_when_worker_leaves(self):
        """Sticky assignments of the *other* workers survive one
        worker's departure -- the cluster-level cache-warmth contract."""
        async def scenario():
            router = make_router()
            workers = [await FakeWorker(slot).start() for slot in range(3)]
            for worker in workers:
                await enroll(router, worker)
            kernels = ("mmjik", "mmjki", "jacobi", "sor", "afold",
                       "dmxpy0", "dmxpy1", "shal")
            before = {}
            for name in kernels:
                key = router.structural_key(
                    json.dumps({"nest": name}).encode())
                before[name] = router.membership.ring.lookup(key)
            router.membership.transition(2, DRAINING)
            for name in kernels:
                key = router.structural_key(
                    json.dumps({"nest": name}).encode())
                after = router.membership.ring.lookup(key)
                if before[name] != "w2":
                    assert after == before[name]
                else:
                    assert after in ("w0", "w1")
            for worker in workers:
                await worker.stop()

        asyncio.run(scenario())

class TestRouterEndpoints:
    def test_health_degraded_without_ready_workers(self):
        async def scenario():
            router = make_router()
            raw = await router._respond(
                Request("GET", "/healthz", {}, b"", True))
            status, _, doc = parse(raw)
            assert status == 503
            assert doc["status"] == "degraded"
            worker = await FakeWorker(0).start()
            await enroll(router, worker)
            raw = await router._respond(
                Request("GET", "/healthz", {}, b"", True))
            status, _, doc = parse(raw)
            assert status == 200 and doc["status"] == "ok"
            assert doc["cluster"]["ready"] == 1
            await worker.stop()

        asyncio.run(scenario())

    def test_unknown_route_and_wrong_method(self):
        async def scenario():
            router = make_router()
            status, _, doc = parse(await router._respond(
                Request("GET", "/nope", {}, b"", True)))
            assert status == 404
            status, _, doc = parse(await router._respond(
                Request("GET", "/v1/optimize", {}, b"", True)))
            assert status == 405
            status, _, doc = parse(await router._respond(
                Request("POST", "/cluster/status", {}, b"", True)))
            assert status == 405

        asyncio.run(scenario())

    def test_scale_validates_body(self):
        async def scenario():
            router = make_router()
            status, _, doc = parse(await router._respond(
                Request("POST", "/cluster/scale", {}, b"garbage", True)))
            assert status == 400
            status, _, doc = parse(await router._respond(Request(
                "POST", "/cluster/scale", {},
                json.dumps({"workers": 0}).encode(), True)))
            assert status == 400

        asyncio.run(scenario())
