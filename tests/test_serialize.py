"""Unroll-table JSON persistence: exact round trips."""

import pytest

from repro.ir.builder import NestBuilder
from repro.kernels.suite import jacobi, mmjik
from repro.unroll.serialize import (
    SerializationError,
    tables_from_json,
    tables_to_json,
)
from repro.unroll.space import UnrollSpace
from repro.unroll.tables import build_tables

def make_tables(nest, dims, bound=3):
    space = UnrollSpace.for_dims(nest.depth, dims, bound)
    return build_tables(nest, space, line_size=4, trip=100)

class TestRoundTrip:
    @pytest.mark.parametrize("factory,dims", [(jacobi, [0]),
                                              (mmjik, [0, 1])],
                             ids=["jacobi", "mmjik"])
    def test_points_identical(self, factory, dims):
        tables = make_tables(factory(12).nest, dims)
        restored = tables_from_json(tables_to_json(tables))
        for u in tables.space:
            a = tables.point(u)
            b = restored.point(u)
            assert (a.flops, a.memory_ops, a.registers, a.gts, a.gss,
                    a.cache_cost) == \
                   (b.flops, b.memory_ops, b.registers, b.gts, b.gss,
                    b.cache_cost), u

    def test_metadata_preserved(self):
        tables = make_tables(jacobi(12).nest, [0])
        restored = tables_from_json(tables_to_json(tables))
        assert restored.line_size == tables.line_size
        assert restored.trip == tables.trip
        assert restored.space.dims == tables.space.dims
        assert restored.nest.name == tables.nest.name

    def test_fractions_exact(self):
        tables = make_tables(jacobi(12).nest, [0])
        text = tables_to_json(tables)
        assert "/" in text  # fractions stored exactly, not as floats
        restored = tables_from_json(text)
        u = tables.space.embed((2,))
        assert restored.point(u).cache_cost == tables.point(u).cache_cost

class TestErrors:
    def test_not_json(self):
        with pytest.raises(SerializationError):
            tables_from_json("not json at all {")

    def test_wrong_format_tag(self):
        with pytest.raises(SerializationError):
            tables_from_json('{"format": "something-else"}')

    def test_mismatched_ugs_detected(self):
        import json

        tables = make_tables(jacobi(12).nest, [0])
        payload = json.loads(tables_to_json(tables))
        payload["ugs"] = payload["ugs"][:1]  # drop a set
        with pytest.raises(SerializationError):
            tables_from_json(json.dumps(payload))
