"""The batch analysis engine: cache keying, LRU, batch parity, failures."""

import pytest

from repro.corpus import CorpusConfig, generate_corpus
from repro.engine import AnalysisEngine, BatchError, disk_cache_stats
from repro.ir.builder import NestBuilder
from repro.machine.presets import dec_alpha
from repro.unroll.optimize import choose_unroll

def _intro_nest(name="intro", outer="J", inner="I", array="A"):
    b = NestBuilder(name)
    J, I = b.loops((outer, 0, "N"), (inner, 0, "M"))
    b.assign(b.ref(array, J), b.ref(array, J) + b.ref("B", I))
    return b.build()

class TestStructuralKey:
    def test_identical_nests_share_key(self):
        assert _intro_nest().structural_key() == \
            _intro_nest().structural_key()

    def test_name_and_description_ignored(self):
        b = NestBuilder("other", "a totally different description")
        J, I = b.loops(("J", 0, "N"), ("I", 0, "M"))
        b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
        assert b.build().structural_key() == _intro_nest().structural_key()

    def test_renamed_loop_variables_collide(self):
        """The contract: induction-variable spelling is canonicalized away."""
        assert _intro_nest(outer="JJ", inner="II").structural_key() == \
            _intro_nest().structural_key()

    def test_renamed_array_does_not_collide(self):
        assert _intro_nest(array="Z").structural_key() != \
            _intro_nest().structural_key()

    def test_changed_bound_does_not_collide(self):
        b = NestBuilder("intro")
        J, I = b.loops(("J", 1, "N"), ("I", 0, "M"))
        b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
        assert b.build().structural_key() != _intro_nest().structural_key()

    def test_swapped_loop_order_does_not_collide(self):
        b = NestBuilder("intro")
        I, J = b.loops(("I", 0, "M"), ("J", 0, "N"))
        b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
        assert b.build().structural_key() != _intro_nest().structural_key()

    def test_key_is_stable_hex(self):
        key = _intro_nest().structural_key()
        assert len(key) == 64
        int(key, 16)  # hex digest

class TestMemoization:
    def test_warm_optimize_hits_tables(self):
        engine = AnalysisEngine()
        machine = dec_alpha()
        nest = _intro_nest()
        first = engine.optimize(nest, machine, bound=4)
        assert engine.metrics.counter("cache.tables.miss") == 1
        second = engine.optimize(nest, machine, bound=4)
        assert engine.metrics.counter("cache.tables.hit") == 1
        assert first.unroll == second.unroll

    def test_renamed_twin_served_from_cache(self):
        engine = AnalysisEngine()
        machine = dec_alpha()
        engine.optimize(_intro_nest(), machine, bound=4)
        result = engine.optimize(_intro_nest(outer="JJ", inner="II"),
                                 machine, bound=4)
        assert engine.metrics.counter("cache.tables.hit") == 1
        # The served result reports the caller's nest, not the twin's.
        assert result.nest.index_names == ("JJ", "II")
        assert result.unroll == choose_unroll(
            _intro_nest(outer="JJ", inner="II"), machine, bound=4).unroll

    def test_lru_eviction(self):
        engine = AnalysisEngine(capacity=1)
        machine = dec_alpha()
        a = _intro_nest()
        b = _intro_nest(array="Z")
        engine.optimize(a, machine, bound=2)
        engine.optimize(b, machine, bound=2)  # evicts a
        engine.optimize(a, machine, bound=2)  # must rebuild
        assert engine.metrics.counter("cache.tables.miss") == 3
        assert engine.metrics.counter("cache.tables.hit") == 0

    def test_different_bound_is_a_different_table(self):
        engine = AnalysisEngine()
        machine = dec_alpha()
        nest = _intro_nest()
        engine.optimize(nest, machine, bound=2)
        engine.optimize(nest, machine, bound=3)
        assert engine.metrics.counter("cache.tables.miss") == 2

    def test_cache_stats_shape(self):
        engine = AnalysisEngine()
        engine.optimize(_intro_nest(), dec_alpha(), bound=2)
        stats = engine.cache_stats()
        assert stats["memory"]["tables"] == 1
        assert stats["hit_rates"]["tables"] == 0.0
        assert stats["disk_enabled"] is False

    def test_clear_drops_memos(self):
        engine = AnalysisEngine()
        machine = dec_alpha()
        engine.optimize(_intro_nest(), machine, bound=2)
        engine.clear()
        engine.optimize(_intro_nest(), machine, bound=2)
        assert engine.metrics.counter("cache.tables.miss") == 2

class TestBatch:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(CorpusConfig(routines=10, seed=42))

    def test_optimize_many_matches_sequential(self, corpus):
        machine = dec_alpha()
        engine = AnalysisEngine()
        report = engine.optimize_many(corpus, machine, bound=3)
        assert all(item.ok for item in report.items)
        expected = [choose_unroll(nest, machine, bound=3).unroll
                    for nest in corpus]
        assert [item.result.unroll for item in report.items] == expected

    def test_poisoned_batch_reports_and_survives(self, corpus):
        machine = dec_alpha()
        engine = AnalysisEngine()
        poisoned = list(corpus[:3]) + [42, BatchError("bad", "no such nest")] \
            + list(corpus[3:5])
        report = engine.optimize_many(poisoned, machine, bound=2)
        oks = [item.ok for item in report.items]
        assert oks == [True, True, True, False, False, True, True]
        assert "not a loop nest" in report.items[3].error
        assert report.items[4].error == "no such nest"
        assert len(report.results) == 5
        assert report.metrics["counters"]["batch.failures"] == 2

    def test_parallel_workers_match_serial(self, corpus):
        machine = dec_alpha()
        serial = AnalysisEngine().optimize_many(corpus, machine, bound=2)
        parallel = AnalysisEngine().optimize_many(corpus, machine, bound=2,
                                                  workers=2)
        assert [item.ok for item in parallel.items] == \
            [item.ok for item in serial.items]
        assert [item.result.unroll for item in parallel.items] == \
            [item.result.unroll for item in serial.items]
        assert parallel.workers == 2

    def test_report_to_dict_is_json_ready(self, corpus):
        import json

        report = AnalysisEngine().optimize_many(corpus[:2], dec_alpha(),
                                                bound=2)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["nests"] == 2
        assert payload["items"][0]["unroll"] is not None
        assert "metrics" in payload

class TestDiskCache:
    def test_round_trip_between_engines(self, tmp_path):
        machine = dec_alpha()
        nest = _intro_nest()
        first = AnalysisEngine(disk_cache=True, cache_dir=tmp_path)
        cold = first.optimize(nest, machine, bound=3)
        assert first.metrics.counter("cache.disk.store") == 1
        stats = disk_cache_stats(tmp_path)
        assert stats["entries"] == 1 and stats["bytes"] > 0

        second = AnalysisEngine(disk_cache=True, cache_dir=tmp_path)
        warm = second.optimize(nest, machine, bound=3)
        assert second.metrics.counter("cache.disk.hit") == 1
        assert second.metrics.counter("cache.tables.hit") == 1
        assert warm.unroll == cold.unroll
        assert warm.breakdown == cold.breakdown

    def test_corrupt_entry_degrades_to_rebuild(self, tmp_path):
        machine = dec_alpha()
        nest = _intro_nest()
        first = AnalysisEngine(disk_cache=True, cache_dir=tmp_path)
        first.optimize(nest, machine, bound=3)
        for path in tmp_path.glob("tables-*.json"):
            path.write_text("{not json")
        second = AnalysisEngine(disk_cache=True, cache_dir=tmp_path)
        result = second.optimize(nest, machine, bound=3)
        assert second.metrics.counter("cache.disk.error") == 1
        assert result.unroll == choose_unroll(nest, machine, bound=3).unroll

    def test_clear_disk_cache(self, tmp_path):
        from repro.engine import clear_disk_cache

        engine = AnalysisEngine(disk_cache=True, cache_dir=tmp_path)
        engine.optimize(_intro_nest(), dec_alpha(), bound=2)
        assert clear_disk_cache(tmp_path) == 1
        assert disk_cache_stats(tmp_path)["entries"] == 0
