"""The consistent-hash ring and cluster membership (no processes).

The load-bearing property is *stability*: when one of N workers leaves,
at most about 1/N of the key space may move -- that is what keeps the
other workers' memo caches warm across membership changes.  Plus the
state machine that decides who is on the ring at all.
"""

from __future__ import annotations

import pytest

from repro.cluster.membership import (
    DEAD,
    DRAINING,
    HashRing,
    Membership,
    READY,
    STARTING,
)

KEYS = [f"nest-key-{i:04d}" for i in range(2000)]

class TestHashRing:
    def test_empty_ring_has_no_owner(self):
        assert HashRing().lookup("anything") is None
        assert HashRing().preference("anything") == []

    def test_single_member_owns_everything(self):
        ring = HashRing(["w0"])
        assert all(ring.lookup(key) == "w0" for key in KEYS)

    def test_lookup_is_deterministic_across_instances(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])  # insertion order is irrelevant
        assert [a.lookup(k) for k in KEYS] == [b.lookup(k) for k in KEYS]

    def test_distribution_is_roughly_even(self):
        ring = HashRing([f"w{i}" for i in range(4)])
        counts: dict[str, int] = {}
        for key in KEYS:
            owner = ring.lookup(key)
            counts[owner] = counts.get(owner, 0) + 1
        # 64 vnodes/member: every member should carry a real share.
        assert all(count > len(KEYS) / 4 / 3 for count in counts.values())

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_member_leave_moves_at_most_its_share(self, n):
        """Removing one of n members only re-slots the keys it owned."""
        members = [f"w{i}" for i in range(n)]
        ring = HashRing(members)
        before = {key: ring.lookup(key) for key in KEYS}
        ring.remove("w0")
        moved = sum(1 for key in KEYS
                    if ring.lookup(key) != before[key])
        owned = sum(1 for key in KEYS if before[key] == "w0")
        # Exactly the departed member's keys move, nothing else...
        assert moved == owned
        # ...and its share is near 1/n (generous 2x slack for variance).
        assert moved <= 2 * len(KEYS) / n

    def test_member_join_steals_only_from_the_share_it_takes(self):
        ring = HashRing(["w0", "w1", "w2"])
        before = {key: ring.lookup(key) for key in KEYS}
        ring.add("w3")
        moved = [key for key in KEYS if ring.lookup(key) != before[key]]
        # Every moved key moved TO the new member, none between old ones.
        assert all(ring.lookup(key) == "w3" for key in moved)
        assert len(moved) <= 2 * len(KEYS) / 4

    def test_rejoin_restores_exact_ownership(self):
        """A restarted worker (same slot id) re-slots onto exactly the
        points its predecessor owned."""
        ring = HashRing(["w0", "w1", "w2"])
        before = {key: ring.lookup(key) for key in KEYS}
        ring.remove("w1")
        ring.add("w1")
        assert {key: ring.lookup(key) for key in KEYS} == before

    def test_preference_starts_with_owner_and_covers_everyone(self):
        ring = HashRing(["w0", "w1", "w2"])
        for key in KEYS[:50]:
            order = ring.preference(key)
            assert order[0] == ring.lookup(key)
            assert sorted(order) == ["w0", "w1", "w2"]

    def test_preference_second_choice_is_the_failover_owner(self):
        """The key moves to preference[1] when the owner leaves."""
        ring = HashRing(["w0", "w1", "w2"])
        for key in KEYS[:50]:
            owner, successor = ring.preference(key)[:2]
            ring.remove(owner)
            assert ring.lookup(key) == successor
            ring.add(owner)

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

class TestMembership:
    def test_only_ready_workers_hold_ring_points(self):
        membership = Membership()
        membership.ensure(0)
        membership.ensure(1)
        assert len(membership.ring) == 0
        membership.transition(0, READY)
        assert membership.ring.members == {"w0"}
        membership.transition(1, READY)
        membership.transition(0, DRAINING)
        assert membership.ring.members == {"w1"}

    def test_generation_bumps_on_ring_changes_only(self):
        membership = Membership()
        membership.ensure(0)
        g0 = membership.generation
        membership.transition(0, STARTING)  # no ring change
        assert membership.generation == g0
        membership.transition(0, READY)
        assert membership.generation == g0 + 1
        membership.transition(0, DEAD)
        assert membership.generation == g0 + 2

    def test_route_prefers_ring_owner_then_failovers(self):
        membership = Membership()
        for slot in range(3):
            membership.transition(slot, READY)
        key = "some-structural-key"
        ordered = membership.route(key)
        assert [info.member_id for info in ordered] == \
            membership.ring.preference(key)
        # The dead owner disappears from the candidate list entirely.
        owner = ordered[0]
        membership.transition(owner.slot, DEAD)
        survivors = membership.route(key)
        assert owner not in survivors
        assert len(survivors) == 2

    def test_route_without_key_is_least_pending(self):
        membership = Membership()
        for slot in range(3):
            membership.transition(slot, READY)
        membership.workers[0].pending = 5
        membership.workers[1].pending = 1
        membership.workers[2].pending = 3
        assert [info.slot for info in membership.route(None)] == [1, 2, 0]
        assert membership.least_pending().slot == 1

    def test_route_empty_when_nobody_ready(self):
        membership = Membership()
        membership.transition(0, DRAINING)
        assert membership.route("key") == []
        assert membership.route(None) == []
        assert membership.least_pending() is None

    def test_to_dict_summarizes_states(self):
        membership = Membership()
        membership.transition(0, READY)
        membership.transition(1, DEAD)
        document = membership.to_dict()
        assert document["states"] == {READY: 1, DEAD: 1}
        assert document["workers"]["0"]["state"] == READY
        assert document["workers"]["1"]["state"] == DEAD
