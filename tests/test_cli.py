"""CLI tests (driving main() in-process and capturing stdout)."""

import pytest

from repro.cli import main

def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out

class TestKernelsAndShow:
    def test_kernels_lists_all(self, capsys):
        code, out = run_cli(capsys, "kernels")
        assert code == 0
        for name in ("jacobi", "mmjik", "shal"):
            assert name in out

    def test_show_kernel(self, capsys):
        code, out = run_cli(capsys, "show", "jacobi")
        assert code == 0
        assert "DO I" in out and "B(I-1, J)" in out.replace(" ", "") \
            or "B(I-1" in out.replace(" ", "")

    def test_show_file(self, capsys, tmp_path):
        path = tmp_path / "loop.f"
        path.write_text("DO I = 0, N\n  A(I) = B(I) * 2\nENDDO\n")
        code, out = run_cli(capsys, "show", str(path))
        assert code == 0
        assert "A(I)" in out

    def test_unknown_nest_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["show", "not-a-kernel"])

class TestAnalyzeOptimize:
    def test_analyze_kernel(self, capsys):
        code, out = run_cli(capsys, "analyze", "dmxpy1")
        assert code == 0
        assert "loop balance" in out
        assert "Uniformly generated sets" in out

    def test_optimize_kernel(self, capsys):
        code, out = run_cli(capsys, "optimize", "dmxpy1", "--bound", "4",
                            "--quiet")
        assert code == 0
        assert "chosen unroll vector" in out
        assert "beta_L" in out

    def test_optimize_file(self, capsys, tmp_path):
        path = tmp_path / "loop.f"
        path.write_text(
            "DO J = 0, N\n  DO I = 0, M\n    A(J) = A(J) + B(I)\n"
            "  ENDDO\nENDDO\n")
        code, out = run_cli(capsys, "optimize", str(path), "--machine", "pa",
                            "--bound", "4")
        assert code == 0
        assert "chosen unroll vector" in out
        assert "transformed" in out or "(0, 0)" in out

    def test_no_cache_flag(self, capsys):
        code, out = run_cli(capsys, "optimize", "jacobi", "--no-cache",
                            "--bound", "2", "--quiet")
        assert code == 0

    def test_bad_machine_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "jacobi", "--machine", "cray"])

class TestSimulate:
    def test_explicit_unroll(self, capsys):
        code, out = run_cli(capsys, "simulate", "dmxpy1", "--unroll", "3,0")
        assert code == 0
        assert "normalized time" in out

    def test_file_kernel_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "/tmp/nope.f"])

class TestExperiments:
    def test_table1_small(self, capsys):
        code, out = run_cli(capsys, "table1", "--routines", "60")
        assert code == 0
        assert "Table 1" in out and "90%-100%" in out

class TestNewCommands:
    def test_prefetch_plan(self, capsys):
        code, out = run_cli(capsys, "prefetch", "jacobi")
        assert code == 0
        assert "PREFETCH" in out

    def test_export_text(self, capsys):
        code, out = run_cli(capsys, "export", "gmtry.3")
        assert code == 0
        assert "flow" in out

    def test_export_dot(self, capsys):
        code, out = run_cli(capsys, "export", "gmtry.3", "--format", "dot")
        assert code == 0
        assert out.startswith("digraph")

    def test_export_no_input(self, capsys):
        _, full = run_cli(capsys, "export", "jacobi")
        _, lean = run_cli(capsys, "export", "jacobi", "--no-input")
        assert len(lean) <= len(full)

    def test_distribute(self, capsys):
        code, out = run_cli(capsys, "distribute", "shal")
        assert code == 0
        assert "3 pi-block" in out

    def test_schedule(self, capsys):
        code, out = run_cli(capsys, "schedule", "dmxpy1", "--unroll", "2,0")
        assert code == 0
        assert "initiation interval" in out

class TestBatchAndCache:
    def test_batch_kernel_names(self, capsys):
        code, out = run_cli(capsys, "batch", "jacobi", "afold",
                            "--bound", "3")
        assert code == 0
        assert "jacobi" in out and "afold" in out
        assert "nests/sec" in out

    def test_batch_directory(self, capsys, tmp_path):
        (tmp_path / "a.f").write_text(
            "DO J = 0, N\n  DO I = 0, M\n    A(J) = A(J) + B(I)\n"
            "  ENDDO\nENDDO\n")
        (tmp_path / "b.f").write_text("DO I = 0, N\n  A(I) = B(I) * 2\nENDDO\n")
        code, out = run_cli(capsys, "batch", str(tmp_path), "--bound", "2")
        assert code == 0
        assert "a" in out and "b" in out and "2 nest(s)" in out

    def test_batch_json_reports_failures(self, capsys, tmp_path):
        import json

        (tmp_path / "broken.f").write_text("DO I = 0, N\nENDDO\n")
        code, out = run_cli(capsys, "batch", str(tmp_path / "broken.f"),
                            "jacobi", "--bound", "2", "--json")
        assert code == 1  # one failure
        payload = json.loads(out)
        assert payload["nests"] == 2 and payload["failures"] == 1
        failed = [item for item in payload["items"] if not item["ok"]]
        assert "does not parse" in failed[0]["error"]
        assert "metrics" in payload

    def test_batch_nothing_matched(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["batch", str(tmp_path)])  # empty directory

    def test_cache_stats_and_clear(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, out = run_cli(capsys, "cache", "stats")
        assert code == 0
        assert str(tmp_path) in out and "entries:   0" in out

        code, out = run_cli(capsys, "batch", "jacobi", "--bound", "2",
                            "--cache", "--cache-dir", str(tmp_path))
        assert code == 0
        code, out = run_cli(capsys, "cache", "stats", "--dir", str(tmp_path))
        assert "entries:   1" in out
        code, out = run_cli(capsys, "cache", "clear", "--dir", str(tmp_path))
        assert "removed 1" in out
