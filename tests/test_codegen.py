"""Code generator tests: compiled execution must match the interpreter."""

import numpy as np
import pytest

from repro.ir.builder import NestBuilder
from repro.ir.codegen import CodegenError, compile_nest, generate_source, run_compiled
from repro.ir.interp import run_nest
from repro.ir.nodes import Call, Const, Statement, ScalarVar
from repro.kernels import all_kernels
from repro.unroll.transform import unroll_and_jam

def compare(nest, bindings, shapes, scalars=None, seed=0):
    rng = np.random.default_rng(seed)
    base = {n: rng.standard_normal(s) for n, s in shapes.items()}
    interp = {k: v.copy() for k, v in base.items()}
    compiled = {k: v.copy() for k, v in base.items()}
    s1 = dict(scalars or {})
    s2 = dict(scalars or {})
    run_nest(nest, bindings, interp, scalars=s1)
    run_compiled(nest, bindings, compiled, scalars=s2)
    for name in base:
        assert np.array_equal(interp[name], compiled[name]), name

class TestGeneratedSource:
    def test_source_shape(self):
        b = NestBuilder("src")
        I, J = b.loops(("I", 1, "N"), ("J", 0, 9))
        b.assign(b.ref("A", I, J), b.ref("B", I - 1, J) * 2.0)
        source = generate_source(b.build())
        assert "def kernel(arrays, bindings, scalars):" in source
        assert "for I in range(1, (0 + N) + 1):" in source
        assert "A[(I + 0, J + 0,)]" in source or "A[(I" in source

    def test_compiles(self):
        nest = all_kernels()[0].nest
        fn = compile_nest(nest)
        assert callable(fn)

    def test_unknown_intrinsic_rejected(self):
        stmt = Statement(ScalarVar("x"), Call("bessel", (Const(1.0),)))
        b = NestBuilder("bad")
        I = b.loop("I", 0, 3)
        b.assign(b.ref("A", I), 1.0)
        nest = b.build()
        from repro.ir.nodes import LoopNest
        bad = LoopNest(nest.name, nest.loops, (stmt,))
        with pytest.raises(CodegenError):
            generate_source(bad)

@pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.name)
def test_kernels_compiled_equals_interpreted(kernel):
    n = 8
    bindings = {k: n for k in kernel.bindings}
    big = next(iter(kernel.bindings.values()))
    shapes = {}
    for name, shape in kernel.shapes.items():
        shapes[name] = tuple(
            2 * n + (e - 2 * big) if e >= 2 * big
            else (n + (e - big) if e > big else e)
            for e in shape)
    compare(kernel.nest, bindings, shapes, scalars={"omega": 1.2})

class TestUnrolledAndScalars:
    def test_jammed_body_with_temps(self):
        b = NestBuilder("temps")
        I, J = b.loops(("I", 0, 11), ("J", 0, 11))
        b.assign(b.scalar("t"), b.ref("B", I, J) + 1.0)
        b.assign(b.ref("A", I, J), b.scalar("t") * b.scalar("t"))
        main = unroll_and_jam(b.build(), (2, 0)).main
        compare(main, {}, {"A": (15, 15), "B": (15, 15)})

    def test_stepped_loop(self):
        b = NestBuilder("step")
        I, J = b.loops(("I", 0, 10), ("J", 0, 10))
        b.assign(b.ref("A", I, J), b.ref("A", I, J) + 1.0)
        main = unroll_and_jam(b.build(), (1, 0)).main  # step 2, 11 even trips?
        # 11 iterations don't divide by 2; run only the aligned part by
        # choosing bounds the main nest fully covers: compare on 0..9.
        from repro.ir.nodes import Bound, Loop, LoopNest
        loops = (Loop("I", Bound(0), Bound(9), 2),) + main.loops[1:]
        aligned = LoopNest(main.name, loops, main.body)
        compare(aligned, {}, {"A": (14, 14)})

    def test_intrinsics(self):
        b = NestBuilder("intr")
        I = b.loop("I", 0, 20)
        b.assign(b.ref("A", I), b.call("sqrt", b.call("abs", b.ref("B", I))))
        compare(b.build(), {}, {"A": (22,), "B": (22,)})

    def test_scalar_inputs_and_outputs(self):
        b = NestBuilder("sc")
        I = b.loop("I", 0, 9)
        b.assign(b.scalar("acc"), b.ref("B", I) * b.scalar("alpha"))
        b.assign(b.ref("A", I), b.scalar("acc"))
        nest = b.build()
        arrays1 = {"A": np.zeros(10), "B": np.arange(10.0)}
        arrays2 = {k: v.copy() for k, v in arrays1.items()}
        s1 = {"alpha": 3.0}
        s2 = {"alpha": 3.0}
        run_nest(nest, {}, arrays1, scalars=s1)
        run_compiled(nest, {}, arrays2, scalars=s2)
        assert np.array_equal(arrays1["A"], arrays2["A"])
        assert s1["acc"] == s2["acc"]
