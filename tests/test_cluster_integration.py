"""The cluster end to end: real worker processes behind a real router.

One shared 2-worker cluster exercises sticky routing, federation, the
shard response header, and admin status; a dedicated cluster proves
crash-restart supervision (``kill -9`` mid-service) and the graceful
drain leaves no orphan processes.  Slow by nature (each worker is a
spawned interpreter warming an engine), so scenarios are batched per
cluster.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.cluster import ClusterConfig, ClusterThread
from repro.serve.client import ServeClient

def fast_config(**overrides) -> ClusterConfig:
    defaults = dict(workers=2, port=0, probe_interval_s=0.2,
                    probe_timeout_s=2.0, restart_backoff_s=0.1,
                    restart_backoff_max_s=1.0, startup_timeout_s=60,
                    drain_grace_s=15)
    defaults.update(overrides)
    return ClusterConfig(**defaults)

def pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True

@pytest.fixture(scope="class")
def cluster():
    with ClusterThread(fast_config()) as handle:
        yield handle

class TestClusterServing:
    def test_sticky_routing_and_federation(self, cluster, tmp_path_factory):
        client = ServeClient("127.0.0.1", cluster.port)
        try:
            # Identical nests always land on the same shard...
            shards = set()
            for _ in range(4):
                status, doc = client.optimize("mmjik", bound=3)
                assert status == 200 and doc["ok"]
                shards.add(client.last_headers["x-repro-shard"])
            assert len(shards) == 1
            # ...and a spread of nests reaches both shards.
            for name in ("jacobi", "sor", "afold", "dmxpy0", "mmjki",
                         "shal"):
                status, doc = client.optimize(name, bound=3)
                assert status == 200, (name, doc)
                shards.add(client.last_headers["x-repro-shard"])
            assert shards == {"0", "1"}

            # Federation: merged counters equal the per-shard sum.
            status, metrics = client.metrics()
            assert status == 200 and metrics["federated"]
            assert sorted(metrics["shards"]) == ["0", "1"]
            per_shard = [shard["metrics"]["counters"]
                         .get("serve.responses_2xx", 0)
                         for shard in metrics["shards"].values()]
            assert all(count > 0 for count in per_shard)
            assert metrics["metrics"]["counters"]["serve.responses_2xx"] \
                == sum(per_shard)
            assert metrics["cluster"]["ready"] == 2
        finally:
            client.close()

    def test_error_shapes_match_single_process_serving(self, cluster):
        client = ServeClient("127.0.0.1", cluster.port)
        try:
            status, doc = client.optimize("no-such-kernel")
            assert status == 404
            assert doc["error"]["type"] == "unknown_kernel"
            status, doc = client.request("POST", "/v1/optimize",
                                         {"machine": "alpha"})
            assert status == 400  # no nest at all
            status, doc = client.request("POST", "/v1/frobnicate",
                                         {"nest": "mmjik"})
            assert status == 404
        finally:
            client.close()

    def test_status_document_and_metrics_cli_format(self, cluster):
        client = ServeClient("127.0.0.1", cluster.port)
        try:
            status, doc = client.request("GET", "/cluster/status")
            assert status == 200
            assert doc["cluster"]["ready"] == 2
            states = {info["state"]
                      for info in doc["membership"]["workers"].values()}
            assert states == {"ready"}

            # The federated document renders as Prometheus text with
            # per-shard labels (the repro metrics / scraper path).
            from repro import obs

            _, metrics = client.metrics()
            text = obs.document_to_exposition(metrics)
            assert 'repro_shard_up{shard="0"} 1' in text
            assert 'repro_shard_up{shard="1"} 1' in text
            assert 'shard="router"' in text
        finally:
            client.close()

    def test_per_shard_cache_namespaces(self, tmp_path):
        config = fast_config(cache=True, cache_dir=str(tmp_path))
        with ClusterThread(config) as cached:
            client = ServeClient("127.0.0.1", cached.port)
            try:
                for name in ("mmjik", "jacobi", "sor", "dmxpy0"):
                    status, _ = client.optimize(name, bound=3)
                    assert status == 200
            finally:
                client.close()
        populated = [child.name for child in tmp_path.iterdir()
                     if any(child.glob("tables-*.json"))]
        assert populated  # at least one shard namespace was written
        assert all(name.startswith("shard-") for name in populated)

class TestSupervision:
    def test_kill9_restart_and_clean_drain(self):
        with ClusterThread(fast_config()) as cluster:
            client = ServeClient("127.0.0.1", cluster.port)
            try:
                status, _ = client.optimize("mmjik", bound=3)
                assert status == 200
                _, doc = client.request("GET", "/cluster/status")
                workers = doc["membership"]["workers"]
                pids = {slot: info["pid"]
                        for slot, info in workers.items()}

                os.kill(pids["0"], signal.SIGKILL)  # crash shard 0

                # The supervisor notices, restarts with backoff, and the
                # worker re-slots; total budget covers probe + backoff +
                # engine warmup.
                deadline = time.monotonic() + 45
                while time.monotonic() < deadline:
                    _, doc = client.request("GET", "/cluster/status")
                    info = doc["membership"]["workers"]["0"]
                    if info["state"] == "ready" and info["pid"] != pids["0"]:
                        break
                    time.sleep(0.2)
                else:
                    pytest.fail(f"worker 0 never came back: {doc}")
                assert info["restarts"] >= 1

                # Requests keep working after the restart (the ring
                # points are identical, so routing is unchanged).
                for name in ("mmjik", "jacobi", "sor"):
                    status, _ = client.optimize(name, bound=3)
                    assert status == 200
                _, doc = client.request("GET", "/cluster/status")
                final_pids = [info["pid"] for info
                              in doc["membership"]["workers"].values()]
            finally:
                client.close()
        # The drain (ClusterThread exit) leaves no orphan workers.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and \
                any(pid_alive(pid) for pid in final_pids):
            time.sleep(0.1)
        assert not any(pid_alive(pid) for pid in final_pids)

    def test_drain_endpoint_shuts_the_cluster_down(self):
        cluster = ClusterThread(fast_config()).start()
        client = ServeClient("127.0.0.1", cluster.port)
        try:
            _, doc = client.request("GET", "/cluster/status")
            pids = [info["pid"] for info
                    in doc["membership"]["workers"].values()]
            status, doc = client.request("POST", "/cluster/drain", {})
            assert status == 200 and doc["draining"]
        finally:
            client.close()
        cluster._thread.join(timeout=30)
        assert not cluster._thread.is_alive()
        assert not any(pid_alive(pid) for pid in pids)
