"""Interpreter tests: direct execution and unrolled execution equivalence."""

import numpy as np
import pytest

from repro.ir.builder import NestBuilder
from repro.ir.interp import InterpreterError, run_nest, run_unrolled

def vector_sum_nest():
    # A(J) = A(J) + B(I)  -- the paper's introduction example
    b = NestBuilder("paper_intro")
    J, I = b.loops(("J", 0, "N"), ("I", 0, "M"))
    b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
    return b.build()

def matmul_nest():
    b = NestBuilder("mm")
    J, I, K = b.loops(("J", 0, "N"), ("I", 0, "N"), ("K", 0, "N"))
    b.assign(b.ref("C", I, J),
             b.ref("C", I, J) + b.ref("A", I, K) * b.ref("B", K, J))
    return b.build()

class TestRunNest:
    def test_vector_sum(self):
        nest = vector_sum_nest()
        arrays = {"A": np.zeros(4), "B": np.arange(3.0)}
        run_nest(nest, {"N": 3, "M": 2}, arrays)
        assert np.allclose(arrays["A"], [3.0, 3.0, 3.0, 3.0])

    def test_matmul_matches_numpy(self):
        nest = matmul_nest()
        rng = np.random.default_rng(0)
        a = rng.standard_normal((5, 5))
        bm = rng.standard_normal((5, 5))
        arrays = {"A": a.copy(), "B": bm.copy(), "C": np.zeros((5, 5))}
        run_nest(nest, {"N": 4}, arrays)
        assert np.allclose(arrays["C"], a @ bm)

    def test_scalar_inputs(self):
        b = NestBuilder("scaled")
        I = b.loop("I", 0, 3)
        b.assign(b.ref("A", I), b.scalar("alpha") * b.ref("B", I))
        nest = b.build()
        arrays = {"A": np.zeros(4), "B": np.ones(4)}
        run_nest(nest, {}, arrays, scalars={"alpha": 2.5})
        assert np.allclose(arrays["A"], 2.5)

    def test_unbound_scalar_raises(self):
        b = NestBuilder("bad")
        I = b.loop("I", 0, 1)
        b.assign(b.ref("A", I), b.scalar("nope"))
        with pytest.raises(InterpreterError):
            run_nest(b.build(), {}, {"A": np.zeros(2)})

    def test_out_of_bounds_raises(self):
        nest = vector_sum_nest()
        with pytest.raises(InterpreterError):
            run_nest(nest, {"N": 10, "M": 0}, {"A": np.zeros(2), "B": np.zeros(1)})

    def test_trace_callback(self):
        nest = vector_sum_nest()
        events = []
        arrays = {"A": np.zeros(2), "B": np.zeros(2)}
        run_nest(nest, {"N": 1, "M": 1}, arrays,
                 trace=lambda arr, idx, w: events.append((arr, idx, w)))
        # per iteration: read A, read B, write A
        assert len(events) == 4 * 3
        assert events[0] == ("A", (0,), False)
        assert events[2] == ("A", (0,), True)

class TestRunUnrolled:
    @pytest.mark.parametrize("u", [(0, 0), (1, 0), (2, 0), (3, 0)])
    @pytest.mark.parametrize("n", [3, 4, 6])
    def test_vector_sum_equivalence(self, u, n):
        nest = vector_sum_nest()
        arrays_ref = {"A": np.zeros(n + 1), "B": np.arange(5.0)}
        arrays_unr = {k: v.copy() for k, v in arrays_ref.items()}
        run_nest(nest, {"N": n, "M": 4}, arrays_ref)
        run_unrolled(nest, u, {"N": n, "M": 4}, arrays_unr)
        assert np.array_equal(arrays_ref["A"], arrays_unr["A"])

    @pytest.mark.parametrize("u", [(1, 0, 0), (0, 1, 0), (2, 3, 0)])
    def test_matmul_equivalence(self, u):
        nest = matmul_nest()
        rng = np.random.default_rng(1)
        base = {
            "A": rng.standard_normal((7, 7)),
            "B": rng.standard_normal((7, 7)),
            "C": np.zeros((7, 7)),
        }
        ref = {k: v.copy() for k, v in base.items()}
        unr = {k: v.copy() for k, v in base.items()}
        run_nest(nest, {"N": 6}, ref)
        run_unrolled(nest, u, {"N": 6}, unr)
        assert np.allclose(ref["C"], unr["C"])

    def test_unroll_with_scalar_temp_privatization(self):
        # t = B(I,J); A(I,J) = t * t  -- t must be private per copy
        b = NestBuilder("temp")
        I, J = b.loops(("I", 0, 5), ("J", 0, 5))
        b.assign(b.scalar("t"), b.ref("B", I, J))
        b.assign(b.ref("A", I, J), b.scalar("t") * b.scalar("t"))
        nest = b.build()
        rng = np.random.default_rng(2)
        base = {"A": np.zeros((6, 6)), "B": rng.standard_normal((6, 6))}
        ref = {k: v.copy() for k, v in base.items()}
        unr = {k: v.copy() for k, v in base.items()}
        run_nest(nest, {}, ref)
        run_unrolled(nest, (3, 0), {}, unr)
        assert np.allclose(ref["A"], unr["A"])

    def test_rejects_inner_unroll(self):
        with pytest.raises(InterpreterError):
            run_unrolled(vector_sum_nest(), (0, 1), {"N": 1, "M": 1},
                         {"A": np.zeros(2), "B": np.zeros(2)})

    def test_rejects_bad_vector_length(self):
        with pytest.raises(InterpreterError):
            run_unrolled(vector_sum_nest(), (0,), {"N": 1, "M": 1},
                         {"A": np.zeros(2), "B": np.zeros(2)})

    def test_remainder_iterations_covered(self):
        # N+1 = 5 iterations, unroll step 3 -> aligned 3 + epilogue 2
        b = NestBuilder("count")
        I, J = b.loops(("I", 0, 4), ("J", 0, 0))
        b.assign(b.ref("A", I), b.ref("A", I) + 1.0)
        nest = b.build()
        arrays = {"A": np.zeros(5)}
        run_unrolled(nest, (2, 0), {}, arrays)
        assert np.allclose(arrays["A"], 1.0)
