"""Interpreter tests: direct execution and unrolled execution equivalence."""

import numpy as np
import pytest

from repro.ir.builder import NestBuilder
from repro.ir.interp import InterpreterError, run_nest, run_unrolled

def vector_sum_nest():
    # A(J) = A(J) + B(I)  -- the paper's introduction example
    b = NestBuilder("paper_intro")
    J, I = b.loops(("J", 0, "N"), ("I", 0, "M"))
    b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
    return b.build()

def matmul_nest():
    b = NestBuilder("mm")
    J, I, K = b.loops(("J", 0, "N"), ("I", 0, "N"), ("K", 0, "N"))
    b.assign(b.ref("C", I, J),
             b.ref("C", I, J) + b.ref("A", I, K) * b.ref("B", K, J))
    return b.build()

class TestRunNest:
    def test_vector_sum(self):
        nest = vector_sum_nest()
        arrays = {"A": np.zeros(4), "B": np.arange(3.0)}
        run_nest(nest, {"N": 3, "M": 2}, arrays)
        assert np.allclose(arrays["A"], [3.0, 3.0, 3.0, 3.0])

    def test_matmul_matches_numpy(self):
        nest = matmul_nest()
        rng = np.random.default_rng(0)
        a = rng.standard_normal((5, 5))
        bm = rng.standard_normal((5, 5))
        arrays = {"A": a.copy(), "B": bm.copy(), "C": np.zeros((5, 5))}
        run_nest(nest, {"N": 4}, arrays)
        assert np.allclose(arrays["C"], a @ bm)

    def test_scalar_inputs(self):
        b = NestBuilder("scaled")
        I = b.loop("I", 0, 3)
        b.assign(b.ref("A", I), b.scalar("alpha") * b.ref("B", I))
        nest = b.build()
        arrays = {"A": np.zeros(4), "B": np.ones(4)}
        run_nest(nest, {}, arrays, scalars={"alpha": 2.5})
        assert np.allclose(arrays["A"], 2.5)

    def test_unbound_scalar_raises(self):
        b = NestBuilder("bad")
        I = b.loop("I", 0, 1)
        b.assign(b.ref("A", I), b.scalar("nope"))
        with pytest.raises(InterpreterError):
            run_nest(b.build(), {}, {"A": np.zeros(2)})

    def test_out_of_bounds_raises(self):
        nest = vector_sum_nest()
        with pytest.raises(InterpreterError):
            run_nest(nest, {"N": 10, "M": 0}, {"A": np.zeros(2), "B": np.zeros(1)})

    def test_trace_callback(self):
        nest = vector_sum_nest()
        events = []
        arrays = {"A": np.zeros(2), "B": np.zeros(2)}
        run_nest(nest, {"N": 1, "M": 1}, arrays,
                 trace=lambda arr, idx, w: events.append((arr, idx, w)))
        # per iteration: read A, read B, write A
        assert len(events) == 4 * 3
        assert events[0] == ("A", (0,), False)
        assert events[2] == ("A", (0,), True)

class TestRunUnrolled:
    @pytest.mark.parametrize("u", [(0, 0), (1, 0), (2, 0), (3, 0)])
    @pytest.mark.parametrize("n", [3, 4, 6])
    def test_vector_sum_equivalence(self, u, n):
        nest = vector_sum_nest()
        arrays_ref = {"A": np.zeros(n + 1), "B": np.arange(5.0)}
        arrays_unr = {k: v.copy() for k, v in arrays_ref.items()}
        run_nest(nest, {"N": n, "M": 4}, arrays_ref)
        run_unrolled(nest, u, {"N": n, "M": 4}, arrays_unr)
        assert np.array_equal(arrays_ref["A"], arrays_unr["A"])

    @pytest.mark.parametrize("u", [(1, 0, 0), (0, 1, 0), (2, 3, 0)])
    def test_matmul_equivalence(self, u):
        nest = matmul_nest()
        rng = np.random.default_rng(1)
        base = {
            "A": rng.standard_normal((7, 7)),
            "B": rng.standard_normal((7, 7)),
            "C": np.zeros((7, 7)),
        }
        ref = {k: v.copy() for k, v in base.items()}
        unr = {k: v.copy() for k, v in base.items()}
        run_nest(nest, {"N": 6}, ref)
        run_unrolled(nest, u, {"N": 6}, unr)
        assert np.allclose(ref["C"], unr["C"])

    def test_unroll_with_scalar_temp_privatization(self):
        # t = B(I,J); A(I,J) = t * t  -- t must be private per copy
        b = NestBuilder("temp")
        I, J = b.loops(("I", 0, 5), ("J", 0, 5))
        b.assign(b.scalar("t"), b.ref("B", I, J))
        b.assign(b.ref("A", I, J), b.scalar("t") * b.scalar("t"))
        nest = b.build()
        rng = np.random.default_rng(2)
        base = {"A": np.zeros((6, 6)), "B": rng.standard_normal((6, 6))}
        ref = {k: v.copy() for k, v in base.items()}
        unr = {k: v.copy() for k, v in base.items()}
        run_nest(nest, {}, ref)
        run_unrolled(nest, (3, 0), {}, unr)
        assert np.allclose(ref["A"], unr["A"])

    def test_rejects_inner_unroll(self):
        with pytest.raises(InterpreterError):
            run_unrolled(vector_sum_nest(), (0, 1), {"N": 1, "M": 1},
                         {"A": np.zeros(2), "B": np.zeros(2)})

    def test_rejects_bad_vector_length(self):
        with pytest.raises(InterpreterError):
            run_unrolled(vector_sum_nest(), (0,), {"N": 1, "M": 1},
                         {"A": np.zeros(2), "B": np.zeros(2)})

    def test_remainder_iterations_covered(self):
        # N+1 = 5 iterations, unroll step 3 -> aligned 3 + epilogue 2
        b = NestBuilder("count")
        I, J = b.loops(("I", 0, 4), ("J", 0, 0))
        b.assign(b.ref("A", I), b.ref("A", I) + 1.0)
        nest = b.build()
        arrays = {"A": np.zeros(5)}
        run_unrolled(nest, (2, 0), {}, arrays)
        assert np.allclose(arrays["A"], 1.0)

class TestRunUnrolledEpilogues:
    """Edge cases of the main/epilogue split: unroll amounts at or past
    the trip count, zero-trip loops, and the exact iteration order."""

    def _counting_nest(self):
        b = NestBuilder("epi")
        I, J = b.loops(("I", 0, "N"), ("J", 0, "M"))
        b.assign(b.ref("A", I, J), b.ref("A", I, J) + 1.0)
        return b.build()

    @pytest.mark.parametrize("u0", [4, 5, 6, 11])
    def test_unroll_at_or_past_trip_count(self, u0):
        # 5 outer iterations; u0+1 copies >= 5 means zero full blocks:
        # everything runs through the rolled epilogue, exactly once.
        nest = self._counting_nest()
        arrays = {"A": np.zeros((5, 3))}
        run_unrolled(nest, (u0, 0), {"N": 4, "M": 2}, arrays)
        assert np.array_equal(arrays["A"], np.ones((5, 3)))

    def test_zero_trip_outer_loop(self):
        nest = self._counting_nest()
        arrays = {"A": np.zeros((4, 4))}
        run_unrolled(nest, (3, 0), {"N": -1, "M": 3}, arrays)
        assert np.array_equal(arrays["A"], np.zeros((4, 4)))

    def test_zero_trip_inner_loop(self):
        # The unrolled outer loop still iterates; the empty inner loop
        # must not touch memory or crash the epilogue arithmetic.
        nest = self._counting_nest()
        arrays = {"A": np.zeros((6, 2))}
        run_unrolled(nest, (2, 0), {"N": 5, "M": -2}, arrays)
        assert np.array_equal(arrays["A"], np.zeros((6, 2)))

    def test_single_iteration_loops(self):
        nest = self._counting_nest()
        arrays = {"A": np.zeros((1, 1))}
        run_unrolled(nest, (3, 0), {"N": 0, "M": 0}, arrays)
        assert np.array_equal(arrays["A"], np.ones((1, 1)))

    def test_main_then_epilogue_order(self):
        # Writes arrive in jammed-copy order for the aligned blocks,
        # then in plain order for the remainder: with u=(2,0) over 8
        # outer iterations the I-sequence per J is 0,1,2 | 3,4,5 | 6,7.
        nest = self._counting_nest()
        writes = []
        arrays = {"A": np.zeros((8, 1))}
        run_unrolled(nest, (2, 0), {"N": 7, "M": 0}, arrays,
                     trace=lambda arr, idx, w: writes.append(idx[0])
                     if w else None)
        assert writes == [0, 1, 2, 3, 4, 5, 6, 7]

    def test_depth3_middle_epilogue_matches_run_nest(self):
        # Unrolling two outer loops with non-dividing trips exercises
        # the per-level rolled vectors u[:level] + (0,) + u[level+1:].
        b = NestBuilder("epi3")
        I, J, K = b.loops(("I", 0, 6), ("J", 0, 4), ("K", 0, 2))
        b.assign(b.ref("A", I, J, K),
                 b.ref("A", I, J, K) * 0.5 + b.ref("B", I, J, K))
        nest = b.build()
        rng = np.random.default_rng(9)
        base = {"A": rng.standard_normal((7, 5, 3)),
                "B": rng.standard_normal((7, 5, 3))}
        ref = {k: v.copy() for k, v in base.items()}
        unr = {k: v.copy() for k, v in base.items()}
        run_nest(nest, {}, ref)
        run_unrolled(nest, (2, 3, 0), {}, unr)
        assert np.array_equal(ref["A"], unr["A"])
