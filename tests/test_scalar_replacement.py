"""Tests for the scalar-replacement plan."""

from repro.ir.builder import NestBuilder
from repro.ir.matrixform import occurrences
from repro.unroll.scalar_replacement import plan_scalar_replacement
from repro.unroll.transform import unroll_and_jam

def intro_nest():
    b = NestBuilder("intro")
    J, I = b.loops(("J", 0, "N"), ("I", 0, "M"))
    b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
    return b.build()

class TestPlanBasics:
    def test_intro_example_counts(self):
        """Section 3.3: the intro loop has one memory reference after
        scalar replacement -- 'A(J) can be held in a register'."""
        plan = plan_scalar_replacement(intro_nest())
        # A(J) read+write are innermost-invariant: hoisted/sunk entirely.
        # Only B(I)'s load remains.
        assert plan.total_references == 3
        assert plan.memory_ops == 1
        assert plan.removed == 2

    def test_loop_invariant_refs_are_register_resident(self):
        plan = plan_scalar_replacement(intro_nest())
        occs = occurrences(intro_nest())
        a_read = next(o for o in occs if o.array == "A" and not o.is_write)
        a_write = next(o for o in occs if o.array == "A" and o.is_write)
        b_read = next(o for o in occs if o.array == "B")
        assert not plan.issues_memory_op(a_write.position)
        assert not plan.issues_memory_op(a_read.position)
        assert plan.issues_memory_op(b_read.position)

    def test_duplicate_reads_collapse(self):
        b = NestBuilder("dup")
        I = b.loop("I", 0, "N")
        b.assign(b.ref("C", I), b.ref("A", I) * b.ref("A", I))
        plan = plan_scalar_replacement(b.build())
        assert plan.memory_ops == 2  # one A load + the C store
        assert plan.removed == 1

    def test_innermost_reuse_removed(self):
        """A(I-1) rides the value loaded (as A(I)) one iteration earlier."""
        b = NestBuilder("lag")
        I = b.loop("I", 1, "N")
        b.assign(b.ref("C", I), b.ref("A", I) + b.ref("A", I - 1))
        plan = plan_scalar_replacement(b.build())
        assert plan.memory_ops == 2
        assert plan.registers >= 2  # value lives one iteration: two slots

    def test_cross_outer_reuse_not_removed_without_unroll(self):
        b = NestBuilder("outer")
        I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
        b.assign(b.ref("C", I, J), b.ref("A", I, J) + b.ref("A", I - 1, J))
        plan = plan_scalar_replacement(b.build())
        assert plan.memory_ops == 3  # both loads stay: reuse crosses I

    def test_unrolling_enables_removal(self):
        b = NestBuilder("outer")
        I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
        b.assign(b.ref("C", I, J), b.ref("A", I, J) + b.ref("A", I - 1, J))
        main = unroll_and_jam(b.build(), (1, 0)).main
        plan = plan_scalar_replacement(main)
        # 2 copies: loads A(I-1), A(I), A(I+1) -- A(I) shared -- + 2 stores.
        assert plan.memory_ops == 5
        assert plan.removed == 1

    def test_stores_never_removed(self):
        """Two stores to the same location in one iteration both survive
        (the paper: scalar replacement does not remove definitions)."""
        b = NestBuilder("stores")
        I = b.loop("I", 0, "N")
        b.assign(b.ref("A", I), b.ref("B", I) + 1.0)
        b.assign(b.ref("A", I), b.ref("A", I) * 2.0)
        plan = plan_scalar_replacement(b.build())
        occs = occurrences(b.build())
        writes = [o for o in occs if o.is_write]
        assert all(plan.issues_memory_op(w.position) for w in writes)
        # the A(I) re-read rides the first store's register
        re_read = next(o for o in occs if o.array == "A" and not o.is_write)
        assert not plan.issues_memory_op(re_read.position)
