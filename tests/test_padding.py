"""Array-padding pass: suggestions and their simulated effect."""

from repro.ir.builder import NestBuilder
from repro.machine import dec_alpha
from repro.machine.padding import (
    apply_padding,
    format_suggestions,
    pad_leading_dimension,
    suggest_padding,
)
from repro.machine.simulator import simulate

def row_reuse_nest():
    """Walks a row (fixed I, all J) then revisits it at the next I: column
    stride decides whether the row survives in cache."""
    b = NestBuilder("rows")
    I, J = b.loops(("I", 1, 62), ("J", 0, 63))
    b.assign(b.ref("A", I, J),
             b.ref("B", I, J) + b.ref("B", I - 1, J))
    return b.build()

class TestSuggestions:
    def test_power_of_two_extent_flagged(self):
        machine = dec_alpha()  # 1024 words, 4-word lines, direct mapped
        suggestions = suggest_padding({"A": (128, 64)}, machine)
        s = suggestions[0]
        assert s.changed
        assert s.set_coverage_after > s.set_coverage_before
        assert s.padded[0] % 4 == 0
        assert (s.padded[0] // 4) % 2 == 1

    def test_odd_line_extent_kept(self):
        machine = dec_alpha()
        suggestions = suggest_padding({"A": (132, 64)}, machine)
        assert not suggestions[0].changed

    def test_1d_arrays_untouched(self):
        machine = dec_alpha()
        suggestions = suggest_padding({"V": (1024,)}, machine)
        assert not suggestions[0].changed

    def test_pad_leading_dimension_minimal(self):
        machine = dec_alpha()
        assert pad_leading_dimension(128, machine) == 132
        assert pad_leading_dimension(129, machine) == 132
        assert pad_leading_dimension(132, machine) == 132

    def test_format(self):
        machine = dec_alpha()
        text = format_suggestions(suggest_padding(
            {"A": (128, 64), "V": (7,)}, machine))
        assert "->" in text and "ok" in text

class TestSimulatedEffect:
    def test_padding_removes_conflict_misses(self):
        """With a 128-word column stride on the 256-set Alpha cache, the
        B row needed at I+1 was evicted by set conflicts; padding to 132
        makes it survive."""
        nest = row_reuse_nest()
        machine = dec_alpha()
        conflicted = {"A": (128, 64), "B": (128, 64)}
        padded = apply_padding(conflicted, machine)
        assert padded["B"][0] == 132
        bad = simulate(nest, machine, {}, conflicted)
        good = simulate(nest, machine, {}, padded)
        assert good.cache_misses < bad.cache_misses * 0.8
        assert good.cycles < bad.cycles
