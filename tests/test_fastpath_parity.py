"""Parity fuzz for the cold-path fast algorithms against the seed paths.

Three layers, each comparing an optimized algorithm to the retained seed
implementation on randomized inputs:

* Bareiss (fraction-free) elimination vs Fraction Gauss-Jordan -- rank,
  nullspace and solve must be bit-identical on integer and rational
  matrices (the RREF of a matrix is unique, so they must agree exactly).
* Summed-area ``box_sum`` vs the seed ``box_sum_scan`` on random increment
  tables, including negative increments and fractional values.
* End-to-end ``choose_unroll``: the optimized construction (shared stream
  chains, prefix tables, pruned search, memoized predicates) vs the seed
  mode (``fast=False, prune=False`` under ``seed_algorithms()``) on the
  whole kernel corpus and on randomized nests.

Together with the per-case loops below, well over 1000 randomized
matrices/tables/nests are exercised.
"""

import random
from fractions import Fraction

import pytest

from repro.fastpath import seed_algorithms
from repro.kernels import all_kernels
from repro.linalg import Matrix
from repro.machine.presets import dec_alpha, future_wide
from repro.unroll.optimize import choose_unroll
from repro.unroll.space import UnrollSpace
from repro.unroll.tables import OffsetTable, build_tables

from tests.test_fuzz_agreement import adversarial_nest

def random_matrix(rng: random.Random, integral: bool) -> Matrix:
    nrows = rng.randint(1, 5)
    ncols = rng.randint(1, 5)
    rows = []
    for _ in range(nrows):
        row = []
        for _ in range(ncols):
            value = rng.choice([0, 0, 0, 1, -1, 2, -2, 3, 5, -7])
            if not integral and rng.random() < 0.3:
                value = Fraction(value, rng.choice([2, 3, 4]))
            row.append(value)
        rows.append(row)
    return Matrix(rows)

@pytest.mark.parametrize("integral", [True, False])
def test_bareiss_matches_fraction_elimination(integral):
    rng = random.Random(42 if integral else 43)
    for case in range(400):
        m = random_matrix(rng, integral)
        rhs = [rng.randint(-4, 4) for _ in range(m.nrows)]
        fast_rank = m.rank()
        fast_null = m.nullspace()
        fast_sol = m.solve(rhs)
        # Fresh (uncached) equivalent matrix for the seed pass.
        seed_m = Matrix([list(row) for row in m.rows])
        with seed_algorithms():
            assert seed_m.rank() == fast_rank, case
            assert seed_m.nullspace() == fast_null, case
            seed_sol = seed_m.solve(rhs)
        assert bool(seed_sol) == bool(fast_sol), case
        if fast_sol:
            assert seed_sol.particular == fast_sol.particular, case
            assert seed_sol.homogeneous == fast_sol.homogeneous, case

def test_box_sum_matches_scan():
    rng = random.Random(7)
    for case in range(300):
        ndims = rng.randint(1, 3)
        dims = tuple(range(ndims))
        bounds = tuple(rng.randint(0, 3) for _ in range(ndims))
        increments = {}
        for offset in _some_offsets(rng, bounds):
            value = Fraction(rng.randint(-6, 6), rng.choice([1, 1, 1, 2, 4]))
            increments[offset] = value
        table = OffsetTable(dims, bounds, increments)
        for _ in range(8):
            query = tuple(rng.randint(-1, b + 2) for b in bounds)
            assert table.box_sum(query) == table.box_sum_scan(query), \
                (case, query)

def _some_offsets(rng, bounds):
    count = rng.randint(0, 6)
    return {tuple(rng.randint(0, b) for b in bounds) for _ in range(count)}

def test_box_sum_falls_back_outside_box():
    # Hand-built table with an increment outside the declared box keeps
    # the seed scan (no prefix array can represent it).
    table = OffsetTable((0,), (1,), {(5,): Fraction(3)})
    assert table.box_sum((1,)) == Fraction(0)
    assert table.box_sum((5,)) == Fraction(3)

def _seed_choose(nest, machine, bound):
    with seed_algorithms():
        return choose_unroll(nest, machine, bound=bound, prune=False,
                             fast=False)

@pytest.mark.parametrize("machine", [dec_alpha(), future_wide()],
                         ids=["dec_alpha", "future_wide"])
def test_corpus_parity(machine):
    for kernel in all_kernels():
        fast = choose_unroll(kernel.nest, machine, bound=4)
        seed = _seed_choose(kernel.nest, machine, bound=4)
        assert fast.unroll == seed.unroll, kernel.name
        assert fast.breakdown == seed.breakdown, kernel.name

@pytest.mark.parametrize("seed", range(10))
def test_randomized_nest_parity(seed):
    rng = random.Random(5000 + seed)
    machine = dec_alpha()
    nest = adversarial_nest(rng, f"parity{seed}")
    fast = choose_unroll(nest, machine, bound=3)
    ref = _seed_choose(nest, machine, bound=3)
    assert fast.unroll == ref.unroll, seed
    assert fast.breakdown == ref.breakdown, seed

@pytest.mark.parametrize("seed", range(6))
def test_randomized_tables_parity(seed):
    """Fast and seed table constructions agree point-by-point."""
    rng = random.Random(9000 + seed)
    nest = adversarial_nest(rng, f"tables{seed}")
    space = UnrollSpace(3, (0, 1), (2, 2))
    fast = build_tables(nest, space, line_size=4, trip=100)
    with seed_algorithms():
        ref = build_tables(nest, space, line_size=4, trip=100, fast=False)
    for u in space:
        a, b = fast.point(u), ref.point(u)
        for field in ("gts", "gss", "memory_ops", "registers",
                      "cache_cost", "flops"):
            assert getattr(a, field) == getattr(b, field), (seed, u, field)
