"""Integer lattice tests: HNF and integer solvability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import Matrix
from repro.linalg.lattice import (
    annihilator_rows,
    hermite_normal_form,
    integer_solvable,
    integer_solve,
)

def mat(*rows):
    return Matrix(rows)

class TestHNF:
    def test_identity_fixed(self):
        h, u = hermite_normal_form(Matrix.identity(3))
        assert h == Matrix.identity(3)

    def test_product_invariant(self):
        m = mat([2, 4, 4], [-6, 6, 12], [10, -4, -16])
        h, u = hermite_normal_form(m)
        assert m.matmul(u) == h

    def test_unimodular(self):
        m = mat([2, 4], [6, 8])
        _, u = hermite_normal_form(m)
        # |det U| = 1 for a 2x2
        det = u.entry(0, 0) * u.entry(1, 1) - u.entry(0, 1) * u.entry(1, 0)
        assert abs(det) == 1

    def test_rejects_fractions(self):
        from fractions import Fraction
        with pytest.raises(ValueError):
            hermite_normal_form(Matrix([[Fraction(1, 2)]]))

class TestIntegerSolve:
    def test_simple(self):
        x = integer_solve(mat([2, 0], [0, 3]), [4, 9])
        assert x == (2, 3)

    def test_gcd_obstruction(self):
        # 2a + 4b = 3 has no integer solution
        assert integer_solve(mat([2, 4]), [3]) is None

    def test_gcd_success(self):
        x = integer_solve(mat([2, 4]), [6])
        assert x is not None
        assert 2 * x[0] + 4 * x[1] == 6

    def test_coupled_system(self):
        # x + y = 1, x - y = 1 -> x=1, y=0
        x = integer_solve(mat([1, 1], [1, -1]), [1, 1])
        assert x == (1, 0)

    def test_coupled_fractional_only(self):
        # x + y = 1, x - y = 0 -> x = y = 1/2: rational yes, integer no
        assert mat([1, 1], [1, -1]).solve([1, 0])
        assert integer_solve(mat([1, 1], [1, -1]), [1, 0]) is None

    def test_inconsistent(self):
        assert integer_solve(mat([1, 1], [1, 1]), [1, 2]) is None

    def test_rational_matrix_scaled(self):
        from fractions import Fraction
        m = Matrix([[Fraction(1, 2), 0], [0, 1]])
        x = integer_solve(m, [Fraction(3, 2), 2])
        assert x == (3, 2)

    def test_rational_rhs_unreachable(self):
        from fractions import Fraction
        assert integer_solve(mat([1]), [Fraction(1, 2)]) is None

    def test_zero_matrix(self):
        assert integer_solve(Matrix.zero(2, 2), [0, 0]) == (0, 0)
        assert integer_solve(Matrix.zero(2, 2), [1, 0]) is None

class TestAnnihilator:
    def test_full_space_annihilator_empty(self):
        from repro.linalg import VectorSpace
        rows = annihilator_rows(VectorSpace.full(2).basis, 2)
        assert rows.nrows == 0

    def test_zero_space_annihilator_full(self):
        rows = annihilator_rows((), 3)
        assert rows == Matrix.identity(3)

    def test_axis_span(self):
        from repro.linalg import VectorSpace
        space = VectorSpace.spanned_by_axes([1], 3)
        rows = annihilator_rows(space.basis, 3)
        # annihilator of e_1 span: everything orthogonal to e_1
        for basis_vec in space.basis:
            for row in rows.rows:
                dot = sum(a * b for a, b in zip(row, basis_vec))
                assert dot == 0

small = st.integers(-6, 6)

@st.composite
def int_matrices(draw):
    nrows = draw(st.integers(1, 3))
    ncols = draw(st.integers(1, 3))
    return Matrix([[draw(small) for _ in range(ncols)]
                   for _ in range(nrows)])

@settings(max_examples=60, deadline=None)
@given(int_matrices())
def test_hnf_product_property(m):
    h, u = hermite_normal_form(m)
    assert m.matmul(u) == h

@settings(max_examples=60, deadline=None)
@given(int_matrices(), st.data())
def test_integer_solve_recovers_known_solution(m, data):
    x = [data.draw(small) for _ in range(m.ncols)]
    rhs = m.matvec(x)
    found = integer_solve(m, rhs)
    assert found is not None
    assert m.matvec(found) == rhs
