"""The repro.api facade: uniform coercion, verbs, and deprecation shims."""

import warnings

import pytest

import repro
from repro import api
from repro.engine import AnalysisEngine
from repro.ir.nodes import LoopNest
from repro.ir.printer import format_nest
from repro.kernels import kernel_by_name
from repro.machine.presets import dec_alpha
from repro.unroll.optimize import choose_unroll
from repro.unroll.transform import unroll_and_jam

JACOBI = kernel_by_name("jacobi").nest

class TestCoerceNest:
    def test_loopnest_passthrough(self):
        assert api.coerce_nest(JACOBI) is JACOBI

    def test_kernel_name(self):
        nest = api.coerce_nest("jacobi")
        assert nest.structural_key() == JACOBI.structural_key()

    def test_source_string(self):
        nest = api.coerce_nest(format_nest(JACOBI))
        assert nest.structural_key() == JACOBI.structural_key()

    def test_path_object_and_string_path(self, tmp_path):
        path = tmp_path / "jacobi.f"
        path.write_text(format_nest(JACOBI))
        for spec in (path, str(path)):
            nest = api.coerce_nest(spec)
            assert nest.structural_key() == JACOBI.structural_key()
        assert api.coerce_nest(path).name == "jacobi"

    def test_unknown_kernel_suggests_closest(self):
        with pytest.raises(api.NestResolutionError) as err:
            api.coerce_nest("jacobbi")
        assert "unknown kernel" in str(err.value)
        assert "jacobi" in str(err.value)

    def test_existing_file_that_fails_to_parse(self, tmp_path):
        path = tmp_path / "broken.f"
        path.write_text("DO I = 0, N\n  A(I = B(I)\nENDDO\n")
        with pytest.raises(api.NestResolutionError) as err:
            api.coerce_nest(str(path))
        message = str(err.value)
        assert "does not parse" in message
        assert "line 2" in message  # the parser's position survives

    def test_malformed_source_string(self):
        with pytest.raises(api.NestResolutionError) as err:
            api.coerce_nest("DO I = 0, N\n  A(I) =\nENDDO\n")
        assert "does not parse" in str(err.value)

    def test_unsupported_type(self):
        with pytest.raises(api.NestResolutionError):
            api.coerce_nest(42)

class TestCoerceMachine:
    def test_model_passthrough(self):
        machine = dec_alpha()
        assert api.coerce_machine(machine) is machine

    def test_preset_names(self):
        assert api.coerce_machine("alpha").name == dec_alpha().name

    def test_unknown_name(self):
        with pytest.raises(ValueError) as err:
            api.coerce_machine("cray")
        assert "unknown machine" in str(err.value)

class TestVerbs:
    @pytest.fixture()
    def engine(self):
        return AnalysisEngine()

    def test_every_input_shape_reaches_same_result(self, tmp_path, engine):
        path = tmp_path / "jacobi.f"
        path.write_text(format_nest(JACOBI))
        shapes = ["jacobi", format_nest(JACOBI), str(path), JACOBI]
        results = [api.optimize(shape, "alpha", bound=4, engine=engine)
                   for shape in shapes]
        expected = choose_unroll(JACOBI, dec_alpha(), bound=4)
        for result in results:
            assert result.unroll == expected.unroll
            assert result.breakdown == expected.breakdown
            assert result.feasible == expected.feasible

    def test_analyze_returns_artifacts(self, engine):
        artifacts = api.analyze("jacobi", "alpha", engine=engine)
        assert artifacts.key == JACOBI.structural_key()
        assert len(artifacts.safety) == JACOBI.depth
        assert len(artifacts.locality) == JACOBI.depth
        assert artifacts.ugs  # jacobi has A and B sets

    def test_transform_explicit_vector(self):
        result = api.transform("jacobi", unroll=(1, 0))
        expected = unroll_and_jam(JACOBI, (1, 0))
        assert format_nest(result.main) == format_nest(expected.main)

    def test_transform_model_chosen(self, engine):
        chosen = api.optimize("jacobi", "alpha", bound=4, engine=engine)
        result = api.transform("jacobi", machine="alpha", bound=4,
                               engine=engine)
        assert format_nest(result.main) == format_nest(
            unroll_and_jam(JACOBI, chosen.unroll).main)

    def test_optimize_many_mixed_shapes_and_failures(self, tmp_path, engine):
        path = tmp_path / "jacobi.f"
        path.write_text(format_nest(JACOBI))
        report = api.optimize_many(
            ["jacobi", str(path), "no-such-kernel", JACOBI],
            "alpha", bound=3, engine=engine)
        assert [item.ok for item in report.items] == [True, True, False,
                                                      True]
        assert "unknown kernel" in report.items[2].error
        vectors = {item.result.unroll for item in report.items if item.ok}
        assert len(vectors) == 1  # all shapes resolve to the same nest

    def test_top_level_reexports(self):
        assert repro.optimize is api.optimize
        assert repro.analyze is api.analyze
        assert repro.optimize_many is api.optimize_many
        assert repro.transform is api.transform
        assert repro.AnalysisEngine is AnalysisEngine

class TestDeprecationShims:
    def _reset(self):
        api._WARNED.clear()

    def test_load_nest_shim_warns_exactly_once(self):
        from repro.cli import _load_nest

        self._reset()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            nest = _load_nest("jacobi")
            _load_nest("jacobi")
        assert isinstance(nest, LoopNest)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.api.coerce_nest" in str(deprecations[0].message)

    def test_machines_shim_warns_exactly_once(self):
        import repro.cli as cli

        self._reset()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            machines = cli.MACHINES
            cli.MACHINES
        assert set(machines) == set(api.MACHINES)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1

    def test_shim_still_errors_like_the_cli(self):
        from repro.cli import _load_nest

        self._reset()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(SystemExit):
                _load_nest("definitely-not-a-kernel")
