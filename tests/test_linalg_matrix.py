"""Unit and property tests for the exact rational matrix type."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import Matrix

def mat(*rows):
    return Matrix(rows)

class TestConstruction:
    def test_rows_are_fractions(self):
        m = mat([1, 2], [3, 4])
        assert m.entry(0, 1) == Fraction(2)
        assert isinstance(m.entry(0, 1), Fraction)

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2], [3]])

    def test_empty_needs_ncols(self):
        with pytest.raises(ValueError):
            Matrix([])
        assert Matrix([], ncols=3).nrows == 0

    def test_identity(self):
        eye = Matrix.identity(3)
        assert eye.matvec([5, 6, 7]) == (5, 6, 7)

    def test_from_columns_round_trip(self):
        m = Matrix.from_columns([[1, 2], [3, 4], [5, 6]])
        assert m.nrows == 2 and m.ncols == 3
        assert m.column(2) == (5, 6)

    def test_immutable(self):
        m = mat([1])
        with pytest.raises(AttributeError):
            m.nrows = 7

class TestArithmetic:
    def test_matvec(self):
        m = mat([1, 2], [0, 1])
        assert m.matvec([3, 4]) == (11, 4)

    def test_matvec_length_check(self):
        with pytest.raises(ValueError):
            mat([1, 2]).matvec([1])

    def test_matmul(self):
        a = mat([1, 2], [3, 4])
        b = mat([0, 1], [1, 0])
        assert a.matmul(b) == mat([2, 1], [4, 3])

    def test_transpose(self):
        assert mat([1, 2, 3]).transpose() == mat([1], [2], [3])

    def test_stack(self):
        assert mat([1, 2]).stack(mat([3, 4])) == mat([1, 2], [3, 4])

    def test_with_zero_row(self):
        m = mat([1, 2], [3, 4]).with_zero_row(0)
        assert m == mat([0, 0], [3, 4])

class TestElimination:
    def test_rank_full(self):
        assert mat([1, 0], [0, 1]).rank() == 2

    def test_rank_deficient(self):
        assert mat([1, 2], [2, 4]).rank() == 1

    def test_nullspace_of_identity_is_empty(self):
        assert Matrix.identity(4).nullspace() == ()

    def test_nullspace_dimension(self):
        m = mat([1, 1, 0], [0, 0, 1])
        basis = m.nullspace()
        assert len(basis) == 1
        for vec in basis:
            assert m.matvec(vec) == (0, 0)

    def test_nullspace_of_zero_matrix_is_full(self):
        assert len(Matrix.zero(2, 3).nullspace()) == 3

class TestSolve:
    def test_unique_solution(self):
        sol = mat([2, 0], [0, 3]).solve([4, 9])
        assert sol and sol.is_unique()
        assert sol.particular == (2, 3)

    def test_inconsistent(self):
        sol = mat([1, 1], [1, 1]).solve([1, 2])
        assert not sol

    def test_underdetermined(self):
        sol = mat([1, 1]).solve([3])
        assert sol and not sol.is_unique()
        assert len(sol.homogeneous) == 1

    def test_rhs_length_check(self):
        with pytest.raises(ValueError):
            mat([1, 2]).solve([1, 2])

    def test_rational_solution(self):
        sol = mat([3]).solve([1])
        assert sol.particular == (Fraction(1, 3),)

small_ints = st.integers(min_value=-5, max_value=5)

@st.composite
def matrices(draw, max_dim=4):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    rows = [[draw(small_ints) for _ in range(ncols)] for _ in range(nrows)]
    return Matrix(rows)

@settings(max_examples=60, deadline=None)
@given(matrices())
def test_nullspace_vectors_are_in_kernel(m):
    for vec in m.nullspace():
        assert all(x == 0 for x in m.matvec(vec))

@settings(max_examples=60, deadline=None)
@given(matrices())
def test_rank_nullity(m):
    assert m.rank() + len(m.nullspace()) == m.ncols

@settings(max_examples=60, deadline=None)
@given(matrices(), st.data())
def test_solve_recovers_consistent_rhs(m, data):
    x = [data.draw(small_ints) for _ in range(m.ncols)]
    rhs = m.matvec(x)
    sol = m.solve(rhs)
    assert sol
    assert m.matvec(sol.particular) == rhs

@settings(max_examples=40, deadline=None)
@given(matrices())
def test_double_transpose_identity(m):
    assert m.transpose().transpose() == m
