"""Cache simulator and trace-driven loop simulator tests."""

from fractions import Fraction

import pytest

from repro.ir.builder import NestBuilder
from repro.machine import MachineModel, dec_alpha, hp_pa_risc
from repro.machine.cache import CacheSimulator
from repro.machine.simulator import simulate

class TestCacheSimulator:
    def test_cold_miss_then_hit(self):
        cache = CacheSimulator(64, 4, 1)
        assert not cache.access(0)
        assert cache.access(1)  # same line
        assert cache.access(3)
        assert not cache.access(4)  # next line

    def test_direct_mapped_conflict(self):
        cache = CacheSimulator(16, 4, 1)  # 4 sets
        assert not cache.access(0)
        assert not cache.access(16)  # maps to the same set, evicts
        assert not cache.access(0)  # and is evicted in turn

    def test_associativity_resolves_conflict(self):
        cache = CacheSimulator(32, 4, 2)  # same 4 sets, 2-way
        cache.access(0)
        cache.access(16)
        assert cache.access(0)
        assert cache.access(16)

    def test_lru_order(self):
        cache = CacheSimulator(32, 4, 2)
        cache.access(0)
        cache.access(16)
        cache.access(0)  # 16 is now LRU
        cache.access(32)  # evicts 16
        assert cache.access(0)
        assert not cache.access(16)

    def test_capacity_eviction(self):
        cache = CacheSimulator(16, 4, 1)
        for line in range(8):
            cache.access(line * 4)
        assert cache.misses == 8
        assert not cache.access(0)

    def test_counters_and_flush(self):
        cache = CacheSimulator(16, 4, 1)
        cache.access(0)
        cache.access(0)
        assert cache.accesses == 2 and cache.hits == 1
        assert cache.miss_rate() == 0.5
        cache.flush()
        assert cache.accesses == 0
        assert not cache.access(0)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheSimulator(15, 4, 1)

class TestEdgeGeometries:
    """The geometry extremes the set-associative miss model is validated
    against (docs/REUSE.md): direct-mapped, fully associative, and lines
    wider than the innermost stride."""

    def test_direct_mapped_ping_pong(self):
        # assoc=1: two lines in the same set evict each other forever.
        cache = CacheSimulator(64, 4, 1)  # 16 sets
        for _ in range(4):
            assert not cache.access(0)
            assert not cache.access(64)  # 64 words = 16 lines -> set 0
        assert cache.hits == 0

    def test_fully_associative_single_set(self):
        # size == line * assoc: one set holding every line, pure LRU.
        cache = CacheSimulator(32, 4, 8)
        for line in range(8):
            assert not cache.access(line * 4)
        for line in range(8):  # all 8 lines resident, any order hits
            assert cache.access(line * 4)
        assert not cache.access(8 * 4)  # 9th line evicts the LRU (line 0)
        assert not cache.access(0)

    def test_fully_associative_beats_direct_on_conflicts(self):
        addresses = [0, 64, 0, 64, 0, 64]
        direct = CacheSimulator(64, 4, 1)
        full = CacheSimulator(64, 4, 16)
        for a in addresses:
            direct.access(a)
            full.access(a)
        assert direct.hits == 0
        assert full.hits == len(addresses) - 2

    def test_line_wider_than_innermost_stride(self):
        # A 16-word line over stride-1 streams: one miss per 16 touches.
        machine = small_machine(cache_size_words=256, cache_line_words=16)
        res = simulate(streaming_nest(), machine, {"N": 127},
                       {"A": (135,), "B": (135,)})
        assert res.cache_misses == pytest.approx(2 * 128 / 16, abs=2)
        assert res.cache_misses < res.cache_accesses / 8

    def test_fully_associative_machine_streams_cleanly(self):
        machine = small_machine(cache_size_words=64, cache_line_words=4,
                                cache_assoc=16)  # one set, 16 ways
        res = simulate(streaming_nest(), machine, {"N": 99},
                       {"A": (104,), "B": (104,)})
        assert res.cache_misses == pytest.approx(2 * 100 / 4, abs=2)

def streaming_nest():
    b = NestBuilder("stream")
    I = b.loop("I", 0, "N")
    b.assign(b.ref("A", I), b.ref("B", I) * 2.0)
    return b.build()

def small_machine(**overrides) -> MachineModel:
    params = dict(name="tiny", mem_issue=Fraction(1), fp_issue=Fraction(1),
                  registers=16, cache_size_words=64, cache_line_words=4,
                  cache_assoc=1, miss_penalty=10)
    params.update(overrides)
    return MachineModel(**params)

class TestSimulator:
    def test_iteration_count(self):
        res = simulate(streaming_nest(), small_machine(), {"N": 99},
                       {"A": (104,), "B": (104,)})
        assert res.iterations == 100

    def test_streaming_miss_rate_is_one_per_line(self):
        res = simulate(streaming_nest(), small_machine(), {"N": 99},
                       {"A": (104,), "B": (104,)})
        # two streams, one miss per 4-word line each
        assert res.cache_misses == pytest.approx(2 * 100 / 4, abs=2)

    def test_cycles_include_miss_penalty(self):
        m = small_machine()
        res = simulate(streaming_nest(), m, {"N": 99},
                       {"A": (104,), "B": (104,)})
        no_penalty = simulate(streaming_nest(), small_machine(miss_penalty=0),
                              {"N": 99}, {"A": (104,), "B": (104,)})
        assert res.cycles == no_penalty.cycles + 10 * res.cache_misses

    def test_prefetch_hides_misses(self):
        misses = simulate(streaming_nest(), small_machine(), {"N": 99},
                          {"A": (104,), "B": (104,)})
        hidden = simulate(streaming_nest(),
                          small_machine(prefetch_bandwidth=Fraction(2)),
                          {"N": 99}, {"A": (104,), "B": (104,)})
        assert hidden.cycles < misses.cycles

    def test_unrolled_iteration_decomposition(self):
        """7 outer iterations at unroll 2 (step 3): 2 jammed blocks + 1
        epilogue iteration, inner loop intact."""
        b = NestBuilder("u")
        I, J = b.loops(("I", 0, 6), ("J", 0, 4))
        b.assign(b.ref("A", I, J), b.ref("A", I, J) + 1.0)
        res = simulate(b.build(), small_machine(), {}, {"A": (10, 10)},
                       unroll=(2, 0))
        assert res.iterations == 2 * 5 + 1 * 5
        assert res.flops == 7 * 5

    def test_unroll_preserves_total_flops(self):
        b = NestBuilder("mm")
        J, I, K = b.loops(("J", 0, 10), ("I", 0, 10), ("K", 0, 10))
        b.assign(b.ref("C", I, J),
                 b.ref("C", I, J) + b.ref("A", I, K) * b.ref("B", K, J))
        base = simulate(b.build(), small_machine(), {}, {
            "A": (16, 16), "B": (16, 16), "C": (16, 16)})
        for u in [(1, 0, 0), (2, 3, 0), (4, 1, 0)]:
            unrolled = simulate(b.build(), small_machine(), {}, {
                "A": (16, 16), "B": (16, 16), "C": (16, 16)}, unroll=u)
            assert unrolled.flops == base.flops

    def test_scalar_replacement_reduces_ops(self):
        b = NestBuilder("reuse")
        I = b.loop("I", 1, 63)
        b.assign(b.ref("C", I), b.ref("A", I) + b.ref("A", I - 1))
        with_sr = simulate(b.build(), small_machine(), {},
                           {"A": (70,), "C": (70,)})
        without = simulate(b.build(), small_machine(), {},
                           {"A": (70,), "C": (70,)}, scalar_replace=False)
        assert with_sr.memory_ops < without.memory_ops

    def test_spill_penalty_applied(self):
        """Unrolling far beyond the register file must cost spill traffic."""
        b = NestBuilder("pressure")
        I, J = b.loops(("I", 0, 20), ("J", 0, 20))
        b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I, J))
        tiny = small_machine(registers=2)
        res = simulate(b.build(), tiny, {}, {"A": (32,), "B": (32, 32)},
                       unroll=(6, 0))
        assert res.spill_ops > 0

    def test_rejects_bad_unroll(self):
        with pytest.raises(ValueError):
            simulate(streaming_nest(), small_machine(), {"N": 3},
                     {"A": (8,), "B": (8,)}, unroll=(1,))

    def test_determinism(self):
        a = simulate(streaming_nest(), small_machine(), {"N": 49},
                     {"A": (54,), "B": (54,)})
        b2 = simulate(streaming_nest(), small_machine(), {"N": 49},
                      {"A": (54,), "B": (54,)})
        assert a == b2

    def test_normalization(self):
        base = simulate(streaming_nest(), small_machine(), {"N": 99},
                        {"A": (104,), "B": (104,)})
        assert base.normalized_to(base) == 1.0

class TestMachineContrast:
    def test_alpha_pays_more_for_misses_than_pa(self):
        """The Figure 8 vs 9 contrast at the simulator level: a working set
        that thrashes the Alpha's cache fits comfortably in the PA's."""
        b = NestBuilder("col")
        J, I = b.loops(("J", 0, 63), ("I", 0, 63))
        b.assign(b.ref("A", I, J), b.ref("A", I, J) + 1.0)
        shapes = {"A": (70, 70)}
        alpha = simulate(b.build(), dec_alpha(), {}, shapes)
        pa = simulate(b.build(), hp_pa_risc(), {}, shapes)
        assert alpha.cycles > pa.cycles
