"""Tests for the SIV dependence tests and the dependence graph."""

import pytest

from repro.dependence import build_dependence_graph, subscript_pair_test
from repro.dependence.graph import Dependence
from repro.dependence.siv import STAR, merge_constraints
from repro.dependence.stats import graph_size_report
from repro.ir.builder import NestBuilder
from repro.ir.nodes import Subscript

def sub(coeffs=None, const=0, params=None):
    return Subscript.of(coeffs or {}, const, params)

class TestSubscriptPairs:
    def test_ziv_equal(self):
        entry = subscript_pair_test(sub(const=3), sub(const=3))
        assert not entry.proven_independent
        assert entry.constraints == ()

    def test_ziv_unequal(self):
        assert subscript_pair_test(sub(const=3), sub(const=4)).proven_independent

    def test_strong_siv_distance(self):
        # A(I+2) then A(I): same element when the second ref runs 2 later.
        entry = subscript_pair_test(sub({"I": 1}, 2), sub({"I": 1}, 0))
        assert entry.constraints == (("I", 2),)

    def test_strong_siv_negative_distance(self):
        entry = subscript_pair_test(sub({"I": 1}, 0), sub({"I": 1}, 3))
        assert entry.constraints == (("I", -3),)

    def test_strong_siv_non_integer_independent(self):
        entry = subscript_pair_test(sub({"I": 2}, 1), sub({"I": 2}, 0))
        assert entry.proven_independent

    def test_strong_siv_scaled(self):
        entry = subscript_pair_test(sub({"I": 2}, 4), sub({"I": 2}, 0))
        assert entry.constraints == (("I", 2),)

    def test_weak_zero(self):
        entry = subscript_pair_test(sub({"I": 1}), sub(const=5))
        assert entry.constraints == (("I", STAR),)

    def test_weak_crossing_divisible(self):
        entry = subscript_pair_test(sub({"I": 1}), sub({"I": -1}, 4))
        assert entry.constraints == (("I", STAR),)

    def test_weak_crossing_independent(self):
        entry = subscript_pair_test(sub({"I": 2}), sub({"I": -2}, 3))
        assert entry.proven_independent

    def test_gcd_independent(self):
        entry = subscript_pair_test(sub({"I": 2}), sub({"I": 4}, 1))
        assert entry.proven_independent

    def test_param_mismatch_constant_subscripts(self):
        entry = subscript_pair_test(sub(params={"N": 1}), sub(const=0))
        assert entry.proven_independent

    def test_param_match(self):
        entry = subscript_pair_test(sub({"I": 1}, 0, {"N": 1}),
                                    sub({"I": 1}, 1, {"N": 1}))
        assert entry.constraints == (("I", -1),)

    def test_different_variables_conservative(self):
        entry = subscript_pair_test(sub({"I": 1}), sub({"J": 1}))
        assert dict(entry.constraints) == {"I": STAR, "J": STAR}

class TestMergeConstraints:
    def test_contradiction_is_independent(self):
        entries = [subscript_pair_test(sub({"I": 1}, 1), sub({"I": 1}, 0)),
                   subscript_pair_test(sub({"I": 1}, 2), sub({"I": 1}, 0))]
        assert merge_constraints(entries, ("I",)) is None

    def test_star_refined_by_exact(self):
        entries = [subscript_pair_test(sub({"I": 1}), sub(const=0)),
                   subscript_pair_test(sub({"I": 1}, 1), sub({"I": 1}, 0))]
        assert merge_constraints(entries, ("I",)) == (1,)

    def test_free_loops_are_star(self):
        entries = [subscript_pair_test(sub({"J": 1}, 0), sub({"J": 1}, 0))]
        assert merge_constraints(entries, ("I", "J")) == (STAR, 0)

def stencil_nest():
    # A(I,J) = B(I,J) + B(I,J-1) + B(I-1,J)
    b = NestBuilder("stencil")
    I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
    b.assign(b.ref("A", I, J),
             b.ref("B", I, J) + b.ref("B", I, J - 1) + b.ref("B", I - 1, J))
    return b.build()

def inplace_sweep_nest():
    # A(I) = A(I-1) + A(I)   (flow + anti/output mix)
    b = NestBuilder("sweep")
    I = b.loop("I", 1, "N")
    b.assign(b.ref("A", I), b.ref("A", I - 1) + b.ref("A", I))
    return b.build()

class TestGraph:
    def test_stencil_has_only_input_deps_on_b(self):
        graph = build_dependence_graph(stencil_nest())
        kinds = {e.kind for e in graph.edges_for_array("B")}
        assert kinds == {"input"}
        # pairs: (B(I,J),B(I,J-1)) dist (0,1); (B(I,J),B(I-1,J)) dist (1,0);
        # (B(I,J-1),B(I-1,J)) dist (1,-1)
        assert len(graph.edges_for_array("B")) == 3

    def test_stencil_input_distances(self):
        graph = build_dependence_graph(stencil_nest())
        dists = sorted(e.distance for e in graph.edges_for_array("B"))
        assert dists == [(0, 1), (1, -1), (1, 0)]

    def test_stencil_a_has_no_self_dep(self):
        graph = build_dependence_graph(stencil_nest())
        assert graph.edges_for_array("A") == []

    def test_sweep_kinds(self):
        graph = build_dependence_graph(inplace_sweep_nest())
        kinds = sorted(e.kind for e in graph)
        # A(I-1) read vs A(I) write: flow at distance 1;
        # A(I) read vs A(I) write: anti at distance 0;
        # A(I-1) vs A(I) reads: input at distance 1.
        assert kinds == ["anti", "flow", "input"]

    def test_direction_normalization(self):
        graph = build_dependence_graph(inplace_sweep_nest())
        flow = next(e for e in graph if e.kind == "flow")
        assert flow.src.is_write and not flow.dst.is_write
        assert flow.distance == (1,)

    def test_without_input(self):
        graph = build_dependence_graph(inplace_sweep_nest())
        stripped = graph.without_input_dependences()
        assert stripped.count("input") == 0
        assert stripped.count() == graph.count() - graph.count("input")

    def test_exclude_input_at_build_time(self):
        full = build_dependence_graph(stencil_nest(), include_input=True)
        lean = build_dependence_graph(stencil_nest(), include_input=False)
        assert full.input_count == 3
        assert lean.input_count == 0

    def test_loop_invariant_reference_self_input_dep(self):
        # A(J) in a (J, I) nest: reading the same element for every I.
        b = NestBuilder("inv")
        J, I = b.loops(("J", 0, "N"), ("I", 0, "M"))
        b.assign(b.ref("C", J, I), b.ref("A", J))
        graph = build_dependence_graph(b.build())
        self_deps = [e for e in graph if e.src.position == e.dst.position]
        assert len(self_deps) == 1
        assert self_deps[0].kind == "input"
        assert self_deps[0].distance == (0, STAR)

    def test_carrier_level(self):
        graph = build_dependence_graph(inplace_sweep_nest())
        flow = next(e for e in graph if e.kind == "flow")
        assert flow.carrier_level() == 0
        anti = next(e for e in graph if e.kind == "anti")
        assert anti.carrier_level() is None
        assert anti.is_loop_independent()

class TestSizeReport:
    def test_report_counts(self):
        report = graph_size_report(build_dependence_graph(stencil_nest()))
        assert report.total_edges == 3
        assert report.input_edges == 3
        assert report.input_fraction == 1.0
        assert report.non_input_edges == 0

    def test_bytes_accounting(self):
        report = graph_size_report(build_dependence_graph(stencil_nest()))
        per_edge = 12 + 4 * 2
        assert report.edge_bytes() == 3 * per_edge
        assert report.bytes_saved() == 3 * per_edge

    def test_pretty_smoke(self):
        graph = build_dependence_graph(inplace_sweep_nest())
        for edge in graph:
            assert isinstance(edge.pretty(), str)
