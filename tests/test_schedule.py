"""List-scheduler tests."""

from fractions import Fraction

import pytest

from repro.ir.builder import NestBuilder
from repro.machine import dec_alpha
from repro.machine.schedule import build_dataflow, schedule_body
from repro.unroll.transform import unroll_and_jam

def daxpy():
    b = NestBuilder("daxpy")
    I = b.loop("I", 0, "N")
    b.assign(b.ref("Y", I), b.ref("Y", I) + b.scalar("a") * b.ref("X", I))
    return b.build()

class TestDataflow:
    def test_node_kinds(self):
        nodes = build_dataflow(daxpy(), dec_alpha())
        kinds = sorted(n.kind for n in nodes)
        # loads Y and X, two fp ops, one store
        assert kinds == ["fp", "fp", "load", "load", "store"]

    def test_scalar_threading(self):
        b = NestBuilder("thread")
        I = b.loop("I", 0, "N")
        b.assign(b.scalar("t"), b.ref("A", I) * 2.0)
        b.assign(b.ref("B", I), b.scalar("t") + 1.0)
        nodes = build_dataflow(b.build(), dec_alpha())
        store = next(n for n in nodes if n.kind == "store")
        add = nodes[store.preds[0]]
        assert add.kind == "fp"
        mul = nodes[add.preds[0]]
        assert mul.kind == "fp"  # the producer of t feeds the consumer

    def test_register_resident_refs_cost_nothing(self):
        b = NestBuilder("reuse")
        I = b.loop("I", 1, "N")
        b.assign(b.ref("C", I), b.ref("A", I) + b.ref("A", I - 1))
        nodes = build_dataflow(b.build(), dec_alpha())
        loads = [n for n in nodes if n.kind == "load"]
        assert len(loads) == 1  # A(I-1) rides the register

    def test_divide_latency(self):
        b = NestBuilder("div")
        I = b.loop("I", 0, "N")
        b.assign(b.ref("A", I), b.ref("B", I) / b.ref("C", I))
        machine = dec_alpha()
        nodes = build_dataflow(b.build(), machine)
        div = next(n for n in nodes if n.kind == "div")
        assert div.latency == machine.divide_latency

class TestSchedule:
    def test_makespan_at_least_critical_path(self):
        result = schedule_body(daxpy(), dec_alpha())
        assert result.makespan >= result.critical_path

    def test_initiation_interval_is_resource_bound(self):
        result = schedule_body(daxpy(), dec_alpha())
        machine = dec_alpha()
        expected = max(Fraction(result.memory_ops) / machine.mem_issue,
                       Fraction(result.fp_ops) / machine.fp_issue,
                       Fraction(1))
        assert result.initiation_interval == expected

    def test_unrolling_amortizes_critical_path(self):
        """Unroll-and-jam widens the body: the makespan grows far slower
        than the work, which is the ILP benefit the paper's section 1
        describes."""
        nest = daxpy()
        base = schedule_body(nest, dec_alpha())
        # daxpy is 1-deep; use a 2-deep variant to unroll
        b = NestBuilder("daxpy2")
        J, I = b.loops(("J", 0, "N"), ("I", 0, "N"))
        b.assign(b.ref("Y", I, J),
                 b.ref("Y", I, J) + b.scalar("a") * b.ref("X", I, J))
        nest2 = b.build()
        one = schedule_body(nest2, dec_alpha())
        four = schedule_body(unroll_and_jam(nest2, (3, 0)).main, dec_alpha())
        assert four.makespan < 4 * one.makespan
        assert four.fp_ops == 4 * one.fp_ops

    def test_empty_cost_body(self):
        b = NestBuilder("copy")
        I = b.loop("I", 0, "N")
        b.assign(b.ref("A", I), b.ref("B", I))
        result = schedule_body(b.build(), dec_alpha())
        assert result.fp_ops == 0
        assert result.memory_ops == 2
        assert result.makespan >= 1

    def test_deterministic(self):
        a = schedule_body(daxpy(), dec_alpha())
        b2 = schedule_body(daxpy(), dec_alpha())
        assert a == b2
