"""Cross-nest UGS memoization: signature, parity fuzz, shared tier.

The contract under test is bit-exactness: tables served from
:class:`repro.engine.ugscache.UgsTableCache` must be indistinguishable --
same JSON serialization, same decisions -- from a fresh build, across
machines, line sizes, trips and localized spaces, while actually sharing
entries between structurally different nests (translation twins, renamed
arrays, common archetypes inside a random corpus).
"""

from __future__ import annotations

import pytest

from repro.corpus import CorpusConfig, iter_corpus
from repro.engine import AnalysisEngine
from repro.engine.metrics import Metrics
from repro.engine.shared import SharedTableStore
from repro.engine.ugscache import UgsTableCache, ugs_digest, ugs_signature
from repro.ir.builder import NestBuilder
from repro.linalg import VectorSpace
from repro.machine.presets import dec_alpha
from repro.reuse.locality import innermost_localized_space
from repro.reuse.ugs import partition_ugs
from repro.unroll.serialize import tables_to_json
from repro.unroll.space import UnrollSpace
from repro.unroll.tables import build_tables

def _space(nest, bound=2):
    dims = tuple(range(nest.depth - 1))  # all but the innermost loop
    return UnrollSpace(nest.depth, dims, (bound,) * len(dims))

def _shifted_nest(name, shift, array="A"):
    """OUT(I) = A(I+shift) + A(I+shift-1): one write set, one read pair
    whose constant vectors translate with ``shift``."""
    b = NestBuilder(name)
    (i,) = b.loops(("I", 1, "N"))
    b.assign(b.ref("OUT", i),
             b.ref(array, i + shift) + b.ref(array, i + shift - 1))
    return b.build()

class TestSignature:
    def test_translation_invariance(self):
        a = _shifted_nest("a", 0)
        b = _shifted_nest("b", 4)
        space = _space(a)
        loc = innermost_localized_space(a)
        sigs_a = {ugs_signature(g, space, loc, 4, 100)
                  for g in partition_ugs(a)}
        sigs_b = {ugs_signature(g, space, loc, 4, 100)
                  for g in partition_ugs(b)}
        assert sigs_a == sigs_b

    def test_array_name_is_irrelevant(self):
        a = _shifted_nest("a", 0)
        z = _shifted_nest("z", 0, array="Z")
        space = _space(a)
        loc = innermost_localized_space(a)
        assert {ugs_signature(g, space, loc, 4, 100)
                for g in partition_ugs(a)} == \
            {ugs_signature(g, space, loc, 4, 100)
             for g in partition_ugs(z)}

    def test_line_size_trip_and_localized_discriminate(self):
        nest = _shifted_nest("a", 0)
        space = _space(nest)
        loc = innermost_localized_space(nest)
        [group] = [g for g in partition_ugs(nest) if len(g.members) == 2]
        base = ugs_signature(group, space, loc, 4, 100)
        assert ugs_signature(group, space, loc, 8, 100) != base
        assert ugs_signature(group, space, loc, 4, 50) != base
        other = VectorSpace([], nest.depth)  # nothing localized
        assert ugs_signature(group, space, other, 4, 100) != base

    def test_space_bounds_discriminate(self):
        b = NestBuilder("deep")
        j, i = b.loops(("J", 1, "N"), ("I", 1, "N"))
        b.assign(b.ref("OUT", j, i), b.ref("A", j, i) + b.ref("A", j - 1, i))
        nest = b.build()
        loc = innermost_localized_space(nest)
        [group] = [g for g in partition_ugs(nest) if len(g.members) == 2]
        assert ugs_signature(group, _space(nest, 2), loc, 4, 100) != \
            ugs_signature(group, _space(nest, 3), loc, 4, 100)

    def test_read_write_role_discriminates(self):
        # A(I) = A(I) + 1 vs OUT(I) = A(I) + A(I): same H, same constants,
        # different is_write pattern.
        b = NestBuilder("rw")
        (i,) = b.loops(("I", 1, "N"))
        b.assign(b.ref("A", i), b.ref("A", i) + 1.0)
        rw = b.build()
        b = NestBuilder("ro")
        (i,) = b.loops(("I", 1, "N"))
        b.assign(b.ref("OUT", i), b.ref("A", i) * 2.0)
        ro = b.build()
        space = _space(rw)
        loc = innermost_localized_space(rw)
        rw_sigs = {ugs_signature(g, space, loc, 4, 100)
                   for g in partition_ugs(rw) if g.array == "A"}
        ro_sigs = {ugs_signature(g, space, loc, 4, 100)
                   for g in partition_ugs(ro) if g.array == "A"}
        assert rw_sigs.isdisjoint(ro_sigs)

    def test_digest_is_prefixed_and_stable(self):
        nest = _shifted_nest("a", 0)
        space = _space(nest)
        loc = innermost_localized_space(nest)
        [group] = [g for g in partition_ugs(nest) if len(g.members) == 2]
        sig = ugs_signature(group, space, loc, 4, 100)
        digest = ugs_digest(sig)
        assert digest.startswith("ugs-")
        assert digest == ugs_digest(sig)

class TestCacheUnit:
    def test_hit_rebinds_ugs_and_counts(self):
        nest = _shifted_nest("a", 0)
        twin = _shifted_nest("b", 7, array="Z")
        metrics = Metrics()
        cache = UgsTableCache(metrics=metrics)
        build_tables(nest, _space(nest), ugs_cache=cache)
        assert metrics.counter("cache.ugs.miss") == 2
        assert metrics.counter("cache.ugs.store") == 2
        tables = build_tables(twin, _space(twin), ugs_cache=cache)
        assert metrics.counter("cache.ugs.hit") == 2
        # Served entries carry the *caller's* groups, not the twin's.
        arrays = {entry.ugs.array for entry in tables.per_ugs}
        assert arrays == {"OUT", "Z"}

    def test_lru_eviction(self):
        cache = UgsTableCache(capacity=1, metrics=Metrics())
        a = _shifted_nest("a", 0)
        build_tables(a, _space(a), ugs_cache=cache)
        assert len(cache) == 1  # the second store evicted the first

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            UgsTableCache(capacity=0)

    def test_seed_mode_bypasses_cache(self):
        from repro.fastpath import seed_algorithms

        metrics = Metrics()
        cache = UgsTableCache(metrics=metrics)
        nest = _shifted_nest("a", 0)
        build_tables(nest, _space(nest), fast=False, ugs_cache=cache)
        with seed_algorithms():
            build_tables(nest, _space(nest), ugs_cache=cache)
        assert len(cache) == 0
        assert metrics.snapshot()["counters"] == {}

class TestParityFuzz:
    """Cached tables are bit-identical to fresh builds: >= 500 seeded
    nests through one shared cache, cycling line sizes, trips and
    localized spaces, comparing full JSON serializations."""

    def test_corpus_parity(self):
        cache = UgsTableCache(metrics=Metrics())
        line_sizes = (4, 8, 16)
        trips = (100, 50, 10)
        mismatches = []
        for n, nest in enumerate(iter_corpus(
                CorpusConfig(seed=20260808), count=500)):
            space = _space(nest, bound=2)
            line = line_sizes[n % len(line_sizes)]
            trip = trips[n % len(trips)]
            localized = None
            if nest.depth > 1 and n % 5 == 0:
                localized = VectorSpace.spanned_by_axes(
                    [nest.depth - 2, nest.depth - 1], nest.depth)
            fresh = build_tables(nest, space, line_size=line, trip=trip,
                                 localized=localized)
            cached = build_tables(nest, space, line_size=line, trip=trip,
                                  localized=localized, ugs_cache=cache)
            if tables_to_json(fresh) != tables_to_json(cached):
                mismatches.append(nest.name)
        assert mismatches == []
        # The fuzz only means something if the cache actually served hits.
        hits = cache.metrics.counter("cache.ugs.hit")
        assert hits > 100, f"only {hits} cross-nest hits in 500 nests"

    def test_translation_twins_share_tables_bit_exactly(self):
        cache = UgsTableCache(metrics=Metrics())
        a = _shifted_nest("a", 0)
        b = _shifted_nest("b", 4, array="Z")
        build_tables(a, _space(a), ugs_cache=cache)
        served = build_tables(b, _space(b), ugs_cache=cache)
        fresh = build_tables(b, _space(b))
        assert tables_to_json(served) == tables_to_json(fresh)
        assert cache.metrics.counter("cache.ugs.hit") == 2

class TestEngineIntegration:
    def test_decisions_identical_with_and_without_cache(self):
        corpus = list(iter_corpus(CorpusConfig(seed=11), count=40))
        machine = dec_alpha()
        with_cache = AnalysisEngine()
        without = AnalysisEngine(ugs_cache=False)
        assert without.ugs_cache is None
        got = with_cache.optimize_many(corpus, machine, bound=3)
        want = without.optimize_many(corpus, machine, bound=3)
        assert [i.result.unroll for i in got.items] == \
            [i.result.unroll for i in want.items]
        assert [i.result.objective for i in got.items] == \
            [i.result.objective for i in want.items]
        counters = with_cache.metrics.snapshot()["counters"]
        assert counters.get("cache.ugs.hit", 0) > 0

    def test_cache_stats_and_clear(self):
        engine = AnalysisEngine()
        engine.optimize(_shifted_nest("a", 0), dec_alpha(), bound=2)
        stats = engine.cache_stats()
        assert stats["memory"]["ugs"] == len(engine.ugs_cache) > 0
        assert "ugs" in stats["hit_rates"]
        assert "memory" in stats["hit_rates"]
        engine.clear()
        assert len(engine.ugs_cache) == 0

    def test_disabled_cache_stats(self):
        stats = AnalysisEngine(ugs_cache=False).cache_stats()
        assert stats["memory"]["ugs"] == 0

class TestSharedTier:
    def test_round_trip_through_shared_store(self, tmp_path):
        nest = _shifted_nest("a", 0)
        writer = UgsTableCache(metrics=Metrics(),
                               shared=SharedTableStore(tmp_path))
        build_tables(nest, _space(nest), ugs_cache=writer)
        assert writer.metrics.counter("cache.ugs.shared_store") == 2

        # A fresh process-local cache on the same directory: both sets
        # come back from the shared tier, bit-identical.
        reader = UgsTableCache(metrics=Metrics(),
                               shared=SharedTableStore(tmp_path))
        served = build_tables(nest, _space(nest), ugs_cache=reader)
        assert reader.metrics.counter("cache.ugs.shared_hit") == 2
        assert tables_to_json(served) == \
            tables_to_json(build_tables(nest, _space(nest)))

    def test_corrupt_shared_blob_degrades_to_miss(self, tmp_path):
        nest = _shifted_nest("a", 0)
        space = _space(nest)
        loc = innermost_localized_space(nest)
        # Publish junk under the exact digests the reader will probe:
        # present blobs that fail to deserialize must degrade to misses.
        store = SharedTableStore(tmp_path)
        for group in partition_ugs(nest):
            digest = ugs_digest(ugs_signature(group, space, loc, 4, 100))
            assert store.put_blob(digest, b"{not json")
        reader = UgsTableCache(metrics=Metrics(),
                               shared=SharedTableStore(tmp_path))
        served = build_tables(nest, _space(nest), ugs_cache=reader)
        assert reader.metrics.counter("cache.ugs.miss") == 2
        assert tables_to_json(served) == \
            tables_to_json(build_tables(nest, _space(nest)))

    def test_engine_level_cross_nest_shared_hit(self, tmp_path):
        """Nest B never ran anywhere, but its UGSs match nest A's up to
        translation/renaming -- a second engine folds A's published
        per-set tables into B's build."""
        machine = dec_alpha()
        first = AnalysisEngine(shared_dir=tmp_path)
        first.optimize(_shifted_nest("a", 0), machine, bound=3)

        second = AnalysisEngine(shared_dir=tmp_path)
        result = second.optimize(_shifted_nest("b", 4, array="Z"),
                                 machine, bound=3)
        counters = second.metrics.snapshot()["counters"]
        assert counters.get("cache.ugs.shared_hit", 0) >= 1
        fresh = AnalysisEngine(ugs_cache=False).optimize(
            _shifted_nest("b", 4, array="Z"), machine, bound=3)
        assert result.unroll == fresh.unroll
        assert result.objective == fresh.objective
