"""Tests for the unroll space and the merge-point solver."""

from fractions import Fraction

import pytest

from repro.ir.builder import NestBuilder
from repro.linalg import Matrix, VectorSpace
from repro.reuse.ugs import partition_ugs
from repro.unroll.merge import solve_merge
from repro.unroll.space import UnrollSpace, body_copies, dominates, offsets_box

class TestUnrollSpace:
    def test_iteration_order_and_size(self):
        space = UnrollSpace(3, (0, 1), (1, 2))
        vectors = list(space)
        assert len(vectors) == len(space) == 6
        assert vectors[0] == (0, 0, 0)
        assert vectors[-1] == (1, 2, 0)

    def test_embed_project_roundtrip(self):
        space = UnrollSpace(3, (0, 1), (4, 4))
        assert space.embed((2, 3)) == (2, 3, 0)
        assert space.project((2, 3, 0)) == (2, 3)

    def test_contains(self):
        space = UnrollSpace(3, (0,), (4,))
        assert space.contains((3, 0, 0))
        assert not space.contains((5, 0, 0))
        assert not space.contains((0, 1, 0))
        assert not space.contains((0, 0))

    def test_innermost_rejected(self):
        with pytest.raises(ValueError):
            UnrollSpace(2, (1,), (4,))

    def test_duplicate_dims_rejected(self):
        with pytest.raises(ValueError):
            UnrollSpace(3, (0, 0), (1, 1))

    def test_empty_dims_single_vector(self):
        space = UnrollSpace(2, (), ())
        assert list(space) == [(0, 0)]

    def test_body_copies(self):
        assert body_copies((2, 3, 0)) == 12
        assert body_copies((0, 0)) == 1

    def test_offsets_box(self):
        assert list(offsets_box((2, 1, 0), [0, 1])) == [
            (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]

    def test_dominates(self):
        assert dominates((2, 3), (2, 1))
        assert not dominates((2, 0), (1, 1))

def inner(depth):
    return VectorSpace.spanned_by_axes([depth - 1], depth)

class TestSolveMerge:
    def test_figure1_merge_point(self):
        """A(I,J) vs A(I-2,J), unroll I: merge offset 2 (the paper's
        Figure 1 example)."""
        h = Matrix([[1, 0], [0, 1]])
        sol = solve_merge(h, delta=(2, 0), dims=(0,), localized=inner(2))
        assert sol is not None
        assert sol.offset == (2,)
        assert sol.inner_distance == 0

    def test_merge_with_inner_residual(self):
        """A(I,J) vs A(I-1,J-3): offset 1 on I, residual 3 on J."""
        h = Matrix([[1, 0], [0, 1]])
        sol = solve_merge(h, delta=(1, 3), dims=(0,), localized=inner(2))
        assert sol is not None
        assert sol.offset == (1,)
        assert sol.inner_distance == 3

    def test_non_integer_offset_fails(self):
        h = Matrix([[2, 0], [0, 1]])
        assert solve_merge(h, (3, 0), (0,), inner(2)) is None

    def test_non_integer_residual_fails(self):
        h = Matrix([[1, 0], [0, 2]])
        assert solve_merge(h, (1, 3), (0,), inner(2)) is None

    def test_unreachable_row_fails(self):
        """A difference in a dimension no loop drives cannot merge."""
        h = Matrix([[1, 0], [0, 0]])
        assert solve_merge(h, (1, 5), (0,), inner(2)) is None

    def test_negative_offset_allowed(self):
        h = Matrix([[1, 0], [0, 1]])
        sol = solve_merge(h, (-2, 0), (0,), inner(2))
        assert sol is not None and sol.offset == (-2,)

    def test_spatial_merge_ignores_first_dim(self):
        """A(I,J) vs A(I+3,J): no temporal merge without I in dims, but a
        spatial one (distance 3 within the line)."""
        h = Matrix([[1, 0], [0, 1]])
        assert solve_merge(h, (3, 0), (), inner(2)) is None
        sol = solve_merge(h, (3, 0), (), inner(2), spatial=True, line_size=4)
        assert sol is not None
        assert sol.spatial_residual == 3

    def test_spatial_line_cap(self):
        h = Matrix([[1, 0], [0, 1]])
        assert solve_merge(h, (5, 0), (), inner(2), spatial=True,
                           line_size=4) is None
        assert solve_merge(h, (5, 0), (), inner(2), spatial=True,
                           line_size=None) is not None

    def test_zero_delta_trivial(self):
        h = Matrix([[1, 0], [0, 1]])
        sol = solve_merge(h, (0, 0), (0,), inner(2))
        assert sol is not None
        assert sol.offset == (0,)

    def test_strided_merge(self):
        """A(2I) vs A(2I-4): offset 2 despite the stride."""
        h = Matrix([[2, 0], [0, 1]])
        sol = solve_merge(h, (4, 0), (0,), inner(2))
        assert sol is not None and sol.offset == (2,)

    def test_negative_coefficient(self):
        """A(4-I) style references: offset direction flips."""
        h = Matrix([[-1, 0], [0, 1]])
        sol = solve_merge(h, (2, 0), (0,), inner(2))
        assert sol is not None and sol.offset == (-2,)

class TestMergeOnRealNest:
    def test_ugs_pair_from_builder(self):
        b = NestBuilder("pair")
        I, J = b.loops(("I", 2, "N"), ("J", 0, "N"))
        b.assign(b.ref("A", I, J), b.ref("A", I - 2, J) + 1.0)
        ugs = next(s for s in partition_ugs(b.build()) if s.array == "A")
        consts = ugs.constants()
        assert consts == [(-2, 0), (0, 0)]
        delta = tuple(b_ - a_ for a_, b_ in zip(consts[0], consts[1]))
        sol = solve_merge(ugs.matrix, delta, (0,), inner(2))
        assert sol is not None and sol.offset == (2,)
