"""Scalar expansion tests: semantics, privatizability, and the enabling
effect on loop distribution."""

import numpy as np
import pytest

from repro.ir.builder import NestBuilder
from repro.ir.interp import run_nest
from repro.transforms.distribution import distribute
from repro.transforms.scalar_expansion import (
    ExpansionError,
    expand_scalars,
    expansion_shapes,
)

def temp_nest():
    b = NestBuilder("temp")
    I, J = b.loops(("I", 0, 11), ("J", 0, 11))
    b.assign(b.scalar("t"), b.ref("B", I, J) + 1.0)
    b.assign(b.ref("A", I, J), b.scalar("t") * b.scalar("t"))
    return b.build()

class TestExpansion:
    def test_structure(self):
        expanded = expand_scalars(temp_nest())
        assert expanded.scalar_temporaries() == ()
        assert "t__exp" in expanded.array_names()
        first = expanded.body[0]
        assert first.lhs.array == "t__exp"
        assert [s.loop_names() for s in first.lhs.subscripts] == \
            [("I",), ("J",)]

    def test_semantics(self):
        nest = temp_nest()
        expanded = expand_scalars(nest)
        rng = np.random.default_rng(0)
        base = {"A": np.zeros((12, 12)), "B": rng.standard_normal((12, 12))}
        plain = {k: v.copy() for k, v in base.items()}
        exp = {k: v.copy() for k, v in base.items()}
        exp.update({name: np.zeros(shape)
                    for name, shape in expansion_shapes(nest, {}).items()})
        run_nest(nest, {}, plain)
        run_nest(expanded, {}, exp)
        assert np.array_equal(plain["A"], exp["A"])

    def test_carried_scalar_rejected(self):
        b = NestBuilder("carried")
        I = b.loop("I", 0, 9)
        b.assign(b.ref("A", I), b.scalar("t") + 1.0)  # read before write
        b.assign(b.scalar("t"), b.ref("B", I) * 2.0)
        with pytest.raises(ExpansionError):
            expand_scalars(b.build())

    def test_no_temps_identity(self):
        b = NestBuilder("plain")
        I = b.loop("I", 0, 9)
        b.assign(b.ref("A", I), b.ref("B", I) + 1.0)
        nest = b.build()
        assert expand_scalars(nest) is nest

    def test_only_subset(self):
        b = NestBuilder("two")
        I = b.loop("I", 0, 9)
        b.assign(b.scalar("t"), b.ref("B", I) + 1.0)
        b.assign(b.scalar("u"), b.scalar("t") * 2.0)
        b.assign(b.ref("A", I), b.scalar("u"))
        expanded = expand_scalars(b.build(), only={"t"})
        assert "t__exp" in expanded.array_names()
        assert "u" in expanded.scalar_temporaries()

class TestEnablesDistribution:
    def test_expansion_unlocks_split(self):
        """The temporary welds the statements together; expansion frees
        them to distribute."""
        nest = temp_nest()
        fused_pieces = distribute(nest)
        assert len(fused_pieces) == 1  # the scalar keeps them together
        expanded = expand_scalars(nest)
        split_pieces = distribute(expanded)
        assert len(split_pieces) == 2

    def test_distributed_expanded_semantics(self):
        nest = temp_nest()
        expanded = expand_scalars(nest)
        pieces = distribute(expanded)
        rng = np.random.default_rng(1)
        base = {"A": np.zeros((12, 12)), "B": rng.standard_normal((12, 12))}
        plain = {k: v.copy() for k, v in base.items()}
        dist = {k: v.copy() for k, v in base.items()}
        dist.update({name: np.zeros(shape)
                     for name, shape in expansion_shapes(nest, {}).items()})
        run_nest(nest, {}, plain)
        for piece in pieces:
            run_nest(piece, {}, dist)
        assert np.array_equal(plain["A"], dist["A"])
