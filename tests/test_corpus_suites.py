"""Suite-flavoured corpora and the per-suite Table 1 breakdown."""

from repro.corpus.generator import SUITE_PROFILES, generate_suite_corpora
from repro.experiments.table1 import format_suite_breakdown, run_table1_by_suite
from repro.ir.validate import validate_nest
from repro.machine.presets import future_wide, mips_r10k

class TestSuiteCorpora:
    def test_four_suites(self):
        corpora = generate_suite_corpora(40)
        assert set(corpora) == set(SUITE_PROFILES) == {
            "spec92", "perfect", "nas", "local"}

    def test_deterministic(self):
        a = generate_suite_corpora(30)
        b = generate_suite_corpora(30)
        for suite in a:
            assert [n.body for n in a[suite]] == [n.body for n in b[suite]]

    def test_suites_differ(self):
        corpora = generate_suite_corpora(30)
        bodies = {suite: tuple(str(n.body) for n in nests)
                  for suite, nests in corpora.items()}
        assert len(set(bodies.values())) == 4

    def test_routines_valid(self):
        for nests in generate_suite_corpora(25).values():
            for nest in nests:
                validate_nest(nest, require_siv=False)

class TestSuiteBreakdown:
    def test_input_share_dominates_in_every_suite(self):
        reports = run_table1_by_suite(80)
        for suite, report in reports.items():
            assert report.total_input_share > 0.5, suite

    def test_format(self):
        text = format_suite_breakdown(run_table1_by_suite(50))
        for suite in SUITE_PROFILES:
            assert suite in text

class TestNewPresets:
    def test_mips_is_valid_and_balanced_at_half(self):
        m = mips_r10k()
        assert float(m.balance) == 0.5
        assert m.cache_assoc == 2

    def test_future_wide_has_prefetch(self):
        m = future_wide()
        assert m.prefetch_bandwidth == 1
        assert m.registers == 128
