"""The CI benchmark-regression gate (benchmarks/regression.py).

Proves the acceptance criteria directly against the comparison script:

* a synthetic 2x slowdown (throughput halved, p95 doubled) trips the
  gate;
* the committed baselines pass when replayed against themselves;
* deltas inside the tolerance band pass, just outside fail, and the
  direction matters (faster-than-baseline never fails);
* ``--update`` rewrites baselines the ``--check`` mode then accepts;
* missing results or baselines fail loudly instead of vacuously passing.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

_BENCHMARKS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"

def _load_regression():
    spec = importlib.util.spec_from_file_location(
        "bench_regression_gate", _BENCHMARKS / "regression.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module

regression = _load_regression()

#: Plausible committed-baseline metric values.
BASE_ENGINE = {"cold_nests_per_sec": 40.0, "warm_tables_hit_rate": 1.0}
BASE_SERVE = {"throughput_rps": 1200.0, "latency_p95_s": 0.004,
              "wire_p50_ratio": 0.35, "wire_binary_rps": 3000.0}
BASE_CLUSTER = {"cluster_throughput_rps": 800.0,
                "merged_compute_rate": 1.0}
BASE_COLD = {"cold_nests_per_sec": 100.0, "speedup_vs_seed": 2.2,
             "seed_nests_per_sec": 45.0, "bound": 4.0,
             "build_tables_p95_s": 0.02}
BASE_PREDICT = {"held_out_top1": 0.88, "fast_decisions_per_sec": 4000.0}
BASE_REUSE = {"direct_mean_abs_error": 0.033,
              "assoc4_mean_abs_error": 0.024,
              "assoc8_mean_abs_error": 0.025}
BASE_SIMD = {"packable_fraction": 0.31, "win_fraction": 1.0,
             "parity_mismatches": 0.0, "invariance_mismatches": 0.0}
BASE_UGS = {"cached_nests_per_sec": 60.0, "speedup": 1.7,
            "decision_mismatches": 0.0, "stream_peak_mb": 5.5}

def engine_results(nests_per_sec: float = 40.0,
                   hit_rate: float = 1.0) -> dict:
    return {"cold": {"nests_per_sec": nests_per_sec},
            "warm": {"tables_hit_rate": hit_rate}}

def cold_results(nests_per_sec: float = 100.0, speedup: float = 2.2,
                 seed_nps: float = 45.0, tables_p95: float = 0.02) -> dict:
    return {"bound": 4,
            "fast": {"nests_per_sec": nests_per_sec},
            "seed": {"nests_per_sec": seed_nps},
            "speedup_vs_seed": speedup,
            "stage_p95_s": {"build_tables": tables_p95}}

def serve_results(rps: float = 1200.0, p95: float = 0.004,
                  wire_ratio: float = 0.35,
                  wire_rps: float = 3000.0) -> dict:
    return {"throughput": {"throughput_rps": rps,
                           "latency_s": {"p95": p95}},
            "wire": {"p50_ratio": wire_ratio,
                     "binary": {"throughput_rps": wire_rps}}}

def cluster_results(rps: float = 800.0, merged: float = 1.0) -> dict:
    return {"cluster": {"throughput_rps": rps},
            "sticky": {"merged_compute_rate": merged}}

def predict_results(accuracy: float = 0.88,
                    per_sec: float = 4000.0) -> dict:
    return {"eval": {"accuracy": accuracy},
            "latency": {"fast_per_sec": per_sec}}

def reuse_results(direct: float = 0.033, assoc4: float = 0.024,
                  assoc8: float = 0.025) -> dict:
    return {"geometries": {
        "direct_512": {"mean_abs_error": direct},
        "assoc4_1024": {"mean_abs_error": assoc4},
        "assoc8_2048": {"mean_abs_error": assoc8}}}

def simd_results(packable: float = 0.31, wins: float = 1.0,
                 parity: float = 0.0, invariance: float = 0.0) -> dict:
    return {"estimates": {"packable_fraction": packable,
                          "win_fraction": wins},
            "parity": {"mismatches": parity},
            "invariance": {"mismatches": invariance}}

def ugs_results(per_sec: float = 60.0, speedup: float = 1.7,
                mismatches: float = 0.0, peak_mb: float = 5.5) -> dict:
    return {"cached": {"nests_per_sec": per_sec},
            "speedup": speedup,
            "parity": {"decision_mismatches": mismatches},
            "stream": {"large": {"peak_mb": peak_mb}}}

_DEFAULT = object()  # sentinel: include plausible results for the bench

def write_tree(tmp_path: pathlib.Path, engine: dict | None,
               serve: dict | None,
               baselines: dict[str, dict] | None = None,
               cluster: dict | None | object = _DEFAULT,
               cold: dict | None | object = _DEFAULT,
               predict: dict | None | object = _DEFAULT,
               reuse: dict | None | object = _DEFAULT,
               simd: dict | None | object = _DEFAULT,
               ugs: dict | None | object = _DEFAULT) -> tuple[
                   pathlib.Path, pathlib.Path]:
    results = tmp_path / "results"
    results.mkdir(exist_ok=True)
    if cluster is _DEFAULT:
        cluster = cluster_results()
    if cold is _DEFAULT:
        cold = cold_results()
    if predict is _DEFAULT:
        predict = predict_results()
    if reuse is _DEFAULT:
        reuse = reuse_results()
    if simd is _DEFAULT:
        simd = simd_results()
    if ugs is _DEFAULT:
        ugs = ugs_results()
    if engine is not None:
        (results / "engine_throughput.json").write_text(json.dumps(engine))
    if serve is not None:
        (results / "serve_throughput.json").write_text(json.dumps(serve))
    if cluster is not None:
        (results / "cluster_throughput.json").write_text(
            json.dumps(cluster))
    if cold is not None:
        (results / "cold_analysis.json").write_text(json.dumps(cold))
    if predict is not None:
        (results / "predict.json").write_text(json.dumps(predict))
    if reuse is not None:
        (results / "reuse_profile.json").write_text(json.dumps(reuse))
    if simd is not None:
        (results / "simd.json").write_text(json.dumps(simd))
    if ugs is not None:
        (results / "ugs_cache.json").write_text(json.dumps(ugs))
    baseline_dir = tmp_path / "baselines"
    baseline_dir.mkdir(exist_ok=True)
    for name, metrics in (baselines or {}).items():
        (baseline_dir / f"{name}.json").write_text(
            json.dumps({"benchmark": name, "metrics": metrics}))
    return results, baseline_dir

DEFAULT_BASELINES = {"engine_throughput": BASE_ENGINE,
                     "serve_throughput": BASE_SERVE,
                     "cluster_throughput": BASE_CLUSTER,
                     "cold_analysis": BASE_COLD,
                     "predict": BASE_PREDICT,
                     "reuse_profile": BASE_REUSE,
                     "simd": BASE_SIMD,
                     "ugs_cache": BASE_UGS}

class TestCompare:
    def test_synthetic_2x_slowdown_fails(self):
        """The headline acceptance criterion: halve throughput, double
        p95 -- every latency/throughput row must go out of band."""
        rows = regression.compare(
            "serve_throughput", BASE_SERVE,
            {"throughput_rps": 600.0, "latency_p95_s": 0.008,
             "wire_p50_ratio": 0.35, "wire_binary_rps": 3000.0})
        verdicts = {row["metric"]: row["ok"] for row in rows}
        assert verdicts == {"throughput_rps": False,
                            "latency_p95_s": False,
                            "wire_p50_ratio": True,
                            "wire_binary_rps": True}

    def test_identical_results_pass(self):
        rows = regression.compare("engine_throughput", BASE_ENGINE,
                                  dict(BASE_ENGINE))
        assert all(row["ok"] for row in rows)
        assert all(row["delta_pct"] == 0.0 for row in rows)

    def test_band_edges(self):
        tol = 0.25
        inside = regression.compare(
            "serve_throughput", BASE_SERVE,
            {"throughput_rps": 1200.0 * (1 - tol) + 1e-6,
             "latency_p95_s": 0.004 * (1 + tol) - 1e-12,
             "wire_p50_ratio": 0.35 * (1 + tol) - 1e-9,
             "wire_binary_rps": 3000.0 * (1 - tol) + 1e-6}, tolerance=tol)
        assert all(row["ok"] for row in inside)
        outside = regression.compare(
            "serve_throughput", BASE_SERVE,
            {"throughput_rps": 1200.0 * (1 - tol) - 1e-3,
             "latency_p95_s": 0.004 * (1 + tol) + 1e-6,
             "wire_p50_ratio": 0.35 * (1 + tol) + 1e-6,
             "wire_binary_rps": 3000.0 * (1 - tol) - 1e-3}, tolerance=tol)
        assert not any(row["ok"] for row in outside)

    def test_direction_awareness(self):
        """Faster/better than baseline never trips the gate."""
        rows = regression.compare(
            "serve_throughput", BASE_SERVE,
            {"throughput_rps": 5000.0, "latency_p95_s": 0.0001,
             "wire_p50_ratio": 0.01, "wire_binary_rps": 99999.0})
        assert all(row["ok"] for row in rows)

    def test_missing_metric_fails(self):
        rows = regression.compare("engine_throughput",
                                  {"cold_nests_per_sec": 40.0},
                                  dict(BASE_ENGINE))
        by_metric = {row["metric"]: row for row in rows}
        assert not by_metric["warm_tables_hit_rate"]["ok"]
        assert "missing" in by_metric["warm_tables_hit_rate"]["note"]

class TestCheckAndUpdate:
    def test_check_passes_on_matching_tree(self, tmp_path):
        results, baselines = write_tree(tmp_path, engine_results(),
                                        serve_results(),
                                        DEFAULT_BASELINES)
        rows, ok = regression.check(results, baselines, 0.25)
        assert ok and len(rows) == 26

    def test_check_fails_on_2x_slowdown_tree(self, tmp_path):
        results, baselines = write_tree(
            tmp_path, engine_results(nests_per_sec=20.0),
            serve_results(rps=600.0, p95=0.008), DEFAULT_BASELINES,
            cluster=cluster_results(rps=400.0, merged=0.4),
            cold=cold_results(nests_per_sec=50.0, speedup=1.1,
                              tables_p95=0.04))
        rows, ok = regression.check(results, baselines, 0.25)
        assert not ok
        failed = {(row["benchmark"], row["metric"])
                  for row in rows if not row["ok"]}
        assert failed == {("engine_throughput", "cold_nests_per_sec"),
                          ("serve_throughput", "throughput_rps"),
                          ("serve_throughput", "latency_p95_s"),
                          ("cluster_throughput", "cluster_throughput_rps"),
                          ("cluster_throughput", "merged_compute_rate"),
                          ("cold_analysis", "cold_nests_per_sec"),
                          ("cold_analysis", "speedup_vs_seed"),
                          ("cold_analysis", "build_tables_p95_s")}

    def test_missing_results_file_fails(self, tmp_path):
        results, baselines = write_tree(tmp_path, engine_results(), None,
                                        DEFAULT_BASELINES)
        rows, ok = regression.check(results, baselines, 0.25)
        assert not ok
        assert any(row["note"] == "no results file" for row in rows)

    def test_missing_baseline_fails(self, tmp_path):
        results, baselines = write_tree(tmp_path, engine_results(),
                                        serve_results(), baselines={})
        _, ok = regression.check(results, baselines, 0.25)
        assert not ok

    def test_update_then_check_roundtrip(self, tmp_path):
        results, baselines = write_tree(tmp_path,
                                        engine_results(nests_per_sec=55.5),
                                        serve_results(rps=999.0))
        written = regression.update(results, baselines)
        assert {p.name for p in written} == {"engine_throughput.json",
                                             "serve_throughput.json",
                                             "cluster_throughput.json",
                                             "cold_analysis.json",
                                             "predict.json",
                                             "reuse_profile.json",
                                             "simd.json",
                                             "ugs_cache.json"}
        _, ok = regression.check(results, baselines, 0.25)
        assert ok
        doc = json.loads((baselines / "engine_throughput.json").read_text())
        assert doc["metrics"]["cold_nests_per_sec"] == 55.5

class TestMainAndTable:
    def test_main_check_exit_codes(self, tmp_path, capsys):
        results, baselines = write_tree(tmp_path, engine_results(),
                                        serve_results(),
                                        DEFAULT_BASELINES)
        code = regression.main(["--check",
                                "--results-dir", str(results),
                                "--baseline-dir", str(baselines)])
        assert code == 0
        assert "PASS" in capsys.readouterr().out
        (results / "serve_throughput.json").write_text(
            json.dumps(serve_results(rps=10.0)))
        code = regression.main(["--check",
                                "--results-dir", str(results),
                                "--baseline-dir", str(baselines)])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_markdown_table_and_summary_file(self, tmp_path, capsys):
        results, baselines = write_tree(tmp_path, engine_results(),
                                        serve_results(),
                                        DEFAULT_BASELINES)
        summary = tmp_path / "summary.md"
        code = regression.main(["--check",
                                "--results-dir", str(results),
                                "--baseline-dir", str(baselines),
                                "--summary", str(summary)])
        assert code == 0
        table = summary.read_text()
        assert table.startswith("### Benchmark regression gate")
        assert "| benchmark | metric | baseline | current | delta " \
            "| status |" in table
        assert table.count("✅") == 26
        # One data row per tracked metric, rendered as a pipe table.
        data_rows = [line for line in table.splitlines()
                     if line.startswith("| engine_throughput")
                     or line.startswith("| serve_throughput")
                     or line.startswith("| cluster_throughput")
                     or line.startswith("| cold_analysis")
                     or line.startswith("| predict")
                     or line.startswith("| reuse_profile")
                     or line.startswith("| simd")
                     or line.startswith("| ugs_cache")]
        assert len(data_rows) == 26
        capsys.readouterr()

    def test_committed_baselines_are_wellformed(self):
        """The repo's own baselines replayed against themselves pass."""
        baseline_dir = _BENCHMARKS / "baselines"
        for name, spec in regression.SPECS.items():
            doc = json.loads((baseline_dir / f"{name}.json").read_text())
            metrics = doc["metrics"]
            assert set(metrics) == set(spec["metrics"])
            rows = regression.compare(name, metrics, metrics)
            assert all(row["ok"] for row in rows)
            # Mismatch counters legitimately baseline at exactly zero
            # (any regression is a hard failure); everything else is a
            # strictly positive measurement.
            assert all(isinstance(value, float) and (
                value > 0 or metric.endswith("_mismatches"))
                for metric, value in metrics.items())

@pytest.mark.parametrize("value,expected", [
    (None, "-"), (1234.5, "1234.5"), (0.00378, "0.00378"), (1.0, "1")])
def test_format_number(value, expected):
    assert regression._format_number(value) == expected
