"""Tests for register-reuse sets and mergeable sets (Figure 4 structures),
replaying the paper's Figure 6 example."""

from repro.ir.builder import NestBuilder
from repro.reuse.ugs import partition_ugs
from repro.unroll.rrs import compute_mrrs, compute_rrs, flow_key

def figure6_nest():
    """A(I+1,J) = A(I,J) + ...; use of A(I,J) again: the multiple-generator
    example of Figure 6 (reuse flows from the def across I iterations)."""
    b = NestBuilder("fig6")
    I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
    b.assign(b.ref("A", I + 1, J), b.ref("A", I, J) + b.ref("B", I, J))
    b.assign(b.ref("C", I, J), b.ref("A", I, J) * 2.0)
    return b.build()

def a_ugs(nest):
    return next(s for s in partition_ugs(nest) if s.array == "A")

class TestFlowOrder:
    def test_earlier_toucher_first(self):
        """A(I+1,J) touches any fixed location one I-iteration before
        A(I,J) does, so it sorts first."""
        ugs = a_ugs(figure6_nest())
        ordered = sorted(ugs.members, key=flow_key)
        consts = [tuple(s.const for s in m.ref.subscripts) for m in ordered]
        assert consts[0] == (1, 0)
        assert consts[1:] == [(0, 0), (0, 0)]

class TestComputeRRS:
    def test_figure6_rrs_structure(self):
        """Localized = innermost (J) only: the def A(I+1,J) cannot feed the
        A(I,J) reads without unrolling, so they are separate RRSs; the two
        reads share one."""
        sets = compute_rrs(a_ugs(figure6_nest()))
        assert len(sets) == 2
        by_leader = {tuple(s.leader.ref.subscripts[0].const
                           for _ in (0,)): s for s in sets}
        def_led = next(s for s in sets if s.led_by_definition)
        read_led = next(s for s in sets if not s.led_by_definition)
        assert len(def_led.members) == 1
        assert len(read_led.members) == 2

    def test_def_splits_chain(self):
        """read A(I,J); write A(I,J); read A(I,J): the write severs reuse."""
        b = NestBuilder("split")
        I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
        b.assign(b.scalar("t"), b.ref("A", I, J))
        b.assign(b.ref("A", I, J), b.scalar("t") * 2.0)
        b.assign(b.ref("C", I, J), b.ref("A", I, J) + 1.0)
        sets = compute_rrs(a_ugs(b.build()))
        assert len(sets) == 2
        # first RRS: the original read; second: the def plus the re-read.
        assert not sets[0].led_by_definition or not sets[1].led_by_definition

    def test_innermost_reuse_single_rrs(self):
        """A(I,J) and A(I,J-2): reuse across the innermost loop stays in
        one RRS (no unrolling needed)."""
        b = NestBuilder("inner")
        I, J = b.loops(("I", 1, "N"), ("J", 2, "N"))
        b.assign(b.ref("C", I, J), b.ref("A", I, J) + b.ref("A", I, J - 2))
        sets = compute_rrs(a_ugs(b.build()))
        assert len(sets) == 1
        assert len(sets[0].members) == 2

class TestMRRS:
    def test_figure6_merges_def_and_reads(self):
        """The def-led RRS opens the MRRS; the read-led RRS joins it (its
        leader is not a definition)."""
        sets = compute_rrs(a_ugs(figure6_nest()))
        groups = compute_mrrs(sets)
        assert len(groups) == 1
        assert groups[0].superleader.is_write
        assert groups[0].superleader.ref.subscripts[0].const == 1

    def test_second_def_opens_new_mrrs(self):
        """Two defs at different offsets: reuse cannot cross the later def,
        so it starts its own mergeable set."""
        b = NestBuilder("twodefs")
        I, J = b.loops(("I", 2, "N"), ("J", 1, "N"))
        b.assign(b.ref("A", I, J), b.ref("B", I, J) + 1.0)
        b.assign(b.ref("A", I - 2, J), b.ref("B", I, J) * 2.0)
        sets = compute_rrs(a_ugs(b.build()))
        groups = compute_mrrs(sets)
        assert len(sets) == 2
        assert len(groups) == 2

    def test_reads_only_one_mrrs(self):
        b = NestBuilder("reads")
        I, J = b.loops(("I", 2, "N"), ("J", 1, "N"))
        b.assign(b.ref("C", I, J),
                 b.ref("A", I, J) + b.ref("A", I - 1, J) + b.ref("A", I - 2, J))
        sets = compute_rrs(a_ugs(b.build()))
        groups = compute_mrrs(sets)
        assert len(sets) == 3  # no reuse without unrolling (J localized)
        assert len(groups) == 1  # but all mergeable: reads only
