"""Balance model and optimizer tests, anchored on the paper's worked
introduction example (section 3.3)."""

from fractions import Fraction

import pytest

from repro.balance import estimated_cycles, loop_balance, objective
from repro.baselines.brute_force import brute_force_choose, measure_unrolled
from repro.ir.builder import NestBuilder
from repro.machine import MachineModel, dec_alpha, hp_pa_risc
from repro.unroll.optimize import choose_unroll, select_candidate_loops
from repro.unroll.safety import safe_unroll_bounds
from repro.unroll.space import UnrollSpace

def intro_nest():
    b = NestBuilder("intro")
    J, I = b.loops(("J", 0, "N"), ("I", 0, "M"))
    b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
    return b.build()

def machine_beta_half() -> MachineModel:
    """A machine with beta_M = 0.5 (two flops per memory op)."""
    return MachineModel(
        name="beta-half", mem_issue=Fraction(1), fp_issue=Fraction(2),
        registers=32, cache_size_words=1024, cache_line_words=4,
        cache_assoc=1, miss_penalty=0)

class TestPaperIntroNumbers:
    def test_original_balance_is_one(self):
        """'The original loop has one fp op and one memory reference ...
        giving a balance of 1.'"""
        point = measure_unrolled(intro_nest(), (0, 0), line_size=4)
        assert point.memory_ops == 1
        assert point.flops == 1

    def test_unrolled_balance_is_half(self):
        """'After applying unroll-and-jam, the loop has two fp ops and one
        memory reference ... a balance of 0.5.'"""
        point = measure_unrolled(intro_nest(), (1, 0), line_size=4)
        assert point.memory_ops == 1
        assert point.flops == 2

    def test_optimizer_picks_unroll_on_beta_half_machine(self):
        """'On a machine with beta_M = 0.5, the second loop performs
        better': the optimizer must unroll J (at least once)."""
        result = choose_unroll(intro_nest(), machine_beta_half(), bound=4)
        assert result.unroll[0] >= 1
        assert result.breakdown.balance <= Fraction(1, 2) * Fraction(2)

    def test_register_pressure_grows_with_unroll(self):
        tables = choose_unroll(intro_nest(), machine_beta_half(),
                               bound=6).tables
        space = tables.space
        regs = [tables.point(space.embed((k,))).registers for k in range(7)]
        assert regs == sorted(regs)
        assert regs[6] > regs[0]

class TestBalanceFormula:
    def test_estimated_cycles_floor_one(self):
        m = dec_alpha()
        assert estimated_cycles(Fraction(0), Fraction(0), m) == 1

    def test_no_cache_balance_is_m_over_f(self):
        point = measure_unrolled(intro_nest(), (0, 0), line_size=4)
        breakdown = loop_balance(point, dec_alpha(), include_cache=False)
        assert breakdown.balance == Fraction(point.memory_ops) / point.flops
        assert breakdown.miss_term == 0

    def test_cache_term_adds_miss_cost(self):
        point = measure_unrolled(intro_nest(), (0, 0), line_size=4)
        with_cache = loop_balance(point, dec_alpha(), include_cache=True)
        without = loop_balance(point, dec_alpha(), include_cache=False)
        assert with_cache.balance > without.balance

    def test_prefetch_bandwidth_shrinks_miss_term(self):
        point = measure_unrolled(intro_nest(), (0, 0), line_size=4)
        none = loop_balance(point, dec_alpha(), include_cache=True)
        some = loop_balance(point, dec_alpha().with_prefetch(Fraction(1, 2)),
                            include_cache=True)
        full = loop_balance(point, dec_alpha().with_prefetch(Fraction(4)),
                            include_cache=True)
        assert none.miss_term >= some.miss_term >= full.miss_term
        assert full.miss_term == 0

    def test_objective_zero_at_machine_balance(self):
        m = machine_beta_half()
        point = measure_unrolled(intro_nest(), (1, 0), line_size=4)
        # balance = 1/2 exactly matches beta_M = 1/2 when cache is ignored
        assert objective(point, m, include_cache=False) == 0

class TestOptimizer:
    def test_candidate_selection_prefers_locality(self):
        nest = intro_nest()
        safety = safe_unroll_bounds(nest)
        chosen = select_candidate_loops(nest, safety, max_loops=2,
                                        line_size=4)
        assert 0 in chosen

    def test_register_constraint_limits_unroll(self):
        tiny = machine_beta_half().with_registers(4)
        big = machine_beta_half().with_registers(64)
        r_tiny = choose_unroll(intro_nest(), tiny, bound=8)
        r_big = choose_unroll(intro_nest(), big, bound=8)
        assert r_tiny.tables.point(r_tiny.unroll).registers <= 4
        assert r_tiny.unroll[0] <= r_big.unroll[0]

    def test_matches_brute_force_objective(self):
        """Section 5.3 parity: table search and exhaustive re-unrolling
        reach the same objective value."""
        b = NestBuilder("mm")
        J, I, K = b.loops(("J", 0, "N"), ("I", 0, "N"), ("K", 0, "N"))
        b.assign(b.ref("C", I, J),
                 b.ref("C", I, J) + b.ref("A", I, K) * b.ref("B", K, J))
        nest = b.build()
        m = dec_alpha()
        table = choose_unroll(nest, m, bound=3)
        brute = brute_force_choose(nest, m, table.space)
        assert table.objective == brute.objective
        assert table.unroll == brute.unroll

    def test_depth_one_nest_graceful(self):
        b = NestBuilder("one")
        I = b.loop("I", 0, "N")
        b.assign(b.ref("A", I), b.ref("B", I) + 1.0)
        result = choose_unroll(b.build(), dec_alpha(), bound=4)
        assert result.unroll == (0,)

    def test_unsafe_loop_not_unrolled(self):
        b = NestBuilder("skew")
        I, J = b.loops(("I", 1, "N"), ("J", 0, "N"))
        b.assign(b.ref("A", I, J), b.ref("A", I - 1, J + 1) + 1.0)
        result = choose_unroll(b.build(), dec_alpha(), bound=4)
        assert result.unroll == (0, 0)

    def test_feasible_flag(self):
        result = choose_unroll(intro_nest(), dec_alpha(), bound=4)
        assert result.feasible

class TestMachineModel:
    def test_balance_property(self):
        assert machine_beta_half().balance == Fraction(1, 2)
        assert dec_alpha().balance == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineModel("bad", Fraction(0), Fraction(1), 32, 1024, 4, 1, 10)
        with pytest.raises(ValueError):
            MachineModel("bad", Fraction(1), Fraction(1), 32, 1000, 3, 1, 10)

    def test_with_registers_and_prefetch(self):
        m = dec_alpha().with_registers(64).with_prefetch(Fraction(1, 4))
        assert m.registers == 64
        assert m.prefetch_bandwidth == Fraction(1, 4)

    def test_with_helpers_preserve_every_other_field(self):
        # Regression: the derived machines used to rebuild the dataclass
        # by hand and silently reset fp_latency/divide_latency/
        # load_latency (and would have dropped the vector fields too).
        import dataclasses

        custom = dataclasses.replace(
            dec_alpha(), fp_latency=9, divide_latency=40, load_latency=5,
            vector_width_words=4, gather_penalty=7)
        for derived in (custom.with_registers(64),
                        custom.with_prefetch(Fraction(1, 3))):
            for field in dataclasses.fields(MachineModel):
                if field.name in ("name", "registers",
                                  "prefetch_bandwidth"):
                    continue
                assert getattr(derived, field.name) \
                    == getattr(custom, field.name), field.name

    def test_presets_contrast(self):
        """Figure 8 vs 9 premise: the Alpha misses hurt much more."""
        alpha, pa = dec_alpha(), hp_pa_risc()
        assert alpha.cache_size_words < pa.cache_size_words
        assert alpha.miss_penalty > pa.miss_penalty
