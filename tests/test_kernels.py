"""Kernel-suite tests: structure, validity, runnability and analyzability
of all 19 Table 2 loops."""

import numpy as np
import pytest

from repro.baselines.brute_force import measure_unrolled
from repro.ir.interp import run_nest, run_unrolled
from repro.ir.validate import validate_nest
from repro.kernels import all_kernels, kernel_by_name
from repro.machine import dec_alpha
from repro.unroll.optimize import choose_unroll
from repro.unroll.safety import safe_unroll_bounds

KERNELS = all_kernels()

class TestRoster:
    def test_nineteen_kernels(self):
        assert len(KERNELS) == 19

    def test_numbers_match_paper_order(self):
        assert [k.number for k in KERNELS] == list(range(1, 20))

    def test_names_unique(self):
        names = [k.name for k in KERNELS]
        assert len(set(names)) == 19

    def test_lookup_by_name(self):
        assert kernel_by_name("mmjik").number == 15
        with pytest.raises(KeyError):
            kernel_by_name("nope")

    def test_expected_roster(self):
        expected = ["jacobi", "afold", "btrix.1", "btrix.2", "btrix.7",
                    "collc.2", "cond.7", "cond.9", "dflux.16", "dflux.17",
                    "dflux.20", "dmxpy0", "dmxpy1", "gmtry.3", "mmjik",
                    "mmjki", "vpenta.7", "sor", "shal"]
        assert [k.name for k in KERNELS] == expected

@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
class TestEveryKernel:
    def test_structurally_valid(self, kernel):
        validate_nest(kernel.nest, require_siv=kernel.siv)

    def test_memory_bound_originally(self, kernel):
        """Section 5.2 selection criterion: the loops are not balanced."""
        machine = dec_alpha()
        point = measure_unrolled(
            kernel.nest, tuple(0 for _ in range(kernel.nest.depth)),
            line_size=machine.cache_line_words)
        from repro.balance import loop_balance
        breakdown = loop_balance(point, machine)
        assert breakdown.balance > machine.balance

    def test_some_loop_is_unrollable(self, kernel):
        bounds = safe_unroll_bounds(kernel.nest)
        assert any(b > 0 for b in bounds[:-1])

    def test_shapes_cover_subscripts(self, kernel):
        """Interpreting at a reduced size must stay in bounds."""
        n = 6
        bindings = {name: n for name in kernel.bindings}
        shapes = _scaled_shapes(kernel, n)
        arrays = {name: np.zeros(shape) for name, shape in shapes.items()}
        rng = np.random.default_rng(0)
        for name in arrays:
            arrays[name][...] = rng.standard_normal(arrays[name].shape)
        run_nest(kernel.nest, bindings, arrays, scalars={"omega": 1.5})

    def test_unroll_and_jam_preserves_semantics(self, kernel):
        """The optimizer's chosen vector must not change results."""
        machine = dec_alpha()
        result = choose_unroll(kernel.nest, machine, bound=3)
        n = 7
        bindings = {name: n for name in kernel.bindings}
        shapes = _scaled_shapes(kernel, n)
        rng = np.random.default_rng(1)
        base = {name: rng.standard_normal(shape)
                for name, shape in shapes.items()}
        ref = {k: v.copy() for k, v in base.items()}
        out = {k: v.copy() for k, v in base.items()}
        run_nest(kernel.nest, bindings, ref, scalars={"omega": 1.5})
        run_unrolled(kernel.nest, result.unroll, bindings, out,
                     scalars={"omega": 1.5})
        for name in base:
            assert np.allclose(ref[name], out[name]), name

def _scaled_shapes(kernel, n):
    """Shrink the kernel's shapes proportionally to bindings of size n."""
    big_n = next(iter(kernel.bindings.values()))
    shapes = {}
    for name, shape in kernel.shapes.items():
        scaled = []
        for extent in shape:
            # preserve padding structure: extent = a*big_n + pad
            if extent >= 2 * big_n:
                scaled.append(2 * n + (extent - 2 * big_n))
            elif extent > big_n:
                scaled.append(n + (extent - big_n))
            else:
                scaled.append(extent)
        shapes[name] = tuple(scaled)
    return shapes
