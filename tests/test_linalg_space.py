"""Tests for rational vector spaces (spans, membership, intersections)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import VectorSpace

def span(*vectors, ambient=None):
    ambient = ambient if ambient is not None else len(vectors[0])
    return VectorSpace(vectors, ambient)

class TestBasics:
    def test_zero_space(self):
        z = VectorSpace.zero(3)
        assert z.dim == 0 and z.is_zero()
        assert z.contains([0, 0, 0])
        assert not z.contains([1, 0, 0])

    def test_full_space(self):
        f = VectorSpace.full(2)
        assert f.dim == 2
        assert f.contains([7, -3])

    def test_axis_span(self):
        inner = VectorSpace.spanned_by_axes([2], 3)
        assert inner.contains([0, 0, 5])
        assert not inner.contains([0, 1, 0])

    def test_axis_out_of_range(self):
        with pytest.raises(ValueError):
            VectorSpace.spanned_by_axes([3], 3)

    def test_duplicate_spanning_vectors_collapse(self):
        s = span([1, 1], [2, 2])
        assert s.dim == 1

    def test_canonical_equality(self):
        assert span([1, 1], [1, 0]) == span([0, 1], [1, 0])
        assert span([1, 1]) != span([1, 0])

    def test_wrong_ambient_rejected(self):
        with pytest.raises(ValueError):
            VectorSpace([[1, 2, 3]], 2)
        with pytest.raises(ValueError):
            span([1, 0]).contains([1, 0, 0])

class TestMembership:
    def test_diagonal_span(self):
        s = span([1, 1])
        assert s.contains([3, 3])
        assert not s.contains([1, 2])

    def test_rational_membership(self):
        s = span([2, 4])
        assert s.contains([1, 2])

class TestLatticeOps:
    def test_sum(self):
        s = span([1, 0]).sum(span([0, 1]))
        assert s == VectorSpace.full(2)

    def test_intersection_of_planes(self):
        a = span([1, 0, 0], [0, 1, 0])
        b = span([0, 1, 0], [0, 0, 1])
        inter = a.intersect(b)
        assert inter == span([0, 1, 0], ambient=3)

    def test_intersection_disjoint(self):
        assert span([1, 0]).intersect(span([0, 1])).is_zero()

    def test_intersection_with_zero(self):
        assert span([1, 1]).intersect(VectorSpace.zero(2)).is_zero()

    def test_contains_space(self):
        assert VectorSpace.full(2).contains_space(span([1, 1]))
        assert not span([1, 1]).contains_space(VectorSpace.full(2))

vectors3 = st.lists(st.integers(-4, 4), min_size=3, max_size=3)

@st.composite
def spaces3(draw):
    count = draw(st.integers(0, 3))
    vecs = [draw(vectors3) for _ in range(count)]
    return VectorSpace(vecs, 3)

@settings(max_examples=50, deadline=None)
@given(spaces3(), spaces3())
def test_intersection_contained_in_both(a, b):
    inter = a.intersect(b)
    for vec in inter.basis:
        assert a.contains(vec)
        assert b.contains(vec)

@settings(max_examples=50, deadline=None)
@given(spaces3(), spaces3())
def test_intersection_dimension_formula(a, b):
    # dim(A) + dim(B) = dim(A+B) + dim(A ∩ B)
    assert a.dim + b.dim == a.sum(b).dim + a.intersect(b).dim

@settings(max_examples=50, deadline=None)
@given(spaces3())
def test_intersection_with_self_is_identity(a):
    assert a.intersect(a) == a

@settings(max_examples=50, deadline=None)
@given(spaces3(), spaces3())
def test_intersection_commutes(a, b):
    assert a.intersect(b) == b.intersect(a)
