"""Loop distribution and fusion tests with interpreter-checked semantics."""

import numpy as np
import pytest

from repro.ir.builder import NestBuilder
from repro.ir.interp import run_nest
from repro.transforms.distribution import (
    DistributionError,
    distribute,
    fuse,
    fusion_preventing,
    maximal_fusion,
)

def run_sequence(nests, bindings, arrays):
    for nest in nests:
        run_nest(nest, bindings, arrays)

def check_distribution(nest, shapes, bindings=None, seed=0):
    bindings = bindings or {}
    rng = np.random.default_rng(seed)
    base = {n: rng.standard_normal(s) for n, s in shapes.items()}
    one = {k: v.copy() for k, v in base.items()}
    many = {k: v.copy() for k, v in base.items()}
    run_nest(nest, bindings, one)
    pieces = distribute(nest)
    run_sequence(pieces, bindings, many)
    for name in base:
        assert np.array_equal(one[name], many[name]), name
    return pieces

class TestDistribute:
    def test_independent_statements_split(self):
        b = NestBuilder("indep")
        I = b.loop("I", 0, 20)
        b.assign(b.ref("A", I), b.ref("X", I) * 2.0)
        b.assign(b.ref("B", I), b.ref("Y", I) + 1.0)
        pieces = check_distribution(
            b.build(), {"A": (22,), "B": (22,), "X": (22,), "Y": (22,)})
        assert len(pieces) == 2
        assert [len(p.body) for p in pieces] == [1, 1]

    def test_pipeline_splits_in_order(self):
        b = NestBuilder("pipe")
        I = b.loop("I", 0, 20)
        b.assign(b.ref("T", I), b.ref("X", I) * 2.0)
        b.assign(b.ref("C", I), b.ref("T", I) + 1.0)
        pieces = check_distribution(
            b.build(), {"T": (22,), "C": (22,), "X": (22,)})
        assert len(pieces) == 2
        # producer first
        assert pieces[0].body[0].lhs.array == "T"

    def test_recurrence_stays_together(self):
        b = NestBuilder("rec")
        I = b.loop("I", 1, 20)
        b.assign(b.scalar("t"), b.ref("A", I - 1) * 0.5)
        b.assign(b.ref("A", I), b.scalar("t") + b.ref("X", I))
        pieces = check_distribution(b.build(), {"A": (22,), "X": (22,)})
        # the scalar threads a cycle: both statements in one block
        assert len(pieces) == 1 or len(pieces[0].body) == 2 or True
        # semantics already checked; structure: A's recurrence must not
        # separate the def of t from its use across the loop
        total = sum(len(p.body) for p in pieces)
        assert total == 2

    def test_backward_textual_dependence_reorders(self):
        """S0 reads what S1 writes at an earlier iteration: S1's block must
        still come after... the carried dep is S1->S0? distribution keeps
        a legal topological order either way; semantics is the oracle."""
        b = NestBuilder("back")
        I = b.loop("I", 1, 20)
        b.assign(b.ref("C", I), b.ref("D", I - 1) + 1.0)
        b.assign(b.ref("D", I), b.ref("X", I) * 2.0)
        check_distribution(b.build(), {"C": (22,), "D": (22,), "X": (22,)})

    def test_shal_kernel_distributes(self):
        from repro.kernels.suite import shal

        kernel = shal(10)
        shapes = {n: tuple(min(e, 14) for e in s)
                  for n, s in kernel.shapes.items()}
        pieces = check_distribution(kernel.nest, shapes, {"N": 10})
        assert len(pieces) == 3  # CU, CV, H updates are independent

class TestFusion:
    def make_pair(self):
        b1 = NestBuilder("p1")
        I = b1.loop("I", 0, 20)
        b1.assign(b1.ref("A", I), b1.ref("X", I) * 2.0)
        b2 = NestBuilder("p2")
        I = b2.loop("I", 0, 20)
        b2.assign(b2.ref("B", I), b2.ref("A", I) + 1.0)
        return b1.build(), b2.build()

    def test_forward_dep_fusable(self):
        first, second = self.make_pair()
        assert not fusion_preventing(first, second)
        fused = fuse(first, second)
        assert len(fused.body) == 2

    def test_fusion_semantics(self):
        first, second = self.make_pair()
        fused = fuse(first, second)
        rng = np.random.default_rng(1)
        base = {"A": np.zeros(22), "B": np.zeros(22),
                "X": rng.standard_normal(22)}
        seq = {k: v.copy() for k, v in base.items()}
        one = {k: v.copy() for k, v in base.items()}
        run_sequence([first, second], {}, seq)
        run_nest(fused, {}, one)
        for name in base:
            assert np.array_equal(seq[name], one[name])

    def test_fusion_preventing_dep(self):
        """second reads A(I+1), which the first loop writes later (at
        iteration I+1): fusing would read the value too early."""
        b1 = NestBuilder("w")
        I = b1.loop("I", 0, 20)
        b1.assign(b1.ref("A", I), b1.ref("X", I) * 2.0)
        b2 = NestBuilder("r")
        I = b2.loop("I", 0, 20)
        b2.assign(b2.ref("B", I), b2.ref("A", I + 1) + 1.0)
        first, second = b1.build(), b2.build()
        assert fusion_preventing(first, second)
        with pytest.raises(DistributionError):
            fuse(first, second)

    def test_incompatible_loops_rejected(self):
        b1 = NestBuilder("a")
        b1.loop("I", 0, 20)
        b1.assign(b1.ref("A", b1.loops()[0] if False else 0), 1.0)
        # simpler: different bounds
        x = NestBuilder("x")
        I = x.loop("I", 0, 20)
        x.assign(x.ref("A", I), 1.0)
        y = NestBuilder("y")
        I = y.loop("I", 0, 30)
        y.assign(y.ref("B", I), 1.0)
        with pytest.raises(DistributionError):
            fuse(x.build(), y.build())

    def test_distribute_then_refuse_roundtrip(self):
        b = NestBuilder("round")
        I = b.loop("I", 0, 20)
        b.assign(b.ref("T", I), b.ref("X", I) * 2.0)
        b.assign(b.ref("C", I), b.ref("T", I) + 1.0)
        nest = b.build()
        pieces = distribute(nest)
        refused = maximal_fusion(pieces)
        assert len(refused) == 1
        assert len(refused[0].body) == 2
        rng = np.random.default_rng(2)
        base = {"T": np.zeros(22), "C": np.zeros(22),
                "X": rng.standard_normal(22)}
        a = {k: v.copy() for k, v in base.items()}
        b_ = {k: v.copy() for k, v in base.items()}
        run_nest(nest, {}, a)
        run_nest(refused[0], {}, b_)
        for name in base:
            assert np.array_equal(a[name], b_[name])

    def test_maximal_fusion_stops_at_preventing_dep(self):
        b1 = NestBuilder("w")
        I = b1.loop("I", 0, 20)
        b1.assign(b1.ref("A", I), b1.ref("X", I) * 2.0)
        b2 = NestBuilder("r")
        I = b2.loop("I", 0, 20)
        b2.assign(b2.ref("B", I), b2.ref("A", I + 1) + 1.0)
        result = maximal_fusion([b1.build(), b2.build()])
        assert len(result) == 2
