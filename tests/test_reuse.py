"""Tests for the Wolf-Lam reuse model: UGS partitioning, self/group reuse,
and the Equation-1 cost model, replaying the paper's own examples."""

from fractions import Fraction

from repro.ir.builder import NestBuilder
from repro.linalg import VectorSpace
from repro.reuse import (
    group_spatial_partition,
    group_temporal_partition,
    innermost_localized_space,
    nest_memory_cost,
    partition_ugs,
    self_spatial_space,
    self_temporal_space,
    ugs_memory_cost,
)
from repro.reuse.locality import loop_locality_scores
from repro.reuse.selfreuse import has_self_spatial, has_self_temporal

def paper_ugs_example():
    """The section-3.4 loop: A(I,J) + A(I,J+1) + A(I,J+2), I outer."""
    b = NestBuilder("wolf_lam")
    I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
    b.assign(b.ref("B", I, J),
             b.ref("A", I, J) + b.ref("A", I, J + 1) + b.ref("A", I, J + 2))
    return b.build()

def intro_example():
    """DO J / DO I: A(J) = A(J) + B(I)."""
    b = NestBuilder("intro")
    J, I = b.loops(("J", 1, "N"), ("I", 1, "M"))
    b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
    return b.build()

class TestUGSPartition:
    def test_same_h_same_set(self):
        sets = partition_ugs(paper_ugs_example())
        by_array = {s.array: s for s in sets}
        assert by_array["A"].size == 3
        assert by_array["B"].size == 1

    def test_members_sorted_lexicographically(self):
        sets = partition_ugs(paper_ugs_example())
        a_set = next(s for s in sets if s.array == "A")
        consts = a_set.constants()
        assert consts == sorted(consts) == [(0, 0), (0, 1), (0, 2)]

    def test_different_h_different_sets(self):
        b = NestBuilder("transposed")
        I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
        b.assign(b.ref("C", I, J), b.ref("A", I, J) + b.ref("A", J, I))
        sets = [s for s in partition_ugs(b.build()) if s.array == "A"]
        assert len(sets) == 2

    def test_symbolic_offset_split(self):
        b = NestBuilder("sym")
        I = b.loop("I", 1, "N")
        b.assign(b.ref("C", I), b.ref("A", I) + b.ref("A", I + "N"))
        sets = [s for s in partition_ugs(b.build()) if s.array == "A"]
        assert len(sets) == 2

    def test_intro_sets(self):
        sets = partition_ugs(intro_example())
        # A(J) read+write together; B(I) alone.
        sizes = {s.array: s.size for s in sets}
        assert sizes == {"A": 2, "B": 1}

class TestSelfReuse:
    def test_loop_invariant_is_self_temporal(self):
        nest = intro_example()
        a_set = next(s for s in partition_ugs(nest) if s.array == "A")
        # A(J) with innermost loop I localized: ker H = span(e_I).
        localized = innermost_localized_space(nest)
        assert has_self_temporal(a_set.matrix, localized)

    def test_b_has_no_self_temporal_but_spatial(self):
        nest = intro_example()
        b_set = next(s for s in partition_ugs(nest) if s.array == "B")
        localized = innermost_localized_space(nest)
        assert not has_self_temporal(b_set.matrix, localized)
        # B(I) walks the contiguous dimension with I: spatial reuse.
        assert has_self_spatial(b_set.matrix, localized)

    def test_column_walk_is_not_spatial(self):
        # A(I,J) with J innermost strides by the column length: no spatial.
        nest = paper_ugs_example()
        a_set = next(s for s in partition_ugs(nest) if s.array == "A")
        localized = innermost_localized_space(nest)
        assert not has_self_spatial(a_set.matrix, localized)

    def test_spaces_nest(self):
        nest = paper_ugs_example()
        a_set = next(s for s in partition_ugs(nest) if s.array == "A")
        rst = self_temporal_space(a_set.matrix)
        rss = self_spatial_space(a_set.matrix)
        assert rst.dim == 0
        assert rss.dim == 1  # first dimension dropped frees the I axis

class TestGroupReuse:
    def test_paper_example_single_gts(self):
        """A(I,J), A(I,J+1), A(I,J+2) with J localized: one GTS."""
        nest = paper_ugs_example()
        a_set = next(s for s in partition_ugs(nest) if s.array == "A")
        localized = innermost_localized_space(nest)
        gts = group_temporal_partition(a_set, localized)
        assert len(gts) == 1
        assert len(gts[0]) == 3

    def test_no_group_reuse_without_localization(self):
        nest = paper_ugs_example()
        a_set = next(s for s in partition_ugs(nest) if s.array == "A")
        gts = group_temporal_partition(a_set, VectorSpace.zero(2))
        assert len(gts) == 3

    def test_group_spatial_merges_first_dim_neighbours(self):
        b = NestBuilder("rows")
        I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
        b.assign(b.ref("C", I, J), b.ref("A", I, J) + b.ref("A", I + 1, J))
        nest = b.build()
        a_set = next(s for s in partition_ugs(nest) if s.array == "A")
        localized = innermost_localized_space(nest)
        assert len(group_temporal_partition(a_set, localized)) == 2
        assert len(group_spatial_partition(a_set, localized, line_size=4)) == 1

    def test_line_size_cap(self):
        b = NestBuilder("far")
        I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
        b.assign(b.ref("C", I, J), b.ref("A", I, J) + b.ref("A", I + 9, J))
        nest = b.build()
        a_set = next(s for s in partition_ugs(nest) if s.array == "A")
        localized = innermost_localized_space(nest)
        assert len(group_spatial_partition(a_set, localized, line_size=4)) == 2
        assert len(group_spatial_partition(a_set, localized, line_size=None)) == 1

class TestEquationOne:
    def test_single_stream_no_locality(self):
        """A(I,J) with J innermost (column walk): full cost 1."""
        nest = paper_ugs_example()
        a_set = next(s for s in partition_ugs(nest) if s.array == "A")
        summary = ugs_memory_cost(a_set, innermost_localized_space(nest),
                                  line_size=4)
        # one GTS, one GSS, no self reuse: cost = 1
        assert summary.g_t == 1 and summary.g_s == 1
        assert summary.cost == 1

    def test_self_spatial_stream(self):
        nest = intro_example()
        b_set = next(s for s in partition_ugs(nest) if s.array == "B")
        summary = ugs_memory_cost(b_set, innermost_localized_space(nest),
                                  line_size=4)
        assert summary.cost == Fraction(1, 4)

    def test_self_temporal_stream_negligible(self):
        nest = intro_example()
        a_set = next(s for s in partition_ugs(nest) if s.array == "A")
        summary = ugs_memory_cost(a_set, innermost_localized_space(nest),
                                  line_size=4, trip=100)
        assert summary.cost == Fraction(1, 100)

    def test_group_spatial_discount(self):
        b = NestBuilder("pair")
        I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
        b.assign(b.ref("C", I, J), b.ref("A", I, J) + b.ref("A", I + 1, J))
        nest = b.build()
        a_set = next(s for s in partition_ugs(nest) if s.array == "A")
        summary = ugs_memory_cost(a_set, innermost_localized_space(nest),
                                  line_size=4)
        # g_t=2, g_s=1, no self reuse: 1 + 1/4
        assert summary.cost == Fraction(5, 4)

    def test_nest_total_is_sum(self):
        total, summaries = nest_memory_cost(intro_example(), line_size=4)
        assert total == sum(s.cost for s in summaries)

class TestLoopScores:
    def test_intro_outer_loop_carries_reuse(self):
        # Localizing J turns stream B(I)'s cost... B is invariant in J; A(J)
        # is invariant in I (already localized-from innermost I).  Unrolling
        # J benefits B(I) reuse.
        scores = loop_locality_scores(intro_example(), line_size=4)
        assert scores[-1] == 0  # innermost never scored
        assert scores[0] > 0

    def test_matmul_both_outer_loops_score(self):
        b = NestBuilder("mm")
        J, I, K = b.loops(("J", 1, "N"), ("I", 1, "N"), ("K", 1, "N"))
        b.assign(b.ref("C", I, J),
                 b.ref("C", I, J) + b.ref("A", I, K) * b.ref("B", K, J))
        scores = loop_locality_scores(b.build(), line_size=4)
        assert scores[0] > 0 and scores[1] > 0
