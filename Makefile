# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench-quick bench-check bench-baseline bench-predict \
	bench-reuse bench-simd bench-ugs train serve

test:
	$(PYTHON) -m pytest tests/ -x -q

lint:
	$(PYTHON) -m compileall -q src tests benchmarks
	-ruff check src tests benchmarks

# The throughput benchmarks in their CI (--quick) shape.
bench-quick:
	$(PYTHON) benchmarks/bench_cold_analysis.py --quick
	$(PYTHON) benchmarks/bench_engine_throughput.py --quick
	$(PYTHON) benchmarks/bench_serve_throughput.py --quick
	$(PYTHON) benchmarks/bench_cluster_throughput.py --quick
	$(PYTHON) benchmarks/bench_predict.py --quick
	$(PYTHON) benchmarks/bench_reuse_profile.py --quick
	$(PYTHON) benchmarks/bench_simd.py --quick
	$(PYTHON) benchmarks/bench_ugs_cache.py --quick

# The reuse-profile miss-model validation at full corpus size
# (docs/REUSE.md): mean |predicted - simulated| miss ratio <= 0.05 on
# every cache geometry.
bench-reuse:
	$(PYTHON) benchmarks/bench_reuse_profile.py

# The fast-tier gates at full size (docs/PREDICT.md): held-out top-1
# >= 0.85 and fast p99 <= 0.05x exact cold p99.
bench-predict:
	$(PYTHON) benchmarks/bench_predict.py

# The SLP packing gates at full corpus size (docs/VECTORIZE.md): packed
# execution bit-identical to the scalar oracle, >=30% of packable nests
# with a lower vectorized estimate, scalar decisions untouched.
bench-simd:
	$(PYTHON) benchmarks/bench_simd.py

# The cross-nest UGS memoization gates at full size (docs/PERFORMANCE.md):
# cold >=1.5x over the fast path without the cache, zero decision/table
# mismatches, 10k-nest streaming peak <= 1.25x the 1k-nest peak.
bench-ugs:
	$(PYTHON) benchmarks/bench_ugs_cache.py

# Retrain the committed default fast-tier model artifact (labels the
# full 4800-nest corpus with the exact engine first -- takes minutes).
train:
	$(PYTHON) -m repro train --out src/repro/predict/artifacts/default.json

# The regression gate: fail on >25% throughput drop or p95 latency growth.
bench-check: bench-quick
	$(PYTHON) benchmarks/regression.py --check

# Intentional refresh of the committed baselines (commit the diff).
bench-baseline: bench-quick
	$(PYTHON) benchmarks/regression.py --update

serve:
	$(PYTHON) -m repro serve
