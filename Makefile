# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench-quick bench-check bench-baseline serve

test:
	$(PYTHON) -m pytest tests/ -x -q

lint:
	$(PYTHON) -m compileall -q src tests benchmarks
	-ruff check src tests benchmarks

# The throughput benchmarks in their CI (--quick) shape.
bench-quick:
	$(PYTHON) benchmarks/bench_cold_analysis.py --quick
	$(PYTHON) benchmarks/bench_engine_throughput.py --quick
	$(PYTHON) benchmarks/bench_serve_throughput.py --quick
	$(PYTHON) benchmarks/bench_cluster_throughput.py --quick

# The regression gate: fail on >25% throughput drop or p95 latency growth.
bench-check: bench-quick
	$(PYTHON) benchmarks/regression.py --check

# Intentional refresh of the committed baselines (commit the diff).
bench-baseline: bench-quick
	$(PYTHON) benchmarks/regression.py --update

serve:
	$(PYTHON) -m repro serve
