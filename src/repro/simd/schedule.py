"""Packed-schedule construction: topological ordering with pack splitting.

A pack executes its lanes in lockstep, so the schedule works over
*units*: one node per pack plus one per unpacked statement.  The unit
graph inherits every loop-independent statement edge.  Even with
pairwise-independent lanes the contracted graph can cycle (the classic
SLP counterexample: pack P1 = {a, c}, P2 = {b, d} with edges a -> b and
d -> c), in which case a pack stuck on the cycle is split back to
scalars and scheduling restarts -- the fully scalar order is the body's
textual order, which the loop-independent subgraph respects by
construction, so the loop terminates.

Ties break toward the smallest statement index, keeping the schedule as
close to textual order as the packs allow (and deterministic).
"""

from __future__ import annotations

import heapq

from repro.simd.depgraph import StatementGraph
from repro.simd.packer import Pack, PackSet

def _try_schedule(graph: StatementGraph, packset: PackSet,
                  ) -> tuple[tuple[tuple[int, ...], ...] | None,
                             Pack | None]:
    """One Kahn pass over the contracted unit graph.

    Returns ``(order, None)`` on success, or ``(None, pack)`` naming a
    pack stuck on a contracted cycle.
    """
    units: list[tuple[int, ...]] = []
    unit_of: dict[int, int] = {}
    for pack in packset:
        for stmt in pack.lanes:
            unit_of[stmt] = len(units)
        units.append(pack.lanes)
    for i in range(graph.n):
        if i not in unit_of:
            unit_of[i] = len(units)
            units.append((i,))

    indegree = [0] * len(units)
    succ: list[set[int]] = [set() for _ in units]
    for i in range(graph.n):
        for j in graph.succ[i]:
            a, b = unit_of[i], unit_of[j]
            if a != b and b not in succ[a]:
                succ[a].add(b)
                indegree[b] += 1

    ready = [(min(lanes), u) for u, lanes in enumerate(units)
             if indegree[u] == 0]
    heapq.heapify(ready)
    order: list[tuple[int, ...]] = []
    done = 0
    while ready:
        _, u = heapq.heappop(ready)
        order.append(units[u])
        done += 1
        for v in succ[u]:
            indegree[v] -= 1
            if indegree[v] == 0:
                heapq.heappush(ready, (min(units[v]), v))
    if done == len(units):
        return tuple(order), None
    stuck = [units[u] for u in range(len(units))
             if indegree[u] > 0 and len(units[u]) > 1]
    # A cycle among contracted units always involves at least one pack
    # (the scalar subgraph alone is acyclic).
    return None, Pack(min(stuck, key=min))

def schedule_packs(graph: StatementGraph, packset: PackSet,
                   ) -> tuple[PackSet, tuple[tuple[int, ...], ...]]:
    """The executable packed schedule.

    Returns the (possibly reduced) pack set and the ordered statement
    groups: each group is one pack's lanes in lane order, or a single
    unpacked statement.
    """
    packs = list(packset)
    while True:
        current = PackSet(tuple(packs))
        order, stuck = _try_schedule(graph, current)
        if order is not None:
            return current, order
        packs = [p for p in packs if p.lanes != stuck.lanes]
