"""repro.simd: vectorization-aware unroll-and-jam (docs/VECTORIZE.md).

The jammed body copies that enable scalar replacement are exactly the
isomorphic statement groups an SLP vectorizer packs.  This package runs
after ``unroll_and_jam``:

* :mod:`repro.simd.depgraph` -- statement-level dependences of the
  jammed body (array SIV edges projected onto statements, plus renamed
  scalar-temporary edges; loop-carried edges tagged with their level);
* :mod:`repro.simd.packer` -- greedy SLP packing of adjacent isomorphic
  copies, extended along use-def chains;
* :mod:`repro.simd.schedule` -- the lockstep schedule, splitting packs
  stuck on contracted dependence cycles;
* :mod:`repro.simd.cost` -- the lane cost model over the MachineModel's
  ``vector_*`` fields;
* :mod:`repro.simd.report` -- the user-facing report for the CLI, the
  ``api.vectorize`` verb and the wire protocol's ``"simd"`` field.

Execution semantics are verified by :func:`repro.ir.packed.run_packed`,
which runs the packed schedule lane-for-lane against the scalar
``run_unrolled`` oracle.
"""

from repro.simd.cost import VectorEstimate, estimate_packs
from repro.simd.depgraph import (
    StatementDep,
    StatementGraph,
    build_statement_graph,
)
from repro.simd.packer import (
    Pack,
    PackSet,
    base_temp_names,
    build_packs,
    ref_lane_class,
    statement_shape,
)
from repro.simd.report import (
    SimdReport,
    format_report,
    vectorize_jammed,
    vectorize_nest,
)
from repro.simd.schedule import schedule_packs

__all__ = [
    "Pack",
    "PackSet",
    "SimdReport",
    "StatementDep",
    "StatementGraph",
    "VectorEstimate",
    "base_temp_names",
    "build_packs",
    "build_statement_graph",
    "estimate_packs",
    "format_report",
    "ref_lane_class",
    "schedule_packs",
    "statement_shape",
    "vectorize_jammed",
    "vectorize_nest",
]
