"""The lane cost model: scalar vs vectorized cycle estimates.

Both sides count the *naive* operations of the jammed body (every array
read a load, every array store a store, every BinOp/Call one flop) so
the comparison is internally consistent, and both add the same cache
miss term -- packing changes issue pressure, not the footprint.

Scalar estimate (per jammed iteration), mirroring the paper's issue
model::

    max(mem / mem_issue, flops / fp_issue, 1) + miss_cycles

Vectorized estimate: packed lanes collapse to single vector operations.
A contiguous lane group (unit stride in the column-major layout) is one
vector memory op; a splat is one scalar load plus a broadcast; anything
else is a gather -- per-lane scalar loads plus ``gather_penalty``.
Vector flops retire at ``vector_issue``; the scalar residue keeps using
``fp_issue``.  Lane-boundary traffic (packing distinct scalars,
broadcasting a shared one, extracting a packed temporary for a scalar
consumer) is charged explicitly::

    max(mem_v / mem_issue, flops_s / fp_issue + flops_v / vector_issue, 1)
        + overhead + miss_cycles
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.ir.nodes import LoopNest, ScalarVar, walk_expr
from repro.machine.model import MachineModel
from repro.simd.packer import (
    PackSet,
    aligned_operands,
    ref_lane_class,
)

@dataclass(frozen=True)
class VectorEstimate:
    """Cycle estimates for one jammed body (per jammed iteration)."""

    scalar_cycles: Fraction
    vector_cycles: Fraction
    overhead_cycles: Fraction
    miss_cycles: Fraction
    scalar_mem_ops: int
    vector_mem_ops: Fraction
    scalar_flops: int
    vector_flops: Fraction
    residual_flops: Fraction
    packs: int
    packed_statements: int
    statements: int

    @property
    def speedup(self) -> Fraction:
        if self.vector_cycles == 0:
            return Fraction(1)
        return Fraction(self.scalar_cycles) / Fraction(self.vector_cycles)

    @property
    def improved(self) -> bool:
        return self.vector_cycles < self.scalar_cycles

def _naive_counts(body) -> tuple[int, int]:
    mem = 0
    flops = 0
    for stmt in body:
        mem += len(stmt.array_reads()) + len(stmt.array_writes())
        flops += stmt.flops()
    return mem, flops

def estimate_packs(jammed: LoopNest, packset: PackSet,
                   machine: MachineModel,
                   miss_cycles: Fraction = Fraction(0)) -> VectorEstimate:
    """Cost one packed jammed body on ``machine``."""
    body = jammed.body
    mem_s, flops_s = _naive_counts(body)
    scalar_cycles = (max(Fraction(mem_s, 1) / machine.mem_issue,
                         Fraction(flops_s, 1) / machine.fp_issue,
                         Fraction(1)) + miss_cycles)

    # Scalar temporaries produced by a pack, in lane order: consumers
    # aligned the same way read them for free (value stays in a vector
    # register); anything else pays the unpack.
    produced: set[tuple[str, ...]] = set()
    packed_defs: dict[str, int] = {}
    for p, pack in enumerate(packset):
        head = body[pack.lanes[0]].lhs
        if isinstance(head, ScalarVar):
            names = tuple(body[i].lhs.name for i in pack.lanes)
            produced.add(names)
            for name in names:
                packed_defs[name] = p

    scalar_reads: dict[str, int] = {}
    for i, stmt in enumerate(body):
        if i in packset.lane_of:
            continue
        for node in walk_expr(stmt.rhs):
            if isinstance(node, ScalarVar):
                scalar_reads[node.name] = scalar_reads.get(node.name, 0) + 1

    mem_v = Fraction(0)
    flops_v = Fraction(0)
    flops_res = Fraction(0)
    overhead = Fraction(0)
    for i, stmt in enumerate(body):
        if i not in packset.lane_of:
            mem_v += len(stmt.array_reads()) + len(stmt.array_writes())
            flops_res += stmt.flops()

    for pack in packset:
        stmts = tuple(body[i] for i in pack.lanes)
        ops = aligned_operands(stmts)
        flops_v += ops["ops"]
        for refs in ops["refs"]:
            cls, _ = ref_lane_class(refs)
            if cls == "unit":
                mem_v += 1
            elif cls == "splat":
                mem_v += 1
                overhead += machine.splat_cost
            else:  # strided or irregular: per-lane loads, then assemble
                mem_v += len(refs)
                overhead += machine.gather_penalty
        for scalar_lanes in ops["scalars"]:
            names = tuple(v.name for v in scalar_lanes)
            if names in produced:
                continue  # forwarded from the producing pack
            if len(set(names)) == 1:
                overhead += machine.splat_cost
            else:
                overhead += machine.pack_cost
        head = stmts[0].lhs
        if isinstance(head, ScalarVar):
            names = tuple(s.lhs.name for s in stmts)
            if any(scalar_reads.get(name, 0) for name in names):
                overhead += machine.unpack_cost
        else:
            mem_v += 1  # unit-stride vector store (packer guarantees it)

    vector_cycles = (max(mem_v / machine.mem_issue,
                         flops_res / machine.fp_issue
                         + flops_v / machine.vector_issue,
                         Fraction(1)) + overhead + miss_cycles)
    return VectorEstimate(
        scalar_cycles=scalar_cycles,
        vector_cycles=vector_cycles,
        overhead_cycles=overhead,
        miss_cycles=miss_cycles,
        scalar_mem_ops=mem_s,
        vector_mem_ops=mem_v,
        scalar_flops=flops_s,
        vector_flops=flops_v,
        residual_flops=flops_res,
        packs=len(packset),
        packed_statements=packset.packed_statements,
        statements=len(body),
    )
