"""Greedy SLP packing of isomorphic jammed statement copies.

The jammed body produced by ``unroll_and_jam`` contains one shifted copy
of each original statement per offset combination -- by construction a
family of *isomorphic* statements (same operator tree, same subscript
coefficients, constants differing by the copy offsets).  The packer
turns runs of such statements into SIMD packs the way the classic SLP
algorithm (and PyPy's trace vectorizer) does:

* **seed** packs from adjacent isomorphic statements whose array
  operands are *splat* (identical reference in every lane) or
  *unit-stride* (consecutive lanes touch consecutive words of the
  column-major layout: the first subscript's constant advances by one,
  all other subscripts identical);
* **extend** packs up the use-def chains: a pack whose lanes read
  distinct scalar temporaries pulls the defining statements into a new
  pack (gathers allowed there -- the cost model charges them);
* **split** on lane-width overflow (runs longer than the machine's
  vector width are chunked) -- dependence-cycle splitting happens in
  :mod:`repro.simd.schedule`.

Lockstep legality is pairwise independence in the statement graph: no
loop-independent dependence path may connect two lanes of a pack.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator

from repro.ir.nodes import (
    ArrayRef,
    BinOp,
    Call,
    Const,
    LoopNest,
    ScalarVar,
    Statement,
)
from repro.simd.depgraph import StatementGraph
from repro.unroll.transform import _copy_suffix

#: Jammed bodies beyond this size are not packed (the all-pairs legality
#: scan would dominate the search); the caller falls back to the scalar
#: estimate.
MAX_PACK_STATEMENTS = 512

@dataclass(frozen=True)
class Pack:
    """One SIMD pack: lane i executes statement ``lanes[i]``."""

    lanes: tuple[int, ...]

    @property
    def width(self) -> int:
        return len(self.lanes)

class PackSet:
    """The packs chosen for one jammed body."""

    def __init__(self, packs: tuple[Pack, ...]):
        self.packs = packs
        self.lane_of: dict[int, tuple[int, int]] = {}
        for p, pack in enumerate(packs):
            for lane, stmt in enumerate(pack.lanes):
                self.lane_of[stmt] = (p, lane)

    def __len__(self) -> int:
        return len(self.packs)

    def __iter__(self) -> Iterator[Pack]:
        return iter(self.packs)

    @property
    def packed_statements(self) -> int:
        return len(self.lane_of)

def base_temp_names(nest: LoopNest, u: tuple[int, ...]) -> dict[str, str]:
    """Map every per-copy renamed temporary of ``jam_body(nest, u)`` back
    to its original name (identity for the all-zero copy)."""
    temps = nest.scalar_temporaries()
    names: dict[str, str] = {}
    index_names = nest.index_names
    for combo in product(*(range(u_k + 1) for u_k in u)):
        suffix = _copy_suffix(dict(zip(index_names, combo)))
        for t in temps:
            names[t + suffix] = t
    return names

# -- isomorphism --------------------------------------------------------------

def _shape(expr, base: dict[str, str]) -> tuple:
    if isinstance(expr, Const):
        return ("const", expr.value)
    if isinstance(expr, ScalarVar):
        return ("scalar", base.get(expr.name, expr.name))
    if isinstance(expr, ArrayRef):
        return ("ref", expr.array,
                tuple((s.loop_coeffs, s.param_coeffs) for s in expr.subscripts))
    if isinstance(expr, BinOp):
        return ("binop", expr.op, _shape(expr.left, base),
                _shape(expr.right, base))
    if isinstance(expr, Call):
        return ("call", expr.func,
                tuple(_shape(a, base) for a in expr.args))
    raise TypeError(f"unknown expression node {expr!r}")

def statement_shape(stmt: Statement, base: dict[str, str]) -> tuple:
    """The operator-tree shape: equal shapes == isomorphic statements
    (subscript constants and temporary suffixes excluded)."""
    if isinstance(stmt.lhs, ScalarVar):
        lhs: tuple = ("scalar", base.get(stmt.lhs.name, stmt.lhs.name))
    else:
        lhs = _shape(stmt.lhs, base)
    return (lhs, _shape(stmt.rhs, base))

def _aligned(exprs: tuple, out: dict) -> None:
    """Walk isomorphic expressions in parallel, collecting aligned
    operand tuples (callers guarantee equal shapes)."""
    head = exprs[0]
    if isinstance(head, ArrayRef):
        out["refs"].append(exprs)
    elif isinstance(head, ScalarVar):
        out["scalars"].append(exprs)
    elif isinstance(head, BinOp):
        out["ops"] += 1
        _aligned(tuple(e.left for e in exprs), out)
        _aligned(tuple(e.right for e in exprs), out)
    elif isinstance(head, Call):
        out["ops"] += 1
        for k in range(len(head.args)):
            _aligned(tuple(e.args[k] for e in exprs), out)

def aligned_operands(stmts: tuple[Statement, ...]) -> dict:
    """Aligned rhs operand tuples of one pack's lane statements, plus the
    vector op count: ``{"refs": [...], "scalars": [...], "ops": int}``."""
    out: dict = {"refs": [], "scalars": [], "ops": 0}
    _aligned(tuple(s.rhs for s in stmts), out)
    return out

# -- lane stride classification ----------------------------------------------

def ref_lane_class(refs: tuple) -> tuple[str, int]:
    """Classify one aligned ArrayRef position across lanes.

    Returns ``("splat", 0)`` when every lane reads the same location,
    ``("unit", 1)`` for contiguous column-major lanes (first subscript
    constant advancing by exactly one, all others fixed), ``("stride",
    d)`` for a single-position constant advance by d, and ``("gather",
    0)`` for anything else.
    """
    first = refs[0]
    deltas = None
    for prev, cur in zip(refs, refs[1:]):
        step = tuple(b.const - a.const
                     for a, b in zip(prev.subscripts, cur.subscripts))
        if deltas is None:
            deltas = step
        elif step != deltas:
            return ("gather", 0)
    if deltas is None or all(d == 0 for d in deltas):
        return ("splat", 0)
    moving = [k for k, d in enumerate(deltas) if d]
    if len(moving) != 1:
        return ("gather", 0)
    k = moving[0]
    if k == 0 and deltas[0] == 1 and len(first.subscripts) >= 1:
        return ("unit", 1)
    return ("stride", deltas[k])

def _seed_operands_ok(stmts: tuple[Statement, ...]) -> bool:
    """Seed packs keep only splat or unit-stride operands; anything else
    waits for use-def extension (or stays scalar)."""
    for refs in aligned_operands(stmts)["refs"]:
        if ref_lane_class(refs)[0] not in ("splat", "unit"):
            return False
    return True

def _store_ok(stmts: tuple[Statement, ...],
              base: dict[str, str]) -> bool:
    head = stmts[0].lhs
    if isinstance(head, ScalarVar):
        names = [s.lhs.name for s in stmts]
        return len(set(names)) == len(names)  # distinct per-lane temps
    return ref_lane_class(tuple(s.lhs for s in stmts))[0] == "unit"

# -- packing ------------------------------------------------------------------

def build_packs(jammed: LoopNest, graph: StatementGraph, width: int,
                base: dict[str, str] | None = None) -> PackSet:
    """Greedy SLP packing of one jammed body.

    ``width`` is the machine's lane count (``vector_width_words``);
    width < 2 or an oversized body yields the empty pack set.
    """
    body = jammed.body
    if width < 2 or not (2 <= len(body) <= MAX_PACK_STATEMENTS):
        return PackSet(())
    base = base if base is not None else {}

    shapes = [statement_shape(stmt, base) for stmt in body]
    groups: dict[tuple, list[int]] = {}
    for i, shape in enumerate(shapes):
        groups.setdefault(shape, []).append(i)

    used: set[int] = set()
    packs: list[Pack] = []

    def lanes_ok(run: list[int], candidate: int, *, seed: bool) -> bool:
        if not all(graph.independent(candidate, j) for j in run):
            return False
        stmts = tuple(body[j] for j in run + [candidate])
        if not _store_ok(stmts, base):
            return False
        if seed and not _seed_operands_ok(stmts):
            return False
        return True

    def emit(run: list[int]) -> None:
        if len(run) >= 2:
            packs.append(Pack(tuple(run)))
            used.update(run)

    # Seeds: adjacent isomorphic statements, splat/unit-stride operands.
    for shape in sorted(groups, key=lambda s: groups[s][0]):
        members = groups[shape]
        if len(members) < 2:
            continue
        run: list[int] = []
        for idx in members:
            if idx in used:
                emit(run)
                run = []
                continue
            if run and (len(run) >= width
                        or not lanes_ok(run, idx, seed=True)):
                emit(run)
                run = []
            run.append(idx)
        emit(run)

    # Extension: follow scalar use-def chains upward from every pack.
    writers: dict[str, list[int]] = {}
    for i, stmt in enumerate(body):
        if isinstance(stmt.lhs, ScalarVar):
            writers.setdefault(stmt.lhs.name, []).append(i)

    def def_before(name: str, idx: int) -> int | None:
        best = None
        for w in writers.get(name, ()):
            if w < idx:
                best = w
            else:
                break
        return best

    worklist = list(packs)
    while worklist:
        pack = worklist.pop()
        stmts = tuple(body[i] for i in pack.lanes)
        for scalar_lanes in aligned_operands(stmts)["scalars"]:
            names = [v.name for v in scalar_lanes]
            if len(set(names)) != len(names):
                continue  # splat / shared scalar: nothing to pull up
            defs = [def_before(name, lane)
                    for name, lane in zip(names, pack.lanes)]
            if (None in defs or len(set(defs)) != len(defs)
                    or any(d in used for d in defs)):
                continue
            if len({shapes[d] for d in defs}) != 1:
                continue
            run2: list[int] = []
            ok = True
            for d in defs:
                if run2 and not lanes_ok(run2, d, seed=False):
                    ok = False
                    break
                run2.append(d)
            if ok and len(run2) >= 2:
                new = Pack(tuple(run2))
                packs.append(new)
                used.update(run2)
                worklist.append(new)

    packs.sort(key=lambda p: p.lanes[0])
    return PackSet(tuple(packs))
