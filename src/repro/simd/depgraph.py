"""Statement-level dependences over a jammed loop body.

The array dependence graph (:mod:`repro.dependence.graph`) speaks in
*reference occurrences*; SLP packing needs to know whether two whole
*statements* of the jammed body may execute in lockstep.  This module
projects the occurrence-level edges onto ``stmt_index`` pairs and adds
the scalar-temporary edges the array tests cannot see (the renamed
``t__I1``-style privatized copies plus any temporaries shared within one
copy).

Orientation and tagging follow the array graph: every edge carries the
level of the carrying loop (outermost first), or ``None`` when the
dependence is loop-independent (realized inside a single iteration of
the jammed nest).  The distinction is the whole story for lockstep
legality: after jamming, a dependence *between copies* that the original
nest carried on an unrolled loop shows up as a loop-independent edge of
the jammed body, while edges still carried by a jammed loop are
sequenced by the (still sequential) iterations and do not constrain the
intra-iteration schedule.

Because loop-independent array edges always point from the textually
earlier occurrence to the later one, the loop-independent projection is
a DAG compatible with statement order; reachability is a single reverse
sweep over integer bitmasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependence.graph import build_dependence_graph
from repro.dependence.siv import STAR
from repro.ir.nodes import LoopNest, ScalarVar, walk_expr

@dataclass(frozen=True)
class StatementDep:
    """One statement-to-statement dependence of a jammed body.

    ``level`` is the carrying loop (0 = outermost) or ``None`` for a
    loop-independent dependence; ``via`` names the array or scalar that
    carries the value.
    """

    src: int
    dst: int
    kind: str  # flow | anti | output
    level: int | None
    via: str

    @property
    def loop_independent(self) -> bool:
        return self.level is None

def _scalar_reads(stmt) -> set[str]:
    return {node.name for node in walk_expr(stmt.rhs)
            if isinstance(node, ScalarVar)}

class StatementGraph:
    """Dependences of one jammed body, indexed for pack legality."""

    def __init__(self, nest: LoopNest, deps: tuple[StatementDep, ...]):
        self.nest = nest
        self.deps = deps
        self.n = len(nest.body)
        succ: list[set[int]] = [set() for _ in range(self.n)]
        for dep in deps:
            if dep.loop_independent and dep.src != dep.dst:
                succ[dep.src].add(dep.dst)
        self.succ = tuple(tuple(sorted(s)) for s in succ)
        # Loop-independent edges always point forward in statement order,
        # so one reverse sweep computes full reachability.
        reach = [0] * self.n
        for i in reversed(range(self.n)):
            mask = 0
            for j in succ[i]:
                mask |= (1 << j) | reach[j]
            reach[i] = mask
        self._reach = tuple(reach)

    def independent(self, i: int, j: int) -> bool:
        """No loop-independent dependence path in either direction --
        statements i and j may execute in lockstep."""
        if i == j:
            return False
        return not ((self._reach[i] >> j) & 1 or (self._reach[j] >> i) & 1)

    def carried(self) -> tuple[StatementDep, ...]:
        return tuple(d for d in self.deps if not d.loop_independent)

    def count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self.deps)
        return sum(1 for d in self.deps if d.kind == kind)

def build_statement_graph(jammed: LoopNest) -> StatementGraph:
    """The statement dependence graph of a jammed nest body.

    Array edges come from the exact SIV machinery (input dependences
    excluded -- they never order statements); scalar edges from the
    textual def/use pattern of the body's temporaries.  A temporary that
    is read before its first write flows in from the previous iteration
    of the innermost jammed loop (the privatized-slot fallback the
    interpreter implements), recorded as a flow edge carried at the
    innermost level.
    """
    deps: list[StatementDep] = []
    seen: set[tuple] = set()

    def add(src: int, dst: int, kind: str, level: int | None,
            via: str) -> None:
        key = (src, dst, kind, level, via)
        if key not in seen:
            seen.add(key)
            deps.append(StatementDep(src, dst, kind, level, via))

    for edge in build_dependence_graph(jammed, include_input=False):
        if edge.is_input:
            continue
        level = edge.carrier_level()
        add(edge.src.stmt_index, edge.dst.stmt_index, edge.kind,
            level, edge.src.array)
        # A "*" distance entry admits zero: an edge whose every entry
        # may be zero can be realized *inside* one iteration, so its
        # textually-forward direction also constrains the lockstep
        # schedule (e.g. coupled subscripts like A(I-1,J-1) written and
        # A(J-1,I-1) read, which collide whenever I == J).
        if (level is not None
                and all(d == STAR or d == 0 for d in edge.distance)
                and edge.src.stmt_index < edge.dst.stmt_index):
            add(edge.src.stmt_index, edge.dst.stmt_index, edge.kind,
                None, edge.src.array)

    body = jammed.body
    temps = set(jammed.scalar_temporaries())
    innermost = jammed.depth - 1
    for name in sorted(temps):
        writes = [i for i, stmt in enumerate(body)
                  if isinstance(stmt.lhs, ScalarVar) and stmt.lhs.name == name]
        reads = [i for i, stmt in enumerate(body)
                 if name in _scalar_reads(stmt)]
        for w in writes:
            for r in reads:
                if r > w:
                    add(w, r, "flow", None, name)
                elif r < w:
                    add(r, w, "anti", None, name)
        for a, b in zip(writes, writes[1:]):
            add(a, b, "output", None, name)
        if writes and reads and min(reads) <= min(writes):
            # Read before the first write: the value flows around the
            # innermost jammed loop from the last write of the previous
            # iteration (or the caller's seed on the first).
            add(max(writes), min(reads), "flow", innermost, name)
    return StatementGraph(jammed, tuple(deps))
