"""The user-facing vectorization report: packs, schedule, and estimates.

One :class:`SimdReport` bundles everything the CLI, the ``api.vectorize``
verb and the wire protocol's opt-in ``"simd"`` field expose about a
jammed nest: the chosen packs (lane statement indices plus a pretty lane
description), the dependence-graph statistics that constrained them, and
the lane cost model's scalar/vector cycle estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.machine.model import MachineModel
from repro.simd.cost import VectorEstimate, estimate_packs
from repro.simd.depgraph import build_statement_graph
from repro.simd.packer import PackSet, base_temp_names, build_packs
from repro.simd.schedule import schedule_packs
from repro.unroll.transform import UnrolledNest, unroll_and_jam

@dataclass(frozen=True)
class SimdReport:
    """Vectorization analysis of one unroll-and-jammed nest."""

    nest: str
    machine: str
    unroll: tuple[int, ...]
    width: int
    statements: int
    dependence_edges: int
    carried_edges: int
    packs: tuple[tuple[int, ...], ...]
    schedule_groups: int
    estimate: VectorEstimate

    @property
    def packed_statements(self) -> int:
        return sum(len(lanes) for lanes in self.packs)

    @property
    def packed_fraction(self) -> float:
        if not self.statements:
            return 0.0
        return self.packed_statements / self.statements

    def to_dict(self) -> dict:
        est = self.estimate
        return {
            "nest": self.nest,
            "machine": self.machine,
            "unroll": list(self.unroll),
            "width": self.width,
            "statements": self.statements,
            "dependence_edges": self.dependence_edges,
            "carried_edges": self.carried_edges,
            "packs": [list(lanes) for lanes in self.packs],
            "packed_statements": self.packed_statements,
            "packed_fraction": self.packed_fraction,
            "schedule_groups": self.schedule_groups,
            "scalar_cycles": float(est.scalar_cycles),
            "vector_cycles": float(est.vector_cycles),
            "overhead_cycles": float(est.overhead_cycles),
            "speedup": float(est.speedup),
            "improved": est.improved,
        }

def vectorize_jammed(unrolled: UnrolledNest, machine: MachineModel,
                     miss_cycles: Fraction = Fraction(0)) -> SimdReport:
    """Pack, schedule and cost one already-jammed nest."""
    jammed = unrolled.main
    graph = build_statement_graph(jammed)
    width = machine.vector_width_words
    base = base_temp_names(unrolled.original, tuple(unrolled.unroll))
    packset = build_packs(jammed, graph, width, base)
    packset, order = schedule_packs(graph, packset)
    estimate = estimate_packs(jammed, packset, machine, miss_cycles)
    return SimdReport(
        nest=unrolled.original.name,
        machine=machine.name,
        unroll=tuple(unrolled.unroll),
        width=width,
        statements=len(jammed.body),
        dependence_edges=graph.count(),
        carried_edges=len(graph.carried()),
        packs=tuple(p.lanes for p in packset),
        schedule_groups=len(order),
        estimate=estimate,
    )

def vectorize_nest(nest, unroll: tuple[int, ...], machine: MachineModel,
                   miss_cycles: Fraction = Fraction(0)) -> SimdReport:
    """Jam ``nest`` by ``unroll`` and analyze the result."""
    return vectorize_jammed(unroll_and_jam(nest, tuple(unroll)), machine,
                            miss_cycles)

def format_report(report: SimdReport) -> str:
    est = report.estimate
    lines = [
        f"nest:        {report.nest}  (unroll {report.unroll}, "
        f"{report.statements} jammed statements)",
        f"machine:     {report.machine}  ({report.width} lanes)",
        f"dependences: {report.dependence_edges} edges "
        f"({report.carried_edges} loop-carried)",
        f"packs:       {len(report.packs)} "
        f"({report.packed_statements}/{report.statements} statements, "
        f"{report.packed_fraction:.0%}) in {report.schedule_groups} "
        f"schedule groups",
    ]
    for lanes in report.packs:
        lines.append(f"  pack {list(lanes)}")
    lines += [
        f"scalar est:  {float(est.scalar_cycles):.2f} cycles/iter "
        f"({est.scalar_mem_ops} mem, {est.scalar_flops} flops)",
        f"vector est:  {float(est.vector_cycles):.2f} cycles/iter "
        f"({float(est.vector_mem_ops):.0f} mem, "
        f"{float(est.vector_flops):.0f} vector + "
        f"{float(est.residual_flops):.0f} scalar flops, "
        f"overhead {float(est.overhead_cycles):.1f})",
        f"speedup:     {float(est.speedup):.2f}x"
        + ("" if est.improved else "  (not profitable)"),
    ]
    return "\n".join(lines)
