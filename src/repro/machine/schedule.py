"""A latency-aware list scheduler for loop bodies.

The balance model's cycle estimate ``max(M/mem_issue, F/fp_issue)`` assumes
perfect overlap; this scheduler refines it by building the body's dataflow
graph (loads -> flops -> store, with scalar temporaries threading values
between statements) and list-scheduling it under the machine's issue
widths and latencies.  Software pipelining across iterations is
approximated by reporting both the *makespan* (one isolated iteration) and
the *steady-state initiation interval* bound (resource-constrained
throughput -- what a modulo scheduler would achieve given enough
registers, which is the regime the paper's section 2 discussion assumes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.ir.matrixform import occurrences
from repro.ir.nodes import (
    ArrayRef,
    BinOp,
    Call,
    Const,
    Expr,
    LoopNest,
    ScalarVar,
    Statement,
)
from repro.machine.model import MachineModel
from repro.unroll.scalar_replacement import (
    ScalarReplacementPlan,
    plan_scalar_replacement,
)

@dataclass
class _Node:
    """One operation in the body dataflow graph."""

    index: int
    kind: str  # "load" | "store" | "fp" | "div"
    latency: int
    preds: list[int] = field(default_factory=list)
    height: int = 0  # critical-path height, filled by the scheduler

@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one body iteration."""

    makespan: int  # cycles for one isolated iteration
    initiation_interval: Fraction  # steady-state cycles per iteration
    critical_path: int
    memory_ops: int
    fp_ops: int

    @property
    def resource_bound(self) -> Fraction:
        return self.initiation_interval

class _GraphBuilder:
    def __init__(self, machine: MachineModel, plan: ScalarReplacementPlan):
        self.machine = machine
        self.plan = plan
        self.nodes: list[_Node] = []
        self.scalar_defs: dict[str, int] = {}
        self.position = 0

    def _add(self, kind: str, latency: int, preds: list[int]) -> int:
        node = _Node(len(self.nodes), kind, latency,
                     [p for p in preds if p >= 0])
        self.nodes.append(node)
        return node.index

    def build_expr(self, expr: Expr) -> int:
        """Returns the node index producing the expression's value, or -1
        for values with no pipeline cost (constants, register reads)."""
        if isinstance(expr, Const):
            return -1
        if isinstance(expr, ScalarVar):
            return self.scalar_defs.get(expr.name, -1)
        if isinstance(expr, ArrayRef):
            position = self.position
            self.position += 1
            if self.plan.issues_memory_op(position):
                return self._add("load", self.machine.load_latency, [])
            return -1  # register-resident after scalar replacement
        if isinstance(expr, BinOp):
            left = self.build_expr(expr.left)
            right = self.build_expr(expr.right)
            if expr.op == "/":
                return self._add("div", self.machine.divide_latency,
                                 [left, right])
            return self._add("fp", self.machine.fp_latency, [left, right])
        if isinstance(expr, Call):
            preds = [self.build_expr(a) for a in expr.args]
            return self._add("fp", self.machine.fp_latency, preds)
        raise TypeError(f"unknown expression {expr!r}")

    def build_statement(self, stmt: Statement) -> None:
        value = self.build_expr(stmt.rhs)
        if isinstance(stmt.lhs, ScalarVar):
            if value >= 0:
                self.scalar_defs[stmt.lhs.name] = value
            return
        position = self.position
        self.position += 1
        if self.plan.issues_memory_op(position):
            self._add("store", 1, [value])

def build_dataflow(nest: LoopNest, machine: MachineModel,
                   plan: ScalarReplacementPlan | None = None) -> list[_Node]:
    """The body dataflow graph under a scalar-replacement plan."""
    plan = plan if plan is not None else plan_scalar_replacement(nest)
    builder = _GraphBuilder(machine, plan)
    for stmt in nest.body:
        builder.build_statement(stmt)
    return builder.nodes

def schedule_body(nest: LoopNest, machine: MachineModel,
                  plan: ScalarReplacementPlan | None = None) -> ScheduleResult:
    """List-schedule one body iteration on the machine."""
    nodes = build_dataflow(nest, machine, plan)
    if not nodes:
        return ScheduleResult(1, Fraction(1), 0, 0, 0)

    successors: dict[int, list[int]] = {n.index: [] for n in nodes}
    indegree = {n.index: 0 for n in nodes}
    for node in nodes:
        for pred in node.preds:
            successors[pred].append(node.index)
            indegree[node.index] += 1

    # Critical-path heights (reverse topological order = reverse creation
    # order, since predecessors are always created before successors).
    for node in reversed(nodes):
        node.height = node.latency + max(
            (nodes[s].height for s in successors[node.index]), default=0)

    mem_slots = max(int(machine.mem_issue), 1)
    fp_slots = max(int(machine.fp_issue), 1)

    ready = [n.index for n in nodes if indegree[n.index] == 0]
    finish_time: dict[int, int] = {}
    pending: list[tuple[int, int]] = []  # (finish cycle, node)
    cycle = 0
    scheduled = 0
    while scheduled < len(nodes):
        # retire
        for done_at, idx in list(pending):
            if done_at <= cycle:
                pending.remove((done_at, idx))
                for succ in successors[idx]:
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        ready.append(succ)
        ready.sort(key=lambda i: -nodes[i].height)
        mem_left, fp_left = mem_slots, fp_slots
        issued_any = False
        still_ready = []
        for idx in ready:
            node = nodes[idx]
            if node.kind in ("load", "store"):
                if mem_left > 0:
                    mem_left -= 1
                else:
                    still_ready.append(idx)
                    continue
            else:
                if fp_left > 0:
                    fp_left -= 1
                else:
                    still_ready.append(idx)
                    continue
            finish_time[idx] = cycle + node.latency
            pending.append((cycle + node.latency, idx))
            scheduled += 1
            issued_any = True
        ready = still_ready
        cycle += 1
        if not issued_any and not pending and ready:
            raise RuntimeError("scheduler wedged (cyclic graph?)")

    makespan = max(finish_time.values())
    memory_ops = sum(1 for n in nodes if n.kind in ("load", "store"))
    fp_ops = sum(1 for n in nodes if n.kind in ("fp", "div"))
    critical = max(n.height for n in nodes)
    # Steady state: resources bound throughput; latency is hidden by
    # overlapping iterations (software pipelining).
    ii = max(Fraction(memory_ops) / machine.mem_issue,
             Fraction(fp_ops) / machine.fp_issue,
             Fraction(1))
    return ScheduleResult(
        makespan=makespan,
        initiation_interval=ii,
        critical_path=critical,
        memory_ops=memory_ops,
        fp_ops=fp_ops,
    )
