"""Set-associative cache geometry: executable simulator + analytic model.

Two views of the same hardware live here:

* :class:`CacheSimulator` -- a word-addressed LRU simulator that replays an
  actual address stream (the oracle the static model is validated against).
* :class:`CacheSpec` + :func:`miss_probability` -- the analytic side: given
  a *reuse distance* (number of distinct lines touched between two uses of
  the same line), the probability the second use misses in a cache of this
  geometry.

The analytic model treats set conflicts as binomial: each of the ``d``
intervening lines lands in the accessed line's set independently with
probability ``1/num_sets``, and the access misses when at least ``assoc``
of them do (LRU evicts the line from its set).  Two regimes are exact
rather than probabilistic:

* ``d < assoc`` -- LRU guarantees survival regardless of mapping; hit.
* ``num_sets == 1`` (fully associative) -- the reuse distance *is* the LRU
  stack distance, so the access hits iff ``d < assoc``.

Geometry comes from the :class:`repro.machine.model.MachineModel`:
capacity and line size in double-precision words, LRU replacement within
each set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.model import MachineModel

@dataclass(frozen=True)
class CacheSpec:
    """Pure cache geometry (words), shared by the simulator and the
    analytic miss model."""

    size_words: int
    line_words: int
    assoc: int = 1

    def __post_init__(self):
        if self.size_words <= 0 or self.line_words <= 0 or self.assoc <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_words % (self.line_words * self.assoc):
            raise ValueError("size must be a multiple of line * associativity")

    @staticmethod
    def for_machine(machine: MachineModel) -> "CacheSpec":
        return CacheSpec(machine.cache_size_words, machine.cache_line_words,
                         machine.cache_assoc)

    @property
    def num_sets(self) -> int:
        return self.size_words // (self.line_words * self.assoc)

    @property
    def num_lines(self) -> int:
        return self.size_words // self.line_words

    def describe(self) -> str:
        shape = ("direct-mapped" if self.assoc == 1
                 else "fully-assoc" if self.num_sets == 1
                 else f"{self.assoc}-way")
        return (f"{self.size_words}w/{self.line_words}w-line {shape}")

def miss_probability(distance: float | None, spec: CacheSpec) -> float:
    """P(miss) for a reuse distance of ``distance`` distinct lines.

    ``None`` (or infinite/NaN) means no prior use -- a cold access, which
    always misses.  Otherwise the binomial set-conflict model described in
    the module docstring, with the exact ``d < assoc`` and fully
    associative regimes short-circuited.
    """
    if distance is None:
        return 1.0
    if isinstance(distance, float) and (math.isinf(distance)
                                        or math.isnan(distance)):
        return 1.0
    if distance < 0:
        raise ValueError(f"negative reuse distance: {distance}")
    d = int(distance)
    if d < spec.assoc:
        return 0.0
    sets = spec.num_sets
    if sets == 1:
        return 1.0  # fully associative: d >= assoc means evicted under LRU
    # P(hit) = sum_{j=0}^{assoc-1} C(d, j) p^j (1-p)^(d-j), p = 1/sets.
    p = 1.0 / sets
    q = 1.0 - p
    try:
        term = q ** d
    except OverflowError:
        term = 0.0
    if term == 0.0:
        # Underflow: with d conflicting draws this large the line is gone.
        return 1.0
    hit = term
    for j in range(spec.assoc - 1):
        term *= (d - j) / (j + 1) * (p / q)
        hit += term
    return min(1.0, max(0.0, 1.0 - hit))

class CacheSimulator:
    """Word-addressed set-associative cache with LRU replacement."""

    def __init__(self, size_words: int, line_words: int, assoc: int = 1):
        if size_words % (line_words * assoc):
            raise ValueError("size must be a multiple of line * associativity")
        self.line_words = line_words
        self.assoc = assoc
        self.num_sets = size_words // (line_words * assoc)
        # Per set: list of tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.accesses = 0
        self.misses = 0

    @staticmethod
    def for_machine(machine: MachineModel) -> "CacheSimulator":
        return CacheSimulator(machine.cache_size_words,
                              machine.cache_line_words, machine.cache_assoc)

    @staticmethod
    def from_spec(spec: CacheSpec) -> "CacheSimulator":
        return CacheSimulator(spec.size_words, spec.line_words, spec.assoc)

    def access(self, address: int) -> bool:
        """Touch one word; returns True on hit."""
        self.accesses += 1
        line = address // self.line_words
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[set_idx]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        self.misses += 1
        ways.append(tag)
        if len(ways) > self.assoc:
            ways.pop(0)
        return False

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def reset_counters(self) -> None:
        self.accesses = 0
        self.misses = 0

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.reset_counters()
