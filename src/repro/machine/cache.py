"""A set-associative LRU cache simulator (word-addressed).

The balance model charges for main-memory accesses; the simulator verifies
those charges against an actual address stream.  Geometry comes from the
:class:`repro.machine.model.MachineModel`: capacity and line size in
double-precision words, LRU replacement within each set.
"""

from __future__ import annotations

from repro.machine.model import MachineModel

class CacheSimulator:
    """Word-addressed set-associative cache with LRU replacement."""

    def __init__(self, size_words: int, line_words: int, assoc: int = 1):
        if size_words % (line_words * assoc):
            raise ValueError("size must be a multiple of line * associativity")
        self.line_words = line_words
        self.assoc = assoc
        self.num_sets = size_words // (line_words * assoc)
        # Per set: list of tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.accesses = 0
        self.misses = 0

    @staticmethod
    def for_machine(machine: MachineModel) -> "CacheSimulator":
        return CacheSimulator(machine.cache_size_words,
                              machine.cache_line_words, machine.cache_assoc)

    def access(self, address: int) -> bool:
        """Touch one word; returns True on hit."""
        self.accesses += 1
        line = address // self.line_words
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[set_idx]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        self.misses += 1
        ways.append(tag)
        if len(ways) > self.assoc:
            ways.pop(0)
        return False

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def reset_counters(self) -> None:
        self.accesses = 0
        self.misses = 0

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.reset_counters()
