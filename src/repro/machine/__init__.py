"""Machine models and the trace-driven performance simulator.

The paper evaluates on DEC Alpha and HP PA-RISC hardware; we substitute
parameterized machine models (issue widths, cache geometry, miss penalty,
register count, prefetch bandwidth) and a trace-driven simulator that
charges exactly the costs the balance model reasons about.  See DESIGN.md
for the substitution rationale.

The simulator names are loaded lazily (PEP 562): the balance model needs
only :class:`MachineModel`, and the simulator itself depends on the unroll
machinery, which depends back on balance.
"""

from repro.machine.model import MachineModel
from repro.machine.presets import dec_alpha, hp_pa_risc, prefetching_machine

__all__ = [
    "CacheSimulator",
    "MachineModel",
    "SimulationResult",
    "dec_alpha",
    "hp_pa_risc",
    "prefetching_machine",
    "simulate",
]

_LAZY = {
    "CacheSimulator": ("repro.machine.cache", "CacheSimulator"),
    "SimulationResult": ("repro.machine.simulator", "SimulationResult"),
    "simulate": ("repro.machine.simulator", "simulate"),
}

def __getattr__(name: str):
    if name in _LAZY:
        module_name, attr = _LAZY[name]
        import importlib

        module = importlib.import_module(module_name)
        return getattr(module, attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
