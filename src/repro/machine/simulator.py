"""Trace-driven performance simulation of loop nests (Figures 8/9 substrate).

The simulator walks the iteration space of a nest (original or
unroll-and-jammed, including remainder iterations), feeds the issued memory
accesses through the cache simulator, and charges cycles per innermost
body execution:

    cycles += max(mem_ops / mem_issue, flops / fp_issue, 1)
              + misses * miss_penalty  (less what prefetching hides)
              + spill traffic when register pressure exceeds the file

Scalar replacement is honoured through a :class:`ScalarReplacementPlan`:
register-resident references issue no memory access.  Remainder iterations
run progressively less-unrolled variants of the body, exactly like the
epilogue loops of real generated code (and like the reference
interpreter in :mod:`repro.ir.interp`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.ir.matrixform import occurrences
from repro.ir.nodes import LoopNest
from repro.machine.cache import CacheSimulator
from repro.machine.model import MachineModel
from repro.unroll.prefetch import plan_prefetch
from repro.unroll.scalar_replacement import (
    ScalarReplacementPlan,
    plan_scalar_replacement,
)
from repro.unroll.space import UnrollVector
from repro.unroll.transform import unroll_and_jam

#: Extra memory operations charged per iteration per register beyond the
#: machine's file (one store + one reload of a spilled value).
SPILL_OPS_PER_EXCESS_REGISTER = 2

@dataclass(frozen=True)
class SimulationResult:
    """Cycle-level outcome of one simulated nest execution."""

    name: str
    cycles: Fraction
    flops: int
    memory_ops: int
    cache_accesses: int
    cache_misses: int
    iterations: int
    spill_ops: int
    #: demand misses that actually stalled (prefetch fills excluded)
    stall_misses: int = 0
    prefetch_ops: int = 0

    @property
    def cycles_float(self) -> float:
        return float(self.cycles)

    def normalized_to(self, baseline: "SimulationResult") -> float:
        if baseline.cycles == 0:
            return 0.0
        return float(self.cycles / baseline.cycles)

class _Layout:
    """Column-major array layout over one flat word-addressed space."""

    def __init__(self, shapes: Mapping[str, tuple[int, ...]],
                 line_words: int):
        self.bases: dict[str, int] = {}
        self.strides: dict[str, tuple[int, ...]] = {}
        cursor = 0
        for name in sorted(shapes):
            shape = shapes[name]
            strides = []
            stride = 1
            for extent in shape:
                strides.append(stride)
                stride *= extent
            self.bases[name] = cursor
            self.strides[name] = tuple(strides)
            size = stride
            # Line-align each array so conflict behaviour is deterministic.
            cursor += ((size + line_words - 1) // line_words) * line_words

    def address(self, array: str, indices: tuple[int, ...]) -> int:
        strides = self.strides[array]
        base = self.bases[array]
        return base + sum(i * s for i, s in zip(indices, strides))

class _BodyVariant:
    """One unroll variant of the body with its precompiled cost."""

    def __init__(self, nest: LoopNest, u: UnrollVector, machine: MachineModel,
                 scalar_replace: bool, software_prefetch: bool):
        self.body_nest = unroll_and_jam(nest, u).main if any(u) else nest
        if scalar_replace:
            plan = plan_scalar_replacement(self.body_nest)
        else:
            occs = occurrences(self.body_nest)
            plan = ScalarReplacementPlan(
                nest=self.body_nest,
                memory_positions=frozenset(o.position for o in occs),
                registers=0,
                total_references=len(occs))
        self.flops = self.body_nest.flops_per_iteration()
        self.issued = [occ for occ in occurrences(self.body_nest)
                       if plan.issues_memory_op(occ.position)]
        self.registers = plan.registers
        excess = max(self.registers - machine.registers, 0)
        self.spill_ops = excess * SPILL_OPS_PER_EXCESS_REGISTER
        ops = len(self.issued) + self.spill_ops
        self.memory_ops = ops
        self.issue_cycles = max(Fraction(ops) / machine.mem_issue,
                                Fraction(self.flops) / machine.fp_issue,
                                Fraction(1))
        self.prefetch_map = {}
        self.inner_index = self.body_nest.loops[-1].index
        if software_prefetch:
            prefetch = plan_prefetch(self.body_nest, machine, plan)
            self.prefetch_map = prefetch.by_position()

def simulate(nest: LoopNest, machine: MachineModel,
             bindings: Mapping[str, int],
             shapes: Mapping[str, tuple[int, ...]],
             unroll: UnrollVector | None = None,
             scalar_replace: bool = True,
             software_prefetch: bool = False,
             name: str | None = None) -> SimulationResult:
    """Simulate ``nest`` (optionally unroll-and-jammed by ``unroll``).

    ``shapes`` gives each array's extents; iteration bounds come from
    ``bindings``.  With ``scalar_replace=False`` every reference issues a
    memory operation (the untransformed compiler baseline).  With
    ``software_prefetch=True`` the section-6 prefetch plan is applied:
    prefetch instructions consume memory-issue slots but their misses do
    not stall, and the prefetched lines turn later demand misses into
    hits.
    """
    if unroll is None:
        unroll = tuple(0 for _ in range(nest.depth))
    if len(unroll) != nest.depth or (unroll and unroll[-1] != 0):
        raise ValueError(f"bad unroll vector {unroll} for nest {nest.name}")

    variants: dict[UnrollVector, _BodyVariant] = {}

    def variant(u: UnrollVector) -> _BodyVariant:
        if u not in variants:
            variants[u] = _BodyVariant(nest, u, machine, scalar_replace,
                                       software_prefetch)
        return variants[u]

    cache = CacheSimulator.for_machine(machine)
    layout = _Layout(shapes, machine.cache_line_words)

    cycles = Fraction(0)
    flops = 0
    memory_ops = 0
    iterations = 0
    spill_total = 0
    prefetch_total = 0
    stall_miss_total = 0
    last_prefetched_line: dict[int, int] = {}
    env: dict[str, int] = dict(bindings)

    def run_body(body: _BodyVariant) -> None:
        nonlocal cycles, flops, memory_ops, iterations, spill_total, \
            prefetch_total, stall_miss_total
        iterations += 1
        misses = 0
        prefetches = 0
        for occ in body.issued:
            candidate = body.prefetch_map.get(occ.position)
            if candidate is not None:
                future_env = dict(env)
                future_env[body.inner_index] += candidate.distance
                addr = layout.address(
                    occ.array,
                    tuple(s.evaluate(future_env) for s in occ.ref.subscripts))
                line = addr // machine.cache_line_words
                if (not candidate.per_line
                        or last_prefetched_line.get(occ.position) != line):
                    cache.access(addr)  # fill; a prefetch miss never stalls
                    last_prefetched_line[occ.position] = line
                    prefetches += 1
            idx = tuple(s.evaluate(env) for s in occ.ref.subscripts)
            if not cache.access(layout.address(occ.array, idx)):
                misses += 1
        ops = body.memory_ops + prefetches
        issue_cycles = max(Fraction(ops) / machine.mem_issue,
                           Fraction(body.flops) / machine.fp_issue,
                           Fraction(1))
        hidden = machine.prefetch_bandwidth * issue_cycles
        stall = max(Fraction(misses) - hidden, Fraction(0)) * machine.miss_penalty
        cycles += issue_cycles + stall
        flops += body.flops
        memory_ops += ops
        spill_total += body.spill_ops
        prefetch_total += prefetches
        stall_miss_total += misses

    def rec(level: int, u: UnrollVector) -> None:
        if level == nest.depth:
            run_body(variant(u))
            return
        loop = nest.loops[level]
        lo = loop.lower.evaluate(env)
        hi = loop.upper.evaluate(env)
        step = (u[level] + 1) * loop.step
        trip = max(hi - lo + 1, 0) // loop.step
        blocks = trip // (u[level] + 1)
        aligned_hi = lo + blocks * step - 1
        for value in range(lo, aligned_hi + 1, step):
            env[loop.index] = value
            rec(level + 1, u)
        if aligned_hi < hi:
            rolled = u[:level] + (0,) + u[level + 1:]
            for value in range(max(aligned_hi + 1, lo), hi + 1, loop.step):
                env[loop.index] = value
                rec(level + 1, rolled)
        env.pop(loop.index, None)

    rec(0, tuple(unroll))
    return SimulationResult(
        name=name or (nest.name if not any(unroll)
                      else f"{nest.name}_uj{'x'.join(str(x + 1) for x in unroll)}"),
        cycles=cycles,
        flops=flops,
        memory_ops=memory_ops,
        cache_accesses=cache.accesses,
        cache_misses=cache.misses,
        iterations=iterations,
        spill_ops=spill_total,
        stall_misses=stall_miss_total,
        prefetch_ops=prefetch_total,
    )
