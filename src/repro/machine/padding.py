"""Array padding against cache conflict misses.

Direct-mapped (and low-associativity) caches make power-of-two leading
dimensions poisonous: successive columns of a column-major array map to a
handful of sets and evict each other long before capacity runs out.  The
classic fix is padding the leading dimension so the column stride, in
cache lines, is odd -- then successive columns walk *all* sets (an odd
number is coprime with the power-of-two set count).

This pass inspects array shapes against a machine's cache geometry,
suggests padded shapes, and reports why.  It is measurable: the simulator
shows the conflict misses disappearing (see tests/test_padding.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd

from repro.machine.model import MachineModel

@dataclass(frozen=True)
class PaddingSuggestion:
    """One array's padding recommendation."""

    array: str
    original: tuple[int, ...]
    padded: tuple[int, ...]
    set_coverage_before: int  # distinct sets successive columns touch
    set_coverage_after: int

    @property
    def changed(self) -> bool:
        return self.original != self.padded

def _set_coverage(stride_words: int, machine: MachineModel) -> int:
    """How many distinct cache sets successive columns land on."""
    num_sets = machine.cache_size_words // (machine.cache_line_words
                                            * machine.cache_assoc)
    lines_per_column = max(stride_words // machine.cache_line_words, 1)
    return num_sets // gcd(lines_per_column, num_sets)

def pad_leading_dimension(extent: int, machine: MachineModel) -> int:
    """The smallest extent >= the original whose stride is an odd number
    of cache lines."""
    line = machine.cache_line_words
    padded = ((extent + line - 1) // line) * line
    if (padded // line) % 2 == 0:
        padded += line
    return padded

def suggest_padding(shapes: dict[str, tuple[int, ...]],
                    machine: MachineModel,
                    threshold: int | None = None) -> list[PaddingSuggestion]:
    """Padding suggestions for every multi-dimensional array whose column
    stride covers fewer than ``threshold`` sets (default: a quarter of the
    machine's sets -- anything below that thrashes on row revisits)."""
    if threshold is None:
        num_sets = machine.cache_size_words // (machine.cache_line_words
                                                * machine.cache_assoc)
        threshold = max(num_sets // 4, 2)
    suggestions = []
    for array, shape in sorted(shapes.items()):
        if len(shape) < 2:
            suggestions.append(PaddingSuggestion(array, shape, shape,
                                                 0, 0))
            continue
        before = _set_coverage(shape[0], machine)
        if before >= threshold:
            suggestions.append(PaddingSuggestion(array, shape, shape,
                                                 before, before))
            continue
        padded_extent = pad_leading_dimension(shape[0], machine)
        padded = (padded_extent,) + shape[1:]
        after = _set_coverage(padded_extent, machine)
        suggestions.append(PaddingSuggestion(array, shape, padded,
                                             before, after))
    return suggestions

def apply_padding(shapes: dict[str, tuple[int, ...]],
                  machine: MachineModel,
                  threshold: int | None = None) -> dict[str, tuple[int, ...]]:
    """Shapes with every suggestion applied."""
    return {s.array: s.padded
            for s in suggest_padding(shapes, machine, threshold)}

def format_suggestions(suggestions: list[PaddingSuggestion]) -> str:
    lines = ["array padding against conflict misses:"]
    for s in suggestions:
        if s.changed:
            lines.append(
                f"  {s.array}: {s.original} -> {s.padded} "
                f"(set coverage {s.set_coverage_before} -> "
                f"{s.set_coverage_after})")
        else:
            lines.append(f"  {s.array}: {s.original} ok")
    return "\n".join(lines)
