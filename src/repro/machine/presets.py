"""Machine presets standing in for the paper's evaluation hardware.

The numbers are modelled on the published microarchitectures (Alpha 21064,
PA-7100) at the granularity the balance model needs: issue rates, fp
register count, on-chip data-cache geometry and an effective miss penalty.
Absolute agreement with 1997 silicon is not the goal -- the *contrast*
matters: the Alpha has a tiny on-chip cache and a painful miss, the
PA-RISC a large low-penalty off-chip cache, so cache-aware unrolling
matters far more on the former, which is exactly the Figure 8 vs Figure 9
contrast.
"""

from __future__ import annotations

from fractions import Fraction

from repro.machine.model import MachineModel

def dec_alpha() -> MachineModel:
    """DEC Alpha 21064-like: dual issue (1 mem + 1 fp), 32 fp registers,
    8KB direct-mapped data cache (1024 doubles), 32-byte lines, ~24-cycle
    miss to the board cache/memory."""
    return MachineModel(
        name="dec-alpha-21064",
        mem_issue=Fraction(1),
        fp_issue=Fraction(1),
        registers=32,
        cache_size_words=1024,
        cache_line_words=4,
        cache_assoc=1,
        miss_penalty=24,
        cache_access=1,
        prefetch_bandwidth=Fraction(0),
    )

def hp_pa_risc() -> MachineModel:
    """HP PA-7100-like: 1 load/store per cycle plus a fused multiply-add
    pipe (2 flops/cycle, so beta_M = 0.5), 32 fp registers, large
    low-latency off-chip cache (256K doubles, 32-byte lines), ~8-cycle
    effective miss."""
    return MachineModel(
        name="hp-pa-7100",
        mem_issue=Fraction(1),
        fp_issue=Fraction(2),
        registers=32,
        cache_size_words=262144,
        cache_line_words=4,
        cache_assoc=1,
        miss_penalty=8,
        cache_access=1,
        prefetch_bandwidth=Fraction(0),
    )

def prefetching_machine(bandwidth: Fraction = Fraction(1, 2)) -> MachineModel:
    """A forward-looking design for the paper's future-work experiment:
    Alpha-like core with a software-prefetch engine that can issue
    ``bandwidth`` prefetches per cycle."""
    return dec_alpha().with_prefetch(Fraction(bandwidth))

def generous_register_machine(registers: int = 64) -> MachineModel:
    """The 'larger register sets' variation discussed in section 6."""
    return dec_alpha().with_registers(registers)

def mips_r10k() -> MachineModel:
    """MIPS R10000-like: out-of-order 4-issue (1 ld/st + 2 flops sustained),
    64 physical fp registers, 32KB 2-way on-chip data cache, moderate miss
    penalty to the L2.  Carries a narrow paired-lane SIMD unit
    (MDMX-style, 2 double lanes) for the vectorize experiments."""
    return MachineModel(
        name="mips-r10k",
        mem_issue=Fraction(1),
        fp_issue=Fraction(2),
        registers=64,
        cache_size_words=4096,
        cache_line_words=4,
        cache_assoc=2,
        miss_penalty=12,
        cache_access=1,
        prefetch_bandwidth=Fraction(0),
        vector_width_words=2,
        vector_issue=Fraction(1),
        pack_cost=1,
        unpack_cost=1,
        splat_cost=1,
        gather_penalty=3,
    )

def future_wide() -> MachineModel:
    """The section-6 projection: wide ILP (2 mem + 4 fp per cycle), a big
    register file and a software-prefetch engine -- the machine class the
    paper argues will need exactly this kind of transformation.  Its
    4-lane vector unit (256-bit at double precision) is what the
    ``vectorize=True`` objective and docs/VECTORIZE.md experiments
    target."""
    return MachineModel(
        name="future-wide",
        mem_issue=Fraction(2),
        fp_issue=Fraction(4),
        registers=128,
        cache_size_words=8192,
        cache_line_words=8,
        cache_assoc=4,
        miss_penalty=40,
        cache_access=1,
        prefetch_bandwidth=Fraction(1),
        vector_width_words=4,
        vector_issue=Fraction(2),
        pack_cost=1,
        unpack_cost=1,
        splat_cost=1,
        gather_penalty=4,
    )
