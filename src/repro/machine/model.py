"""The machine description consumed by the balance model and simulator.

Section 3.1: a machine's *balance* is the rate at which it can move data
from memory relative to the rate at which it retires floating-point
operations, ``beta_M = M_rate / F_rate``.  Loops whose own balance exceeds
beta_M are memory bound on that machine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction

@dataclass(frozen=True)
class MachineModel:
    """An ILP machine for the balance model and the simulator.

    Rates are per cycle.  ``cache_line_words`` and ``cache_size_words`` are
    in double-precision words (the paper assumes word size == fp precision,
    section 3.1).  ``prefetch_bandwidth`` is the number of prefetches the
    machine can issue per cycle (0 disables the prefetch term and makes
    every main-memory access a full miss).

    The ``vector_*`` block describes an optional SIMD unit for the
    ``repro.simd`` lane cost model (docs/VECTORIZE.md).
    ``vector_width_words`` is the number of double-precision lanes; 1
    means no vector unit and keeps every default code path scalar.
    ``vector_issue`` is vector fp operations retired per cycle;
    ``pack_cost``/``unpack_cost``/``splat_cost``/``gather_penalty`` are
    cycle charges for assembling lanes from scalars, extracting a lane,
    broadcasting a scalar, and gathering non-contiguous memory operands.
    """

    name: str
    mem_issue: Fraction  # memory operations issued per cycle (M rate)
    fp_issue: Fraction  # floating-point operations per cycle (F rate)
    registers: int  # floating-point register file size
    cache_size_words: int
    cache_line_words: int
    cache_assoc: int
    miss_penalty: int  # cycles per unserviced main-memory access (lambda_m)
    cache_access: int = 1  # cycles per cache hit (lambda_c)
    prefetch_bandwidth: Fraction = Fraction(0)
    #: pipeline latencies for the list-scheduler cost model
    fp_latency: int = 3
    divide_latency: int = 12
    load_latency: int = 2
    #: SIMD unit for the lane cost model; width 1 == scalar-only machine
    vector_width_words: int = 1
    vector_issue: Fraction = Fraction(1)
    pack_cost: int = 1
    unpack_cost: int = 1
    splat_cost: int = 1
    gather_penalty: int = 2

    def __post_init__(self) -> None:
        if self.mem_issue <= 0 or self.fp_issue <= 0:
            raise ValueError("issue rates must be positive")
        if self.registers <= 0:
            raise ValueError("register file must be non-empty")
        if self.cache_line_words <= 0 or self.cache_size_words <= 0:
            raise ValueError("cache geometry must be positive")
        if self.cache_size_words % (self.cache_line_words * self.cache_assoc):
            raise ValueError("cache size must be divisible by line*assoc")
        if self.miss_penalty < 0 or self.cache_access <= 0:
            raise ValueError("invalid latency parameters")
        if self.vector_width_words < 1 or self.vector_issue <= 0:
            raise ValueError("invalid vector unit parameters")
        if min(self.pack_cost, self.unpack_cost, self.splat_cost,
               self.gather_penalty) < 0:
            raise ValueError("vector overhead costs must be non-negative")

    @property
    def balance(self) -> Fraction:
        """beta_M = M_rate / F_rate (section 3.1)."""
        return Fraction(self.mem_issue) / Fraction(self.fp_issue)

    @property
    def miss_cost_ratio(self) -> Fraction:
        """lambda_m / lambda_c: the memory-op equivalents of one miss."""
        return Fraction(self.miss_penalty, self.cache_access)

    @property
    def has_vector_unit(self) -> bool:
        return self.vector_width_words > 1

    def with_registers(self, registers: int) -> "MachineModel":
        return replace(self, name=f"{self.name}-r{registers}",
                       registers=registers)

    def with_prefetch(self, bandwidth: Fraction) -> "MachineModel":
        return replace(self, name=f"{self.name}-pf{bandwidth}",
                       prefetch_bandwidth=Fraction(bandwidth))
