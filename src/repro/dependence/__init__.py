"""SIV dependence analysis and the dependence graph.

This is the substrate the *baseline* unroll-and-jam model (Carr-Kennedy) is
built on and the object whose size Table 1 of the paper measures.  The
analyzer covers the reference classes the paper restricts itself to
(section 3.5: single-induction-variable, fully separable subscripts) with
conservative fallbacks for everything else.

Dependence kinds follow the classic taxonomy: *flow* (write -> read), *anti*
(read -> write), *output* (write -> write) and *input* (read -> read).  The
paper's observation is that input dependences -- needed only for memory-reuse
analysis -- dominate the graph, and that the UGS model makes them
unnecessary.
"""

from repro.dependence.siv import DistanceEntry, subscript_pair_test
from repro.dependence.graph import (
    Dependence,
    DependenceGraph,
    build_dependence_graph,
)
from repro.dependence.stats import GraphSizeReport, graph_size_report

__all__ = [
    "Dependence",
    "DependenceGraph",
    "DistanceEntry",
    "GraphSizeReport",
    "build_dependence_graph",
    "graph_size_report",
    "subscript_pair_test",
]
