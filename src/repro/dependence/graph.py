"""The dependence graph: edges between array-reference occurrences.

Edges carry exact distance vectors where provable (int entries) and ``"*"``
where not.  Orientation follows the usual convention: the source accesses
the location first, either in an earlier iteration (lexicographically
positive distance vector) or earlier in the same iteration (zero vector,
textual order).  Unknown-direction pairs conservatively produce one edge in
each plausible direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement
from typing import Iterable, Iterator

from repro.dependence.siv import (
    STAR,
    Distance,
    merge_constraints,
    subscript_pair_test,
)
from repro.ir.matrixform import RefOccurrence, occurrences
from repro.ir.nodes import LoopNest

_KINDS = {
    (True, False): "flow",
    (False, True): "anti",
    (True, True): "output",
    (False, False): "input",
}

@dataclass(frozen=True)
class Dependence:
    """One dependence edge of the graph."""

    src: RefOccurrence
    dst: RefOccurrence
    kind: str  # flow | anti | output | input
    distance: tuple[Distance, ...]  # per loop, outermost first

    @property
    def is_input(self) -> bool:
        return self.kind == "input"

    def carrier_level(self) -> int | None:
        """The outermost loop level carrying the dependence, or None if
        loop-independent (all-zero distance)."""
        for level, d in enumerate(self.distance):
            if d == STAR or d != 0:
                return level
        return None

    def is_loop_independent(self) -> bool:
        return all(d == 0 for d in self.distance)

    def pretty(self) -> str:
        dist = ", ".join(str(d) for d in self.distance)
        return (f"{self.kind}: {self.src.pretty()} -> {self.dst.pretty()} "
                f"({dist})")

def _lex_sign(distance: tuple[Distance, ...]) -> str:
    """'+' if lexicographically positive, '-' if negative, '0' if zero,
    '?' if the leading unknown entry makes it ambiguous."""
    for d in distance:
        if d == STAR:
            return "?"
        if d > 0:
            return "+"
        if d < 0:
            return "-"
    return "0"

def _negate(distance: tuple[Distance, ...]) -> tuple[Distance, ...]:
    return tuple(STAR if d == STAR else -d for d in distance)

def _edges_for_pair(a: RefOccurrence, b: RefOccurrence,
                    loop_names: tuple[str, ...]) -> Iterator[Dependence]:
    """All dependence edges between occurrences a and b (a.position <=
    b.position; a may equal b for cross-iteration self dependence)."""
    entries = [subscript_pair_test(sa, sb)
               for sa, sb in zip(a.ref.subscripts, b.ref.subscripts)]
    distance = merge_constraints(entries, loop_names)
    if distance is None:
        return

    same_occurrence = a.position == b.position
    sign = _lex_sign(distance)

    def emit(src: RefOccurrence, dst: RefOccurrence,
             dist: tuple[Distance, ...]) -> Dependence:
        return Dependence(src, dst, _KINDS[(src.is_write, dst.is_write)], dist)

    if sign == "+":
        yield emit(a, b, distance)
    elif sign == "-":
        yield emit(b, a, _negate(distance))
    elif sign == "0":
        # Loop-independent: textual order decides; a self pair at zero
        # distance is the access itself, not a dependence.
        if not same_occurrence:
            yield emit(a, b, distance)
    else:  # ambiguous direction: conservatively both ways
        yield emit(a, b, distance)
        if not same_occurrence:
            yield emit(b, a, _negate(distance))

class DependenceGraph:
    """All dependences of one loop nest, with counting helpers."""

    def __init__(self, nest: LoopNest, edges: Iterable[Dependence]):
        self.nest = nest
        self.edges = tuple(edges)

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self) -> Iterator[Dependence]:
        return iter(self.edges)

    def count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self.edges)
        return sum(1 for e in self.edges if e.kind == kind)

    @property
    def input_count(self) -> int:
        return self.count("input")

    @property
    def total_count(self) -> int:
        return len(self.edges)

    def input_fraction(self) -> float:
        if not self.edges:
            return 0.0
        return self.input_count / self.total_count

    def without_input_dependences(self) -> "DependenceGraph":
        return DependenceGraph(self.nest,
                               [e for e in self.edges if not e.is_input])

    def edges_for_array(self, array: str) -> list[Dependence]:
        return [e for e in self.edges if e.src.array == array]

def build_dependence_graph(nest: LoopNest,
                           include_input: bool = True) -> DependenceGraph:
    """Run the SIV tests over every same-array occurrence pair.

    ``include_input=False`` models the UGS-based compiler that never
    computes read-read dependences (the paper's space saving).
    """
    occs = occurrences(nest)
    loop_names = nest.index_names
    edges: list[Dependence] = []
    by_array: dict[str, list[RefOccurrence]] = {}
    for occ in occs:
        by_array.setdefault(occ.array, []).append(occ)
    for _, refs in sorted(by_array.items()):
        for a, b in combinations_with_replacement(refs, 2):
            if not include_input and not a.is_write and not b.is_write:
                continue
            if a.ref.rank != b.ref.rank:
                continue
            for edge in _edges_for_pair(a, b, loop_names):
                edges.append(edge)
    return DependenceGraph(nest, edges)
