"""Single-induction-variable (SIV) subscript dependence tests.

Each array dimension of a reference pair is tested independently (the
separability restriction of section 3.5 makes dimensions independent), and
the per-dimension verdicts are merged into a distance vector whose entries
are exact integers where the test can prove them and ``"*"`` (unknown
direction/distance) where it cannot.

The tests implemented are the classic ones from Goff, Kennedy & Tseng
(Practical Dependence Testing): ZIV, strong SIV, weak-zero SIV and
weak-crossing SIV, with a GCD fallback for general SIV pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Literal

from repro.ir.nodes import Subscript

STAR = "*"
Distance = int | Literal["*"]

@dataclass(frozen=True)
class DistanceEntry:
    """Outcome of testing one subscript dimension.

    ``proven_independent`` short-circuits the whole pair.  Otherwise
    ``constraints`` maps loop-index names to required distances (int or
    ``"*"``).  Dimensions that constrain no loop contribute nothing.
    """

    proven_independent: bool
    constraints: tuple[tuple[str, Distance], ...] = ()

INDEPENDENT = DistanceEntry(proven_independent=True)
NO_CONSTRAINT = DistanceEntry(proven_independent=False)

def _params_differ(a: Subscript, b: Subscript) -> bool:
    return dict(a.param_coeffs) != dict(b.param_coeffs)

def subscript_pair_test(src: Subscript, dst: Subscript) -> DistanceEntry:
    """Test one dimension: can ``src`` (at iteration i) and ``dst`` (at
    iteration i + d) touch the same index value, and what must d be?

    Distances are oriented source -> destination: ``dst`` at distance ``d``
    *after* the source touches the same element.
    """
    src_vars = dict(src.loop_coeffs)
    dst_vars = dict(dst.loop_coeffs)

    if _params_differ(src, dst):
        # Unknown symbolic offset: distances cannot be proven; be
        # conservative only when an induction variable is present.
        if not src_vars and not dst_vars:
            return INDEPENDENT  # e.g. A(N) vs A(N+1) style mismatch is unknowable;
            # treat differing pure-parameter subscripts as distinct elements.
        names = sorted(set(src_vars) | set(dst_vars))
        return DistanceEntry(False, tuple((n, STAR) for n in names))

    if not src_vars and not dst_vars:
        # ZIV: constant subscripts.
        return NO_CONSTRAINT if src.const == dst.const else INDEPENDENT

    if len(src_vars) == 1 and len(dst_vars) == 1:
        (sv, sa), = src_vars.items()
        (dv, da), = dst_vars.items()
        if sv == dv:
            if sa == da:
                # Strong SIV: a*i + c1 = a*(i+d) + c2  =>  d = (c1-c2)/a.
                delta = src.const - dst.const
                if delta % sa:
                    return INDEPENDENT
                return DistanceEntry(False, ((sv, delta // sa),))
            if sa == -da:
                # Weak-crossing SIV: a*i1 + c1 = -a*i2 + c2 requires
                # i1 + i2 = (c2 - c1)/a to be an integer; direction unknown.
                delta = dst.const - src.const
                if delta % abs(sa):
                    return INDEPENDENT
                return DistanceEntry(False, ((sv, STAR),))
            # General SIV, same variable: GCD test.
            delta = dst.const - src.const
            if delta % gcd(abs(sa), abs(da)):
                return INDEPENDENT
            return DistanceEntry(False, ((sv, STAR),))
        # Two different induction variables in the same dimension (MIV-ish
        # coupling): both loops get unknown distance.
        return DistanceEntry(False, ((sv, STAR), (dv, STAR)))

    if len(src_vars) <= 1 and len(dst_vars) <= 1:
        # Weak-zero SIV: one side is constant.
        if src_vars:
            (v, a), = src_vars.items()
            delta = dst.const - src.const
        else:
            (v, a), = dst_vars.items()
            delta = src.const - dst.const
        if delta % a:
            return INDEPENDENT
        # The dependence pins one endpoint to a single iteration; the
        # distance w.r.t. loop v is unknown.
        return DistanceEntry(False, ((v, STAR),))

    # MIV inside one dimension: outside the model; assume dependence with
    # unknown distances on every involved loop.
    names = sorted(set(src_vars) | set(dst_vars))
    return DistanceEntry(False, tuple((n, STAR) for n in names))

def merge_constraints(entries: list[DistanceEntry],
                      loop_names: tuple[str, ...]) -> tuple[Distance, ...] | None:
    """Combine per-dimension verdicts into a full distance vector.

    Returns None when any dimension proves independence or two dimensions
    demand contradictory distances for the same loop.  Loops constrained by
    no dimension are free: they carry the dependence at any distance and
    appear as ``"*"``.
    """
    merged: dict[str, Distance] = {}
    for entry in entries:
        if entry.proven_independent:
            return None
        for name, dist in entry.constraints:
            if name not in merged:
                merged[name] = dist
            else:
                existing = merged[name]
                if existing == STAR:
                    merged[name] = dist
                elif dist != STAR and dist != existing:
                    return None
    return tuple(merged.get(name, STAR) for name in loop_names)
