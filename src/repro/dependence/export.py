"""Dependence-graph exports: networkx views, DOT rendering, summaries.

The dependence graph is the baseline's central data structure; these
exports make it inspectable -- ``networkx`` for programmatic analysis
(cycles, condensations, level structure) and Graphviz DOT for eyeballing.
"""

from __future__ import annotations

import networkx as nx

from repro.dependence.graph import Dependence, DependenceGraph
from repro.dependence.siv import STAR

_KIND_STYLE = {
    "flow": ("solid", "black"),
    "anti": ("dashed", "blue"),
    "output": ("bold", "red"),
    "input": ("dotted", "gray"),
}

def _node_id(occ) -> str:
    return f"{occ.ref.pretty()}@{occ.position}"

def to_networkx(graph: DependenceGraph,
                include_input: bool = True) -> nx.MultiDiGraph:
    """A MultiDiGraph whose nodes are reference occurrences and whose edges
    carry kind/distance attributes."""
    g = nx.MultiDiGraph(nest=graph.nest.name)
    from repro.ir.matrixform import occurrences

    for occ in occurrences(graph.nest):
        g.add_node(_node_id(occ), array=occ.array, position=occ.position,
                   is_write=occ.is_write)
    for dep in graph:
        if not include_input and dep.is_input:
            continue
        g.add_edge(_node_id(dep.src), _node_id(dep.dst), kind=dep.kind,
                   distance=dep.distance,
                   carrier=dep.carrier_level())
    return g

def statement_graph(graph: DependenceGraph,
                    include_input: bool = False) -> nx.DiGraph:
    """Statement-level condensation: one node per statement, edges when any
    reference-level dependence connects them.  The classic input to loop
    distribution and fusion decisions."""
    g = nx.DiGraph(nest=graph.nest.name)
    for index in range(len(graph.nest.body)):
        g.add_node(index)
    for dep in graph:
        if not include_input and dep.is_input:
            continue
        src, dst = dep.src.stmt_index, dep.dst.stmt_index
        if g.has_edge(src, dst):
            g[src][dst]["kinds"].add(dep.kind)
        else:
            g.add_edge(src, dst, kinds={dep.kind})
    return g

def dependence_cycles(graph: DependenceGraph) -> list[list[int]]:
    """Strongly connected statement groups (recurrences); singletons with a
    self edge count, matching the classic pi-block construction."""
    g = statement_graph(graph, include_input=False)
    blocks = []
    for component in nx.strongly_connected_components(g):
        nodes = sorted(component)
        if len(nodes) > 1 or g.has_edge(nodes[0], nodes[0]):
            blocks.append(nodes)
    return blocks

def _distance_label(distance) -> str:
    return "(" + ",".join("*" if d == STAR else str(d) for d in distance) + ")"

def to_dot(graph: DependenceGraph, include_input: bool = True) -> str:
    """Graphviz DOT text for the reference-level graph."""
    lines = [f'digraph "{graph.nest.name}" {{',
             "  rankdir=LR;",
             "  node [shape=box, fontname=monospace];"]
    from repro.ir.matrixform import occurrences

    for occ in occurrences(graph.nest):
        shape = "box" if occ.is_write else "ellipse"
        lines.append(f'  "{_node_id(occ)}" [shape={shape}];')
    for dep in graph:
        if not include_input and dep.is_input:
            continue
        style, color = _KIND_STYLE[dep.kind]
        lines.append(
            f'  "{_node_id(dep.src)}" -> "{_node_id(dep.dst)}" '
            f'[style={style}, color={color}, '
            f'label="{dep.kind} {_distance_label(dep.distance)}"];')
    lines.append("}")
    return "\n".join(lines)

def summarize(graph: DependenceGraph) -> str:
    """One-paragraph textual summary of a nest's dependence structure."""
    by_level: dict[object, int] = {}
    for dep in graph:
        by_level[dep.carrier_level()] = by_level.get(dep.carrier_level(), 0) + 1
    level_text = ", ".join(
        f"level {lvl}: {count}" if lvl is not None
        else f"loop-independent: {count}"
        for lvl, count in sorted(by_level.items(),
                                 key=lambda kv: (kv[0] is None, kv[0])))
    cycles = dependence_cycles(graph)
    return (f"{graph.nest.name}: {graph.total_count} dependences "
            f"({graph.input_count} input, "
            f"{graph.count('flow')} flow, {graph.count('anti')} anti, "
            f"{graph.count('output')} output); carriers: {level_text or 'none'}; "
            f"{len(cycles)} recurrence block(s)")
