"""Dependence-graph size accounting for the Table 1 experiment.

The paper's space claim is about the number of dependence *edges* a
compiler must compute, store and update through transformations.  We report
edge counts by kind plus a bytes estimate using a fixed per-edge record
cost, which is how Memoria-style graphs are sized (edge record: two node
ids, a kind tag, and a distance/direction vector entry per loop level).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependence.graph import DependenceGraph

#: Bytes for the fixed part of an edge record (two 4-byte node ids, kind
#: tag + flags).  Distance vectors add 4 bytes per loop level.
EDGE_FIXED_BYTES = 12
EDGE_PER_LEVEL_BYTES = 4

@dataclass(frozen=True)
class GraphSizeReport:
    """Size breakdown of one nest's dependence graph."""

    nest_name: str
    depth: int
    total_edges: int
    input_edges: int
    flow_edges: int
    anti_edges: int
    output_edges: int

    @property
    def non_input_edges(self) -> int:
        return self.total_edges - self.input_edges

    @property
    def input_fraction(self) -> float:
        if not self.total_edges:
            return 0.0
        return self.input_edges / self.total_edges

    def edge_bytes(self) -> int:
        per_edge = EDGE_FIXED_BYTES + EDGE_PER_LEVEL_BYTES * self.depth
        return per_edge * self.total_edges

    def edge_bytes_without_input(self) -> int:
        per_edge = EDGE_FIXED_BYTES + EDGE_PER_LEVEL_BYTES * self.depth
        return per_edge * self.non_input_edges

    def bytes_saved(self) -> int:
        return self.edge_bytes() - self.edge_bytes_without_input()

def graph_size_report(graph: DependenceGraph) -> GraphSizeReport:
    return GraphSizeReport(
        nest_name=graph.nest.name,
        depth=graph.nest.depth,
        total_edges=graph.count(),
        input_edges=graph.count("input"),
        flow_edges=graph.count("flow"),
        anti_edges=graph.count("anti"),
        output_edges=graph.count("output"),
    )
