"""IR node definitions.

All nodes are immutable dataclasses so they can be shared freely between the
original and transformed versions of a nest, hashed into sets, and compared
structurally in tests.

Nests are additionally *hash-consed*: :meth:`LoopNest.structural_key` is
computed once and cached on the node, and :func:`intern_nest` maps every
structurally identical nest onto one canonical instance.  The serving data
plane leans on both -- the engine, the batcher, and the cluster router all
key their caches on the structural key, so re-deriving it per request used
to rival the analysis cost itself (see docs/WIRE.md).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence, Union

# ---------------------------------------------------------------------------
# Affine pieces
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Subscript:
    """One array-subscript position: ``sum(coef * loop_index) + params + const``.

    ``loop_coeffs`` maps loop-index names to integer coefficients (one row of
    the subscript matrix H); ``param_coeffs`` maps symbolic size parameters
    (e.g. ``N``) to integer coefficients; ``const`` is the integer offset
    (one entry of the constant vector c).
    """

    loop_coeffs: tuple[tuple[str, int], ...] = ()
    param_coeffs: tuple[tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def of(loop_coeffs: Mapping[str, int] | None = None,
           const: int = 0,
           param_coeffs: Mapping[str, int] | None = None) -> "Subscript":
        def _norm(mapping: Mapping[str, int] | None) -> tuple[tuple[str, int], ...]:
            if not mapping:
                return ()
            return tuple(sorted((k, int(v)) for k, v in mapping.items() if v != 0))
        return Subscript(_norm(loop_coeffs), _norm(param_coeffs), int(const))

    def coeff(self, index_name: str) -> int:
        for name, coef in self.loop_coeffs:
            if name == index_name:
                return coef
        return 0

    def shifted(self, offsets: Mapping[str, int]) -> "Subscript":
        """The subscript after substituting ``index -> index + offset``."""
        delta = sum(coef * offsets.get(name, 0) for name, coef in self.loop_coeffs)
        if delta == 0:
            return self
        return Subscript(self.loop_coeffs, self.param_coeffs, self.const + delta)

    def evaluate(self, env: Mapping[str, int]) -> int:
        total = self.const
        for name, coef in self.loop_coeffs:
            total += coef * env[name]
        for name, coef in self.param_coeffs:
            total += coef * env[name]
        return total

    def loop_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.loop_coeffs)

    def pretty(self) -> str:
        parts = []
        for name, coef in self.loop_coeffs:
            if coef == 1:
                parts.append(name)
            elif coef == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coef}*{name}")
        for name, coef in self.param_coeffs:
            if coef == 1:
                parts.append(f"+{name}" if parts else name)
            else:
                parts.append(f"{coef:+d}*{name}" if parts else f"{coef}*{name}")
        if self.const or not parts:
            parts.append(f"{self.const:+d}" if parts else str(self.const))
        text = ""
        for piece in parts:
            if text and not piece.startswith(("+", "-")):
                text += "+" + piece
            else:
                text += piece
        return text

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Const:
    """A floating-point literal."""

    value: float

@dataclass(frozen=True)
class ScalarVar:
    """A scalar variable: a loop-body temporary or a loop-invariant input."""

    name: str

@dataclass(frozen=True)
class ArrayRef:
    """A subscripted array reference ``A(s1, s2, ...)``."""

    array: str
    subscripts: tuple[Subscript, ...]

    def shifted(self, offsets: Mapping[str, int]) -> "ArrayRef":
        return ArrayRef(self.array, tuple(s.shifted(offsets) for s in self.subscripts))

    @property
    def rank(self) -> int:
        return len(self.subscripts)

    def pretty(self) -> str:
        inner = ", ".join(s.pretty() for s in self.subscripts)
        return f"{self.array}({inner})"

@dataclass(frozen=True)
class BinOp:
    """A binary floating-point operation (the flop unit of the balance model)."""

    op: str  # one of + - * /
    left: "Expr"
    right: "Expr"

    _VALID = ("+", "-", "*", "/")

    def __post_init__(self) -> None:
        if self.op not in self._VALID:
            raise ValueError(f"unsupported operator {self.op!r}")

@dataclass(frozen=True)
class Call:
    """An intrinsic call (sqrt, abs, ...); costed as one flop per call."""

    func: str
    args: tuple["Expr", ...]

Expr = Union[Const, ScalarVar, ArrayRef, BinOp, Call]

def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and all sub-expressions, pre-order."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expr(arg)

def expr_array_refs(expr: Expr) -> list[ArrayRef]:
    return [node for node in walk_expr(expr) if isinstance(node, ArrayRef)]

def expr_flops(expr: Expr) -> int:
    return sum(1 for node in walk_expr(expr) if isinstance(node, (BinOp, Call)))

def shift_expr(expr: Expr, offsets: Mapping[str, int],
               renames: Mapping[str, str] | None = None) -> Expr:
    """Substitute ``index -> index + offset`` and rename scalar temporaries."""
    renames = renames or {}
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, ScalarVar):
        return ScalarVar(renames.get(expr.name, expr.name))
    if isinstance(expr, ArrayRef):
        return expr.shifted(offsets)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, shift_expr(expr.left, offsets, renames),
                     shift_expr(expr.right, offsets, renames))
    if isinstance(expr, Call):
        return Call(expr.func, tuple(shift_expr(a, offsets, renames) for a in expr.args))
    raise TypeError(f"unknown expression node {expr!r}")

# ---------------------------------------------------------------------------
# Statements and loops
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Statement:
    """An assignment ``lhs = rhs`` inside the innermost loop body."""

    lhs: ArrayRef | ScalarVar
    rhs: Expr

    def array_reads(self) -> list[ArrayRef]:
        return expr_array_refs(self.rhs)

    def array_writes(self) -> list[ArrayRef]:
        return [self.lhs] if isinstance(self.lhs, ArrayRef) else []

    def flops(self) -> int:
        return expr_flops(self.rhs)

@dataclass(frozen=True)
class Bound:
    """An affine loop bound: ``const + sum(coef * param)``."""

    const: int = 0
    param_coeffs: tuple[tuple[str, int], ...] = ()

    @staticmethod
    def of(value: "int | str | Bound") -> "Bound":
        if isinstance(value, Bound):
            return value
        if isinstance(value, int):
            return Bound(const=value)
        if isinstance(value, str):
            return Bound(const=0, param_coeffs=((value, 1),))
        raise TypeError(f"cannot make a Bound from {value!r}")

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.const + sum(coef * env[name] for name, coef in self.param_coeffs)

    def plus(self, delta: int) -> "Bound":
        return Bound(self.const + delta, self.param_coeffs)

    def pretty(self) -> str:
        parts = []
        for name, coef in self.param_coeffs:
            if coef == 1:
                parts.append(name)
            else:
                parts.append(f"{coef}*{name}")
        if self.const or not parts:
            parts.append(f"{self.const:+d}" if parts else str(self.const))
        text = ""
        for piece in parts:
            if text and not piece.startswith(("+", "-")):
                text += "+" + piece
            else:
                text += piece
        return text

@dataclass(frozen=True)
class Loop:
    """A DO loop: ``for index in lower..upper step step``; outer loops first."""

    index: str
    lower: Bound
    upper: Bound
    step: int = 1

    def trip_count(self, env: Mapping[str, int]) -> int:
        span = self.upper.evaluate(env) - self.lower.evaluate(env) + 1
        if span <= 0:
            return 0
        return (span + self.step - 1) // self.step

@dataclass(frozen=True)
class LoopNest:
    """A perfect nest: loops from outermost to innermost plus a statement body."""

    name: str
    loops: tuple[Loop, ...]
    body: tuple[Statement, ...]
    description: str = ""

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def index_names(self) -> tuple[str, ...]:
        return tuple(loop.index for loop in self.loops)

    def loop_position(self, index_name: str) -> int:
        return self.index_names.index(index_name)

    def innermost(self) -> Loop:
        return self.loops[-1]

    def statements(self) -> tuple[Statement, ...]:
        return self.body

    def array_names(self) -> tuple[str, ...]:
        names: list[str] = []
        for stmt in self.body:
            for ref in stmt.array_writes() + stmt.array_reads():
                if ref.array not in names:
                    names.append(ref.array)
        return tuple(names)

    def flops_per_iteration(self) -> int:
        return sum(stmt.flops() for stmt in self.body)

    def scalar_temporaries(self) -> tuple[str, ...]:
        """Scalars assigned in the body (these are privatized when unrolling)."""
        written = []
        for stmt in self.body:
            if isinstance(stmt.lhs, ScalarVar) and stmt.lhs.name not in written:
                written.append(stmt.lhs.name)
        return tuple(written)

    def parameters(self) -> tuple[str, ...]:
        """Symbolic size parameters appearing in bounds or subscripts."""
        seen: list[str] = []

        def _add(name: str) -> None:
            if name not in seen:
                seen.append(name)

        for loop in self.loops:
            for bound in (loop.lower, loop.upper):
                for name, _ in bound.param_coeffs:
                    _add(name)
        for stmt in self.body:
            for ref in stmt.array_writes() + stmt.array_reads():
                for sub in ref.subscripts:
                    for name, _ in sub.param_coeffs:
                        _add(name)
        return tuple(seen)

    def structural_key(self) -> str:
        """Content hash of the nest's analyzable structure.

        Two nests share a key exactly when every model in this repository
        treats them identically: same loop bounds and steps, same statement
        sequence, same array / parameter / scalar names and subscript
        patterns.  The spelling of loop induction variables is canonicalized
        away (``DO I``/``DO II`` collide when everything else matches), and
        ``name`` and ``description`` never participate.  The key is the
        cache identity used by :class:`repro.engine.AnalysisEngine` and the
        routing identity of the serving data plane.

        The derivation runs once per node: the digest is cached on the
        instance (nodes are immutable), so every later call is an attribute
        read.  Combined with :func:`intern_nest`, a structure that has been
        seen before never hashes again anywhere in the process.
        """
        cached = self.__dict__.get("_structural_key")
        if cached is not None:
            return cached
        rename = {loop.index: f"%{pos:03d}"
                  for pos, loop in enumerate(self.loops)}
        parts = []
        for loop in self.loops:
            parts.append(f"do {rename[loop.index]} "
                         f"{_key_bound(loop.lower)} {_key_bound(loop.upper)} "
                         f"{loop.step}")
        for stmt in self.body:
            parts.append(f"{_key_expr(stmt.lhs, rename)}"
                         f" = {_key_expr(stmt.rhs, rename)}")
        blob = "\n".join(parts)
        key = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        # Frozen dataclasses only block normal attribute assignment; the
        # cache is memoization of a pure derivation, not mutation.
        object.__setattr__(self, "_structural_key", key)
        return key

# -- hash-consing ------------------------------------------------------------

#: Canonical instance per (structural key, name): the first nest seen for a
#: structure wins and every later structurally identical nest resolves to
#: it, so its cached key, dependence graph, and tables are shared for free.
#: Keyed by name too because callers observe ``nest.name`` in responses.
_INTERNED: dict[tuple[str, str], "LoopNest"] = {}
_INTERN_LOCK = threading.Lock()
_INTERN_CAPACITY = 4096

def intern_nest(nest: "LoopNest") -> "LoopNest":
    """The canonical instance of ``nest``'s structural equivalence class.

    Returns an already-interned twin (same structural key *and* name) when
    one exists, else registers ``nest`` as the canonical instance.  The twin
    carries a pre-computed structural key, so consumers downstream of
    :func:`repro.api.coerce_nest` never re-hash a known structure.  The
    table is bounded; when full it is reset rather than LRU-tracked (the
    working set of distinct structures in one process is tiny next to the
    bound, and a reset only costs re-hashing each structure once).
    """
    key = (nest.structural_key(), nest.name)
    with _INTERN_LOCK:
        canonical = _INTERNED.get(key)
        if canonical is not None:
            return canonical
        if len(_INTERNED) >= _INTERN_CAPACITY:
            _INTERNED.clear()
        _INTERNED[key] = nest
        return nest

def _key_bound(bound: Bound) -> str:
    params = ",".join(f"{name}*{coef}"
                      for name, coef in sorted(bound.param_coeffs))
    return f"({params}|{bound.const})"

def _key_subscript(sub: Subscript, rename: Mapping[str, str]) -> str:
    loops = ",".join(f"{canon}*{coef}" for canon, coef in
                     sorted((rename.get(name, name), coef)
                            for name, coef in sub.loop_coeffs))
    params = ",".join(f"{name}*{coef}"
                      for name, coef in sorted(sub.param_coeffs))
    return f"[{loops}|{params}|{sub.const}]"

def _key_expr(expr: Expr, rename: Mapping[str, str]) -> str:
    if isinstance(expr, Const):
        return f"c{expr.value!r}"
    if isinstance(expr, ScalarVar):
        return f"s{rename.get(expr.name, expr.name)}"
    if isinstance(expr, ArrayRef):
        subs = "".join(_key_subscript(s, rename) for s in expr.subscripts)
        return f"a{expr.array}{subs}"
    if isinstance(expr, BinOp):
        return (f"({_key_expr(expr.left, rename)}{expr.op}"
                f"{_key_expr(expr.right, rename)})")
    if isinstance(expr, Call):
        args = ",".join(_key_expr(a, rename) for a in expr.args)
        return f"f{expr.func}({args})"
    raise TypeError(f"unknown expression node {expr!r}")
