"""Affine loop-nest intermediate representation.

The IR models the loops the paper works on: perfect nests of DO loops with
rectangular bounds, whose statements read and write arrays through affine
subscripts ``H i + c`` and scalar temporaries.  Everything downstream -- the
dependence analyzer, the Wolf-Lam reuse model, the unroll-and-jam transform
and the machine simulator -- consumes this representation.

Public API highlights:

* expression nodes: :class:`Const`, :class:`ScalarVar`, :class:`ArrayRef`,
  :class:`BinOp`, :class:`Call`
* structure: :class:`Subscript`, :class:`Statement`, :class:`Loop`,
  :class:`LoopNest`
* :mod:`repro.ir.builder` -- a small DSL for writing kernels readably
* :mod:`repro.ir.interp` -- a numpy-backed interpreter (the semantics oracle)
* :mod:`repro.ir.matrixform` -- extraction of (H, c) per array reference
"""

from repro.ir.nodes import (
    ArrayRef,
    BinOp,
    Call,
    Const,
    Loop,
    LoopNest,
    ScalarVar,
    Statement,
    Subscript,
)
from repro.ir.matrixform import RefOccurrence, occurrences, reference_matrix
from repro.ir.validate import ValidationError, validate_nest

__all__ = [
    "ArrayRef",
    "BinOp",
    "Call",
    "Const",
    "Loop",
    "LoopNest",
    "RefOccurrence",
    "ScalarVar",
    "Statement",
    "Subscript",
    "ValidationError",
    "occurrences",
    "reference_matrix",
    "validate_nest",
]
