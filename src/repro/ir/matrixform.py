"""Extraction of the linear-algebra view of array references.

The reuse model sees a reference as ``A[H i + c]`` where ``i`` is the
iteration vector of the enclosing nest (outermost first), ``H`` an integer
matrix (one row per array dimension) and ``c`` an integer constant vector.
This module enumerates references with their textual positions (needed for
register-reuse ordering) and produces (H, c) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.ir.nodes import ArrayRef, LoopNest, Statement
from repro.linalg import Matrix

@dataclass(frozen=True)
class RefOccurrence:
    """One textual occurrence of an array reference inside a nest body.

    ``position`` is the global textual order (statement order, LHS after the
    RHS reads of the same statement, mirroring Fortran evaluation order).
    """

    ref: ArrayRef
    stmt_index: int
    position: int
    is_write: bool

    @property
    def array(self) -> str:
        return self.ref.array

    def pretty(self) -> str:
        role = "def" if self.is_write else "use"
        return f"{self.ref.pretty()} [{role}@{self.position}]"

def occurrences(nest: LoopNest) -> tuple[RefOccurrence, ...]:
    """All array-reference occurrences in textual (evaluation) order."""
    out: list[RefOccurrence] = []
    position = 0
    for stmt_index, stmt in enumerate(nest.body):
        for ref in stmt.array_reads():
            out.append(RefOccurrence(ref, stmt_index, position, is_write=False))
            position += 1
        for ref in stmt.array_writes():
            out.append(RefOccurrence(ref, stmt_index, position, is_write=True))
            position += 1
    return tuple(out)

def reference_matrix(ref: ArrayRef, index_names: tuple[str, ...]) -> Matrix:
    """The subscript matrix H of ``ref`` w.r.t. the given iteration order."""
    rows = []
    for sub in ref.subscripts:
        rows.append([Fraction(sub.coeff(name)) for name in index_names])
    return Matrix(rows, ncols=len(index_names))

def constant_vector(ref: ArrayRef) -> tuple[int, ...]:
    """The integer part of the constant vector c."""
    return tuple(sub.const for sub in ref.subscripts)

def param_signature(ref: ArrayRef) -> tuple[tuple[tuple[str, int], ...], ...]:
    """Symbolic (parameter) parts of each subscript.

    Two references can only share reuse when these match; differing symbolic
    offsets have unknown distance, so the analysis keeps them apart.
    """
    return tuple(sub.param_coeffs for sub in ref.subscripts)

def statement_of(nest: LoopNest, occ: RefOccurrence) -> Statement:
    return nest.body[occ.stmt_index]
