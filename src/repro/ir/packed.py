"""Lockstep execution of a packed unroll-and-jam schedule.

``run_packed`` is the semantics check for :mod:`repro.simd`: it executes
the jammed main nest group by group -- every pack evaluates all of its
lanes' right-hand sides before committing any store, exactly like a
vector unit -- and must produce arrays bit-identical to the scalar
``run_unrolled`` oracle (main + rolled epilogues in real-code order).

The iteration structure mirrors ``run_unrolled`` exactly: the same
blocks/aligned_hi arithmetic, the same rolled epilogue vectors, the same
lexicographic copy order inside epilogue bodies.  Scalar temporaries use
the jammed per-copy names (``t``, ``t__I1``, ...) as private slots that
fall back to the caller's seed value on a read before the first write --
the same observable semantics as the oracle's ``_CopyScalars``.
"""

from __future__ import annotations

from typing import Mapping, MutableMapping

import numpy as np

from repro.ir.interp import InterpreterError, TraceFn, _eval_expr
from repro.ir.nodes import LoopNest, ScalarVar, Statement
from repro.unroll.transform import jam_body

class _JamScalars:
    """Scalar namespace over jammed per-copy temporary names.

    Temporary slots are private (never written back to the shared dict);
    a slot read before its first write falls through to the *original*
    temporary's seed in the shared environment, matching the oracle.
    """

    def __init__(self, shared: MutableMapping[str, float],
                 base: dict[str, str]):
        self._shared = shared
        self._base = base
        self._slots: dict[str, float] = {}

    def __contains__(self, name: object) -> bool:
        base = self._base.get(name)  # type: ignore[arg-type]
        if base is not None:
            return name in self._slots or base in self._shared
        return name in self._shared

    def __getitem__(self, name: str) -> float:
        base = self._base.get(name)
        if base is not None:
            if name in self._slots:
                return self._slots[name]
            return self._shared[base]
        return self._shared[name]

    def __setitem__(self, name: str, value: float) -> None:
        if name in self._base:
            self._slots[name] = value
        else:
            self._shared[name] = value

def _commit(stmt: Statement, value: float, env: Mapping[str, int],
            scalars: _JamScalars, arrays: Mapping[str, np.ndarray],
            trace: TraceFn | None) -> None:
    if isinstance(stmt.lhs, ScalarVar):
        scalars[stmt.lhs.name] = value
        return
    idx = tuple(s.evaluate(env) for s in stmt.lhs.subscripts)
    if trace is not None:
        trace(stmt.lhs.array, idx, True)
    try:
        arrays[stmt.lhs.array][idx] = value
    except IndexError:
        raise InterpreterError(
            f"{stmt.lhs.array}{idx} out of bounds for shape "
            f"{arrays[stmt.lhs.array].shape}") from None

def run_packed(nest: LoopNest, unroll: tuple[int, ...],
               bindings: Mapping[str, int],
               arrays: Mapping[str, np.ndarray],
               scalars: MutableMapping[str, float] | None = None,
               *,
               width: int | None = None,
               machine=None,
               trace: TraceFn | None = None) -> None:
    """Execute the packed unroll-and-jam of ``nest`` in place.

    The main nest runs the SLP schedule (packs in lockstep: all lanes
    read, then all lanes write); the rolled epilogues run scalar-wise in
    textual copy order, exactly like ``run_unrolled``.  ``width`` (or
    ``machine.vector_width_words``) sets the lane count; width 1 degrades
    to a pack-free schedule that is still the jammed statement order.
    """
    from repro.simd.depgraph import build_statement_graph
    from repro.simd.packer import base_temp_names, build_packs
    from repro.simd.schedule import schedule_packs

    if len(unroll) != nest.depth:
        raise InterpreterError("unroll vector length must equal nest depth")
    if unroll[-1] != 0:
        raise InterpreterError("the innermost loop is never unrolled (u_n = 0)")
    if any(u < 0 for u in unroll):
        raise InterpreterError("negative unroll amounts are invalid")
    if width is None:
        width = machine.vector_width_words if machine is not None else 4

    scalars = scalars if scalars is not None else {}
    env: dict[str, int] = dict(bindings)
    unroll = tuple(unroll)

    base = base_temp_names(nest, unroll)
    jam_scalars = _JamScalars(scalars, base)

    # One schedule per unroll variant: the full vector gets the packed
    # schedule, every rolled epilogue variant runs in jammed textual
    # order (memoized -- the recursion revisits variants many times).
    schedules: dict[tuple[int, ...], tuple] = {}

    def schedule_for(u: tuple[int, ...]) -> tuple:
        cached = schedules.get(u)
        if cached is None:
            body = jam_body(nest, u)
            if u == unroll:
                jammed = LoopNest(name=nest.name, loops=nest.loops,
                                  body=body)
                graph = build_statement_graph(jammed)
                packset = build_packs(jammed, graph, width, base)
                _, order = schedule_packs(graph, packset)
            else:
                order = tuple((i,) for i in range(len(body)))
            cached = (body, order)
            schedules[u] = cached
        return cached

    def body_once(u: tuple[int, ...]) -> None:
        body, order = schedule_for(u)
        for group in order:
            if len(group) == 1:
                stmt = body[group[0]]
                value = _eval_expr(stmt.rhs, env, jam_scalars, arrays, trace)
                _commit(stmt, value, env, jam_scalars, arrays, trace)
            else:
                lanes = [body[i] for i in group]
                values = [_eval_expr(s.rhs, env, jam_scalars, arrays, trace)
                          for s in lanes]
                for stmt, value in zip(lanes, values):
                    _commit(stmt, value, env, jam_scalars, arrays, trace)

    def rec(level: int, u: tuple[int, ...]) -> None:
        if level == nest.depth:
            body_once(u)
            return
        loop = nest.loops[level]
        lo = loop.lower.evaluate(env)
        hi = loop.upper.evaluate(env)
        step = (u[level] + 1) * loop.step
        trip = max(hi - lo + 1, 0) // loop.step if loop.step else 0
        blocks = trip // (u[level] + 1)
        aligned_hi = lo + blocks * step - 1
        for value in range(lo, aligned_hi + 1, step):
            env[loop.index] = value
            rec(level + 1, u)
        if aligned_hi < hi:
            rolled = u[:level] + (0,) + u[level + 1:]
            for value in range(max(aligned_hi + 1, lo), hi + 1, loop.step):
                env[loop.index] = value
                rec(level + 1, rolled)
        env.pop(loop.index, None)

    rec(0, unroll)
