"""A small DSL for writing loop nests readably.

Example -- matrix multiply (jik order)::

    from repro.ir.builder import NestBuilder

    b = NestBuilder("mmjik")
    J, I, K = b.loops(("J", 1, "N"), ("I", 1, "N"), ("K", 1, "N"))
    b.assign(b.ref("C", I, J), b.ref("C", I, J) + b.ref("A", I, K) * b.ref("B", K, J))
    nest = b.build()

Index arithmetic works through operator overloading on :class:`IndexExpr`:
``b.ref("A", I + 1, J - 2)`` produces the subscripts ``(I+1, J-2)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.ir.nodes import (
    ArrayRef,
    BinOp,
    Bound,
    Call,
    Const,
    Expr,
    Loop,
    LoopNest,
    ScalarVar,
    Statement,
    Subscript,
)

@dataclass(frozen=True)
class IndexExpr:
    """An affine combination of loop indices usable as an array subscript."""

    loop_coeffs: tuple[tuple[str, int], ...]
    param_coeffs: tuple[tuple[str, int], ...] = ()
    const: int = 0

    def _combine(self, other: "IndexExpr | int | str", sign: int) -> "IndexExpr":
        if isinstance(other, int):
            return IndexExpr(self.loop_coeffs, self.param_coeffs, self.const + sign * other)
        if isinstance(other, str):
            other = IndexExpr((), ((other, 1),), 0)
        if not isinstance(other, IndexExpr):
            return NotImplemented
        loops = dict(self.loop_coeffs)
        for name, coef in other.loop_coeffs:
            loops[name] = loops.get(name, 0) + sign * coef
        params = dict(self.param_coeffs)
        for name, coef in other.param_coeffs:
            params[name] = params.get(name, 0) + sign * coef
        return IndexExpr(
            tuple(sorted((k, v) for k, v in loops.items() if v)),
            tuple(sorted((k, v) for k, v in params.items() if v)),
            self.const + sign * other.const)

    def __add__(self, other: "IndexExpr | int | str") -> "IndexExpr":
        return self._combine(other, 1)

    __radd__ = __add__

    def __sub__(self, other: "IndexExpr | int | str") -> "IndexExpr":
        return self._combine(other, -1)

    def __rsub__(self, other: "IndexExpr | int | str") -> "IndexExpr":
        return self.__neg__()._combine(other, 1)

    def __neg__(self) -> "IndexExpr":
        return IndexExpr(tuple((n, -c) for n, c in self.loop_coeffs),
                         tuple((n, -c) for n, c in self.param_coeffs),
                         -self.const)

    def __mul__(self, factor: int) -> "IndexExpr":
        if not isinstance(factor, int):
            return NotImplemented
        return IndexExpr(tuple((n, c * factor) for n, c in self.loop_coeffs),
                         tuple((n, c * factor) for n, c in self.param_coeffs),
                         self.const * factor)

    __rmul__ = __mul__

    def to_subscript(self) -> Subscript:
        return Subscript(self.loop_coeffs, self.param_coeffs, self.const)

def _as_subscript(value: "IndexExpr | int | str") -> Subscript:
    if isinstance(value, IndexExpr):
        return value.to_subscript()
    if isinstance(value, int):
        return Subscript(const=value)
    if isinstance(value, str):
        return Subscript(param_coeffs=((value, 1),))
    raise TypeError(f"cannot use {value!r} as an array subscript")

class E:
    """Expression wrapper enabling ``+ - * /`` on IR expression nodes."""

    __slots__ = ("node",)

    def __init__(self, node: "Expr | E | float | int | IndexExpr"):
        if isinstance(node, E):
            node = node.node
        if isinstance(node, (int, float)) and not isinstance(node, bool):
            node = Const(float(node))
        if isinstance(node, IndexExpr):
            raise TypeError("index expressions are subscripts, not arithmetic values")
        self.node = node

    def _bin(self, op: str, other: "E | Expr | float | int", flipped: bool = False) -> "E":
        rhs = E(other).node
        if flipped:
            return E(BinOp(op, rhs, self.node))
        return E(BinOp(op, self.node, rhs))

    def __add__(self, other):
        return self._bin("+", other)

    def __radd__(self, other):
        return self._bin("+", other, flipped=True)

    def __sub__(self, other):
        return self._bin("-", other)

    def __rsub__(self, other):
        return self._bin("-", other, flipped=True)

    def __mul__(self, other):
        return self._bin("*", other)

    def __rmul__(self, other):
        return self._bin("*", other, flipped=True)

    def __truediv__(self, other):
        return self._bin("/", other)

    def __rtruediv__(self, other):
        return self._bin("/", other, flipped=True)

    def __neg__(self):
        return E(BinOp("-", Const(0.0), self.node))

class NestBuilder:
    """Accumulates loops and statements, then builds an immutable LoopNest."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._loops: list[Loop] = []
        self._body: list[Statement] = []

    # -- loops ----------------------------------------------------------------

    def loop(self, index: str, lower: "int | str | Bound", upper: "int | str | Bound",
             step: int = 1) -> IndexExpr:
        self._loops.append(Loop(index, Bound.of(lower), Bound.of(upper), step))
        return IndexExpr(((index, 1),))

    def loops(self, *specs: Sequence) -> tuple[IndexExpr, ...]:
        return tuple(self.loop(*spec) for spec in specs)

    # -- expressions ----------------------------------------------------------

    def ref(self, array: str, *subs: "IndexExpr | int | str") -> E:
        return E(ArrayRef(array, tuple(_as_subscript(s) for s in subs)))

    def scalar(self, name: str) -> E:
        return E(ScalarVar(name))

    def const(self, value: float) -> E:
        return E(Const(float(value)))

    def call(self, func: str, *args: "E | Expr | float") -> E:
        return E(Call(func, tuple(E(a).node for a in args)))

    # -- statements -----------------------------------------------------------

    def assign(self, lhs: E, rhs: "E | Expr | float") -> None:
        target = lhs.node if isinstance(lhs, E) else lhs
        if not isinstance(target, (ArrayRef, ScalarVar)):
            raise TypeError("assignment target must be an array reference or scalar")
        self._body.append(Statement(target, E(rhs).node))

    # -- finish ---------------------------------------------------------------

    def build(self) -> LoopNest:
        if not self._loops:
            raise ValueError("a loop nest needs at least one loop")
        if not self._body:
            raise ValueError("a loop nest needs at least one statement")
        return LoopNest(self.name, tuple(self._loops), tuple(self._body),
                        self.description)
