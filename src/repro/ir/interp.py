"""A numpy-backed interpreter for loop nests.

This is the semantics oracle of the project: property tests run a nest and
its unroll-and-jammed version on identical inputs and require bit-identical
arrays.  The interpreter also supports an access-trace callback used by the
cache simulator.

Conventions:

* arrays are 0-based numpy float64 arrays; kernels are written accordingly;
* subscripts may go negative or past the logical extent only if the caller
  allocated padding (tests do);
* scalar temporaries assigned in the body are private per unrolled copy,
  mirroring the renaming a real unroller performs.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, MutableMapping

import numpy as np

from repro.ir.nodes import (
    ArrayRef,
    BinOp,
    Call,
    Const,
    Expr,
    LoopNest,
    ScalarVar,
    Statement,
)

TraceFn = Callable[[str, tuple[int, ...], bool], None]

_INTRINSICS: dict[str, Callable[..., float]] = {
    "sqrt": math.sqrt,
    "abs": abs,
    "exp": math.exp,
    "sin": math.sin,
    "cos": math.cos,
    "min": min,
    "max": max,
    "sign": lambda a, b: math.copysign(a, b),
}

class InterpreterError(RuntimeError):
    """Raised for malformed programs or missing bindings at run time."""

def _eval_expr(expr: Expr, env: Mapping[str, int],
               scalars: MutableMapping[str, float],
               arrays: Mapping[str, np.ndarray],
               trace: TraceFn | None) -> float:
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, ScalarVar):
        if expr.name in scalars:
            return scalars[expr.name]
        if expr.name in env:
            return float(env[expr.name])
        raise InterpreterError(f"unbound scalar {expr.name!r}")
    if isinstance(expr, ArrayRef):
        idx = tuple(s.evaluate(env) for s in expr.subscripts)
        if trace is not None:
            trace(expr.array, idx, False)
        try:
            return float(arrays[expr.array][idx])
        except KeyError:
            raise InterpreterError(f"unbound array {expr.array!r}") from None
        except IndexError:
            raise InterpreterError(
                f"{expr.array}{idx} out of bounds for shape "
                f"{arrays[expr.array].shape}") from None
    if isinstance(expr, BinOp):
        left = _eval_expr(expr.left, env, scalars, arrays, trace)
        right = _eval_expr(expr.right, env, scalars, arrays, trace)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right
        raise InterpreterError(f"unknown operator {expr.op!r}")
    if isinstance(expr, Call):
        fn = _INTRINSICS.get(expr.func)
        if fn is None:
            raise InterpreterError(f"unknown intrinsic {expr.func!r}")
        args = [_eval_expr(a, env, scalars, arrays, trace) for a in expr.args]
        return float(fn(*args))
    raise InterpreterError(f"unknown expression node {expr!r}")

def _exec_statement(stmt: Statement, env: Mapping[str, int],
                    scalars: MutableMapping[str, float],
                    arrays: Mapping[str, np.ndarray],
                    trace: TraceFn | None) -> None:
    value = _eval_expr(stmt.rhs, env, scalars, arrays, trace)
    if isinstance(stmt.lhs, ScalarVar):
        scalars[stmt.lhs.name] = value
        return
    idx = tuple(s.evaluate(env) for s in stmt.lhs.subscripts)
    if trace is not None:
        trace(stmt.lhs.array, idx, True)
    try:
        arrays[stmt.lhs.array][idx] = value
    except IndexError:
        raise InterpreterError(
            f"{stmt.lhs.array}{idx} out of bounds for shape "
            f"{arrays[stmt.lhs.array].shape}") from None

def run_nest(nest: LoopNest, bindings: Mapping[str, int],
             arrays: Mapping[str, np.ndarray],
             scalars: MutableMapping[str, float] | None = None,
             trace: TraceFn | None = None) -> None:
    """Execute ``nest`` in place on ``arrays``.

    ``bindings`` supplies values for symbolic size parameters.  ``scalars``
    optionally seeds loop-invariant scalar inputs and receives final
    temporary values.
    """
    scalars = scalars if scalars is not None else {}
    env: dict[str, int] = dict(bindings)

    def rec(level: int) -> None:
        if level == nest.depth:
            for stmt in nest.body:
                _exec_statement(stmt, env, scalars, arrays, trace)
            return
        loop = nest.loops[level]
        lo = loop.lower.evaluate(env)
        hi = loop.upper.evaluate(env)
        for value in range(lo, hi + 1, loop.step):
            env[loop.index] = value
            rec(level + 1)
        env.pop(loop.index, None)

    rec(0)

def run_unrolled(nest: LoopNest, unroll: tuple[int, ...],
                 bindings: Mapping[str, int],
                 arrays: Mapping[str, np.ndarray],
                 scalars: MutableMapping[str, float] | None = None,
                 trace: TraceFn | None = None) -> None:
    """Execute the unroll-and-jammed version of ``nest``.

    ``unroll[k]`` is the *extra copies* count for loop k (the paper's u_k;
    step becomes u_k + 1).  The innermost entry must be 0.  Execution order
    matches real generated code: the jammed main nest over the aligned part
    of each unrolled range, then rolled epilogues for the remainders
    (outermost remainder last, exactly like textual epilogue loops).

    Scalar temporaries written in the body are privatized per copy: copy k
    uses its own instance, as the renaming unroller would produce.
    """
    if len(unroll) != nest.depth:
        raise InterpreterError("unroll vector length must equal nest depth")
    if unroll[-1] != 0:
        raise InterpreterError("the innermost loop is never unrolled (u_n = 0)")
    if any(u < 0 for u in unroll):
        raise InterpreterError("negative unroll amounts are invalid")

    scalars = scalars if scalars is not None else {}
    env: dict[str, int] = dict(bindings)
    temps = set(nest.scalar_temporaries())

    def body_once(offsets: dict[str, int]) -> None:
        local_env = dict(env)
        for name, off in offsets.items():
            local_env[name] = env[name] + off
        key = tuple(sorted(offsets.items()))
        copy_scalars = _CopyScalars(scalars, temps, key)
        for stmt in nest.body:
            _exec_statement(stmt, local_env, copy_scalars, arrays, trace)

    def copies(level: int, u: tuple[int, ...], offsets: dict[str, int]) -> None:
        """Run the jammed body: all offset combinations in textual order."""
        if level == nest.depth:
            body_once(offsets)
            return
        loop = nest.loops[level]
        for k in range(u[level] + 1):
            offsets[loop.index] = k
            copies(level + 1, u, offsets)
        offsets.pop(loop.index, None)

    def rec(level: int, u: tuple[int, ...]) -> None:
        if level == nest.depth:
            copies(0, u, {})
            return
        loop = nest.loops[level]
        lo = loop.lower.evaluate(env)
        hi = loop.upper.evaluate(env)
        step = (u[level] + 1) * loop.step
        trip = max(hi - lo + 1, 0) // loop.step if loop.step else 0
        blocks = trip // (u[level] + 1)
        aligned_hi = lo + blocks * step - 1
        for value in range(lo, aligned_hi + 1, step):
            env[loop.index] = value
            rec(level + 1, u)
        if aligned_hi < hi:
            rolled = u[:level] + (0,) + u[level + 1:]
            for value in range(max(aligned_hi + 1, lo), hi + 1, loop.step):
                env[loop.index] = value
                rec(level + 1, rolled)
        env.pop(loop.index, None)

    rec(0, tuple(unroll))

class _CopyScalars(dict):
    """Scalar namespace for one unrolled copy.

    Temporaries resolve to per-copy slots; everything else falls through to
    the shared scalar environment.
    """

    def __init__(self, shared: MutableMapping[str, float], temps: set[str],
                 copy_key: tuple):
        super().__init__()
        self._shared = shared
        self._temps = temps
        self._key = copy_key

    def _slot(self, name: str) -> str:
        return f"{name}@{self._key}"

    def __contains__(self, name: object) -> bool:
        if name in self._temps:
            return self._slot(str(name)) in self._shared or str(name) in self._shared
        return name in self._shared

    def __getitem__(self, name: str) -> float:
        if name in self._temps:
            slot = self._slot(name)
            if slot in self._shared:
                return self._shared[slot]
            return self._shared[name]
        return self._shared[name]

    def __setitem__(self, name: str, value: float) -> None:
        if name in self._temps:
            self._shared[self._slot(name)] = value
        else:
            self._shared[name] = value
