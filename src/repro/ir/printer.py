"""Fortran-flavoured pretty printing of loop nests.

Used by the examples and by error messages; the output mirrors the DO-loop
style the paper uses in its figures, which makes eyeballing the effect of
unroll-and-jam straightforward.
"""

from __future__ import annotations

from repro.ir.nodes import (
    ArrayRef,
    BinOp,
    Call,
    Const,
    Expr,
    Loop,
    LoopNest,
    ScalarVar,
)

_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2}

def format_expr(expr: Expr, parent_prec: int = 0) -> str:
    if isinstance(expr, Const):
        if expr.value == int(expr.value):
            return str(int(expr.value))
        return repr(expr.value)
    if isinstance(expr, ScalarVar):
        return expr.name
    if isinstance(expr, ArrayRef):
        return expr.pretty()
    if isinstance(expr, Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        left = format_expr(expr.left, prec)
        right = format_expr(expr.right, prec + (expr.op in ("-", "/")))
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"unknown expression node {expr!r}")

def format_loop_header(loop: Loop, indent: str) -> str:
    header = f"{indent}DO {loop.index} = {loop.lower.pretty()}, {loop.upper.pretty()}"
    if loop.step != 1:
        header += f", {loop.step}"
    return header

def format_nest(nest: LoopNest) -> str:
    """Render a nest as indented Fortran-style DO loops."""
    lines = []
    if nest.description:
        lines.append(f"! {nest.description}")
    indent = ""
    for loop in nest.loops:
        lines.append(format_loop_header(loop, indent))
        indent += "  "
    for stmt in nest.body:
        lhs = stmt.lhs.pretty() if isinstance(stmt.lhs, ArrayRef) else stmt.lhs.name
        lines.append(f"{indent}{lhs} = {format_expr(stmt.rhs)}")
    for _ in nest.loops:
        indent = indent[:-2]
        lines.append(f"{indent}ENDDO")
    return "\n".join(lines)
