"""Compilation of loop nests to Python source.

The interpreter in :mod:`repro.ir.interp` is the semantics oracle but pays
dispatch cost per node; this module emits plain Python loops over numpy
arrays, compiled once with ``compile``/``exec``.  Generated functions are
used by tests (they must agree exactly with the interpreter) and by
examples that want to execute large workloads quickly.

The generated code for a 2-deep nest looks like::

    def kernel(arrays, bindings, scalars):
        A = arrays['A']; B = arrays['B']
        N = bindings['N']
        for I in range(1, N + 1):
            for J in range(1, N + 1):
                A[(I, J)] = (B[(I - 1, J)] + B[(I + 1, J)]) * 0.25
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

import numpy as np

from repro.ir.nodes import (
    ArrayRef,
    BinOp,
    Bound,
    Call,
    Const,
    Expr,
    LoopNest,
    ScalarVar,
    Statement,
    Subscript,
)

_INTRINSIC_IMPORTS = {
    "sqrt": "math.sqrt",
    "abs": "abs",
    "exp": "math.exp",
    "sin": "math.sin",
    "cos": "math.cos",
    "min": "min",
    "max": "max",
    "sign": "math.copysign",
}

class CodegenError(ValueError):
    """The nest uses a construct the code generator does not support."""

def _subscript_code(sub: Subscript) -> str:
    parts = []
    for name, coef in sub.loop_coeffs:
        if coef == 1:
            parts.append(name)
        elif coef == -1:
            parts.append(f"-{name}")
        else:
            parts.append(f"{coef}*{name}")
    for name, coef in sub.param_coeffs:
        parts.append(f"{coef}*{name}" if coef != 1 else name)
    parts.append(str(sub.const))
    return " + ".join(parts).replace("+ -", "- ")

def _bound_code(bound: Bound) -> str:
    parts = [str(bound.const)]
    for name, coef in bound.param_coeffs:
        parts.append(f"{coef}*{name}" if coef != 1 else name)
    return " + ".join(parts)

def _expr_code(expr: Expr, scalar_names: set[str]) -> str:
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, ScalarVar):
        scalar_names.add(expr.name)
        return f"_s_{expr.name}"
    if isinstance(expr, ArrayRef):
        subs = ", ".join(_subscript_code(s) for s in expr.subscripts)
        return f"{expr.array}[({subs},)]"
    if isinstance(expr, BinOp):
        left = _expr_code(expr.left, scalar_names)
        right = _expr_code(expr.right, scalar_names)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, Call):
        fn = _INTRINSIC_IMPORTS.get(expr.func)
        if fn is None:
            raise CodegenError(f"unsupported intrinsic {expr.func!r}")
        args = ", ".join(_expr_code(a, scalar_names) for a in expr.args)
        return f"{fn}({args})"
    raise CodegenError(f"unknown expression node {expr!r}")

def generate_source(nest: LoopNest, function_name: str = "kernel") -> str:
    """Python source for a function ``f(arrays, bindings, scalars)``."""
    scalar_reads: set[str] = set()
    body_lines: list[str] = []
    indent = "    " * (nest.depth + 1)
    for stmt in nest.body:
        rhs = _expr_code(stmt.rhs, scalar_reads)
        if isinstance(stmt.lhs, ScalarVar):
            body_lines.append(f"{indent}_s_{stmt.lhs.name} = {rhs}")
            scalar_reads.add(stmt.lhs.name)
        else:
            subs = ", ".join(_subscript_code(s) for s in stmt.lhs.subscripts)
            body_lines.append(f"{indent}{stmt.lhs.array}[({subs},)] = {rhs}")

    lines = [f"def {function_name}(arrays, bindings, scalars):"]
    for array in nest.array_names():
        lines.append(f"    {array} = arrays['{array}']")
    for param in nest.parameters():
        lines.append(f"    {param} = bindings['{param}']")
    temps = set(nest.scalar_temporaries())
    for name in sorted(scalar_reads - temps):
        lines.append(f"    _s_{name} = scalars['{name}']")
    for name in sorted(temps):
        lines.append(f"    _s_{name} = 0.0")
    for depth, loop in enumerate(nest.loops):
        pad = "    " * (depth + 1)
        lo = _bound_code(loop.lower)
        hi = _bound_code(loop.upper)
        step = f", {loop.step}" if loop.step != 1 else ""
        lines.append(f"{pad}for {loop.index} in range({lo}, ({hi}) + 1{step}):")
    lines.extend(body_lines)
    for name in sorted(temps):
        lines.append(f"    scalars['{name}'] = _s_{name}")
    return "\n".join(lines) + "\n"

def compile_nest(nest: LoopNest) -> Callable:
    """Compile a nest into a callable ``f(arrays, bindings, scalars)``."""
    source = generate_source(nest)
    namespace = {"math": math, "np": np}
    exec(compile(source, f"<codegen:{nest.name}>", "exec"), namespace)
    return namespace["kernel"]

def run_compiled(nest: LoopNest, bindings: Mapping[str, int],
                 arrays: Mapping[str, np.ndarray],
                 scalars: dict | None = None) -> None:
    """Compile and execute in place -- signature-compatible with
    :func:`repro.ir.interp.run_nest`."""
    fn = compile_nest(nest)
    fn(arrays, dict(bindings), scalars if scalars is not None else {})
