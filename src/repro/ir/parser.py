"""A parser for the Fortran-flavoured loop syntax the printer emits.

Closing the loop between :mod:`repro.ir.printer` and this parser gives the
project a textual kernel format: examples can ship loops as strings, tests
can round-trip random nests, and bug reports can paste code directly.

Grammar (DO/ENDDO, one assignment per line, ``!`` comments)::

    nest       := comment* do_loop
    do_loop    := 'DO' IDENT '=' bound ',' bound (',' INT)? body 'ENDDO'
    body       := (do_loop | assignment)+       -- perfect nests only
    assignment := lvalue '=' expr
    lvalue     := IDENT '(' subscript (',' subscript)* ')' | IDENT
    expr       := term (('+'|'-') term)*
    term       := factor (('*'|'/') factor)*
    factor     := NUMBER | lvalue | call | '(' expr ')' | '-' factor
    subscript  := affine combination of identifiers and integers

Identifiers in subscripts that match an enclosing loop index are induction
variables; anything else is a symbolic size parameter.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.ir.nodes import (
    ArrayRef,
    BinOp,
    Bound,
    Call,
    Const,
    Expr,
    Loop,
    LoopNest,
    ScalarVar,
    Statement,
    Subscript,
)

class ParseError(ValueError):
    """Syntax error with line context."""

_TOKEN = re.compile(r"""
    (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>[-+*/(),=])
""", re.VERBOSE)

@dataclass
class _Token:
    kind: str
    text: str

def _tokenize(line: str, lineno: int) -> list[_Token]:
    tokens = []
    pos = 0
    while pos < len(line):
        if line[pos].isspace():
            pos += 1
            continue
        match = _TOKEN.match(line, pos)
        if not match:
            raise ParseError(f"line {lineno}: cannot tokenize at "
                             f"{line[pos:pos + 10]!r}")
        kind = match.lastgroup or "op"
        tokens.append(_Token(kind, match.group()))
        pos = match.end()
    return tokens

class _LineParser:
    """Recursive-descent parser over one tokenized line."""

    def __init__(self, tokens: list[_Token], lineno: int,
                 loop_indices: list[str]):
        self.tokens = tokens
        self.pos = 0
        self.lineno = lineno
        self.loop_indices = loop_indices

    def error(self, message: str) -> ParseError:
        return ParseError(f"line {self.lineno}: {message}")

    def peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, text: str | None = None, kind: str | None = None) -> _Token:
        token = self.peek()
        if token is None:
            raise self.error(f"unexpected end of line (wanted {text or kind})")
        if text is not None and token.text != text:
            raise self.error(f"expected {text!r}, found {token.text!r}")
        if kind is not None and token.kind != kind:
            raise self.error(f"expected {kind}, found {token.text!r}")
        self.pos += 1
        return token

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # -- affine subscripts ---------------------------------------------------

    def parse_subscript(self) -> Subscript:
        loops: dict[str, int] = {}
        params: dict[str, int] = {}
        const = 0
        sign = 1
        expect_term = True
        while True:
            token = self.peek()
            if token is None or token.text in (",", ")"):
                if expect_term:
                    raise self.error("dangling sign in subscript")
                break
            if token.text in ("+", "-"):
                self.take()
                sign = 1 if token.text == "+" else -1
                expect_term = True
                continue
            coef = sign
            if token.kind == "number":
                self.take()
                value = int(token.text)
                nxt = self.peek()
                if nxt is not None and nxt.text == "*":
                    self.take("*")
                    name_tok = self.take(kind="ident")
                    coef = sign * value
                    target = loops if name_tok.text in self.loop_indices else params
                    target[name_tok.text] = target.get(name_tok.text, 0) + coef
                else:
                    const += sign * value
            elif token.kind == "ident":
                self.take()
                target = loops if token.text in self.loop_indices else params
                target[token.text] = target.get(token.text, 0) + coef
            else:
                raise self.error(f"unexpected {token.text!r} in subscript")
            sign = 1
            expect_term = False
        return Subscript.of(loops, const, params)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> Expr:
        node = self.parse_term()
        while not self.at_end() and self.peek().text in ("+", "-"):
            op = self.take().text
            node = BinOp(op, node, self.parse_term())
        return node

    def parse_term(self) -> Expr:
        node = self.parse_factor()
        while not self.at_end() and self.peek().text in ("*", "/"):
            op = self.take().text
            node = BinOp(op, node, self.parse_factor())
        return node

    def parse_factor(self) -> Expr:
        token = self.peek()
        if token is None:
            raise self.error("unexpected end of expression")
        if token.text == "-":
            self.take()
            return BinOp("-", Const(0.0), self.parse_factor())
        if token.text == "(":
            self.take("(")
            node = self.parse_expr()
            self.take(")")
            return node
        if token.kind == "number":
            self.take()
            return Const(float(token.text))
        if token.kind == "ident":
            self.take()
            nxt = self.peek()
            if nxt is not None and nxt.text == "(":
                return self.parse_ref_or_call(token.text)
            return ScalarVar(token.text)
        raise self.error(f"unexpected {token.text!r} in expression")

    _INTRINSICS = ("sqrt", "abs", "exp", "sin", "cos", "min", "max", "sign")

    def parse_ref_or_call(self, name: str) -> Expr:
        self.take("(")
        if name.lower() in self._INTRINSICS:
            args = [self.parse_expr()]
            while self.peek() is not None and self.peek().text == ",":
                self.take(",")
                args.append(self.parse_expr())
            self.take(")")
            return Call(name.lower(), tuple(args))
        subs = [self.parse_subscript()]
        while self.peek() is not None and self.peek().text == ",":
            self.take(",")
            subs.append(self.parse_subscript())
        self.take(")")
        return ArrayRef(name, tuple(subs))

    # -- bounds --------------------------------------------------------------

    def parse_bound(self) -> Bound:
        sub = self.parse_subscript()
        if sub.loop_coeffs:
            raise self.error("loop bounds may not use induction variables")
        return Bound(sub.const, sub.param_coeffs)

def parse_nest(source: str, name: str = "parsed") -> LoopNest:
    """Parse one perfect loop nest from DO-loop source text."""
    lines = []
    description = ""
    for lineno, raw in enumerate(source.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped:
            continue
        if stripped.startswith("!"):
            if not lines and not description:
                description = stripped[1:].strip()
            continue
        lines.append((lineno, stripped))
    if not lines:
        raise ParseError("empty input")

    loops: list[Loop] = []
    body: list[Statement] = []
    index_names: list[str] = []
    open_loops = 0
    closed = 0

    for lineno, text in lines:
        upper = text.upper()
        if upper.startswith("DO "):
            if body:
                raise ParseError(
                    f"line {lineno}: loop after statements (perfect nests "
                    "only)")
            if closed:
                raise ParseError(f"line {lineno}: loop after ENDDO")
            parser = _LineParser(_tokenize(text[3:], lineno), lineno,
                                 index_names)
            index = parser.take(kind="ident").text
            parser.take("=")
            lower = parser.parse_bound()
            parser.take(",")
            upper_bound = parser.parse_bound()
            step = 1
            if not parser.at_end():
                parser.take(",")
                step_tok = parser.take(kind="number")
                step = int(step_tok.text)
            if not parser.at_end():
                raise ParseError(f"line {lineno}: trailing tokens after DO")
            loops.append(Loop(index, lower, upper_bound, step))
            index_names.append(index)
            open_loops += 1
        elif upper == "ENDDO":
            closed += 1
            if closed > open_loops:
                raise ParseError(f"line {lineno}: unmatched ENDDO")
        else:
            if closed:
                raise ParseError(
                    f"line {lineno}: statement after ENDDO (perfect nests "
                    "only)")
            if not open_loops:
                raise ParseError(f"line {lineno}: statement outside loops")
            parser = _LineParser(_tokenize(text, lineno), lineno, index_names)
            target_tok = parser.take(kind="ident")
            if parser.peek() is not None and parser.peek().text == "(":
                lhs = parser.parse_ref_or_call(target_tok.text)
                if not isinstance(lhs, ArrayRef):
                    raise ParseError(
                        f"line {lineno}: cannot assign to a call")
            else:
                lhs = ScalarVar(target_tok.text)
            parser.take("=")
            rhs = parser.parse_expr()
            if not parser.at_end():
                raise ParseError(f"line {lineno}: trailing tokens after "
                                 "assignment")
            body.append(Statement(lhs, rhs))

    if closed != open_loops:
        raise ParseError(f"{open_loops - closed} unclosed DO loop(s)")
    if not body:
        raise ParseError("nest has no statements")
    return LoopNest(name, tuple(loops), tuple(body), description)
