"""Structural validation of loop nests for the analyses of the paper.

Section 3.5 restricts the model to references with a *single induction
variable per subscript position* (SIV) and *fully separable* subscripts
(each induction variable appears in at most one subscript position of a
reference).  In matrix terms, every row and every column of H has at most
one non-zero entry.  The validators here enforce that, plus basic sanity
(defined indices, positive ranks).
"""

from __future__ import annotations

from repro.ir.matrixform import occurrences, reference_matrix
from repro.ir.nodes import ArrayRef, LoopNest

class ValidationError(ValueError):
    """A nest violates the structural assumptions of the model."""

def check_siv(ref: ArrayRef) -> list[str]:
    """SIV check: each subscript mentions at most one induction variable."""
    problems = []
    for dim, sub in enumerate(ref.subscripts):
        if len(sub.loop_coeffs) > 1:
            problems.append(
                f"{ref.pretty()}: subscript {dim} uses {len(sub.loop_coeffs)} "
                "induction variables (SIV requires at most one)")
    return problems

def check_separable(ref: ArrayRef) -> list[str]:
    """Separability: each induction variable in at most one subscript position."""
    seen: dict[str, int] = {}
    problems = []
    for dim, sub in enumerate(ref.subscripts):
        for name, _ in sub.loop_coeffs:
            if name in seen:
                problems.append(
                    f"{ref.pretty()}: index {name} appears in subscripts "
                    f"{seen[name]} and {dim} (not separable)")
            seen[name] = dim
    return problems

def validate_nest(nest: LoopNest, require_siv: bool = True) -> None:
    """Raise :class:`ValidationError` if the nest is malformed.

    With ``require_siv=True`` (the default, matching the paper) references
    must also satisfy the SIV + separability criteria.
    """
    problems: list[str] = []

    names = list(nest.index_names)
    if len(set(names)) != len(names):
        problems.append(f"duplicate loop indices in nest {nest.name!r}")

    known = set(names)
    rank_by_array: dict[str, int] = {}
    for occ in occurrences(nest):
        ref = occ.ref
        if ref.rank == 0:
            problems.append(f"{ref.array}: zero-rank array reference")
        expected = rank_by_array.setdefault(ref.array, ref.rank)
        if ref.rank != expected:
            problems.append(
                f"{ref.array}: inconsistent rank ({ref.rank} vs {expected})")
        for sub in ref.subscripts:
            for loop_name, _ in sub.loop_coeffs:
                if loop_name not in known:
                    problems.append(
                        f"{ref.pretty()}: unknown induction variable {loop_name}")
        if require_siv:
            problems.extend(check_siv(ref))
            problems.extend(check_separable(ref))

    for loop in nest.loops:
        if loop.step <= 0:
            problems.append(f"loop {loop.index}: non-positive step {loop.step}")

    if problems:
        raise ValidationError("; ".join(problems))

def is_siv_separable(nest: LoopNest) -> bool:
    """True when every reference satisfies the restrictions of section 3.5."""
    try:
        validate_nest(nest, require_siv=True)
    except ValidationError:
        return False
    return True

def reference_is_unit_structured(ref: ArrayRef, index_names: tuple[str, ...]) -> bool:
    """True when H has at most one non-zero per row and per column."""
    matrix = reference_matrix(ref, index_names)
    for row in matrix.rows:
        if sum(1 for x in row if x != 0) > 1:
            return False
    for j in range(matrix.ncols):
        if sum(1 for x in matrix.column(j) if x != 0) > 1:
            return False
    return True
