"""A stdlib-only asyncio HTTP/1.1 front end over the analysis engine.

``python -m repro serve`` runs :func:`run_server`, which binds
:class:`AnalysisServer` and blocks until SIGTERM/SIGINT.  Routes:

* ``POST /v1/analyze`` / ``/v1/optimize`` / ``/v1/transform`` -- JSON
  bodies in any :func:`repro.api.coerce_nest` shape (kernel name, DO-loop
  source, serialized nest), dispatched through the
  :class:`~repro.serve.batcher.MicroBatcher`;
* ``POST /v2/frame`` -- the same three verbs in the binary frame
  encoding (``application/x-repro-frame``, see docs/WIRE.md).  Warm
  repeats are answered from an encoded-response cache keyed on the raw
  payload digest -- no JSON parse, no nest coercion, no re-hash, no
  re-encode -- which is what makes the binary path's p50 a fraction of
  the JSON path's;
* ``GET /healthz`` -- liveness plus the effective defaults;
* ``GET /metrics`` -- the merged engine+serve metrics snapshot (stage
  timings now carry p50/p95/p99), cache statistics, and queue gauges.
  Content-negotiated: JSON by default (byte-compatible with earlier
  releases), Prometheus text exposition with ``Accept: text/plain`` or
  ``/metrics?format=prometheus`` (see docs/OBSERVABILITY.md).

Every request runs under a :mod:`repro.obs` trace span
(``serve.request``), which the batcher propagates onto its executor
threads, so engine stage spans nest under the request that caused them.

Robustness: request bodies are capped (413), admission is bounded (429
with ``Retry-After``), every request has a server-side timeout (504), and
shutdown is graceful -- the listener closes first, the batcher drains
everything already accepted, open connections finish writing, and the
final metrics snapshot is flushed to ``metrics_path`` when configured.

:class:`ServerThread` hosts the same server on a background thread with
its own event loop -- the harness the benchmark and the tests use to
drive a real socket in-process.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import signal
import threading
import time

from repro import api, obs
from repro.engine import AnalysisEngine
from repro.predict.model import load_default_model, load_model
from repro.serve import protocol
from repro.serve.batcher import BatchConfig, MicroBatcher, Overloaded
from repro.serve.http import (
    Request as _Request,
    frame_response as _frame_response,
    is_frame_request as _is_frame_request,
    json_response as _response,
    negotiated_error as _negotiated_error,
    read_request as _read_http_request,
    text_response as _text_response,
    wants_prometheus as _wants_prometheus_headers,
)

__all__ = ["ServeConfig", "AnalysisServer", "ServerThread", "run_server"]

#: Headers the cluster router uses to parent worker spans under its own
#: request span (see docs/CLUSTER.md).
TRACE_ID_HEADER = "x-repro-trace-id"
PARENT_ID_HEADER = "x-repro-parent-id"

class ServeConfig:
    """Server-level knobs; batching knobs live in :class:`BatchConfig`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 machine: str = "alpha", max_body: int = 64 * 1024,
                 request_timeout_s: float = 30.0,
                 shutdown_grace_s: float = 30.0,
                 metrics_path: str | None = None,
                 batch: BatchConfig | None = None,
                 shard: str | None = None,
                 frame_cache: int = 2048,
                 model_path: str | None = None,
                 predict: bool = True,
                 auto_confidence: float | None = None,
                 validate_fast: bool = True):
        self.host = host
        self.port = port
        self.machine = machine
        self.max_body = max_body
        self.request_timeout_s = request_timeout_s
        self.shutdown_grace_s = shutdown_grace_s
        self.metrics_path = metrics_path
        self.batch = batch if batch is not None else BatchConfig()
        #: Cluster shard label; a worker under repro.cluster tags its
        #: health/metrics documents with it so the router can federate.
        self.shard = shard
        #: Encoded-response cache entries for the /v2/frame fast path
        #: (0 disables it).
        self.frame_cache = frame_cache
        #: Model artifact for the tier=fast predictor; ``None`` loads
        #: the committed default (docs/PREDICT.md).
        self.model_path = model_path
        #: ``False`` disables the fast tier entirely (tier=fast then
        #: falls back to exact and counts ``predict.unsupported``).
        self.predict = predict
        #: tier=auto serves fast only at or above this confidence;
        #: ``None`` uses the artifact's embedded floor.
        self.auto_confidence = auto_confidence
        #: Asynchronously re-answer every fast response with the exact
        #: engine and count agreement (``predict.validated`` /
        #: ``predict.mismatch``).
        self.validate_fast = validate_fast

class AnalysisServer:
    """One engine, one batcher, one listener; drive with :meth:`run` (CLI)
    or :meth:`start`/:meth:`shutdown` (embedding)."""

    def __init__(self, config: ServeConfig | None = None,
                 engine: AnalysisEngine | None = None):
        self.config = config if config is not None else ServeConfig()
        self.engine = engine if engine is not None else AnalysisEngine()
        self.batcher = MicroBatcher(self.engine, self.config.batch)
        #: The tier=fast predictor: an explicit artifact when configured
        #: (load failures are startup failures), else the committed
        #: default, else ``None`` -- the server then serves exact only.
        if not self.config.predict:
            self.predictor = None
        elif self.config.model_path is not None:
            self.predictor = load_model(self.config.model_path)
        else:
            self.predictor = load_default_model()
        self._validations: set[asyncio.Task] = set()
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._started_at = time.monotonic()
        #: Encoded 200-response frames by payload digest (loop-confined,
        #: insertion-ordered; oldest evicted).  Keyed by
        #: :func:`protocol.request_cache_key`, which is derived from the
        #: payload bytes server-side -- a client lying in its key header
        #: cannot plant an entry any other request would hit.
        self._frame_cache: dict[tuple, bytes] = {}

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        print(f"repro-serve listening on "
              f"http://{self.config.host}:{self.port}", flush=True)

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight work, flush metrics."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.batcher.stop()
        # The batcher drained everything it accepted, so any pending
        # fast-tier validations resolve promptly; give them a bounded
        # window to record their verdicts before metrics flush.
        if self._validations:
            await asyncio.wait(set(self._validations),
                               timeout=self.config.shutdown_grace_s)
        if self._connections:
            await asyncio.wait(set(self._connections),
                               timeout=self.config.shutdown_grace_s)
        # Idle keep-alive connections (parked in a client's or the
        # cluster router's pool) never finish on their own: closing the
        # transport feeds the parked readline an EOF, so the handler
        # exits through its normal path (cancelling instead would make
        # py3.11's stream done-callback re-raise CancelledError into
        # the loop's exception handler).
        for writer in set(self._writers):
            writer.close()
        if self._connections:
            await asyncio.wait(set(self._connections),
                               timeout=self.config.shutdown_grace_s)
        self._flush_metrics()

    async def run(self) -> int:
        """The CLI entry: serve until SIGTERM/SIGINT, then drain; 0 on a
        clean exit."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop: Ctrl-C still lands as KeyboardInterrupt
        await self._shutdown.wait()
        print("repro-serve draining...", flush=True)
        await self.shutdown()
        print("repro-serve stopped", flush=True)
        return 0

    def _flush_metrics(self) -> None:
        if not self.config.metrics_path:
            return
        path = pathlib.Path(self.config.metrics_path)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(self._metrics_document(), indent=2,
                                       sort_keys=True) + "\n")
        except OSError as err:
            print(f"repro-serve: cannot flush metrics: {err}", flush=True)
        if self.engine.profiler.enabled:
            # The profiling contract: the top-N summary lands next to
            # the results JSON it explains.
            try:
                self.engine.profiler.write(
                    path.with_name(path.stem + ".profile.json"))
            except OSError as err:
                print(f"repro-serve: cannot flush profile: {err}",
                      flush=True)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._writers.add(writer)
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                response = await self._respond(request)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive or self._shutdown.is_set():
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        finally:
            if task is not None:
                self._connections.discard(task)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> _Request | None:
        return await _read_http_request(
            reader, writer, self.config.max_body, protocol.error_payload,
            on_oversized=lambda: self.engine.metrics.count("serve.oversized"))

    # -- routing -------------------------------------------------------------

    async def _respond(self, request: _Request) -> bytes:
        close = not request.keep_alive or self._shutdown.is_set()
        path, _, query = request.path.partition("?")
        if path == "/healthz":
            if request.method != "GET":
                return _response(405, protocol.error_payload(
                    "method_not_allowed", "use GET"), close=close)
            return _response(200, self._health_document(), close=close)
        if path == "/metrics":
            if request.method != "GET":
                return _response(405, protocol.error_payload(
                    "method_not_allowed", "use GET"), close=close)
            if self._wants_prometheus(request, query):
                return _text_response(
                    200, obs.document_to_exposition(
                        self._metrics_document()),
                    obs.PROMETHEUS_CONTENT_TYPE, close=close)
            return _response(200, self._metrics_document(), close=close)
        if path.startswith("/v1/"):
            if request.method != "POST":
                return _response(405, protocol.error_payload(
                    "method_not_allowed", "use POST"), close=close)
            # A cluster router forwards its trace context via headers so
            # this worker's spans nest under the routed request's span.
            with obs.activate(self._remote_trace(request)), \
                    obs.span("serve.request", path=path,
                             method=request.method):
                status, payload, extra = await self._handle_api(
                    path[len("/v1/"):], request.body)
            return _response(status, payload, close=close, headers=extra)
        if path == "/v2/frame":
            if request.method != "POST":
                return _negotiated_error(request, 405, "method_not_allowed",
                                         "use POST", close=close)
            if not _is_frame_request(request):
                return _negotiated_error(
                    request, 415, "unsupported_media_type",
                    f"POST /v2/frame takes "
                    f"{protocol.CONTENT_TYPE_FRAME}", close=close)
            status, frame, extra = await self._handle_frame(request)
            return _frame_response(status, frame, close=close, headers=extra)
        return _negotiated_error(request, 404, "not_found",
                                 f"no route {request.path!r}", close=close)

    @staticmethod
    def _remote_trace(request: _Request) -> tuple[str, str] | None:
        trace_id = request.headers.get(TRACE_ID_HEADER)
        parent_id = request.headers.get(PARENT_ID_HEADER)
        if trace_id and parent_id:
            return (trace_id, parent_id)
        return None

    @staticmethod
    def _wants_prometheus(request: _Request, query: str) -> bool:
        return _wants_prometheus_headers(request.headers, query)

    async def _handle_api(self, kind: str,
                          body: bytes) -> tuple[int, dict, dict]:
        try:
            spec = protocol.parse_request(kind, body, self.config.machine)
        except protocol.ProtocolError as err:
            return err.status, err.payload(), {}
        return await self._execute(spec)

    async def _handle_frame(self,
                            request: _Request) -> tuple[int, bytes, dict]:
        """The binary data plane: decode a frame, execute, re-encode --
        or, on a warm repeat, return the cached encoded response without
        touching the payload at all."""
        try:
            frame = protocol.peek_frame(request.body)
            cache_key = protocol.request_cache_key(frame)
            cached = self._frame_cache.get(cache_key)
            if cached is not None:
                self.engine.metrics.count("serve.frame_fast_hits")
                return 200, cached, {}
            spec, frame = protocol.parse_frame_request(
                request.body, self.config.machine)
        except protocol.ProtocolError as err:
            return err.status, protocol.encode_response_frame(
                err.payload(), error=True), {}
        status, payload, extra = await self._execute(spec)
        encoded = protocol.encode_response_frame(
            payload, error=status != 200, kind=spec.kind,
            key=payload.get("structural_key") if status == 200 else None)
        if status == 200 and self.config.frame_cache > 0:
            while len(self._frame_cache) >= self.config.frame_cache:
                self._frame_cache.pop(next(iter(self._frame_cache)))
            self._frame_cache[cache_key] = encoded
        self.engine.metrics.count("serve.frame_fast_misses")
        return status, encoded, extra

    async def _execute(self,
                       spec: protocol.RequestSpec) -> tuple[int, dict, dict]:
        """Coerce, dispatch through the batcher, await: the shared core
        of both wire encodings."""
        try:
            nest = api.coerce_nest(spec.nest)
        except api.NestResolutionError as err:
            status, error_type = protocol.status_for_resolution(err)
            return status, protocol.error_payload(error_type, str(err)), {}
        try:
            machine = api.coerce_machine(spec.machine)
        except ValueError as err:
            return 400, protocol.error_payload("unknown_machine",
                                               str(err)), {}
        if spec.tier in ("fast", "auto") and spec.kind == "optimize":
            response = self._try_fast(spec, nest, machine)
            if response is not None:
                return response
        key = (spec.kind, nest.structural_key(), machine.name,
               spec.params_key(), spec.unroll)
        try:
            future = self.batcher.submit(spec.kind, key, nest, machine,
                                         spec.params, spec.unroll)
        except Overloaded as err:
            return (429,
                    protocol.error_payload(
                        "overloaded",
                        "admission queue is full; retry later",
                        retry_after=err.retry_after_s),
                    {"retry-after": str(err.retry_after_s)})
        except RuntimeError:
            return 503, protocol.error_payload(
                "shutting_down", "service is draining; retry elsewhere"), {}
        try:
            payload = await asyncio.wait_for(
                future, self.config.request_timeout_s)
        except asyncio.TimeoutError:
            self.engine.metrics.count("serve.timeouts")
            return 504, protocol.error_payload(
                "timeout", f"no result within "
                           f"{self.config.request_timeout_s}s"), {}
        except ValueError as err:  # e.g. an illegal explicit unroll vector
            return 400, protocol.error_payload("bad_request", str(err)), {}
        except Exception as err:
            self.engine.metrics.count("serve.errors")
            return 500, protocol.error_payload(
                "internal", f"{type(err).__name__}: {err}"), {}
        self.engine.metrics.count("serve.responses_2xx")
        if spec.tier is not None:
            # Echo which tier answered -- on a copy: the batcher's
            # payload dict is shared with coalesced waiters and caches.
            payload = dict(payload, tier="exact")
        return 200, payload, {}

    # -- the learned fast tier (docs/PREDICT.md) ------------------------------

    def _fast_supported(self, spec: protocol.RequestSpec, nest) -> bool:
        """The fast tier answers only the parameter space the model was
        trained on; anything else falls through to the exact engine."""
        predictor = self.predictor
        if predictor is None or not predictor.supports_depth(nest.depth):
            return False
        trained_loops = int(predictor.trained.get("max_loops", 2))
        if spec.params.get("max_loops", 2) != trained_loops:
            return False
        if spec.params.get("include_cache", True) is False:
            return False
        if spec.params.get("simd"):
            return False  # pack reports come only from the exact engine
        return True

    def _try_fast(self, spec: protocol.RequestSpec, nest,
                  machine) -> tuple[int, dict, dict] | None:
        """Answer from the predictor, or ``None`` to fall through to the
        exact path (no model, unsupported request, or -- for tier=auto --
        a prediction below the confidence floor)."""
        if not self._fast_supported(spec, nest):
            self.engine.metrics.count("predict.unsupported")
            return None
        predictor = self.predictor
        bound = spec.params.get("bound", protocol.DEFAULT_PARAMS["bound"])
        trip = spec.params.get("trip", protocol.DEFAULT_PARAMS["trip"])
        with obs.span("predict.fast", nest=nest.name,
                      model=predictor.model_id):
            prediction = predictor.predict(nest, machine, bound=bound,
                                           trip=trip)
        if prediction is None:
            self.engine.metrics.count("predict.unsupported")
            return None
        floor = (self.config.auto_confidence
                 if self.config.auto_confidence is not None
                 else predictor.confidence_floor)
        if spec.tier == "auto" and prediction.confidence < floor:
            self.engine.metrics.count("predict.low_confidence")
            return None
        self.engine.metrics.count("predict.fast_served")
        payload = protocol.predict_payload(nest, machine, prediction)
        if self.config.validate_fast:
            self._enqueue_validation(spec, nest, machine, prediction)
        return 200, payload, {}

    def _enqueue_validation(self, spec: protocol.RequestSpec, nest,
                            machine, prediction) -> None:
        """Queue the exact computation behind the fast answer; agreement
        lands in ``predict.validated`` / ``predict.mismatch``.  Dropped
        (and counted) rather than queued when admission is full -- the
        fast answer was already sent, so validation must never create
        backpressure of its own."""
        key = ("optimize", nest.structural_key(), machine.name,
               spec.params_key(), None)
        try:
            future = self.batcher.submit("optimize", key, nest, machine,
                                         spec.params, None)
        except (Overloaded, RuntimeError):
            self.engine.metrics.count("predict.validation_dropped")
            return
        task = asyncio.ensure_future(self._validate(future, prediction))
        self._validations.add(task)
        task.add_done_callback(self._validations.discard)

    async def _validate(self, future, prediction) -> None:
        try:
            payload = await future
        except Exception:
            self.engine.metrics.count("predict.validation_dropped")
            return
        with obs.span("predict.validate", model=prediction.model_id):
            exact = tuple(payload.get("unroll") or ())
            self.engine.metrics.count("predict.validated")
            if exact != prediction.unroll:
                self.engine.metrics.count("predict.mismatch")

    # -- documents -----------------------------------------------------------

    def _health_document(self) -> dict:
        doc = {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started_at,
            "machine": self.config.machine,
            "defaults": dict(protocol.DEFAULT_PARAMS),
            "queue_depth": self.batcher.queue_depth,
            "in_flight": self.batcher.in_flight,
            "wire": {
                "versions": [1, protocol.WIRE_VERSION],
                "frame_content_type": protocol.CONTENT_TYPE_FRAME,
                "frame_path": "/v2/frame",
            },
            "tiers": {
                "supported": (list(protocol.TIERS)
                              if self.predictor is not None
                              else ["exact"]),
                "model": (self.predictor.describe()
                          if self.predictor is not None else None),
                "auto_confidence": (
                    self.config.auto_confidence
                    if self.config.auto_confidence is not None
                    else (self.predictor.confidence_floor
                          if self.predictor is not None else None)),
            },
        }
        if self.config.shard is not None:
            doc["shard"] = self.config.shard
        return doc

    def _metrics_document(self) -> dict:
        doc = {
            "uptime_s": time.monotonic() - self._started_at,
            "queue_depth": self.batcher.queue_depth,
            "in_flight": self.batcher.in_flight,
            "metrics": self.engine.metrics.snapshot(),
            "cache": self.engine.cache_stats(),
            "frame_cache": {"entries": len(self._frame_cache),
                            "capacity": self.config.frame_cache},
            "batch_config": {
                "max_batch": self.config.batch.max_batch,
                "deadline_s": self.config.batch.deadline_s,
                "queue_limit": self.config.batch.queue_limit,
                "threads": self.config.batch.threads,
                "workers": self.config.batch.workers,
            },
        }
        if self.config.shard is not None:
            doc["shard"] = self.config.shard
        return doc

def run_server(config: ServeConfig | None = None,
               engine: AnalysisEngine | None = None) -> int:
    """Blocking entry point for ``python -m repro serve``."""
    server = AnalysisServer(config, engine)
    try:
        return asyncio.run(server.run())
    except KeyboardInterrupt:
        return 0

class ServerThread:
    """A live server on a daemon thread (tests and the benchmark harness).

    ::

        with ServerThread(config) as handle:
            client = ServeClient("127.0.0.1", handle.port)
    """

    def __init__(self, config: ServeConfig | None = None,
                 engine: AnalysisEngine | None = None):
        self.server = AnalysisServer(config, engine)
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._main, daemon=True,
                                        name="repro-serve-thread")
        self._error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    @property
    def engine(self) -> AnalysisEngine:
        return self.server.engine

    def _main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as err:  # surface startup failures to start()
            self._error = err
            self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server._shutdown.wait()
        await self.server.shutdown()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        if self.server.port is None:
            raise RuntimeError("server did not come up within 30s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
