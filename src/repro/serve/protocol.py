"""The wire protocol of the analysis service: JSON in, JSON out.

One module owns every request/response shape so the server, the client,
and the tests agree by construction:

* :func:`parse_request` -- decode and validate a ``POST /v1/<verb>`` body
  into a :class:`RequestSpec` (nest spec in any
  :func:`repro.api.coerce_nest` shape, machine preset name, engine
  parameters, and -- for ``transform`` -- an optional explicit unroll
  vector);
* ``*_payload`` builders -- JSON-ready success bodies for each verb,
  every :class:`~fractions.Fraction` flattened to ``float``;
* :func:`error_payload` / :class:`ProtocolError` -- the structured error
  envelope ``{"ok": false, "error": {"type", "message"}}``, with
  :func:`status_for_resolution` mapping
  :class:`~repro.api.NestResolutionError` kinds onto HTTP statuses (parse
  failures are the client's fault, 400; unknown kernels are absent
  resources, 404).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.api import NestResolutionError
from repro.engine import NestArtifacts
from repro.ir.nodes import LoopNest
from repro.ir.printer import format_nest
from repro.machine.model import MachineModel
from repro.unroll.optimize import OptimizationResult
from repro.unroll.space import DEFAULT_BOUND
from repro.unroll.transform import UnrolledNest

__all__ = [
    "KINDS",
    "ProtocolError",
    "RequestSpec",
    "analyze_payload",
    "error_payload",
    "optimize_payload",
    "parse_request",
    "status_for_resolution",
    "transform_payload",
]

#: The API verbs the service understands (the ``/v1/<kind>`` routes).
KINDS = ("analyze", "optimize", "transform")

#: Engine parameters a request may override, with their coercions.
_PARAM_TYPES = {
    "bound": int,
    "max_loops": int,
    "include_cache": bool,
    "trip": int,
}

class ProtocolError(Exception):
    """A request the protocol rejects, carrying its HTTP diagnosis."""

    def __init__(self, status: int, error_type: str, message: str):
        super().__init__(message)
        self.status = status
        self.error_type = error_type

@dataclass
class RequestSpec:
    """A validated API request, ready for coercion and dispatch."""

    kind: str
    nest: object  # any coerce_nest shape: name, source, or serialized dict
    machine: str
    params: dict = field(default_factory=dict)
    unroll: tuple[int, ...] | None = None  # transform only

    def params_key(self) -> tuple:
        """The hashable parameter facet of the coalescing key."""
        return tuple(sorted(self.params.items()))

def parse_request(kind: str, body: bytes,
                  default_machine: str = "alpha") -> RequestSpec:
    """Decode one ``POST /v1/<kind>`` body; raises :class:`ProtocolError`
    with a 400 diagnosis for anything malformed."""
    if kind not in KINDS:
        raise ProtocolError(404, "not_found", f"unknown verb {kind!r}")
    try:
        doc = json.loads(body.decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(400, "bad_request",
                            f"body is not valid JSON: {err}") from None
    if not isinstance(doc, dict):
        raise ProtocolError(400, "bad_request",
                            "body must be a JSON object")
    nest = doc.get("nest")
    if nest is None or not isinstance(nest, (str, dict)):
        raise ProtocolError(
            400, "bad_request",
            "'nest' is required: a kernel name, DO-loop source, or a "
            "serialized nest object {'source': ..., 'name': ...}")
    machine = doc.get("machine", default_machine)
    if not isinstance(machine, str):
        raise ProtocolError(400, "bad_request",
                            "'machine' must be a preset name string")
    params: dict = {}
    for name, cast in _PARAM_TYPES.items():
        if name not in doc:
            continue
        value = doc[name]
        if isinstance(value, bool) and cast is not bool:
            raise ProtocolError(400, "bad_request",
                                f"{name!r} must be an integer")
        try:
            params[name] = cast(value)
        except (TypeError, ValueError):
            raise ProtocolError(400, "bad_request",
                                f"{name!r} must be {cast.__name__}") from None
    if "bound" in params and not 1 <= params["bound"] <= 64:
        raise ProtocolError(400, "bad_request",
                            "'bound' must be between 1 and 64")
    unroll = None
    if kind == "transform" and doc.get("unroll") is not None:
        raw = doc["unroll"]
        if (not isinstance(raw, list) or not raw
                or not all(isinstance(u, int) and not isinstance(u, bool)
                           and u >= 0 for u in raw)):
            raise ProtocolError(400, "bad_request",
                                "'unroll' must be a list of non-negative "
                                "integers")
        unroll = tuple(raw)
    unknown = set(doc) - {"nest", "machine", "unroll"} - set(_PARAM_TYPES)
    if unknown:
        raise ProtocolError(400, "bad_request",
                            f"unknown field(s): {', '.join(sorted(unknown))}")
    return RequestSpec(kind=kind, nest=nest, machine=machine, params=params,
                       unroll=unroll)

# -- response bodies ----------------------------------------------------------

def analyze_payload(nest: LoopNest, machine: MachineModel,
                    artifacts: NestArtifacts) -> dict:
    return {
        "ok": True,
        "kind": "analyze",
        "nest": nest.name,
        "machine": machine.name,
        "structural_key": artifacts.key,
        "depth": nest.depth,
        "dependences": len(artifacts.graph),
        "safety": list(artifacts.safety),
        "locality": [float(score) for score in artifacts.locality],
        "ugs_groups": len(artifacts.ugs),
        "line_size": artifacts.line_size,
    }

def optimize_payload(nest: LoopNest, machine: MachineModel,
                     result: OptimizationResult) -> dict:
    return {
        "ok": True,
        "kind": "optimize",
        "nest": nest.name,
        "machine": machine.name,
        "structural_key": nest.structural_key(),
        "unroll": list(result.unroll),
        "balance": float(result.balance),
        "machine_balance": float(machine.balance),
        "objective": float(result.objective),
        "feasible": result.feasible,
        "registers": float(result.tables.point(result.unroll).registers),
        "candidates": list(result.candidates),
        "safety": list(result.safety),
    }

def transform_payload(nest: LoopNest, machine: MachineModel,
                      unrolled: UnrolledNest) -> dict:
    return {
        "ok": True,
        "kind": "transform",
        "nest": nest.name,
        "machine": machine.name,
        "structural_key": nest.structural_key(),
        "unroll": list(unrolled.unroll),
        "copies": unrolled.copies,
        "source": format_nest(unrolled.main),
        "original": format_nest(unrolled.original),
    }

# -- error envelope -----------------------------------------------------------

#: HTTP status for each :class:`NestResolutionError` kind.
_RESOLUTION_STATUS = {
    "parse": (400, "parse_error"),
    "unknown": (404, "unknown_kernel"),
    "io": (400, "io_error"),
    "invalid": (400, "bad_request"),
}

def status_for_resolution(err: NestResolutionError) -> tuple[int, str]:
    """``(status, error_type)`` for a nest that failed to resolve."""
    kind = getattr(err, "kind", "invalid")
    return _RESOLUTION_STATUS.get(kind, (400, "bad_request"))

def error_payload(error_type: str, message: str) -> dict:
    return {"ok": False, "error": {"type": error_type, "message": message}}

#: Default engine parameters, echoed by ``GET /healthz`` so clients can
#: see what an empty request body means.
DEFAULT_PARAMS = {"bound": DEFAULT_BOUND, "max_loops": 2,
                  "include_cache": True, "trip": 100}
