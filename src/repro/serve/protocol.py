"""The wire protocol of the analysis service (v2): one module, two
negotiated encodings.

One module owns every request/response/error shape so the server, the
cluster router, the client, and the tests agree by construction:

* **JSON** (``application/json``, the v1 encoding, kept verbatim for
  compatibility) -- :func:`parse_request` decodes a ``POST /v1/<verb>``
  body into a :class:`RequestSpec`; the ``*_payload`` builders produce
  JSON-ready success bodies;
* **binary frames** (``application/x-repro-frame``, the v2 hot path) --
  a length-prefixed, struct-packed header carrying the verb, a
  pre-computed structural key, and a machine-preset id, followed by a
  msgpack-style payload (:func:`pack_obj`/:func:`unpack_obj`, stdlib
  ``struct`` only).  :func:`peek_frame` reads the header without
  touching the payload, which is how the cluster router routes and the
  server's warm fast path answers without parsing a body;
* **one error schema** for both encodings and both layers (server and
  router): ``{"ok": false, "error": {"code", "kind", "message",
  "retryable", "retry_after", "type"}}`` built by :func:`error_payload`
  (``type`` is the legacy v1 alias of ``code``), with
  :func:`status_for_resolution` mapping
  :class:`~repro.api.NestResolutionError` kinds onto it (parse failures
  are the client's fault, 400; unknown kernels are absent resources,
  404).

See docs/WIRE.md for the byte-level layout and the compatibility policy.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field

from repro.api import MACHINES, NestResolutionError
from repro.engine import NestArtifacts
from repro.ir.nodes import LoopNest
from repro.ir.printer import format_nest
from repro.machine.model import MachineModel
from repro.unroll.optimize import OptimizationResult
from repro.unroll.space import DEFAULT_BOUND
from repro.unroll.transform import UnrolledNest

__all__ = [
    "CONTENT_TYPE_FRAME",
    "CONTENT_TYPE_JSON",
    "FLAG_HAS_KEY",
    "FLAG_TIER_AUTO",
    "FLAG_TIER_FAST",
    "FRAME_ERROR",
    "FRAME_REQUEST",
    "FRAME_RESPONSE",
    "Frame",
    "KINDS",
    "MACHINE_IDS",
    "MACHINE_NAMES",
    "ProtocolError",
    "RequestSpec",
    "TIERS",
    "WIRE_VERSION",
    "analyze_payload",
    "decode_frame",
    "encode_request_frame",
    "encode_response_frame",
    "error_payload",
    "optimize_payload",
    "pack_obj",
    "parse_frame_request",
    "parse_request",
    "predict_payload",
    "peek_frame",
    "request_cache_key",
    "spec_from_document",
    "status_for_resolution",
    "transform_payload",
    "unpack_obj",
]

#: The API verbs the service understands (the ``/v1/<kind>`` routes and
#: the frame header's kind codes).
KINDS = ("analyze", "optimize", "transform")

#: Serving tiers an optimize request may ask for.  ``exact`` (and an
#: omitted tier, which is wire-identical to the pre-tier protocol) runs
#: the full table search; ``fast`` answers from the learned predictor
#: (docs/PREDICT.md); ``auto`` serves fast when the model is confident
#: and falls back to exact otherwise.
TIERS = ("exact", "fast", "auto")

#: Content types of the two negotiated encodings.
CONTENT_TYPE_JSON = "application/json"
CONTENT_TYPE_FRAME = "application/x-repro-frame"

#: Wire protocol generation; bumped only on incompatible frame changes.
WIRE_VERSION = 2

#: Engine parameters a request may override, with their coercions.
#: ``profile`` (analyze only) asks for the reuse-distance profile
#: (docs/REUSE.md) as an extra ``reuse_profile`` response field;
#: ``simd`` (optimize only) switches the search to the SLP lane cost
#: objective and attaches the pack report (docs/VECTORIZE.md) as an
#: extra ``simd`` response field.  Requests that omit them get the
#: frozen v1 bodies byte-for-byte.
_PARAM_TYPES = {
    "bound": int,
    "max_loops": int,
    "include_cache": bool,
    "trip": int,
    "profile": bool,
    "simd": bool,
}

class ProtocolError(Exception):
    """A request the protocol rejects, carrying its HTTP diagnosis.

    Every rejection -- malformed JSON, malformed frame, overload, an
    unknown kernel -- becomes one of these, and :func:`error_payload`
    turns it into the one error schema both layers return.
    """

    def __init__(self, status: int, error_type: str, message: str,
                 retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.retry_after = retry_after

    def payload(self) -> dict:
        return error_payload(self.error_type, str(self),
                             retry_after=self.retry_after)

@dataclass
class RequestSpec:
    """A validated API request, ready for coercion and dispatch."""

    kind: str
    nest: object  # any coerce_nest shape: name, source, or serialized dict
    machine: str
    params: dict = field(default_factory=dict)
    unroll: tuple[int, ...] | None = None  # transform only
    #: ``None`` when the request did not name a tier -- the pre-tier
    #: request space, answered (and echoed) exactly as before.
    tier: str | None = None

    def params_key(self) -> tuple:
        """The hashable parameter facet of the coalescing key."""
        return tuple(sorted(self.params.items()))

def parse_request(kind: str, body: bytes,
                  default_machine: str = "alpha") -> RequestSpec:
    """Decode one ``POST /v1/<kind>`` JSON body; raises
    :class:`ProtocolError` with a 400 diagnosis for anything malformed."""
    if kind not in KINDS:
        raise ProtocolError(404, "not_found", f"unknown verb {kind!r}")
    try:
        doc = json.loads(body.decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(400, "bad_request",
                            f"body is not valid JSON: {err}") from None
    return spec_from_document(kind, doc, default_machine)

def spec_from_document(kind: str, doc: object,
                       default_machine: str = "alpha") -> RequestSpec:
    """Validate one decoded request document (either encoding) into a
    :class:`RequestSpec`; both :func:`parse_request` and
    :func:`parse_frame_request` funnel through here so the two wire
    encodings accept exactly the same request space."""
    if not isinstance(doc, dict):
        raise ProtocolError(400, "bad_request",
                            "body must be a JSON object")
    nest = doc.get("nest")
    if nest is None or not isinstance(nest, (str, dict)):
        raise ProtocolError(
            400, "bad_request",
            "'nest' is required: a kernel name, DO-loop source, or a "
            "serialized nest object {'source': ..., 'name': ...}")
    machine = doc.get("machine", default_machine)
    if not isinstance(machine, str):
        raise ProtocolError(400, "bad_request",
                            "'machine' must be a preset name string")
    params: dict = {}
    for name, cast in _PARAM_TYPES.items():
        if name not in doc:
            continue
        value = doc[name]
        if isinstance(value, bool) and cast is not bool:
            raise ProtocolError(400, "bad_request",
                                f"{name!r} must be an integer")
        try:
            params[name] = cast(value)
        except (TypeError, ValueError):
            raise ProtocolError(400, "bad_request",
                                f"{name!r} must be {cast.__name__}") from None
    if "bound" in params and not 1 <= params["bound"] <= 64:
        raise ProtocolError(400, "bad_request",
                            "'bound' must be between 1 and 64")
    if "profile" in params and kind != "analyze":
        raise ProtocolError(400, "bad_request",
                            "'profile' applies only to analyze requests")
    if "simd" in params and kind != "optimize":
        raise ProtocolError(400, "bad_request",
                            "'simd' applies only to optimize requests")
    tier = doc.get("tier")
    if tier is not None:
        if not isinstance(tier, str) or tier not in TIERS:
            raise ProtocolError(
                400, "bad_request",
                f"'tier' must be one of {', '.join(TIERS)}")
        if tier != "exact" and kind != "optimize":
            raise ProtocolError(
                400, "bad_request",
                f"tier={tier!r} applies only to optimize requests")
    unroll = None
    if kind == "transform" and doc.get("unroll") is not None:
        raw = doc["unroll"]
        if (not isinstance(raw, list) or not raw
                or not all(isinstance(u, int) and not isinstance(u, bool)
                           and u >= 0 for u in raw)):
            raise ProtocolError(400, "bad_request",
                                "'unroll' must be a list of non-negative "
                                "integers")
        unroll = tuple(raw)
    unknown = (set(doc) - {"nest", "machine", "unroll", "tier"}
               - set(_PARAM_TYPES))
    if unknown:
        raise ProtocolError(400, "bad_request",
                            f"unknown field(s): {', '.join(sorted(unknown))}")
    return RequestSpec(kind=kind, nest=nest, machine=machine, params=params,
                       unroll=unroll, tier=tier)

# -- response bodies ----------------------------------------------------------

def analyze_payload(nest: LoopNest, machine: MachineModel,
                    artifacts: NestArtifacts, profile=None) -> dict:
    """The analyze response body.  ``profile`` (a
    :class:`~repro.reuse.profile.NestReuseProfile`) is attached only when
    the request asked for it via ``"profile": true`` -- requests that
    don't stay byte-identical to the frozen v1 body."""
    payload = {
        "ok": True,
        "kind": "analyze",
        "nest": nest.name,
        "machine": machine.name,
        "structural_key": artifacts.key,
        "depth": nest.depth,
        "dependences": len(artifacts.graph),
        "safety": list(artifacts.safety),
        "locality": [float(score) for score in artifacts.locality],
        "ugs_groups": len(artifacts.ugs),
        "line_size": artifacts.line_size,
    }
    if profile is not None:
        payload["reuse_profile"] = profile.to_dict()
    return payload

def optimize_payload(nest: LoopNest, machine: MachineModel,
                     result: OptimizationResult, simd=None) -> dict:
    """The optimize response body.  ``simd`` (a
    :class:`repro.simd.SimdReport`, attached only when the request set
    ``"simd": true``) adds the pack report; its absence keeps the frozen
    v1 body byte-for-byte."""
    payload = {
        "ok": True,
        "kind": "optimize",
        "nest": nest.name,
        "machine": machine.name,
        "structural_key": nest.structural_key(),
        "unroll": list(result.unroll),
        "balance": float(result.balance),
        "machine_balance": float(machine.balance),
        "objective": float(result.objective),
        "feasible": result.feasible,
        "registers": float(result.tables.point(result.unroll).registers),
        "candidates": list(result.candidates),
        "safety": list(result.safety),
    }
    if simd is not None:
        payload["simd"] = simd.to_dict()
    return payload

def predict_payload(nest: LoopNest, machine: MachineModel,
                    prediction) -> dict:
    """The ``tier=fast`` optimize response: the predicted unroll vector
    plus model provenance.  No balance/objective/registers fields -- the
    fast tier never builds the tables that define them; clients that
    need those ask ``tier=exact``."""
    return {
        "ok": True,
        "kind": "optimize",
        "nest": nest.name,
        "machine": machine.name,
        "structural_key": nest.structural_key(),
        "unroll": list(prediction.unroll),
        "tier": "fast",
        "confidence": float(prediction.confidence),
        "model_id": prediction.model_id,
    }

def transform_payload(nest: LoopNest, machine: MachineModel,
                      unrolled: UnrolledNest) -> dict:
    return {
        "ok": True,
        "kind": "transform",
        "nest": nest.name,
        "machine": machine.name,
        "structural_key": nest.structural_key(),
        "unroll": list(unrolled.unroll),
        "copies": unrolled.copies,
        "source": format_nest(unrolled.main),
        "original": format_nest(unrolled.original),
    }

# -- error envelope -----------------------------------------------------------

#: HTTP status for each :class:`NestResolutionError` kind.
_RESOLUTION_STATUS = {
    "parse": (400, "parse_error"),
    "unknown": (404, "unknown_kernel"),
    "io": (400, "io_error"),
    "invalid": (400, "bad_request"),
}

def status_for_resolution(err: NestResolutionError) -> tuple[int, str]:
    """``(status, error code)`` for a nest that failed to resolve."""
    kind = getattr(err, "kind", "invalid")
    return _RESOLUTION_STATUS.get(kind, (400, "bad_request"))

#: The error catalogue: every ``code`` the service emits, with its coarse
#: category and whether a well-behaved client should retry.  Codes not
#: listed default to a non-retryable client error.
ERROR_CATALOG = {
    "bad_request": ("client", False),
    "parse_error": ("client", False),
    "io_error": ("client", False),
    "bad_frame": ("client", False),
    "unsupported_media_type": ("client", False),
    "payload_too_large": ("client", False),
    "method_not_allowed": ("client", False),
    "not_found": ("not_found", False),
    "unknown_kernel": ("not_found", False),
    "unknown_machine": ("client", False),
    "overloaded": ("capacity", True),
    "timeout": ("timeout", True),
    "shutting_down": ("unavailable", True),
    "no_workers": ("unavailable", True),
    "worker_unavailable": ("unavailable", True),
    "internal": ("server", False),
}

def error_payload(error_type: str, message: str, *,
                  retry_after: float | None = None) -> dict:
    """The one error schema both layers return in both encodings.

    ``code`` is the stable machine-readable identifier, ``kind`` its
    coarse category, ``retryable`` tells clients whether backing off and
    retrying can help (``retry_after`` suggests how long, in seconds).
    ``type`` duplicates ``code`` for v1 clients and is frozen forever.
    """
    kind, retryable = ERROR_CATALOG.get(error_type, ("client", False))
    return {"ok": False, "error": {
        "type": error_type,
        "code": error_type,
        "kind": kind,
        "message": message,
        "retryable": retryable,
        "retry_after": retry_after,
    }}

#: Default engine parameters, echoed by ``GET /healthz`` so clients can
#: see what an empty request body means.
DEFAULT_PARAMS = {"bound": DEFAULT_BOUND, "max_loops": 2,
                  "include_cache": True, "trip": 100}

# -- packed payloads (the binary encoding's object codec) ---------------------

_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_MAX_DEPTH = 32

def pack_obj(obj: object) -> bytes:
    """Encode one JSON-shaped value (None/bool/int/float/str/bytes/list/
    dict-with-str-keys) into the deterministic tagged binary form.

    Dict keys are emitted sorted, so equal documents always produce equal
    bytes -- the property the server's encoded-response cache and the
    round-trip tests rely on.
    """
    out = bytearray()
    _pack_into(obj, out, 0)
    return bytes(out)

def _pack_into(obj: object, out: bytearray, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise ValueError("object too deeply nested to pack")
    if obj is None:
        out += b"N"
    elif obj is True:
        out += b"T"
    elif obj is False:
        out += b"F"
    elif isinstance(obj, int):
        try:
            out += b"i" + _I64.pack(obj)
        except struct.error:
            raise ValueError(f"integer out of int64 range: {obj}") from None
    elif isinstance(obj, float):
        out += b"f" + _F64.pack(obj)
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out += b"s" + _U32.pack(len(raw)) + raw
    elif isinstance(obj, bytes):
        out += b"b" + _U32.pack(len(obj)) + obj
    elif isinstance(obj, (list, tuple)):
        out += b"l" + _U32.pack(len(obj))
        for item in obj:
            _pack_into(item, out, depth + 1)
    elif isinstance(obj, dict):
        keys = sorted(obj)
        if any(not isinstance(key, str) for key in keys):
            raise ValueError("packed dict keys must be strings")
        out += b"d" + _U32.pack(len(keys))
        for key in keys:
            raw = key.encode("utf-8")
            out += b"s" + _U32.pack(len(raw)) + raw
            _pack_into(obj[key], out, depth + 1)
    else:
        raise ValueError(f"cannot pack {type(obj).__name__!s}")

def _bad_frame(message: str) -> ProtocolError:
    return ProtocolError(400, "bad_frame", message)

def unpack_obj(data: bytes) -> object:
    """Decode :func:`pack_obj` output; any malformed input -- truncation,
    unknown tags, trailing garbage -- raises a typed 400 ``bad_frame``
    :class:`ProtocolError`, never an uncaught exception."""
    value, offset = _unpack_from(data, 0, 0)
    if offset != len(data):
        raise _bad_frame(f"{len(data) - offset} trailing byte(s) after "
                         "packed payload")
    return value

def _take(data: bytes, offset: int, count: int) -> tuple[bytes, int]:
    end = offset + count
    if end > len(data):
        raise _bad_frame("truncated packed payload")
    return data[offset:end], end

def _unpack_from(data: bytes, offset: int,
                 depth: int) -> tuple[object, int]:
    if depth > _MAX_DEPTH:
        raise _bad_frame("packed payload nested too deeply")
    tag, offset = _take(data, offset, 1)
    if tag == b"N":
        return None, offset
    if tag == b"T":
        return True, offset
    if tag == b"F":
        return False, offset
    if tag == b"i":
        raw, offset = _take(data, offset, 8)
        return _I64.unpack(raw)[0], offset
    if tag == b"f":
        raw, offset = _take(data, offset, 8)
        return _F64.unpack(raw)[0], offset
    if tag in (b"s", b"b"):
        raw, offset = _take(data, offset, 4)
        raw, offset = _take(data, offset, _U32.unpack(raw)[0])
        if tag == b"b":
            return raw, offset
        try:
            return raw.decode("utf-8"), offset
        except UnicodeDecodeError as err:
            raise _bad_frame(f"packed string is not UTF-8: {err}") from None
    if tag == b"l":
        raw, offset = _take(data, offset, 4)
        items = []
        for _ in range(_U32.unpack(raw)[0]):
            item, offset = _unpack_from(data, offset, depth + 1)
            items.append(item)
        return items, offset
    if tag == b"d":
        raw, offset = _take(data, offset, 4)
        doc = {}
        for _ in range(_U32.unpack(raw)[0]):
            key, offset = _unpack_from(data, offset, depth + 1)
            if not isinstance(key, str):
                raise _bad_frame("packed dict key is not a string")
            doc[key], offset = _unpack_from(data, offset, depth + 1)
        return doc, offset
    raise _bad_frame(f"unknown pack tag {tag!r}")

# -- binary frames ------------------------------------------------------------

#: Stable machine-preset ids for the frame header (0 = named in the
#: payload).  Frozen: ids are never reused or renumbered.
MACHINE_IDS = {"alpha": 1, "pa": 2, "prefetch": 3, "mips": 4, "future": 5}
MACHINE_NAMES = {mid: name for name, mid in MACHINE_IDS.items()}

FRAME_MAGIC = b"RPF2"
FRAME_REQUEST = 0
FRAME_RESPONSE = 1
FRAME_ERROR = 2

#: Header flag bits.  The tier bits let the router and the server's
#: warm path see the requested tier without unpacking the payload; a
#: frame with neither tier bit set is byte-identical to the pre-tier
#: encoding.
FLAG_HAS_KEY = 0x01
FLAG_TIER_FAST = 0x02
FLAG_TIER_AUTO = 0x04

_TIER_FLAGS = {"fast": FLAG_TIER_FAST, "auto": FLAG_TIER_AUTO}
_FLAG_TIERS = {flag: tier for tier, flag in _TIER_FLAGS.items()}

_KIND_CODES = {kind: code for code, kind in enumerate(KINDS, start=1)}
_KIND_NAMES = {code: kind for kind, code in _KIND_CODES.items()}

#: magic, version, frame type, kind code, flags, machine id,
#: structural key (raw sha-256, zeros when absent), payload length.
_HEADER = struct.Struct("!4sBBBBB32sI")
_ZERO_KEY = b"\x00" * 32

@dataclass(frozen=True)
class Frame:
    """One decoded frame header plus its (still packed) payload bytes."""

    ftype: int
    kind_code: int
    flags: int
    machine_id: int
    key_raw: bytes  # 32 raw digest bytes, or b"" when the flag is unset
    payload_bytes: bytes

    @property
    def kind(self) -> str | None:
        return _KIND_NAMES.get(self.kind_code)

    @property
    def machine(self) -> str | None:
        return MACHINE_NAMES.get(self.machine_id)

    @property
    def key(self) -> str | None:
        return self.key_raw.hex() if self.key_raw else None

    def payload(self) -> object:
        return unpack_obj(self.payload_bytes)

def _encode_frame(ftype: int, kind_code: int, machine_id: int,
                  key: str | bytes | None, payload: object,
                  extra_flags: int = 0) -> bytes:
    if isinstance(key, str):
        key = bytes.fromhex(key)
    if key is not None and len(key) != 32:
        raise ValueError("structural key must be 32 raw bytes")
    flags = (FLAG_HAS_KEY if key is not None else 0) | extra_flags
    body = pack_obj(payload)
    header = _HEADER.pack(FRAME_MAGIC, WIRE_VERSION, ftype, kind_code,
                          flags, machine_id, key or _ZERO_KEY, len(body))
    return _U32.pack(len(header) + len(body)) + header + body

def encode_request_frame(kind: str, doc: dict, *,
                         key: str | bytes | None = None,
                         machine: str | None = None) -> bytes:
    """Encode one request as a binary frame.

    ``machine`` (a preset name) rides in the one-byte header slot when it
    has a registered id -- and is then *omitted* from the payload --
    otherwise it stays a payload field.  ``key`` is the nest's structural
    key (hex or raw); shipping it lets the router route and the server
    fast-path without parsing the payload.  A ``fast``/``auto`` tier in
    the document moves into the header flag bits the same way (an
    explicit ``exact`` stays a payload field); a tier-less document
    encodes byte-identically to the pre-tier wire format.
    """
    code = _KIND_CODES.get(kind)
    if code is None:
        raise ValueError(f"unknown verb {kind!r}")
    machine_id = 0
    if machine is not None:
        machine_id = MACHINE_IDS.get(machine, 0)
        doc = dict(doc)
        if machine_id:
            doc.pop("machine", None)
        else:
            doc["machine"] = machine
    tier_flag = _TIER_FLAGS.get(doc.get("tier"), 0)
    if tier_flag:
        doc = dict(doc)
        doc.pop("tier")
    return _encode_frame(FRAME_REQUEST, code, machine_id, key, doc,
                         extra_flags=tier_flag)

def encode_response_frame(payload: dict, *, error: bool = False,
                          kind: str | None = None,
                          key: str | bytes | None = None) -> bytes:
    """Encode one response (or error) document as a binary frame."""
    ftype = FRAME_ERROR if error else FRAME_RESPONSE
    code = _KIND_CODES.get(kind, 0) if kind else 0
    return _encode_frame(ftype, code, 0, key, payload)

def peek_frame(body: bytes) -> Frame:
    """Decode and validate a frame *header*, leaving the payload packed.

    This is the router's whole parsing cost for a keyed request, and the
    server's on the warm path.  Raises ``bad_frame``
    :class:`ProtocolError` (HTTP 400) for anything malformed.
    """
    if len(body) < _U32.size + _HEADER.size:
        raise _bad_frame(f"frame too short ({len(body)} bytes)")
    (total,) = _U32.unpack_from(body, 0)
    if total != len(body) - _U32.size:
        raise _bad_frame(f"frame length prefix says {total} bytes but "
                         f"{len(body) - _U32.size} follow")
    magic, version, ftype, kind_code, flags, machine_id, key_raw, plen = \
        _HEADER.unpack_from(body, _U32.size)
    if magic != FRAME_MAGIC:
        raise _bad_frame(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise _bad_frame(f"unsupported wire version {version} "
                         f"(this server speaks {WIRE_VERSION})")
    if ftype not in (FRAME_REQUEST, FRAME_RESPONSE, FRAME_ERROR):
        raise _bad_frame(f"unknown frame type {ftype}")
    payload = body[_U32.size + _HEADER.size:]
    if plen != len(payload):
        raise _bad_frame(f"header says {plen} payload bytes but "
                         f"{len(payload)} follow")
    has_key = bool(flags & FLAG_HAS_KEY)
    if has_key and key_raw == _ZERO_KEY:
        raise _bad_frame("key flag set but structural key is all zeros")
    return Frame(ftype=ftype, kind_code=kind_code, flags=flags,
                 machine_id=machine_id,
                 key_raw=key_raw if has_key else b"",
                 payload_bytes=payload)

def decode_frame(body: bytes) -> tuple[Frame, object]:
    """:func:`peek_frame` plus the unpacked payload document."""
    frame = peek_frame(body)
    return frame, frame.payload()

def parse_frame_request(body: bytes,
                        default_machine: str = "alpha") -> \
        tuple[RequestSpec, Frame]:
    """Decode and validate one binary request frame into the same
    :class:`RequestSpec` the JSON path produces."""
    frame, doc = decode_frame(body)
    if frame.ftype != FRAME_REQUEST:
        raise _bad_frame("expected a request frame")
    kind = frame.kind
    if kind is None:
        raise _bad_frame(f"unknown verb code {frame.kind_code}")
    if not isinstance(doc, dict):
        raise _bad_frame("frame payload must be a packed object")
    if frame.machine_id and "machine" not in doc:
        name = frame.machine
        if name is None:
            raise _bad_frame(f"unknown machine id {frame.machine_id}")
        doc = dict(doc, machine=name)
    tier_bits = frame.flags & (FLAG_TIER_FAST | FLAG_TIER_AUTO)
    if tier_bits:
        if tier_bits == (FLAG_TIER_FAST | FLAG_TIER_AUTO):
            raise _bad_frame("both tier flag bits are set")
        if "tier" in doc:
            raise _bad_frame("tier set in both header flags and payload")
        doc = dict(doc, tier=_FLAG_TIERS[tier_bits])
    spec = spec_from_document(kind, doc, default_machine)
    return spec, frame

def request_cache_key(frame: Frame) -> tuple:
    """The server's encoded-response cache key for a request frame.

    Deliberately *excludes* the client-supplied structural key: the
    response is fully determined by the verb, the machine slot, the tier
    flag bits, and the payload bytes, so a client lying in the key
    header can never poison an entry another client would hit.  The tier
    bits *are* included -- a ``tier=fast`` response must never be served
    to an exact request for the same payload, or vice versa.
    """
    digest = hashlib.sha256(frame.payload_bytes).digest()
    tier_bits = frame.flags & (FLAG_TIER_FAST | FLAG_TIER_AUTO)
    return (frame.kind_code, frame.machine_id, tier_bits, digest)
