"""Shared HTTP/1.1 primitives of the serving stack.

One module owns the request/response byte-level plumbing so the
single-process server (:mod:`repro.serve.server`) and the cluster router
(:mod:`repro.cluster.router`) speak byte-identical HTTP by construction:

* :class:`Request` / :func:`read_request` -- bounded request parsing
  (request line, capped header count, ``content-length`` body with a
  caller-supplied limit);
* :func:`json_response` / :func:`frame_response` / :func:`text_response`
  / :func:`raw_response` -- response serialization with keep-alive
  bookkeeping and extra headers (``Retry-After``, shard tags, ...);
* :func:`is_frame_request` / :func:`negotiated_error` -- the v2 wire
  content negotiation: a request that arrived as a binary frame
  (``application/x-repro-frame``) gets its errors back as frames, every
  other request gets JSON, both carrying the one
  :func:`repro.serve.protocol.error_payload` schema;
* :func:`wants_prometheus` -- the ``GET /metrics`` content negotiation
  shared by every metrics endpoint (``?format=prometheus`` wins, else an
  ``Accept`` header that prefers ``text/plain``).

Everything here is transport only; routing and semantics stay with the
callers.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse

__all__ = [
    "REASONS",
    "Request",
    "frame_response",
    "is_frame_request",
    "json_response",
    "negotiated_error",
    "raw_response",
    "read_request",
    "text_response",
    "wants_prometheus",
]

REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: Upper bound on header lines per request (readline bounds each line).
MAX_HEADERS = 256

class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "headers", "body", "keep_alive")

    def __init__(self, method: str, path: str, headers: dict,
                 body: bytes, keep_alive: bool):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive

async def read_request(reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter,
                       max_body: int,
                       error_payload,
                       on_oversized=None) -> Request | None:
    """Parse one request off the stream.

    Malformed requests are answered inline (400/413 with the caller's
    ``error_payload(type, message)`` envelope) and ``None`` is returned;
    ``None`` also means the peer closed the connection.  ``on_oversized``
    is called (no arguments) when a body exceeds ``max_body``, so the
    caller can count the rejection.
    """
    try:
        line = await reader.readline()
    except (ValueError, ConnectionError):
        return None
    if not line or not line.strip():
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        writer.write(json_response(400, error_payload(
            "bad_request", "malformed request line"), close=True))
        await writer.drain()
        return None
    method, path = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS):
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        writer.write(json_response(400, error_payload(
            "bad_request", "too many headers"), close=True))
        await writer.drain()
        return None
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        length = -1
    if length < 0 or length > max_body:
        if on_oversized is not None:
            on_oversized()
        writer.write(json_response(413, error_payload(
            "payload_too_large",
            f"body limit is {max_body} bytes"), close=True))
        await writer.drain()
        return None
    body = await reader.readexactly(length) if length else b""
    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
    return Request(method, path, headers, body, keep_alive)

def json_response(status: int, payload: dict, close: bool = False,
                  headers: dict | None = None) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    return raw_response(status, body, "application/json", close, headers)

def frame_response(status: int, frame: bytes, close: bool = False,
                   headers: dict | None = None) -> bytes:
    """Serialize an already-encoded binary frame as the response body."""
    from repro.serve.protocol import CONTENT_TYPE_FRAME

    return raw_response(status, frame, CONTENT_TYPE_FRAME, close, headers)

def is_frame_request(request: Request) -> bool:
    """Did this request arrive in the binary frame encoding?"""
    from repro.serve.protocol import CONTENT_TYPE_FRAME

    content_type = request.headers.get("content-type", "")
    return content_type.split(";", 1)[0].strip().lower() == \
        CONTENT_TYPE_FRAME

def negotiated_error(request: "Request | None", status: int,
                     error_type: str, message: str,
                     retry_after: float | None = None,
                     close: bool = False,
                     headers: dict | None = None) -> bytes:
    """One error response in the encoding the request arrived in.

    Frame requests get a :data:`~repro.serve.protocol.FRAME_ERROR` frame,
    everything else (including unparsable requests, ``request is None``)
    gets JSON; both carry the same
    :func:`repro.serve.protocol.error_payload` document.
    """
    from repro.serve.protocol import encode_response_frame, error_payload

    payload = error_payload(error_type, message, retry_after=retry_after)
    if request is not None and is_frame_request(request):
        return frame_response(status, encode_response_frame(
            payload, error=True), close, headers)
    return json_response(status, payload, close, headers)

def text_response(status: int, text: str, content_type: str,
                  close: bool = False,
                  headers: dict | None = None) -> bytes:
    return raw_response(status, text.encode("utf-8"), content_type, close,
                        headers)

def raw_response(status: int, body: bytes, content_type: str,
                 close: bool = False,
                 headers: dict | None = None) -> bytes:
    lines = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
             f"content-type: {content_type}",
             f"content-length: {len(body)}",
             f"connection: {'close' if close else 'keep-alive'}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body

def wants_prometheus(headers: dict, query: str) -> bool:
    """``?format=prometheus`` wins; else an ``Accept`` header that
    prefers ``text/plain`` (what Prometheus scrapers send)."""
    params = urllib.parse.parse_qs(query)
    fmt = params.get("format", [""])[-1].lower()
    if fmt:
        return fmt in ("prometheus", "text", "openmetrics")
    accept = headers.get("accept", "")
    return "text/plain" in accept.lower()
