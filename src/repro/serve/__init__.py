"""repro.serve: the compiler-as-a-service layer.

A long-lived asyncio HTTP/1.1 service over the memoized
:class:`~repro.engine.AnalysisEngine`, so one warm set of
structural-key caches answers unroll-and-jam queries for every client:

* :mod:`repro.serve.server` -- the stdlib-only HTTP front end
  (``POST /v1/analyze|optimize|transform``, ``GET /healthz|/metrics``),
  graceful shutdown, request-size limits, per-request timeouts;
* :mod:`repro.serve.batcher` -- dynamic micro-batching with duplicate
  coalescing, a bounded admission queue (429 backpressure), and
  size-or-deadline flushes into the engine;
* :mod:`repro.serve.protocol` -- the JSON wire shapes and structured
  errors;
* :mod:`repro.serve.client` -- a keep-alive client and the load
  generator the benchmark and CI smoke job drive.

Start it with ``python -m repro serve``; see docs/SERVING.md.
"""

from repro.serve.batcher import BatchConfig, MicroBatcher, Overloaded
from repro.serve.protocol import ProtocolError, RequestSpec
from repro.serve.server import (
    AnalysisServer,
    ServeConfig,
    ServerThread,
    run_server,
)

# The client half (ServeClient, run_load, wait_for_server) lives in
# repro.serve.client and is imported from there directly -- keeping it
# out of the package root lets ``python -m repro.serve.client`` run
# without double-importing the module.

__all__ = [
    "AnalysisServer",
    "BatchConfig",
    "MicroBatcher",
    "Overloaded",
    "ProtocolError",
    "RequestSpec",
    "ServeConfig",
    "ServerThread",
    "run_server",
]
