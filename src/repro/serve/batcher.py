"""Dynamic micro-batching with request coalescing and backpressure.

The serving pipeline between the HTTP layer and the
:class:`~repro.engine.AnalysisEngine`:

* **bounded queue** -- :meth:`MicroBatcher.submit` enqueues one job per
  *distinct* coalescing key; when the queue is full it raises
  :class:`Overloaded` and the server answers 429 with a ``Retry-After``
  estimate instead of building an unbounded backlog;
* **coalescing** -- a request whose ``(kind, structural_key, machine,
  params)`` key matches a queued or in-flight job just attaches another
  future to that job, so N identical concurrent requests cost one engine
  computation; completed payloads additionally land in a bounded result
  LRU, so an identical request that arrives *after* its twin finished is
  answered without touching the engine at all;
* **size-or-deadline flush** -- the dispatcher collects jobs until
  ``max_batch`` are waiting or ``deadline_s`` has elapsed since the first,
  then flushes the batch: inline on the thread pool for small batches,
  through the engine's process-pool :meth:`optimize_many` for large
  homogeneous ones;
* **drain** -- :meth:`stop` rejects new work, flushes everything already
  accepted, and only then tears the dispatcher down (the graceful-shutdown
  contract: every accepted request gets a response).

Everything is recorded into the engine's :class:`~repro.engine.metrics.
Metrics` under ``serve.*`` counters, so ``GET /metrics`` exposes one
merged view of the service and the engine beneath it.
"""

from __future__ import annotations

import asyncio
import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import obs
from repro.engine import AnalysisEngine, _LRU
from repro.ir.nodes import LoopNest
from repro.machine.model import MachineModel
from repro.serve import protocol
from repro.unroll.transform import unroll_and_jam

__all__ = ["BatchConfig", "MicroBatcher", "Overloaded"]

@dataclass
class BatchConfig:
    """Knobs of the dispatcher (see docs/SERVING.md for guidance)."""

    max_batch: int = 16         # flush when this many distinct jobs wait
    deadline_s: float = 0.010   # ...or this long after the first arrival
    queue_limit: int = 256      # distinct jobs admitted before 429
    threads: int = 4            # inline executor width
    workers: int = 0            # process-pool size for large flushes (0: off)
    pool_threshold: int = 8     # optimize jobs per flush to engage the pool
    result_cache: int = 512     # completed payloads kept for exact repeats

class Overloaded(Exception):
    """The admission queue is full; retry after ``retry_after_s``."""

    def __init__(self, retry_after_s: int):
        super().__init__(f"queue full; retry after {retry_after_s}s")
        self.retry_after_s = retry_after_s

@dataclass
class _Job:
    """One coalesced unit of engine work and everyone waiting on it."""

    kind: str                      # 'analyze' | 'optimize' | 'transform'
    key: tuple
    nest: LoopNest
    machine: MachineModel
    params: dict
    unroll: tuple[int, ...] | None
    futures: list[asyncio.Future] = field(default_factory=list)
    #: The submitting request's (trace_id, span_id): the engine work this
    #: job triggers is recorded as a child of that request's span, even
    #: though it executes on an executor thread.  Coalesced followers
    #: share the first submitter's trace.
    trace: tuple[str, str] | None = None

class MicroBatcher:
    """The dispatcher; create and :meth:`start` it inside a running loop."""

    def __init__(self, engine: AnalysisEngine,
                 config: BatchConfig | None = None):
        self.engine = engine
        self.config = config if config is not None else BatchConfig()
        self.metrics = engine.metrics
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue[_Job] | None = None
        self._pending: dict[tuple, _Job] = {}
        self._cache = _LRU(self.config.result_cache)
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.threads),
            thread_name_prefix="repro-serve")
        self._task: asyncio.Task | None = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        self._task = self._loop.create_task(self._dispatch(),
                                            name="repro-serve-dispatcher")

    async def stop(self) -> None:
        """Drain: stop admitting, flush everything accepted, tear down."""
        self._closed = True
        while self._pending or (self._queue and not self._queue.empty()):
            await asyncio.sleep(0.005)
        if self._task is not None:
            self._task.cancel()
            await asyncio.gather(self._task, return_exceptions=True)
        self._executor.shutdown(wait=True)

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue else 0

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    # -- admission -----------------------------------------------------------

    def submit(self, kind: str, key: tuple, nest: LoopNest,
               machine: MachineModel, params: dict,
               unroll: tuple[int, ...] | None = None) -> asyncio.Future:
        """Admit one request; returns a future resolving to the JSON-ready
        payload.  Raises :class:`Overloaded` on a full queue and
        :class:`RuntimeError` once the service is draining."""
        assert self._loop is not None and self._queue is not None, \
            "MicroBatcher.submit before start()"
        if self._closed:
            raise RuntimeError("service is shutting down")
        self.metrics.count("serve.requests")
        future = self._loop.create_future()
        cached = self._cache.get(key)
        if cached is not None:
            self.metrics.count("serve.cache.hit")
            future.set_result(cached)
            return future
        job = self._pending.get(key)
        if job is not None:
            self.metrics.count("serve.coalesced")
            job.futures.append(future)
            return future
        job = _Job(kind=kind, key=key, nest=nest, machine=machine,
                   params=params, unroll=unroll, futures=[future],
                   trace=obs.current_context())
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.metrics.count("serve.rejected")
            raise Overloaded(self._retry_after()) from None
        self._pending[key] = job
        return future

    def _retry_after(self) -> int:
        # A full queue clears in roughly queue_limit/max_batch flushes of
        # one deadline each; round up and never advise less than a second.
        flushes = self.config.queue_limit / max(1, self.config.max_batch)
        return max(1, math.ceil(flushes * self.config.deadline_s))

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self) -> None:
        assert self._loop is not None and self._queue is not None
        while True:
            first = await self._queue.get()
            batch = [first]
            deadline = self._loop.time() + self.config.deadline_s
            while len(batch) < self.config.max_batch:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(self._queue.get(),
                                                        remaining))
                except asyncio.TimeoutError:
                    break
            await self._flush(batch)

    async def _flush(self, batch: list[_Job]) -> None:
        assert self._loop is not None
        self.metrics.count("serve.batches")
        self.metrics.count("serve.batched_jobs", len(batch))
        with obs.span("serve.flush", jobs=len(batch)):
            outcomes = await self._execute(batch)
        for job, outcome in zip(batch, outcomes):
            # No awaits between the cache fill, the pending removal, and
            # the future resolution: a submit() for the same key lands
            # either on the pending job above or on the cache below.
            payload, error = outcome
            if error is None:
                self._cache.put(job.key, payload)
            self._pending.pop(job.key, None)
            for future in job.futures:
                if future.done():  # per-request timeout already fired
                    continue
                if error is None:
                    future.set_result(payload)
                else:
                    future.set_exception(error)

    async def _execute(self, batch: list[_Job]) -> list[tuple]:
        """Run every job; returns ``(payload, None)`` or ``(None, error)``
        per job, in batch order."""
        pool_jobs = [job for job in batch if job.kind == "optimize"]
        if (self.config.workers > 1
                and len(pool_jobs) >= self.config.pool_threshold
                and self._poolable(pool_jobs)):
            inline = [job for job in batch if job.kind != "optimize"]
            pooled_task = self._loop.run_in_executor(
                self._executor, self._run_pooled, pool_jobs)
            inline_results = await asyncio.gather(
                *(self._loop.run_in_executor(self._executor,
                                             self._run_job, job)
                  for job in inline))
            pooled_results = await pooled_task
            by_job: dict[int, tuple] = {}
            for job, outcome in zip(inline, inline_results):
                by_job[id(job)] = outcome
            for job, outcome in zip(pool_jobs, pooled_results):
                by_job[id(job)] = outcome
            return [by_job[id(job)] for job in batch]
        return list(await asyncio.gather(
            *(self._loop.run_in_executor(self._executor, self._run_job, job)
              for job in batch)))

    @staticmethod
    def _poolable(jobs: list[_Job]) -> bool:
        """The engine's process pool takes one machine+params per batch.
        ``simd`` jobs stay on the thread path: they carry the pack
        report, which ``optimize_many`` does not produce."""
        head = jobs[0]
        if head.params.get("simd"):
            return False
        return all(job.machine.name == head.machine.name
                   and job.params == head.params for job in jobs[1:])

    # -- the engine calls (executor threads) ---------------------------------

    def _run_job(self, job: _Job) -> tuple:
        # Executor threads do not inherit the event loop's contextvars;
        # re-activate the submitting request's trace context so engine
        # spans nest under the serve.request span that caused them.
        with obs.activate(job.trace), \
                obs.span("serve.execute", kind=job.kind,
                         nest=job.nest.name), \
                self.engine.profiler.profile("serve.flush"):
            try:
                if job.kind == "analyze":
                    params = dict(job.params)
                    want_profile = params.pop("profile", False)
                    artifacts = self.engine.analyze(job.nest, job.machine)
                    profile = None
                    if want_profile:
                        profile = self.engine.reuse_profile(
                            job.nest, job.machine,
                            trip=params.get("trip", 100))
                    return protocol.analyze_payload(job.nest, job.machine,
                                                    artifacts, profile), None
                if job.kind == "optimize":
                    params = dict(job.params)
                    want_simd = params.pop("simd", False)
                    result = self.engine.optimize(job.nest, job.machine,
                                                  vectorize=want_simd,
                                                  **params)
                    simd = None
                    if want_simd:
                        simd = self.engine.simd_report(
                            job.nest, job.machine, result.unroll,
                            trip=params.get("trip", 100))
                    return protocol.optimize_payload(job.nest, job.machine,
                                                     result, simd), None
                unroll = job.unroll
                if unroll is None:
                    result = self.engine.optimize(job.nest, job.machine,
                                                  **job.params)
                    unroll = result.unroll
                unrolled = unroll_and_jam(job.nest, unroll)
                return protocol.transform_payload(job.nest, job.machine,
                                                  unrolled), None
            except Exception as err:
                return None, err

    def _run_pooled(self, jobs: list[_Job]) -> list[tuple]:
        """One large homogeneous flush through the engine's process pool."""
        self.metrics.count("serve.pool_flushes")
        head = jobs[0]
        try:
            with obs.activate(head.trace), \
                    obs.span("serve.pool_flush", jobs=len(jobs)), \
                    self.engine.profiler.profile("serve.flush"):
                report = self.engine.optimize_many(
                    [job.nest for job in jobs], head.machine,
                    workers=self.config.workers, **head.params)
        except Exception as err:
            return [(None, err) for _ in jobs]
        outcomes: list[tuple] = []
        for job, item in zip(jobs, sorted(report.items,
                                          key=lambda it: it.index)):
            if item.ok and item.result is not None:
                outcomes.append((protocol.optimize_payload(
                    job.nest, job.machine, item.result), None))
            else:
                outcomes.append((None, RuntimeError(item.error or
                                                    "batch item failed")))
        return outcomes
