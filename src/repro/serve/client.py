"""The serving stack's client: one class, two transports, polite backoff.

:class:`Client` is the redesigned surface -- ``analyze`` / ``optimize``
/ ``transform`` verbs over a keep-alive ``http.client`` connection
(stdlib only, like the server), with:

* **transport negotiation** -- ``transport="auto"`` (the default) probes
  ``/healthz`` once and speaks the binary frame encoding
  (``POST /v2/frame``, see docs/WIRE.md) when the server advertises wire
  v2, falling back to v1 JSON against older servers; ``"json"`` and
  ``"binary"`` pin the choice;
* **near-free keys** -- on the binary transport the nest is coerced
  once, its cached structural key rides in the frame header (so the
  cluster router routes without parsing the body), and the encoded
  request bytes are cached per spec, so repeats cost a dict hit plus a
  socket write;
* **Retry-After-aware backoff** -- 429 responses are retried with the
  jittered, capped backoff that used to live in the load generator (the
  polite half of the admission-control contract), shared by every verb.

:class:`ServeClient` remains as a deprecated alias, and
:func:`run_load` / :func:`build_workload` / :func:`wait_for_server`
drive workloads for ``benchmarks/bench_serve_throughput.py`` and the CI
smoke job::

    python -m repro.serve.client --port 8787 --requests 100 \\
        --concurrency 8 --duplicates 0.5 --min-2xx 0.99 --json out.json
"""

from __future__ import annotations

import argparse
import http.client
import json
import pathlib
import queue
import random
import socket
import sys
import threading
import time

__all__ = ["Client", "ServeClient", "build_workload", "run_load",
           "wait_for_server", "main"]

TRANSPORTS = ("auto", "json", "binary")

def _retry_after_s(headers: dict) -> float | None:
    """The ``Retry-After`` delay in seconds, or ``None`` when absent or
    unparseable (only delta-seconds form is produced by this service)."""
    value = headers.get("retry-after")
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None

def _freeze(value):
    """A hashable stand-in for a JSON-shaped value (request-cache keys)."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value

class _RawConnection:
    """A keep-alive socket speaking just enough HTTP/1.1 for the binary
    data plane.

    ``http.client`` costs more per exchange than the entire server-side
    frame fast path; this lane writes one pre-assembled request and
    parses status, headers, and a ``content-length`` body -- all this
    service ever sends -- so client overhead stays proportionate to the
    frames it carries.
    """

    def __init__(self, host: str, port: int, timeout: float):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._buffer = b""

    def _connect(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._buffer = b""
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._buffer = b""

    def _read_until(self, sock: socket.socket,
                    marker: bytes) -> bytes:
        while marker not in self._buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer += chunk
        head, _, self._buffer = self._buffer.partition(marker)
        return head

    def _read_exactly(self, sock: socket.socket, count: int) -> bytes:
        while len(self._buffer) < count:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer += chunk
        body, self._buffer = self._buffer[:count], self._buffer[count:]
        return body

    def exchange(self, path: str, body: bytes,
                 content_type: str) -> tuple[int, dict, bytes]:
        sock = self._connect()
        sock.sendall(
            (f"POST {path} HTTP/1.1\r\n"
             f"host: {self.host}\r\n"
             f"content-type: {content_type}\r\n"
             f"content-length: {len(body)}\r\n\r\n").encode("latin-1")
            + body)
        head = self._read_until(sock, b"\r\n\r\n").decode("latin-1")
        lines = head.split("\r\n")
        try:
            status = int(lines[0].split()[1])
        except (IndexError, ValueError):
            raise ConnectionError(f"malformed status line {lines[0]!r}") \
                from None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        raw = self._read_exactly(sock,
                                 int(headers.get("content-length", "0")))
        if headers.get("connection", "keep-alive").lower() == "close":
            self.close()
        return status, headers, raw

class Client:
    """One keep-alive connection to a repro-serve instance (or a cluster
    router); reconnects transparently on failure.

    Every verb returns ``(status, decoded body)`` regardless of the
    transport in use, so callers never see the encoding.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = 60.0, transport: str = "auto",
                 max_retries: int = 4, backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0):
        if transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.transport = transport
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._conn: http.client.HTTPConnection | None = None
        self._raw: _RawConnection | None = None
        self._use_frames: bool | None = None  # resolved on first verb
        self._encoded: dict[tuple, bytes] = {}
        #: Response headers of the last exchange (lower-cased names) --
        #: where ``Retry-After`` and ``x-repro-shard`` are found.
        self.last_headers: dict[str, str] = {}
        #: 429-retry count and final-attempt latency of the last verb
        #: call (what the load generator aggregates).
        self.last_retries = 0
        self.last_attempt_s = 0.0

    # -- plumbing ------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self._raw is not None:
            self._raw.close()
            self._raw = None

    def _exchange_frame(self, encoded: bytes,
                        content_type: str) -> tuple[int, bytes]:
        """One binary exchange on the raw keep-alive lane (one
        transparent reconnect, like the JSON lane)."""
        if self._raw is None:
            self._raw = _RawConnection(self.host, self.port, self.timeout)
        for attempt in (1, 2):
            try:
                status, headers, raw = self._raw.exchange(
                    "/v2/frame", encoded, content_type)
                break
            except (ConnectionError, OSError):
                self._raw.close()
                if attempt == 2:
                    raise
        self.last_headers = headers
        return status, raw

    def _exchange(self, method: str, path: str, body: bytes | None,
                  content_type: str | None) -> tuple[int, bytes]:
        headers = {"content-type": content_type} if body else {}
        for attempt in (1, 2):  # one transparent reconnect
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt == 2:
                    raise
        self.last_headers = {name.lower(): value
                             for name, value in response.getheaders()}
        return response.status, raw

    def request(self, method: str, path: str,
                payload: dict | None = None) -> tuple[int, dict]:
        """One JSON exchange; returns ``(status, decoded-JSON body)``."""
        body = json.dumps(payload).encode("utf-8") if payload is not None \
            else None
        status, raw = self._exchange(method, path, body, "application/json")
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError:
            doc = {"ok": False, "raw": raw.decode("latin-1")}
        return status, doc

    # -- transport negotiation -----------------------------------------------

    def _frames_enabled(self) -> bool:
        if self._use_frames is None:
            if self.transport == "json":
                self._use_frames = False
            elif self.transport == "binary":
                self._use_frames = True
            else:
                from repro.serve.protocol import WIRE_VERSION

                try:
                    status, doc = self.healthz()
                    versions = (doc.get("wire") or {}).get("versions") or []
                    self._use_frames = status == 200 and \
                        WIRE_VERSION in versions
                except (OSError, http.client.HTTPException):
                    self._use_frames = False
        return self._use_frames

    def _encode_frame(self, kind: str, nest, machine: str | None,
                      params: dict) -> bytes | None:
        """The cached binary request bytes for one spec, or ``None`` when
        the nest cannot be resolved locally (the JSON path then carries
        it so the server's diagnosis reaches the caller unchanged)."""
        from repro import api
        from repro.serve import protocol

        # Key the cache on the caller's own spelling of the spec, so a
        # repeat costs one dict probe -- no parse, no hash, no encode.
        try:
            cache_key = (kind, machine, _freeze(nest), _freeze(params))
        except TypeError:
            cache_key = None
        if cache_key is not None:
            encoded = self._encoded.get(cache_key)
            if encoded is not None:
                return encoded
        try:
            resolved = api.coerce_nest(nest)
        except api.NestResolutionError:
            return None
        doc = dict(params, nest=api.serialize_nest(resolved))
        encoded = protocol.encode_request_frame(
            kind, doc, key=resolved.structural_key(), machine=machine)
        if cache_key is not None:
            if len(self._encoded) >= 4096:
                self._encoded.clear()
            self._encoded[cache_key] = encoded
        return encoded

    # -- the verbs -----------------------------------------------------------

    def healthz(self) -> tuple[int, dict]:
        return self.request("GET", "/healthz")

    def metrics(self) -> tuple[int, dict]:
        return self.request("GET", "/metrics")

    def analyze(self, nest, machine: str | None = None,
                **params) -> tuple[int, dict]:
        return self.call("analyze", nest, machine, params)

    def optimize(self, nest, machine: str | None = None,
                 **params) -> tuple[int, dict]:
        return self.call("optimize", nest, machine, params)

    def transform(self, nest, machine: str | None = None,
                  unroll=None, **params) -> tuple[int, dict]:
        if unroll is not None:
            params["unroll"] = list(unroll)
        return self.call("transform", nest, machine, params)

    def call(self, kind: str, nest, machine: str | None,
             params: dict) -> tuple[int, dict]:
        """One API verb with an explicit params dict, with the built-in
        429 backoff: the server's ``Retry-After`` hint when given, else
        exponential ``backoff_base_s * 2^k``, capped at
        ``backoff_cap_s`` and jittered to half-to-full delay so
        concurrent clients never retry in lockstep against the very
        admission queue that shed them."""
        self.last_retries = 0
        while True:
            t0 = time.monotonic()
            status, doc = self._call_once(kind, nest, machine, params)
            self.last_attempt_s = time.monotonic() - t0
            if status != 429 or self.last_retries >= self.max_retries:
                return status, doc
            self.last_retries += 1
            hint = _retry_after_s(self.last_headers)
            delay = hint if hint is not None \
                else self.backoff_base_s * (2 ** (self.last_retries - 1))
            delay = min(self.backoff_cap_s, delay)
            time.sleep(delay * (0.5 + 0.5 * random.random()))

    def _call_once(self, kind: str, nest, machine: str | None,
                   params: dict) -> tuple[int, dict]:
        if self._frames_enabled():
            encoded = self._encode_frame(kind, nest, machine, params)
            if encoded is not None:
                from repro.serve import protocol

                status, raw = self._exchange_frame(
                    encoded, protocol.CONTENT_TYPE_FRAME)
                content_type = self.last_headers.get("content-type", "")
                if content_type.startswith(protocol.CONTENT_TYPE_FRAME):
                    try:
                        _, payload = protocol.decode_frame(raw)
                        return status, payload
                    except protocol.ProtocolError:
                        return status, {"ok": False,
                                        "raw": raw.decode("latin-1")}
                try:
                    return status, json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    return status, {"ok": False,
                                    "raw": raw.decode("latin-1")}
        payload = {"nest": nest, **params}
        if machine is not None:
            payload["machine"] = machine
        return self.request("POST", f"/v1/{kind}", payload)

class ServeClient(Client):
    """Deprecated alias of :class:`Client` (v1 JSON transport pinned, the
    surface this module shipped before the wire v2 redesign)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = 60.0):
        from repro.api import warn_deprecated

        warn_deprecated("repro.serve.client.ServeClient",
                        "repro.serve.client.Client")
        super().__init__(host, port, timeout=timeout, transport="json",
                         max_retries=0)

def wait_for_server(host: str, port: int, timeout_s: float = 15.0) -> bool:
    """Poll ``/healthz`` until the server answers or the budget runs out."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        client = Client(host, port, timeout=2.0)
        try:
            status, _ = client.healthz()
            if status == 200:
                return True
        except OSError:
            pass
        finally:
            client.close()
        time.sleep(0.1)
    return False

# -- the load generator -------------------------------------------------------

def _percentile(sorted_values: list[float], q: float) -> float:
    """Exact sample quantile (nearest-rank) of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * len(sorted_values)) - 1))
    return sorted_values[rank]

def build_workload(n_requests: int, duplicate_fraction: float = 0.5,
                   kinds: tuple[str, ...] = ("optimize",),
                   nests: list | None = None) -> list[tuple[str, object]]:
    """``n_requests`` specs of which roughly ``duplicate_fraction`` repeat
    an earlier nest (round-robin over the Table 2 kernels by default)."""
    if nests is None:
        from repro.kernels import all_kernels

        nests = [kernel.name for kernel in all_kernels()]
    unique_budget = max(1, min(len(nests),
                               round(n_requests * (1 - duplicate_fraction))))
    pool = nests[:unique_budget]
    return [(kinds[i % len(kinds)], pool[i % len(pool)])
            for i in range(n_requests)]

def run_load(host: str, port: int, workload: list[tuple[str, object]],
             concurrency: int = 8, machine: str = "alpha",
             max_retries: int = 4, backoff_base_s: float = 0.05,
             backoff_cap_s: float = 2.0, transport: str = "auto",
             **params) -> dict:
    """Fire the workload from ``concurrency`` threads; returns the stats
    document (throughput, latency percentiles overall and per endpoint,
    status mix, retries, failures).

    Each thread drives one :class:`Client` on the requested transport;
    429 handling is the client's built-in Retry-After-aware backoff, and
    the recorded latency of a retried request is its final attempt (the
    deliberate sleeps are the client's, not the server's).
    """
    jobs: queue.Queue = queue.Queue()
    for index, item in enumerate(workload):
        jobs.put((index, item))
    lock = threading.Lock()
    latencies: list[float] = []
    by_endpoint: dict[str, list[float]] = {}
    statuses: dict[int, int] = {}
    failures: list[str] = []
    retries = [0]

    def worker() -> None:
        client = Client(host, port, transport=transport,
                        max_retries=max_retries,
                        backoff_base_s=backoff_base_s,
                        backoff_cap_s=backoff_cap_s)
        while True:
            try:
                _, (kind, nest) = jobs.get_nowait()
            except queue.Empty:
                break
            try:
                status, doc = client.call(kind, nest, machine, dict(params))
            except (OSError, http.client.HTTPException) as err:
                with lock:
                    failures.append(f"{kind} {nest!r}: "
                                    f"{type(err).__name__}: {err}")
                continue
            with lock:
                retries[0] += client.last_retries
                latencies.append(client.last_attempt_s)
                by_endpoint.setdefault(kind, []).append(
                    client.last_attempt_s)
                statuses[status] = statuses.get(status, 0) + 1
                if status >= 400:
                    failures.append(f"{kind} {nest!r}: HTTP {status} "
                                    f"{doc.get('error')}")
        client.close()

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(max(1, concurrency))]
    t_start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - t_start

    completed = len(latencies)
    ok_2xx = sum(count for status, count in statuses.items()
                 if 200 <= status < 300)
    latencies.sort()

    def _summary(samples: list[float]) -> dict:
        samples.sort()
        return {
            "count": len(samples),
            "p50": _percentile(samples, 0.50),
            "p95": _percentile(samples, 0.95),
            "p99": _percentile(samples, 0.99),
            "max": samples[-1] if samples else 0.0,
        }

    return {
        "requests": len(workload),
        "completed": completed,
        "concurrency": concurrency,
        "transport": transport,
        "wall_time_s": wall,
        "throughput_rps": completed / wall if wall else 0.0,
        "rate_2xx": ok_2xx / len(workload) if workload else 0.0,
        "retries": retries[0],
        "statuses": {str(status): count
                     for status, count in sorted(statuses.items())},
        "latency_s": {
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
        "latency_by_endpoint_s": {kind: _summary(samples)
                                  for kind, samples
                                  in sorted(by_endpoint.items())},
        "failures": failures[:20],
    }

# -- CLI (the CI smoke job) ---------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="load-generate against a repro-serve instance")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument("--requests", type=int, default=80)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--duplicates", type=float, default=0.5,
                        help="fraction of requests repeating an earlier "
                             "nest (default 0.5)")
    parser.add_argument("--machine", default="alpha")
    parser.add_argument("--bound", type=int, default=4)
    parser.add_argument("--kinds", default="optimize",
                        help="comma-separated verbs to mix (default "
                             "optimize)")
    parser.add_argument("--transport", default="auto", choices=TRANSPORTS,
                        help="wire encoding: negotiate (auto), v1 JSON, "
                             "or v2 binary frames")
    parser.add_argument("--tier", default=None,
                        choices=("exact", "fast", "auto"),
                        help="serving tier for optimize requests "
                             "(default: omitted, the pre-tier wire shape)")
    parser.add_argument("--wait", type=float, default=15.0,
                        help="seconds to wait for /healthz before loading")
    parser.add_argument("--max-retries", type=int, default=4,
                        help="retry budget per request for 429 responses")
    parser.add_argument("--backoff-cap", type=float, default=2.0,
                        help="upper bound in seconds on the 429 backoff")
    parser.add_argument("--min-2xx", type=float, default=0.0,
                        help="fail (exit 1) when the 2xx rate drops below "
                             "this")
    parser.add_argument("--json", default=None,
                        help="write the stats document here")
    args = parser.parse_args(argv)

    if not wait_for_server(args.host, args.port, args.wait):
        print(f"server at {args.host}:{args.port} never became healthy",
              file=sys.stderr)
        return 2
    workload = build_workload(args.requests, args.duplicates,
                              kinds=tuple(args.kinds.split(",")))
    extra = {"tier": args.tier} if args.tier else {}
    stats = run_load(args.host, args.port, workload,
                     concurrency=args.concurrency, machine=args.machine,
                     max_retries=args.max_retries,
                     backoff_cap_s=args.backoff_cap,
                     transport=args.transport, bound=args.bound, **extra)
    probe = Client(args.host, args.port)
    try:
        _, stats["server_metrics"] = probe.metrics()
    except (OSError, http.client.HTTPException):
        stats["server_metrics"] = None
    finally:
        probe.close()

    print(f"{stats['completed']}/{stats['requests']} completed, "
          f"{100 * stats['rate_2xx']:.1f}% 2xx, "
          f"{stats['retries']} retried, "
          f"{stats['throughput_rps']:.1f} req/s, "
          f"p50 {1000 * stats['latency_s']['p50']:.1f}ms "
          f"p99 {1000 * stats['latency_s']['p99']:.1f}ms")
    for kind, summary in stats["latency_by_endpoint_s"].items():
        print(f"  {kind}: n={summary['count']} "
              f"p50 {1000 * summary['p50']:.1f}ms "
              f"p95 {1000 * summary['p95']:.1f}ms "
              f"p99 {1000 * summary['p99']:.1f}ms")
    for failure in stats["failures"]:
        print(f"  failure: {failure}", file=sys.stderr)
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(stats, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    if stats["rate_2xx"] < args.min_2xx:
        print(f"2xx rate {stats['rate_2xx']:.3f} below required "
              f"{args.min_2xx}", file=sys.stderr)
        return 1
    return 0

if __name__ == "__main__":
    sys.exit(main())
