"""Client and load generator for the analysis service.

:class:`ServeClient` is a thin keep-alive HTTP client over
``http.client`` (stdlib only, like the server).  :func:`run_load` drives
a workload with a configurable duplicate fraction from a thread pool,
honors ``Retry-After`` on 429 (capped, jittered backoff -- the polite
half of the admission-control contract), and reports throughput, exact
latency percentiles (overall and per endpoint), and the status mix --
the measurement half of ``benchmarks/bench_serve_throughput.py`` and the
CI smoke job::

    python -m repro.serve.client --port 8787 --requests 100 \\
        --concurrency 8 --duplicates 0.5 --min-2xx 0.99 --json out.json

The smoke entry point waits for ``/healthz``, fires the load, asserts
the 2xx rate, and appends the server's ``/metrics`` snapshot to the JSON
artifact it writes.
"""

from __future__ import annotations

import argparse
import http.client
import json
import pathlib
import queue
import random
import sys
import threading
import time

__all__ = ["ServeClient", "run_load", "wait_for_server", "main"]

class ServeClient:
    """One keep-alive connection; reconnects transparently on failure."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None
        #: Response headers of the last exchange (lower-cased names) --
        #: where ``Retry-After`` and ``x-repro-shard`` are found.
        self.last_headers: dict[str, str] = {}

    # -- plumbing ------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(self, method: str, path: str,
                payload: dict | None = None) -> tuple[int, dict]:
        """One exchange; returns ``(status, decoded-JSON body)``."""
        body = json.dumps(payload).encode("utf-8") if payload is not None \
            else None
        headers = {"content-type": "application/json"} if body else {}
        for attempt in (1, 2):  # one transparent reconnect
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt == 2:
                    raise
        self.last_headers = {name.lower(): value
                             for name, value in response.getheaders()}
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError:
            doc = {"ok": False, "raw": raw.decode("latin-1")}
        return response.status, doc

    # -- the verbs -----------------------------------------------------------

    def healthz(self) -> tuple[int, dict]:
        return self.request("GET", "/healthz")

    def metrics(self) -> tuple[int, dict]:
        return self.request("GET", "/metrics")

    def analyze(self, nest, machine: str | None = None,
                **params) -> tuple[int, dict]:
        return self.call("analyze", nest, machine, params)

    def optimize(self, nest, machine: str | None = None,
                 **params) -> tuple[int, dict]:
        return self.call("optimize", nest, machine, params)

    def transform(self, nest, machine: str | None = None,
                  unroll=None, **params) -> tuple[int, dict]:
        if unroll is not None:
            params["unroll"] = list(unroll)
        return self.call("transform", nest, machine, params)

    def call(self, kind: str, nest, machine: str | None,
             params: dict) -> tuple[int, dict]:
        """One API verb with an explicit params dict (load-generator path)."""
        payload = {"nest": nest, **params}
        if machine is not None:
            payload["machine"] = machine
        return self.request("POST", f"/v1/{kind}", payload)

def wait_for_server(host: str, port: int, timeout_s: float = 15.0) -> bool:
    """Poll ``/healthz`` until the server answers or the budget runs out."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        client = ServeClient(host, port, timeout=2.0)
        try:
            status, _ = client.healthz()
            if status == 200:
                return True
        except OSError:
            pass
        finally:
            client.close()
        time.sleep(0.1)
    return False

# -- the load generator -------------------------------------------------------

def _percentile(sorted_values: list[float], q: float) -> float:
    """Exact sample quantile (nearest-rank) of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * len(sorted_values)) - 1))
    return sorted_values[rank]

def build_workload(n_requests: int, duplicate_fraction: float = 0.5,
                   kinds: tuple[str, ...] = ("optimize",),
                   nests: list | None = None) -> list[tuple[str, object]]:
    """``n_requests`` specs of which roughly ``duplicate_fraction`` repeat
    an earlier nest (round-robin over the Table 2 kernels by default)."""
    if nests is None:
        from repro.kernels import all_kernels

        nests = [kernel.name for kernel in all_kernels()]
    unique_budget = max(1, min(len(nests),
                               round(n_requests * (1 - duplicate_fraction))))
    pool = nests[:unique_budget]
    return [(kinds[i % len(kinds)], pool[i % len(pool)])
            for i in range(n_requests)]

def _retry_after_s(headers: dict) -> float | None:
    """The ``Retry-After`` delay in seconds, or ``None`` when absent or
    unparseable (only delta-seconds form is produced by this service)."""
    value = headers.get("retry-after")
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None

def run_load(host: str, port: int, workload: list[tuple[str, object]],
             concurrency: int = 8, machine: str = "alpha",
             max_retries: int = 4, backoff_base_s: float = 0.05,
             backoff_cap_s: float = 2.0, **params) -> dict:
    """Fire the workload from ``concurrency`` threads; returns the stats
    document (throughput, latency percentiles overall and per endpoint,
    status mix, retries, failures).

    429 responses are retried up to ``max_retries`` times, honoring the
    server's ``Retry-After`` hint (falling back to exponential
    ``backoff_base_s * 2^k``), capped at ``backoff_cap_s`` and jittered
    to half-to-full delay so ``concurrency`` threads never retry in
    lockstep against the very admission queue that shed them.
    """
    jobs: queue.Queue = queue.Queue()
    for index, item in enumerate(workload):
        jobs.put((index, item))
    lock = threading.Lock()
    latencies: list[float] = []
    by_endpoint: dict[str, list[float]] = {}
    statuses: dict[int, int] = {}
    failures: list[str] = []
    retries = [0]

    def worker() -> None:
        client = ServeClient(host, port)
        while True:
            try:
                _, (kind, nest) = jobs.get_nowait()
            except queue.Empty:
                break
            attempt = 0
            while True:
                t0 = time.monotonic()
                try:
                    status, doc = client.call(kind, nest, machine,
                                              dict(params))
                except (OSError, http.client.HTTPException) as err:
                    with lock:
                        failures.append(f"{kind} {nest!r}: "
                                        f"{type(err).__name__}: {err}")
                    break
                elapsed = time.monotonic() - t0
                if status == 429 and attempt < max_retries:
                    attempt += 1
                    hint = _retry_after_s(client.last_headers)
                    delay = hint if hint is not None \
                        else backoff_base_s * (2 ** (attempt - 1))
                    delay = min(backoff_cap_s, delay)
                    with lock:
                        retries[0] += 1
                    time.sleep(delay * (0.5 + 0.5 * random.random()))
                    continue
                with lock:
                    latencies.append(elapsed)
                    by_endpoint.setdefault(kind, []).append(elapsed)
                    statuses[status] = statuses.get(status, 0) + 1
                    if status >= 400:
                        failures.append(f"{kind} {nest!r}: HTTP {status} "
                                        f"{doc.get('error')}")
                break
        client.close()

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(max(1, concurrency))]
    t_start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - t_start

    completed = len(latencies)
    ok_2xx = sum(count for status, count in statuses.items()
                 if 200 <= status < 300)
    latencies.sort()

    def _summary(samples: list[float]) -> dict:
        samples.sort()
        return {
            "count": len(samples),
            "p50": _percentile(samples, 0.50),
            "p95": _percentile(samples, 0.95),
            "p99": _percentile(samples, 0.99),
            "max": samples[-1] if samples else 0.0,
        }

    return {
        "requests": len(workload),
        "completed": completed,
        "concurrency": concurrency,
        "wall_time_s": wall,
        "throughput_rps": completed / wall if wall else 0.0,
        "rate_2xx": ok_2xx / len(workload) if workload else 0.0,
        "retries": retries[0],
        "statuses": {str(status): count
                     for status, count in sorted(statuses.items())},
        "latency_s": {
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
        "latency_by_endpoint_s": {kind: _summary(samples)
                                  for kind, samples
                                  in sorted(by_endpoint.items())},
        "failures": failures[:20],
    }

# -- CLI (the CI smoke job) ---------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="load-generate against a repro-serve instance")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument("--requests", type=int, default=80)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--duplicates", type=float, default=0.5,
                        help="fraction of requests repeating an earlier "
                             "nest (default 0.5)")
    parser.add_argument("--machine", default="alpha")
    parser.add_argument("--bound", type=int, default=4)
    parser.add_argument("--kinds", default="optimize",
                        help="comma-separated verbs to mix (default "
                             "optimize)")
    parser.add_argument("--wait", type=float, default=15.0,
                        help="seconds to wait for /healthz before loading")
    parser.add_argument("--max-retries", type=int, default=4,
                        help="retry budget per request for 429 responses")
    parser.add_argument("--backoff-cap", type=float, default=2.0,
                        help="upper bound in seconds on the 429 backoff")
    parser.add_argument("--min-2xx", type=float, default=0.0,
                        help="fail (exit 1) when the 2xx rate drops below "
                             "this")
    parser.add_argument("--json", default=None,
                        help="write the stats document here")
    args = parser.parse_args(argv)

    if not wait_for_server(args.host, args.port, args.wait):
        print(f"server at {args.host}:{args.port} never became healthy",
              file=sys.stderr)
        return 2
    workload = build_workload(args.requests, args.duplicates,
                              kinds=tuple(args.kinds.split(",")))
    stats = run_load(args.host, args.port, workload,
                     concurrency=args.concurrency, machine=args.machine,
                     max_retries=args.max_retries,
                     backoff_cap_s=args.backoff_cap, bound=args.bound)
    probe = ServeClient(args.host, args.port)
    try:
        _, stats["server_metrics"] = probe.metrics()
    except (OSError, http.client.HTTPException):
        stats["server_metrics"] = None
    finally:
        probe.close()

    print(f"{stats['completed']}/{stats['requests']} completed, "
          f"{100 * stats['rate_2xx']:.1f}% 2xx, "
          f"{stats['retries']} retried, "
          f"{stats['throughput_rps']:.1f} req/s, "
          f"p50 {1000 * stats['latency_s']['p50']:.1f}ms "
          f"p99 {1000 * stats['latency_s']['p99']:.1f}ms")
    for kind, summary in stats["latency_by_endpoint_s"].items():
        print(f"  {kind}: n={summary['count']} "
              f"p50 {1000 * summary['p50']:.1f}ms "
              f"p95 {1000 * summary['p95']:.1f}ms "
              f"p99 {1000 * summary['p99']:.1f}ms")
    for failure in stats["failures"]:
        print(f"  failure: {failure}", file=sys.stderr)
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(stats, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    if stats["rate_2xx"] < args.min_2xx:
        print(f"2xx rate {stats['rate_2xx']:.3f} below required "
              f"{args.min_2xx}", file=sys.stderr)
        return 1
    return 0

if __name__ == "__main__":
    sys.exit(main())
