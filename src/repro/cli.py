"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``kernels``                      -- list the Table 2 test loops
* ``show <kernel|file>``           -- print a nest's source
* ``analyze <kernel|file>``        -- reuse structure and balance
* ``optimize <kernel|file>``       -- full unroll-and-jam report
* ``simulate <kernel>``            -- trace-driven cycles, before/after
* ``table1``                       -- the input-dependence experiment
* ``figure (alpha|pa)``            -- a Figure 8/9 column

Nests can be named kernels or paths to DO-loop text files (the format
``show`` prints; see :mod:`repro.ir.parser`).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.ir.nodes import LoopNest
from repro.ir.parser import parse_nest
from repro.ir.printer import format_nest
from repro.machine.model import MachineModel
from repro.machine.presets import dec_alpha, hp_pa_risc, prefetching_machine

MACHINES = {
    "alpha": dec_alpha,
    "pa": hp_pa_risc,
    "prefetch": prefetching_machine,
}

def _machine(name: str) -> MachineModel:
    try:
        return MACHINES[name]()
    except KeyError:
        raise SystemExit(f"unknown machine {name!r}; choose from "
                         f"{sorted(MACHINES)}")

def _load_nest(spec: str) -> LoopNest:
    from repro.kernels import kernel_by_name

    try:
        return kernel_by_name(spec).nest
    except KeyError:
        pass
    path = pathlib.Path(spec)
    if path.exists():
        return parse_nest(path.read_text(), name=path.stem)
    raise SystemExit(f"{spec!r} is neither a kernel name nor a readable "
                     "file; try 'kernels' for the list")

def cmd_kernels(args: argparse.Namespace) -> int:
    from repro.kernels import all_kernels

    print(f"{'num':>3s} {'name':<10s} {'depth':>5s}  description")
    for kernel in all_kernels():
        print(f"{kernel.number:>3d} {kernel.name:<10s} "
              f"{kernel.nest.depth:>5d}  {kernel.description}")
    return 0

def cmd_show(args: argparse.Namespace) -> int:
    print(format_nest(_load_nest(args.nest)))
    return 0

def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.balance import loop_balance
    from repro.baselines.brute_force import measure_unrolled
    from repro.unroll.report import reuse_summary

    nest = _load_nest(args.nest)
    machine = _machine(args.machine)
    print(format_nest(nest))
    print()
    print(reuse_summary(nest, machine.cache_line_words))
    zero = tuple(0 for _ in range(nest.depth))
    point = measure_unrolled(nest, zero,
                             line_size=machine.cache_line_words)
    breakdown = loop_balance(point, machine)
    print()
    print(f"flops/iter {point.flops}, memory ops/iter {point.memory_ops}, "
          f"Eq.1 cost {float(point.cache_cost):.3f}")
    print(f"loop balance {float(breakdown.balance):.3f} vs machine "
          f"{float(machine.balance):.3f} on {machine.name}")
    return 0

def cmd_optimize(args: argparse.Namespace) -> int:
    from repro.unroll.report import optimization_report

    nest = _load_nest(args.nest)
    machine = _machine(args.machine)
    print(optimization_report(nest, machine, bound=args.bound,
                              include_cache=not args.no_cache,
                              show_code=not args.quiet))
    return 0

def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.kernels import kernel_by_name
    from repro.machine.simulator import simulate
    from repro.unroll.optimize import choose_unroll

    try:
        kernel = kernel_by_name(args.kernel)
    except KeyError:
        raise SystemExit(f"simulate needs a named kernel (got "
                         f"{args.kernel!r}); workloads come with kernels")
    machine = _machine(args.machine)
    if args.unroll:
        unroll = tuple(int(x) for x in args.unroll.split(","))
    else:
        unroll = choose_unroll(kernel.nest, machine, bound=args.bound).unroll
    base = simulate(kernel.nest, machine, kernel.bindings, kernel.shapes)
    opt = simulate(kernel.nest, machine, kernel.bindings, kernel.shapes,
                   unroll=unroll)
    print(f"kernel {kernel.name} on {machine.name}, unroll {unroll}")
    print(f"  original: {float(base.cycles):>14.0f} cycles "
          f"({base.cache_misses} misses)")
    print(f"  unrolled: {float(opt.cycles):>14.0f} cycles "
          f"({opt.cache_misses} misses)")
    print(f"  normalized time: {opt.normalized_to(base):.3f}")
    return 0

def cmd_prefetch(args: argparse.Namespace) -> int:
    from repro.machine.schedule import schedule_body
    from repro.unroll.prefetch import format_plan, plan_prefetch

    nest = _load_nest(args.nest)
    machine = _machine(args.machine)
    print(format_plan(plan_prefetch(nest, machine)))
    return 0

def cmd_export(args: argparse.Namespace) -> int:
    from repro.dependence import build_dependence_graph
    from repro.dependence.export import summarize, to_dot

    nest = _load_nest(args.nest)
    graph = build_dependence_graph(nest,
                                   include_input=not args.no_input)
    if args.format == "dot":
        print(to_dot(graph, include_input=not args.no_input))
    else:
        print(summarize(graph))
        for dep in graph:
            print(f"  {dep.pretty()}")
    return 0

def cmd_distribute(args: argparse.Namespace) -> int:
    from repro.transforms.distribution import distribute

    nest = _load_nest(args.nest)
    pieces = distribute(nest)
    print(f"{nest.name}: {len(pieces)} pi-block(s)")
    for piece in pieces:
        print()
        print(format_nest(piece))
    return 0

def cmd_schedule(args: argparse.Namespace) -> int:
    from repro.machine.schedule import schedule_body
    from repro.unroll.transform import unroll_and_jam

    nest = _load_nest(args.nest)
    machine = _machine(args.machine)
    if args.unroll:
        unroll = tuple(int(x) for x in args.unroll.split(","))
        nest = unroll_and_jam(nest, unroll).main
    result = schedule_body(nest, machine)
    print(f"schedule of {nest.name} on {machine.name}:")
    print(f"  memory ops {result.memory_ops}, fp ops {result.fp_ops}")
    print(f"  makespan {result.makespan} cycles, critical path "
          f"{result.critical_path}")
    print(f"  steady-state initiation interval "
          f"{float(result.initiation_interval):.2f} cycles/iteration")
    return 0

def cmd_table1(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusConfig
    from repro.experiments.table1 import run_table1

    report = run_table1(CorpusConfig(routines=args.routines, seed=args.seed))
    print(report.format())
    return 0

def cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import format_figure, run_figure

    machine = _machine(args.machine)
    rows = run_figure(machine, bound=args.bound)
    title = f"Normalized execution time on {machine.name}"
    print(format_figure(rows, title))
    return 0

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unroll-and-jam using uniformly generated sets "
                    "(Carr & Guan, MICRO 1997)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list the Table 2 loops") \
        .set_defaults(func=cmd_kernels)

    p_show = sub.add_parser("show", help="print a nest")
    p_show.add_argument("nest")
    p_show.set_defaults(func=cmd_show)

    p_analyze = sub.add_parser("analyze", help="reuse structure and balance")
    p_analyze.add_argument("nest")
    p_analyze.add_argument("--machine", default="alpha")
    p_analyze.set_defaults(func=cmd_analyze)

    p_opt = sub.add_parser("optimize", help="full unroll-and-jam report")
    p_opt.add_argument("nest")
    p_opt.add_argument("--machine", default="alpha")
    p_opt.add_argument("--bound", type=int, default=8)
    p_opt.add_argument("--no-cache", action="store_true",
                       help="use the cache-oblivious balance model")
    p_opt.add_argument("--quiet", action="store_true",
                       help="omit code listings")
    p_opt.set_defaults(func=cmd_optimize)

    p_sim = sub.add_parser("simulate", help="trace-driven before/after")
    p_sim.add_argument("kernel")
    p_sim.add_argument("--machine", default="alpha")
    p_sim.add_argument("--unroll", default="",
                       help="comma-separated unroll vector (default: let "
                            "the optimizer choose)")
    p_sim.add_argument("--bound", type=int, default=6)
    p_sim.set_defaults(func=cmd_simulate)

    p_pf = sub.add_parser("prefetch", help="software-prefetch plan")
    p_pf.add_argument("nest")
    p_pf.add_argument("--machine", default="alpha")
    p_pf.set_defaults(func=cmd_prefetch)

    p_exp = sub.add_parser("export", help="dependence graph (text or DOT)")
    p_exp.add_argument("nest")
    p_exp.add_argument("--format", choices=("text", "dot"), default="text")
    p_exp.add_argument("--no-input", action="store_true",
                       help="omit input dependences (the UGS compiler view)")
    p_exp.set_defaults(func=cmd_export)

    p_dist = sub.add_parser("distribute", help="loop distribution")
    p_dist.add_argument("nest")
    p_dist.set_defaults(func=cmd_distribute)

    p_sched = sub.add_parser("schedule", help="list-schedule the body")
    p_sched.add_argument("nest")
    p_sched.add_argument("--machine", default="alpha")
    p_sched.add_argument("--unroll", default="",
                         help="unroll-and-jam first (comma-separated)")
    p_sched.set_defaults(func=cmd_schedule)

    p_t1 = sub.add_parser("table1", help="input-dependence experiment")
    p_t1.add_argument("--routines", type=int, default=400)
    p_t1.add_argument("--seed", type=int, default=1997)
    p_t1.set_defaults(func=cmd_table1)

    p_fig = sub.add_parser("figure", help="Figure 8/9 series")
    p_fig.add_argument("--machine", default="alpha")
    p_fig.add_argument("--bound", type=int, default=6)
    p_fig.set_defaults(func=cmd_figure)

    return parser

def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)

if __name__ == "__main__":
    sys.exit(main())
