"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``kernels``                      -- list the Table 2 test loops
* ``show <nest>``                  -- print a nest's source
* ``analyze <nest>``               -- reuse structure and balance
* ``profile <nest>``               -- static reuse-distance profile and
  set-associative miss prediction (docs/REUSE.md)
* ``optimize <nest>``              -- full unroll-and-jam report
* ``simulate <kernel>``            -- trace-driven cycles, before/after
* ``batch <dir|glob|nest>...``     -- optimize a corpus via the engine;
  ``--stream`` yields results as they complete at flat memory
* ``corpus``                       -- stream the seeded synthetic corpus
  (``--count``/``--seed``; ``--out DIR`` writes nest files)
* ``serve``                        -- the HTTP analysis service (docs/SERVING.md);
  ``--workers N`` shards it across N processes (docs/CLUSTER.md)
* ``train``                        -- train the tier=fast unroll predictor
  (docs/PREDICT.md)
* ``cluster (status|drain|scale|reload)`` -- administer a sharded router
* ``metrics``                      -- dump metrics (JSON or Prometheus text)
* ``cache (stats|clear)``          -- manage the on-disk table cache
* ``table1``                       -- the input-dependence experiment
* ``figure (alpha|pa)``            -- a Figure 8/9 column

Everywhere a nest is taken, it may be a kernel name, a path to a DO-loop
text file (the format ``show`` prints; see :mod:`repro.ir.parser`), or --
through :func:`repro.api.coerce_nest`, which owns all of that resolution
-- inline DO-loop source.
"""

from __future__ import annotations

import argparse
import glob as _glob
import json
import pathlib
import sys

from repro import api
from repro.ir.nodes import LoopNest
from repro.ir.printer import format_nest
from repro.machine.model import MachineModel

#: File suffixes treated as nest sources when scanning a batch directory.
NEST_SUFFIXES = (".f", ".loop", ".nest", ".txt")

def _machine(name: str) -> MachineModel:
    try:
        return api.coerce_machine(name)
    except ValueError as err:
        raise SystemExit(str(err))

def _nest(spec: str) -> LoopNest:
    try:
        return api.coerce_nest(spec)
    except api.NestResolutionError as err:
        raise SystemExit(str(err))

def _load_nest(spec: str) -> LoopNest:
    """Deprecated shim: the coercion now lives in :func:`repro.api.coerce_nest`."""
    api.warn_deprecated("repro.cli._load_nest", "repro.api.coerce_nest")
    return _nest(spec)

def __getattr__(name: str):
    if name == "MACHINES":
        api.warn_deprecated("repro.cli.MACHINES", "repro.api.MACHINES")
        return dict(api.MACHINES)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

def cmd_kernels(args: argparse.Namespace) -> int:
    from repro.kernels import all_kernels

    print(f"{'num':>3s} {'name':<10s} {'depth':>5s}  description")
    for kernel in all_kernels():
        print(f"{kernel.number:>3d} {kernel.name:<10s} "
              f"{kernel.nest.depth:>5d}  {kernel.description}")
    return 0

def cmd_show(args: argparse.Namespace) -> int:
    print(format_nest(_nest(args.nest)))
    return 0

def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.balance import loop_balance
    from repro.baselines.brute_force import measure_unrolled
    from repro.unroll.report import reuse_summary

    nest = _nest(args.nest)
    machine = _machine(args.machine)
    print(format_nest(nest))
    print()
    print(reuse_summary(nest, machine.cache_line_words))
    zero = tuple(0 for _ in range(nest.depth))
    point = measure_unrolled(nest, zero,
                             line_size=machine.cache_line_words)
    breakdown = loop_balance(point, machine)
    print()
    print(f"flops/iter {point.flops}, memory ops/iter {point.memory_ops}, "
          f"Eq.1 cost {float(point.cache_cost):.3f}")
    print(f"loop balance {float(breakdown.balance):.3f} vs machine "
          f"{float(machine.balance):.3f} on {machine.name}")
    return 0

def cmd_profile(args: argparse.Namespace) -> int:
    from repro.machine.cache import CacheSpec, miss_probability

    nest = _nest(args.nest)
    machine = _machine(args.machine)
    profile = api.reuse_profile(nest, machine, trip=args.trip)
    if args.json:
        print(json.dumps(profile.to_dict(), indent=2))
        return 0
    spec = CacheSpec.for_machine(machine)
    print(f"reuse-distance profile of {profile.nest} "
          f"(depth {profile.depth}, trip {profile.trip})")
    print(f"  {profile.lines_per_iteration:.3f} new line(s)/iteration, "
          f"line size {profile.line_size} words")
    print()
    print(f"{'ref':<20s} {'kind':<14s} {'delay':>10s} {'distance':>10s} "
          f"{'fraction':>9s} {'P(miss)':>8s}")
    for ref in profile.refs:
        name = ref.ref
        for b in ref.bins:
            delay = "-" if b.delay is None else f"{b.delay:.0f}"
            distance = "cold" if b.distance is None else f"{b.distance:.1f}"
            pm = miss_probability(b.distance, spec)
            print(f"{name:<20.20s} {b.kind:<14s} {delay:>10s} "
                  f"{distance:>10s} {b.fraction:>9.3f} {pm:>8.3f}")
            name = ""
    print()
    print(f"cache {spec.describe()} on {machine.name}:")
    print(f"  predicted miss ratio   {profile.miss_ratio(spec):.4f}")
    print(f"  misses/iteration       {profile.misses_per_iteration(spec):.4f}")
    print(f"  cold fraction          {profile.cold_fraction():.4f}")
    print(f"  set-conflict add-on    {profile.conflict_probability(spec):.4f}")
    return 0

def cmd_optimize(args: argparse.Namespace) -> int:
    from repro.unroll.report import optimization_report

    nest = _nest(args.nest)
    machine = _machine(args.machine)
    result = api.optimize(nest, machine, bound=args.bound,
                          include_cache=not args.no_cache,
                          cache_model=args.cache_model,
                          vectorize=args.vectorize)
    print(optimization_report(nest, machine, result=result,
                              bound=args.bound,
                              include_cache=not args.no_cache,
                              show_code=not args.quiet))
    return 0

def cmd_simd(args: argparse.Namespace) -> int:
    import json as _json

    from repro.simd import format_report

    nest = _nest(args.nest)
    machine = _machine(args.machine)
    unroll = (tuple(int(x) for x in args.unroll.split(","))
              if args.unroll else None)
    result, report = api.vectorize(nest, machine, unroll=unroll,
                                   bound=args.bound, trip=args.trip)
    if args.json:
        doc = report.to_dict()
        doc["chosen_unroll"] = list(result.unroll)
        doc["feasible"] = result.feasible
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(f"vectorized search chose unroll {result.unroll} "
          f"(objective {float(result.objective):.3f}, "
          f"feasible {result.feasible})")
    print()
    print(format_report(report))
    return 0

def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.kernels import kernel_by_name
    from repro.machine.simulator import simulate

    try:
        kernel = kernel_by_name(args.kernel)
    except KeyError:
        raise SystemExit(f"simulate needs a named kernel (got "
                         f"{args.kernel!r}); workloads come with kernels")
    machine = _machine(args.machine)
    if args.unroll:
        unroll = tuple(int(x) for x in args.unroll.split(","))
    else:
        unroll = api.optimize(kernel.nest, machine, bound=args.bound).unroll
    base = simulate(kernel.nest, machine, kernel.bindings, kernel.shapes)
    opt = simulate(kernel.nest, machine, kernel.bindings, kernel.shapes,
                   unroll=unroll)
    print(f"kernel {kernel.name} on {machine.name}, unroll {unroll}")
    print(f"  original: {float(base.cycles):>14.0f} cycles "
          f"({base.cache_misses} misses)")
    print(f"  unrolled: {float(opt.cycles):>14.0f} cycles "
          f"({opt.cache_misses} misses)")
    print(f"  normalized time: {opt.normalized_to(base):.3f}")
    return 0

def cmd_prefetch(args: argparse.Namespace) -> int:
    from repro.unroll.prefetch import format_plan, plan_prefetch

    nest = _nest(args.nest)
    machine = _machine(args.machine)
    print(format_plan(plan_prefetch(nest, machine)))
    return 0

def cmd_export(args: argparse.Namespace) -> int:
    from repro.dependence import build_dependence_graph
    from repro.dependence.export import summarize, to_dot

    nest = _nest(args.nest)
    graph = build_dependence_graph(nest,
                                   include_input=not args.no_input)
    if args.format == "dot":
        print(to_dot(graph, include_input=not args.no_input))
    else:
        print(summarize(graph))
        for dep in graph:
            print(f"  {dep.pretty()}")
    return 0

def cmd_distribute(args: argparse.Namespace) -> int:
    from repro.transforms.distribution import distribute

    nest = _nest(args.nest)
    pieces = distribute(nest)
    print(f"{nest.name}: {len(pieces)} pi-block(s)")
    for piece in pieces:
        print()
        print(format_nest(piece))
    return 0

def cmd_schedule(args: argparse.Namespace) -> int:
    from repro.machine.schedule import schedule_body
    from repro.unroll.transform import unroll_and_jam

    nest = _nest(args.nest)
    machine = _machine(args.machine)
    if args.unroll:
        unroll = tuple(int(x) for x in args.unroll.split(","))
        nest = unroll_and_jam(nest, unroll).main
    result = schedule_body(nest, machine)
    print(f"schedule of {nest.name} on {machine.name}:")
    print(f"  memory ops {result.memory_ops}, fp ops {result.fp_ops}")
    print(f"  makespan {result.makespan} cycles, critical path "
          f"{result.critical_path}")
    print(f"  steady-state initiation interval "
          f"{float(result.initiation_interval):.2f} cycles/iteration")
    return 0

def _collect_batch_specs(patterns: list[str]) -> list:
    """Expand each argument: directory -> nest files inside it, glob ->
    matches, anything else -> passed through to the shared coercion (so
    kernel names and plain paths work too)."""
    specs: list = []
    for pattern in patterns:
        path = pathlib.Path(pattern)
        if path.is_dir():
            specs.extend(sorted(
                child for child in path.iterdir()
                if child.suffix in NEST_SUFFIXES and child.is_file()))
            continue
        matches = sorted(_glob.glob(pattern))
        if matches:
            specs.extend(pathlib.Path(m) for m in matches)
        else:
            specs.append(pattern)
    return specs

def cmd_batch(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.engine import AnalysisEngine

    specs = _collect_batch_specs(args.inputs)
    if not specs:
        raise SystemExit("no nests matched; pass a directory, a glob, "
                         "nest files, or kernel names")
    profiler = None
    if args.profile:
        profiler = obs.Profiler(enabled=True)
    if args.trace_out:
        obs.configure(enabled=True)
    engine = AnalysisEngine(disk_cache=args.cache,
                            cache_dir=args.cache_dir, profiler=profiler)
    if args.stream:
        return _batch_stream(args, engine, specs)
    report = api.optimize_many(specs, machine=args.machine,
                               workers=args.workers, bound=args.bound,
                               engine=engine)
    if args.trace_out:
        obs.get_tracer().write_chrome(args.trace_out)
        print(f"wrote trace to {args.trace_out}", file=sys.stderr)
    if profiler is not None:
        target = profiler.write(args.profile_out)
        print(f"wrote profile to {target}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 1 if report.failures else 0
    print(f"{'name':<24s} {'unroll':<12s} {'balance':>8s} "
          f"{'feasible':>8s} {'time':>8s}")
    for item in report.items:
        if item.ok and item.result is not None:
            print(f"{item.name:<24.24s} {str(item.result.unroll):<12s} "
                  f"{float(item.result.balance):>8.3f} "
                  f"{str(item.result.feasible):>8s} "
                  f"{item.duration_s:>7.3f}s")
        else:
            print(f"{item.name:<24.24s} FAILED: {item.error}")
    print()
    print(f"{len(report.items)} nest(s), {len(report.failures)} failure(s), "
          f"{report.workers} worker(s), {report.wall_time_s:.3f}s "
          f"({report.nests_per_sec:.1f} nests/sec)")
    return 1 if report.failures else 0

def _batch_stream(args: argparse.Namespace, engine, specs) -> int:
    """``repro batch --stream``: emit each result as it completes.

    Results are printed (or, with ``--json``, written as one JSON object
    per line) the moment they arrive, and nothing accumulates a report --
    peak memory stays flat however large the corpus is.  With
    ``--workers N`` the order is completion order; every row carries its
    input index.
    """
    import time as _time

    start = _time.monotonic()
    total = 0
    failures = 0
    if not args.json:
        print(f"{'idx':>6s} {'name':<24s} {'unroll':<12s} {'balance':>8s} "
              f"{'feasible':>8s}")
    for item in api.optimize_stream(specs, machine=args.machine,
                                    workers=args.workers, bound=args.bound,
                                    engine=engine):
        total += 1
        if not item.ok:
            failures += 1
        if args.json:
            print(json.dumps(item.to_dict()), flush=True)
        elif item.ok and item.result is not None:
            print(f"{item.index:>6d} {item.name:<24.24s} "
                  f"{str(item.result.unroll):<12s} "
                  f"{float(item.result.balance):>8.3f} "
                  f"{str(item.result.feasible):>8s}", flush=True)
        else:
            print(f"{item.index:>6d} {item.name:<24.24s} "
                  f"FAILED: {item.error}", flush=True)
    wall = _time.monotonic() - start
    rate = total / wall if wall > 0 else 0.0
    summary = (f"{total} nest(s), {failures} failure(s), "
               f"{args.workers or 1} worker(s), {wall:.3f}s "
               f"({rate:.1f} nests/sec), dedup hits "
               f"{engine.metrics.counter('engine.dedup.hits')}")
    print(summary, file=sys.stderr if args.json else sys.stdout)
    return 1 if failures else 0

def cmd_corpus(args: argparse.Namespace) -> int:
    """``repro corpus``: stream the seeded synthetic corpus.

    Generation is lazy (:func:`repro.corpus.iter_corpus`), so
    ``--count 100000`` writes or prints nests one at a time without ever
    holding the corpus in memory.
    """
    from repro.corpus import CorpusConfig, iter_corpus

    defaults = CorpusConfig()
    count = args.count if args.count is not None else defaults.routines
    config = CorpusConfig(routines=count, seed=args.seed)
    written = 0
    if args.out:
        outdir = pathlib.Path(args.out)
        outdir.mkdir(parents=True, exist_ok=True)
        for nest in iter_corpus(config):
            path = outdir / f"{nest.name}.loop"
            path.write_text(format_nest(nest) + "\n")
            written += 1
        print(f"wrote {written} nest(s) to {outdir} (seed {args.seed})")
        return 0
    for nest in iter_corpus(config):
        if written:
            print()
        print(f"* {nest.name}")
        print(format_nest(nest))
        written += 1
    print(f"\n{written} nest(s), seed {args.seed}", file=sys.stderr)
    return 0

def _predict_worker_args(args: argparse.Namespace) -> list[str]:
    """Forward the fast-tier knobs to sharded cluster workers."""
    extra: list[str] = []
    if args.model:
        extra.extend(["--model", args.model])
    if args.no_predict:
        extra.append("--no-predict")
    if args.auto_confidence is not None:
        extra.extend(["--auto-confidence", str(args.auto_confidence)])
    return extra

def cmd_train(args: argparse.Namespace) -> int:
    from repro.predict.train import run_train

    return run_train(args)

def cmd_serve(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.engine import AnalysisEngine
    from repro.serve.batcher import BatchConfig
    from repro.serve.server import ServeConfig, run_server

    if args.machine not in api.MACHINES:
        raise SystemExit(f"unknown machine {args.machine!r}; choose from "
                         f"{sorted(api.MACHINES)}")
    if args.workers and args.workers > 0:
        # Sharded mode: N worker processes behind the consistent-hash
        # router (docs/CLUSTER.md).  --workers 0 (default) keeps the
        # classic single-process server.
        from repro.cluster import ClusterConfig, run_cluster

        cluster = ClusterConfig(
            workers=args.workers, host=args.host, port=args.port,
            machine=args.machine, max_body=args.max_body,
            request_timeout_s=args.timeout,
            drain_grace_s=args.drain_grace,
            metrics_path=args.metrics_out,
            cache=args.cache, cache_dir=args.cache_dir, trace=args.trace,
            worker_threads=args.threads, worker_batch_max=args.batch_max,
            worker_deadline_ms=args.batch_deadline_ms,
            worker_queue_limit=args.queue_limit,
            worker_pool_workers=args.pool_workers,
            worker_extra_args=_predict_worker_args(args))
        return run_cluster(cluster)
    config = ServeConfig(
        host=args.host, port=args.port, machine=args.machine,
        max_body=args.max_body, request_timeout_s=args.timeout,
        shutdown_grace_s=args.drain_grace,
        metrics_path=args.metrics_out,
        model_path=args.model, predict=not args.no_predict,
        auto_confidence=args.auto_confidence,
        batch=BatchConfig(max_batch=args.batch_max,
                          deadline_s=args.batch_deadline_ms / 1000.0,
                          queue_limit=args.queue_limit,
                          threads=args.threads,
                          workers=args.pool_workers))
    profiler = obs.Profiler(enabled=True) if args.profile else None
    if args.trace:
        obs.configure(enabled=True)
    engine = AnalysisEngine(disk_cache=args.cache, cache_dir=args.cache_dir,
                            profiler=profiler)
    return run_server(config, engine)

def cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster.admin import run_admin

    return run_admin(args.action, args.host, args.port, to=args.to,
                     timeout=args.timeout, as_json=args.json)

def cmd_metrics(args: argparse.Namespace) -> int:
    from repro import obs

    if args.from_file:
        try:
            document = json.loads(
                pathlib.Path(args.from_file).read_text())
        except (OSError, json.JSONDecodeError) as err:
            raise SystemExit(f"cannot read metrics document "
                             f"{args.from_file!r}: {err}")
    else:
        from repro.serve.client import ServeClient

        client = ServeClient(args.host, args.port)
        try:
            status, document = client.metrics()
        except OSError as err:
            raise SystemExit(f"cannot scrape http://{args.host}:"
                             f"{args.port}/metrics: {err}")
        finally:
            client.close()
        if status != 200:
            raise SystemExit(f"GET /metrics answered HTTP {status}")
    if args.format == "json":
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(obs.document_to_exposition(document), end="")
    return 0

def cmd_cache(args: argparse.Namespace) -> int:
    from repro.engine import clear_disk_cache, disk_cache_stats

    if args.action == "stats":
        stats = disk_cache_stats(args.dir)
        print(f"cache dir: {stats['dir']}")
        print(f"entries:   {stats['entries']}")
        print(f"bytes:     {stats['bytes']}")
    else:
        removed = clear_disk_cache(args.dir)
        print(f"removed {removed} cached table file(s)")
    return 0

def cmd_table1(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusConfig
    from repro.experiments.table1 import run_table1

    report = run_table1(CorpusConfig(routines=args.routines, seed=args.seed))
    print(report.format())
    return 0

def cmd_figure(args: argparse.Namespace) -> int:
    machine = _machine(args.machine)
    if args.simd:
        from repro.experiments.simd_figure import (
            format_simd_figure,
            run_simd_figure,
        )

        rows = run_simd_figure(machine, bound=args.bound)
        print(format_simd_figure(
            rows, f"Estimated cycles/iteration on {machine.name} "
                  f"(SIMD objective on vs off)"))
        return 0
    from repro.experiments.figures import format_figure, run_figure

    rows = run_figure(machine, bound=args.bound)
    title = f"Normalized execution time on {machine.name}"
    print(format_figure(rows, title))
    return 0

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unroll-and-jam using uniformly generated sets "
                    "(Carr & Guan, MICRO 1997)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list the Table 2 loops") \
        .set_defaults(func=cmd_kernels)

    p_show = sub.add_parser("show", help="print a nest")
    p_show.add_argument("nest")
    p_show.set_defaults(func=cmd_show)

    p_analyze = sub.add_parser("analyze", help="reuse structure and balance")
    p_analyze.add_argument("nest")
    p_analyze.add_argument("--machine", default="alpha")
    p_analyze.set_defaults(func=cmd_analyze)

    p_prof = sub.add_parser(
        "profile", help="static reuse-distance profile and set-associative "
                        "miss prediction (see docs/REUSE.md)")
    p_prof.add_argument("nest")
    p_prof.add_argument("--machine", default="alpha")
    p_prof.add_argument("--trip", type=int, default=100,
                        help="per-loop trip count the delays scale with")
    p_prof.add_argument("--json", action="store_true",
                        help="emit the profile document as JSON")
    p_prof.set_defaults(func=cmd_profile)

    p_opt = sub.add_parser("optimize", help="full unroll-and-jam report")
    p_opt.add_argument("nest")
    p_opt.add_argument("--machine", default="alpha")
    p_opt.add_argument("--bound", type=int, default=8)
    p_opt.add_argument("--no-cache", action="store_true",
                       help="use the cache-oblivious balance model")
    p_opt.add_argument("--cache-model", choices=("binary", "assoc"),
                       default="binary",
                       help="miss model for ranking unroll vectors: the "
                            "paper's binary Equation-1 charge, or the "
                            "set-associative reuse-profile estimate "
                            "(docs/REUSE.md)")
    p_opt.add_argument("--vectorize", action="store_true",
                       help="rank unroll vectors with the SLP lane cost "
                            "model (docs/VECTORIZE.md); needs a machine "
                            "with a vector unit to differ from the default")
    p_opt.add_argument("--quiet", action="store_true",
                       help="omit code listings")
    p_opt.set_defaults(func=cmd_optimize)

    p_simd = sub.add_parser(
        "simd", help="vectorization-aware unroll-and-jam: SLP packs, "
                     "schedule and lane cost estimate (docs/VECTORIZE.md)")
    p_simd.add_argument("nest")
    p_simd.add_argument("--machine", default="future",
                        help="machine preset (default: future, the "
                             "vector-capable one)")
    p_simd.add_argument("--unroll", default="",
                        help="comma-separated unroll vector (default: let "
                             "the vectorized search choose)")
    p_simd.add_argument("--bound", type=int, default=8)
    p_simd.add_argument("--trip", type=int, default=100)
    p_simd.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    p_simd.set_defaults(func=cmd_simd)

    p_sim = sub.add_parser("simulate", help="trace-driven before/after")
    p_sim.add_argument("kernel")
    p_sim.add_argument("--machine", default="alpha")
    p_sim.add_argument("--unroll", default="",
                       help="comma-separated unroll vector (default: let "
                            "the optimizer choose)")
    p_sim.add_argument("--bound", type=int, default=6)
    p_sim.set_defaults(func=cmd_simulate)

    p_batch = sub.add_parser(
        "batch", help="optimize a corpus through the analysis engine")
    p_batch.add_argument("inputs", nargs="+",
                         help="directories, globs, nest files, or kernel "
                              "names")
    p_batch.add_argument("--machine", default="alpha")
    p_batch.add_argument("--bound", type=int, default=8)
    p_batch.add_argument("--workers", type=int, default=None,
                         help="process-pool size (default: in-process)")
    p_batch.add_argument("--json", action="store_true",
                         help="emit the full report (items + metrics) as "
                              "JSON")
    p_batch.add_argument("--cache", action="store_true",
                         help="use the on-disk table cache")
    p_batch.add_argument("--cache-dir", default=None,
                         help="override the cache location")
    p_batch.add_argument("--profile", action="store_true",
                         help="cProfile the engine stages (or set "
                              "REPRO_PROFILE=1)")
    p_batch.add_argument("--profile-out",
                         default="results/batch_profile.json",
                         help="where the per-stage top-N summary lands")
    p_batch.add_argument("--trace-out", default=None,
                         help="write a Chrome trace_event JSON here "
                              "(implies tracing on)")
    p_batch.add_argument("--stream", action="store_true",
                         help="stream results as they complete instead of "
                              "collecting a report: flat memory for huge "
                              "corpora; with --json, one JSON object per "
                              "line (docs/PERFORMANCE.md)")
    p_batch.set_defaults(func=cmd_batch)

    p_corpus = sub.add_parser(
        "corpus", help="generate the seeded synthetic corpus, streaming")
    p_corpus.add_argument("--count", type=int, default=None,
                          help="number of routines (default: the Table 1 "
                               "corpus size)")
    p_corpus.add_argument("--seed", type=int, default=1997)
    p_corpus.add_argument("--out", default=None, metavar="DIR",
                          help="write one .loop file per nest into DIR "
                               "(feeds 'repro batch DIR'); default prints "
                               "sources to stdout")
    p_corpus.set_defaults(func=cmd_corpus)

    p_serve = sub.add_parser(
        "serve", help="run the HTTP analysis service (see docs/SERVING.md)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8787,
                         help="listen port (0 picks a free one, announced "
                              "on stdout)")
    p_serve.add_argument("--machine", default="alpha",
                         help="default machine preset for requests that "
                              "omit one")
    p_serve.add_argument("--batch-max", type=int, default=16,
                         help="flush a batch at this many distinct requests")
    p_serve.add_argument("--batch-deadline-ms", type=float, default=10.0,
                         help="...or this many ms after the first arrival")
    p_serve.add_argument("--queue-limit", type=int, default=256,
                         help="admission queue bound before 429s")
    p_serve.add_argument("--threads", type=int, default=4,
                         help="inline executor threads (per worker in "
                              "sharded mode)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="run N sharded worker processes behind the "
                              "consistent-hash router (0 = single-process "
                              "server; see docs/CLUSTER.md)")
    p_serve.add_argument("--pool-workers", type=int, default=0,
                         help="engine process-pool size for large flushes "
                              "(0 disables)")
    p_serve.add_argument("--timeout", type=float, default=30.0,
                         help="per-request timeout in seconds")
    p_serve.add_argument("--drain-grace", type=float, default=30.0,
                         help="seconds to let in-flight work finish on "
                              "shutdown")
    p_serve.add_argument("--max-body", type=int, default=64 * 1024,
                         help="request body limit in bytes")
    p_serve.add_argument("--metrics-out", default=None,
                         help="flush the final metrics snapshot here on "
                              "shutdown")
    p_serve.add_argument("--cache", action="store_true",
                         help="use the on-disk table cache")
    p_serve.add_argument("--cache-dir", default=None,
                         help="override the cache location")
    p_serve.add_argument("--profile", action="store_true",
                         help="cProfile engine stages and batcher flushes; "
                              "the summary flushes next to --metrics-out")
    p_serve.add_argument("--trace", action="store_true",
                         help="record trace spans (or set REPRO_TRACE=1)")
    p_serve.add_argument("--model", default=None,
                         help="tier=fast model artifact (default: the "
                              "committed default; see docs/PREDICT.md)")
    p_serve.add_argument("--no-predict", action="store_true",
                         help="disable the learned fast tier (tier=fast/"
                              "auto requests fall back to exact)")
    p_serve.add_argument("--auto-confidence", type=float, default=None,
                         help="tier=auto serves fast only at or above "
                              "this confidence (default: the artifact's "
                              "embedded floor)")
    p_serve.set_defaults(func=cmd_serve)

    p_train = sub.add_parser(
        "train", help="train the tier=fast unroll predictor "
                      "(see docs/PREDICT.md)")
    from repro.predict.train import add_train_arguments

    add_train_arguments(p_train)
    p_train.set_defaults(func=cmd_train)

    p_cluster = sub.add_parser(
        "cluster", help="administer a running sharded router "
                        "(see docs/CLUSTER.md)")
    p_cluster.add_argument("action",
                           choices=("status", "drain", "scale", "reload"))
    p_cluster.add_argument("--host", default="127.0.0.1")
    p_cluster.add_argument("--port", type=int, default=8787)
    p_cluster.add_argument("--to", type=int, default=None,
                           help="target worker count (scale)")
    p_cluster.add_argument("--timeout", type=float, default=120.0,
                           help="HTTP timeout; a rolling reload can take "
                                "a while")
    p_cluster.add_argument("--json", action="store_true",
                           help="print raw JSON instead of the status "
                                "table")
    p_cluster.set_defaults(func=cmd_cluster)

    p_met = sub.add_parser(
        "metrics", help="dump metrics as Prometheus text or JSON")
    p_met.add_argument("--host", default="127.0.0.1")
    p_met.add_argument("--port", type=int, default=8787)
    p_met.add_argument("--from", dest="from_file", default=None,
                       metavar="PATH",
                       help="render a saved metrics JSON document instead "
                            "of scraping a live server")
    p_met.add_argument("--format", choices=("prometheus", "json"),
                       default="prometheus")
    p_met.set_defaults(func=cmd_metrics)

    p_cache = sub.add_parser("cache", help="on-disk table cache")
    p_cache.add_argument("action", choices=("stats", "clear"))
    p_cache.add_argument("--dir", default=None,
                         help="cache location (default: ~/.cache/repro or "
                              "$REPRO_CACHE_DIR)")
    p_cache.set_defaults(func=cmd_cache)

    p_pf = sub.add_parser("prefetch", help="software-prefetch plan")
    p_pf.add_argument("nest")
    p_pf.add_argument("--machine", default="alpha")
    p_pf.set_defaults(func=cmd_prefetch)

    p_exp = sub.add_parser("export", help="dependence graph (text or DOT)")
    p_exp.add_argument("nest")
    p_exp.add_argument("--format", choices=("text", "dot"), default="text")
    p_exp.add_argument("--no-input", action="store_true",
                       help="omit input dependences (the UGS compiler view)")
    p_exp.set_defaults(func=cmd_export)

    p_dist = sub.add_parser("distribute", help="loop distribution")
    p_dist.add_argument("nest")
    p_dist.set_defaults(func=cmd_distribute)

    p_sched = sub.add_parser("schedule", help="list-schedule the body")
    p_sched.add_argument("nest")
    p_sched.add_argument("--machine", default="alpha")
    p_sched.add_argument("--unroll", default="",
                         help="unroll-and-jam first (comma-separated)")
    p_sched.set_defaults(func=cmd_schedule)

    p_t1 = sub.add_parser("table1", help="input-dependence experiment")
    p_t1.add_argument("--routines", type=int, default=400)
    p_t1.add_argument("--seed", type=int, default=1997)
    p_t1.set_defaults(func=cmd_table1)

    p_fig = sub.add_parser("figure", help="Figure 8/9 series")
    p_fig.add_argument("--machine", default="alpha")
    p_fig.add_argument("--bound", type=int, default=6)
    p_fig.add_argument("--simd", action="store_true",
                       help="the SIMD on/off analog instead: scalar vs "
                            "vectorized objective under the lane cost "
                            "model (docs/VECTORIZE.md)")
    p_fig.set_defaults(func=cmd_figure)

    return parser

def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)

if __name__ == "__main__":
    sys.exit(main())
