"""The cluster front door: structural-key routing over N warm workers.

:class:`ClusterRouter` listens on one public port and forwards every
``POST /v1/*`` request to one of the supervisor's worker processes:

* **sticky routing** -- the request body's nest spec is coerced to its
  :meth:`~repro.ir.nodes.LoopNest.structural_key` (memoized in a small
  LRU so repeated bodies never re-parse on the router loop) and looked
  up on the consistent-hash ring.  Identical nests therefore always hit
  the worker whose memo tables and disk-cache namespace are already
  warm for them -- the cluster-level analogue of the engine's own
  memoization.  Binary-frame requests (``POST /v2/frame``) carry the
  key in the frame header, so the router routes them without parsing
  the body at all;
* **the L2 result cache** -- analysis requests are pure, so 200
  responses are cached at the front door keyed on the raw request
  bytes; a warm repeat is answered without a worker hop (the
  ``x-repro-cache: hit`` header says so).  Hot keys are tracked, and
  after ``scale``/``reload`` the top-K hot requests are speculatively
  replayed to every READY worker so fresh shards start warm;
* **fallback** -- bodies that yield no key (unparseable JSON, unknown
  kernel names, malformed specs) go to the least-pending READY worker,
  which produces the authoritative error response so error shapes stay
  byte-identical with single-process serving;
* **failover** -- when the chosen worker cannot be reached (crashed
  mid-request, draining away), the router retries the next workers in
  ring-preference order (bounded by ``retry_attempts``); analysis
  requests are pure, so replay is safe.  With no READY workers at all
  the answer is ``503`` with ``Retry-After``;
* **federation** -- ``GET /metrics`` fans out to every READY worker,
  merges the engine snapshots through the same
  :meth:`~repro.engine.metrics.Metrics.merge` path the offline tools
  use, and reports the merged totals plus the raw per-shard documents
  (JSON) or per-shard-labeled series (Prometheus text);
* **admin** -- ``GET /cluster/status`` and ``POST
  /cluster/{drain,scale,reload}`` drive the supervisor; ``python -m
  repro cluster`` is a thin client over these routes.

Trace ids propagate: the router's ``cluster.route`` span context rides
the ``x-repro-trace-id``/``x-repro-parent-id`` headers, so worker-side
spans nest under the routed request.  Every proxied response carries
``x-repro-shard`` naming the worker that served it.
"""

from __future__ import annotations

import asyncio
import collections
import hashlib
import json
import signal
import threading
import time

from repro import api, obs
from repro.cluster.membership import Membership, WorkerInfo
from repro.cluster.supervisor import ClusterConfig, Supervisor
from repro.engine.metrics import Metrics
from repro.serve import protocol
from repro.serve.http import (
    Request,
    json_response,
    negotiated_error,
    raw_response,
    read_request,
    text_response,
    wants_prometheus,
)
from repro.serve.server import PARENT_ID_HEADER, TRACE_ID_HEADER

__all__ = ["ClusterRouter", "ClusterThread", "SHARD_HEADER", "run_cluster"]

#: Response header naming the worker slot that served a proxied request.
SHARD_HEADER = "x-repro-shard"

#: Idle keep-alive connections the router parks per worker.
_POOL_SIZE = 8

#: Bound on header lines when reading a worker's response.
_MAX_RESPONSE_HEADERS = 64

class _WorkerError(Exception):
    """The worker could not produce a response (connect/read failure)."""

class ClusterRouter:
    """One public listener + supervisor + membership; loop-confined."""

    def __init__(self, config: ClusterConfig | None = None):
        self.config = config if config is not None else ClusterConfig()
        self.metrics = Metrics()
        self.membership = Membership(replicas=self.config.ring_replicas)
        self.supervisor = Supervisor(self.config, self.membership,
                                     self.metrics)
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._started_at = time.monotonic()
        # structural-key LRU: normalized nest spec -> ring key (or None
        # when the spec cannot be coerced).
        self._keys: collections.OrderedDict[str, str | None] = \
            collections.OrderedDict()
        # per-slot idle connection pools, invalidated by port change
        self._pools: dict[tuple[int, int], list] = {}
        # L2 result cache: digest of (path, raw body) -> the worker's
        # 200 response (status, content-type, body, shard).  Sound
        # because the API verbs are pure functions of the request.
        self._l2: collections.OrderedDict[bytes,
                                          tuple[int, str, bytes, str]] = \
            collections.OrderedDict()
        # hot-key tracker + a replayable sample request per key, feeding
        # the post-scale/reload speculative pre-warm.
        self._hot: collections.Counter = collections.Counter()
        self._warm_bodies: dict[str, tuple[str, str, bytes]] = {}
        self._prewarm_task: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self.supervisor.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        print(f"repro-cluster routing on "
              f"http://{self.config.host}:{self.port} "
              f"({self.config.workers} workers)", flush=True)

    async def wait_ready(self, workers: int | None = None,
                         timeout_s: float | None = None) -> None:
        """Block until ``workers`` shards are READY (default: all)."""
        want = workers if workers is not None else self.config.workers
        deadline = time.monotonic() + (
            timeout_s if timeout_s is not None
            else self.config.startup_timeout_s)
        while len(self.membership.ready()) < want:
            if time.monotonic() > deadline:
                states = self.membership.states()
                raise RuntimeError(
                    f"cluster not ready within "
                    f"{self.config.startup_timeout_s}s: {states}")
            await asyncio.sleep(self.config.probe_interval_s / 4)

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def shutdown(self) -> None:
        """Close the front door, drain every worker, finish connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Release pooled keep-alive connections first: the workers'
        # handler tasks see EOF and exit before the SIGTERM drain.
        self._close_pools()
        await self.supervisor.drain()
        # Nudge parked keep-alive clients: closing the transport wakes
        # their handler task out of read_request so the drain below is
        # bounded by in-flight requests, not idle connections.
        for writer in list(self._writers):
            writer.close()
        if self._connections:
            await asyncio.wait(set(self._connections),
                               timeout=self.config.drain_grace_s)
        self._flush_metrics()

    async def run(self) -> int:
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass
        await self._shutdown.wait()
        print("repro-cluster draining...", flush=True)
        await self.shutdown()
        print("repro-cluster stopped", flush=True)
        return 0

    def _close_pools(self) -> None:
        for conns in self._pools.values():
            for _, writer in conns:
                writer.close()
        self._pools.clear()

    def _flush_metrics(self) -> None:
        if not self.config.metrics_path:
            return
        import pathlib
        path = pathlib.Path(self.config.metrics_path)
        document = {
            "uptime_s": time.monotonic() - self._started_at,
            "cluster": self._cluster_summary(),
            "router": {"metrics": self.metrics.snapshot()},
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(document, indent=2, sort_keys=True)
                            + "\n")
        except OSError as err:
            print(f"repro-cluster: cannot flush metrics: {err}", flush=True)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._writers.add(writer)
        try:
            while True:
                request = await read_request(
                    reader, writer, self.config.max_body,
                    protocol.error_payload,
                    on_oversized=lambda: self.metrics.count(
                        "cluster.oversized"))
                if request is None:
                    break
                response = await self._respond(request)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive or self._shutdown.is_set():
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, request: Request) -> bytes:
        close = not request.keep_alive or self._shutdown.is_set()
        path, _, query = request.path.partition("?")
        if path == "/healthz":
            if request.method != "GET":
                return json_response(405, protocol.error_payload(
                    "method_not_allowed", "use GET"), close=close)
            document = self._health_document()
            status = 200 if document["status"] == "ok" else 503
            return json_response(status, document, close=close)
        if path == "/metrics":
            if request.method != "GET":
                return json_response(405, protocol.error_payload(
                    "method_not_allowed", "use GET"), close=close)
            document = await self._federated_document()
            if wants_prometheus(request.headers, query):
                return text_response(
                    200, obs.document_to_exposition(document),
                    obs.PROMETHEUS_CONTENT_TYPE, close=close)
            return json_response(200, document, close=close)
        if path == "/cluster/status":
            if request.method != "GET":
                return json_response(405, protocol.error_payload(
                    "method_not_allowed", "use GET"), close=close)
            return json_response(200, self._status_document(), close=close)
        if path in ("/cluster/drain", "/cluster/scale", "/cluster/reload"):
            if request.method != "POST":
                return json_response(405, protocol.error_payload(
                    "method_not_allowed", "use POST"), close=close)
            return await self._handle_admin(path, request.body)
        if path.startswith("/v1/"):
            if request.method != "POST":
                return json_response(405, protocol.error_payload(
                    "method_not_allowed", "use POST"), close=close)
            return await self._route_api(
                path, request, close,
                key=self.structural_key(request.body),
                content_type="application/json")
        if path == "/v2/frame":
            if request.method != "POST":
                return negotiated_error(request, 405, "method_not_allowed",
                                        "use POST", close=close)
            # The frame header carries the structural key: route on it
            # without ever parsing the payload.
            try:
                frame = protocol.peek_frame(request.body)
            except protocol.ProtocolError as err:
                return negotiated_error(request, err.status, err.error_type,
                                        str(err), close=close)
            return await self._route_api(
                path, request, close, key=frame.key,
                content_type=protocol.CONTENT_TYPE_FRAME)
        return negotiated_error(request, 404, "not_found",
                                f"no route {request.path!r}", close=close)

    # -- admin ---------------------------------------------------------------

    async def _handle_admin(self, path: str, body: bytes) -> bytes:
        self.metrics.count("cluster.admin_requests")
        if path == "/cluster/drain":
            # Answer first, then drain: the caller's connection closes
            # cleanly while run()/ClusterThread tears the cluster down.
            self.request_shutdown()
            return json_response(200, {"ok": True, "draining": True},
                                 close=True)
        if path == "/cluster/reload":
            result = await self.supervisor.reload()
            result["prewarm"] = self._start_prewarm()
            return json_response(200, {"ok": True, **result}, close=False)
        try:
            document = json.loads(body.decode("utf-8")) if body else {}
            target = int(document["workers"])
        except (ValueError, KeyError, UnicodeDecodeError):
            return json_response(400, protocol.error_payload(
                "bad_request", 'scale body must be {"workers": N}'),
                close=False)
        try:
            result = await self.supervisor.scale(target)
        except ValueError as err:
            return json_response(400, protocol.error_payload(
                "bad_request", str(err)), close=False)
        result["prewarm"] = self._start_prewarm()
        return json_response(200, {"ok": True, **result}, close=False)

    # -- speculative pre-warming ---------------------------------------------

    def _start_prewarm(self) -> int:
        """Kick off a background replay of the hottest requests to every
        READY worker; returns how many keys will be replayed."""
        top = [key for key, _ in
               self._hot.most_common(self.config.prewarm_top_k)
               if key in self._warm_bodies]
        if not top or self.config.prewarm_top_k <= 0:
            return 0
        if self._prewarm_task is not None and \
                not self._prewarm_task.done():
            self._prewarm_task.cancel()
        self._prewarm_task = asyncio.ensure_future(self._prewarm(top))
        return len(top)

    async def _prewarm(self, keys: list[str]) -> None:
        # Every READY worker gets every hot request: after a scale-up
        # the ring has re-sliced, so any of them may own any key now.
        # Repeats are near-free on already-warm workers (result cache).
        for info in sorted(self.membership.ready(),
                           key=lambda info: info.slot):
            for key in keys:
                path, content_type, body = self._warm_bodies[key]
                try:
                    await self._worker_request(info, "POST", path, body,
                                               content_type=content_type)
                    self.metrics.count("cluster.prewarm_requests")
                except _WorkerError:
                    self.metrics.count("cluster.prewarm_errors")
                    break

    # -- routing -------------------------------------------------------------

    def structural_key(self, body: bytes) -> str | None:
        """The ring key for a request body, or ``None`` when the nest
        spec cannot be coerced (the fallback path).

        The key is *structural only* -- machine presets and engine
        parameters do not participate -- so every variant of a nest
        shares one shard's warm artifacts.
        """
        try:
            document = json.loads(body.decode("utf-8"))
            spec = document["nest"]
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return None
        if isinstance(spec, str):
            normalized = "s:" + spec
        elif isinstance(spec, dict):
            try:
                normalized = "d:" + json.dumps(spec, sort_keys=True)
            except (TypeError, ValueError):
                return None
        else:
            return None
        cached = self._keys.get(normalized)
        if normalized in self._keys:
            self._keys.move_to_end(normalized)
            return cached
        try:
            key = api.coerce_nest(spec).structural_key()
        except Exception:
            key = None
        self._keys[normalized] = key
        if len(self._keys) > self.config.key_cache:
            self._keys.popitem(last=False)
        return key

    def _note_hot(self, key: str | None, path: str, content_type: str,
                  body: bytes) -> None:
        if key is None:
            return
        self._hot[key] += 1
        if key not in self._warm_bodies and \
                len(self._warm_bodies) < 4 * max(1,
                                                 self.config.prewarm_top_k):
            self._warm_bodies[key] = (path, content_type, body)

    async def _route_api(self, path: str, request: Request, close: bool,
                         key: str | None,
                         content_type: str) -> bytes:
        self.metrics.count("cluster.requests")
        self.metrics.count("cluster.routed_sticky" if key is not None
                           else "cluster.routed_fallback")
        self._note_hot(key, path, content_type, request.body)
        l2_key = None
        if self.config.l2_cache > 0:
            l2_key = hashlib.sha256(path.encode("utf-8") + b"\x00"
                                    + request.body).digest()
            cached = self._l2.get(l2_key)
            if cached is not None:
                self._l2.move_to_end(l2_key)
                self.metrics.count("cluster.l2_hits")
                status, cached_type, body, shard = cached
                return raw_response(status, body, cached_type, close=close,
                                    headers={"x-repro-cache": "hit",
                                             SHARD_HEADER: shard})
            self.metrics.count("cluster.l2_misses")
        with obs.span("cluster.route", path=path,
                      sticky=key is not None):
            candidates = self.membership.route(key)
            if not candidates:
                self.metrics.count("cluster.no_workers")
                return negotiated_error(
                    request, 503, "no_workers",
                    "no ready workers (cluster draining or "
                    "starting); retry later",
                    retry_after=1.0, close=close,
                    headers={"retry-after": "1"})
            attempts = 1 + max(0, self.config.retry_attempts)
            for index, info in enumerate(candidates[:attempts]):
                if index:
                    self.metrics.count("cluster.failovers")
                try:
                    status, headers, body = await self._worker_request(
                        info, "POST", path, request.body,
                        trace=obs.current_context(),
                        content_type=content_type)
                except _WorkerError:
                    self.supervisor.note_suspect(info.slot)
                    continue
                extra = {SHARD_HEADER: str(info.slot)}
                if "retry-after" in headers:
                    extra["retry-after"] = headers["retry-after"]
                response_type = headers.get("content-type",
                                            "application/json")
                if status == 200 and l2_key is not None:
                    while len(self._l2) >= self.config.l2_cache:
                        self._l2.popitem(last=False)
                    self._l2[l2_key] = (status, response_type, body,
                                        str(info.slot))
                return raw_response(status, body, response_type,
                                    close=close, headers=extra)
        self.metrics.count("cluster.unrouted")
        return negotiated_error(
            request, 502, "worker_unavailable",
            "every candidate worker failed; the supervisor is "
            "restarting them -- retry", retry_after=1.0, close=close,
            headers={"retry-after": "1"})

    # -- worker HTTP ---------------------------------------------------------

    async def _worker_request(self, info: WorkerInfo, method: str,
                              path: str, body: bytes = b"",
                              trace: tuple[str, str] | None = None,
                              content_type: str = "application/json",
                              ) -> tuple[int, dict, bytes]:
        """One proxied exchange with a worker; pooled keep-alive
        connections, one fresh-connection retry if a pooled (possibly
        stale) connection fails."""
        if info.port is None:
            raise _WorkerError("worker has no port yet")
        pool_key = (info.slot, info.port)
        conn = self._pool_get(pool_key)
        pooled = conn is not None
        info.pending += 1
        try:
            for attempt in range(2):
                if conn is None:
                    try:
                        conn = await asyncio.wait_for(
                            asyncio.open_connection("127.0.0.1", info.port),
                            self.config.probe_timeout_s)
                    except (OSError, asyncio.TimeoutError) as err:
                        raise _WorkerError(f"connect: {err}") from err
                    pooled = False
                try:
                    result = await asyncio.wait_for(
                        self._exchange(conn, info, method, path, body,
                                       trace, content_type),
                        self.config.request_timeout_s + 5.0)
                except (OSError, asyncio.TimeoutError, ConnectionError,
                        asyncio.IncompleteReadError) as err:
                    conn[1].close()
                    conn = None
                    if pooled and attempt == 0:
                        continue  # stale keep-alive: retry once, fresh
                    raise _WorkerError(f"exchange: {err}") from err
                status, headers, payload, keep_alive = result
                if keep_alive:
                    self._pool_put(pool_key, conn)
                else:
                    conn[1].close()
                return status, headers, payload
            raise _WorkerError("unreachable")  # pragma: no cover
        finally:
            info.pending = max(0, info.pending - 1)

    async def _exchange(self, conn, info: WorkerInfo, method: str,
                        path: str, body: bytes,
                        trace: tuple[str, str] | None,
                        content_type: str = "application/json"):
        reader, writer = conn
        lines = [f"{method} {path} HTTP/1.1",
                 f"host: shard-{info.slot}",
                 f"content-length: {len(body)}",
                 f"content-type: {content_type}",
                 "connection: keep-alive"]
        if trace is not None:
            lines.append(f"{TRACE_ID_HEADER}: {trace[0]}")
            lines.append(f"{PARENT_ID_HEADER}: {trace[1]}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"bad status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        for _ in range(_MAX_RESPONSE_HEADERS):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ConnectionError("worker response header overflow")
        length = int(headers.get("content-length", "0"))
        payload = await reader.readexactly(length) if length else b""
        keep_alive = headers.get("connection", "keep-alive").lower() \
            != "close"
        return status, headers, payload, keep_alive

    def _pool_get(self, pool_key: tuple[int, int]):
        conns = self._pools.get(pool_key)
        while conns:
            reader, writer = conns.pop()
            if not writer.is_closing() and not reader.at_eof():
                return (reader, writer)
            writer.close()
        return None

    def _pool_put(self, pool_key: tuple[int, int], conn) -> None:
        if conn[1].is_closing():
            return
        conns = self._pools.setdefault(pool_key, [])
        if len(conns) < _POOL_SIZE:
            conns.append(conn)
        else:
            conn[1].close()

    # -- documents -----------------------------------------------------------

    def _cluster_summary(self) -> dict:
        ready = self.membership.ready()
        return {
            "workers": self.config.workers,
            "target": self.supervisor.target,
            "ready": len(ready),
            "generation": self.membership.generation,
            "states": self.membership.states(),
            "pending": sum(info.pending
                           for info in self.membership.workers.values()),
            "l2_cache": {"entries": len(self._l2),
                         "capacity": self.config.l2_cache},
            "hot_keys": len(self._hot),
        }

    def _health_document(self) -> dict:
        summary = self._cluster_summary()
        return {
            "status": "ok" if summary["ready"] else "degraded",
            "role": "router",
            "uptime_s": time.monotonic() - self._started_at,
            "machine": self.config.machine,
            "cluster": summary,
            "wire": {
                "versions": [1, protocol.WIRE_VERSION],
                "frame_content_type": protocol.CONTENT_TYPE_FRAME,
                "frame_path": "/v2/frame",
            },
        }

    def _status_document(self) -> dict:
        return {
            "router": {
                "port": self.port,
                "uptime_s": time.monotonic() - self._started_at,
                "draining": self._shutdown.is_set(),
            },
            "cluster": self._cluster_summary(),
            "membership": self.membership.to_dict(),
        }

    async def _federated_document(self) -> dict:
        """Fan out ``GET /metrics`` to every READY worker and merge."""
        ready = sorted(self.membership.ready(),
                       key=lambda info: info.slot)
        results = await asyncio.gather(
            *(self._fetch_metrics(info) for info in ready),
            return_exceptions=True)
        shards: dict[str, dict] = {}
        merged = Metrics()
        for info, result in zip(ready, results):
            if isinstance(result, dict):
                shards[str(info.slot)] = result
                merged.merge(result.get("metrics", {}))
            else:
                self.metrics.count("cluster.federation_errors")
        return {
            "federated": True,
            "uptime_s": time.monotonic() - self._started_at,
            "cluster": self._cluster_summary(),
            "router": {"metrics": self.metrics.snapshot()},
            "metrics": merged.snapshot(),
            "shards": shards,
        }

    async def _fetch_metrics(self, info: WorkerInfo) -> dict:
        try:
            status, _, body = await self._worker_request(info, "GET",
                                                         "/metrics")
        except _WorkerError as err:
            raise RuntimeError(str(err)) from err
        if status != 200:
            raise RuntimeError(f"worker {info.slot} metrics: HTTP {status}")
        return json.loads(body.decode("utf-8"))

def run_cluster(config: ClusterConfig | None = None) -> int:
    """Blocking entry point for ``python -m repro serve --workers N``."""
    router = ClusterRouter(config)
    try:
        return asyncio.run(router.run())
    except KeyboardInterrupt:
        return 0

class ClusterThread:
    """A live cluster on a daemon thread (tests and the benchmark).

    ::

        with ClusterThread(ClusterConfig(workers=2)) as cluster:
            client = Client("127.0.0.1", cluster.port)
    """

    def __init__(self, config: ClusterConfig | None = None,
                 wait_for: int | None = None):
        self.router = ClusterRouter(config)
        self._wait_for = wait_for
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._main, daemon=True,
                                        name="repro-cluster-thread")
        self._error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.router.port is not None
        return self.router.port

    @property
    def config(self) -> ClusterConfig:
        return self.router.config

    def _main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as err:
            self._error = err
            self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.router.start()
        await self.router.wait_ready(self._wait_for)
        self._ready.set()
        await self.router._shutdown.wait()
        await self.router.shutdown()

    def start(self) -> "ClusterThread":
        self._thread.start()
        self._ready.wait(timeout=self.router.config.startup_timeout_s + 30)
        if self._error is not None:
            raise RuntimeError("cluster failed to start") from self._error
        if self.router.port is None:
            raise RuntimeError("cluster did not come up in time")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.router.request_shutdown)
        self._thread.join(timeout=60)

    def run_on_loop(self, coro, timeout_s: float = 30.0):
        """Run ``coro`` on the cluster's event loop (test hook)."""
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout_s)

    def __enter__(self) -> "ClusterThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
