"""Worker lifecycle: spawn, probe, restart with backoff, drain, scale.

The supervisor runs *inside the router process* as asyncio tasks and
owns every worker subprocess:

* **spawn** -- ``python -m repro.cluster.worker --slot I --announce F``
  with an environment that can import :mod:`repro`; the worker binds an
  ephemeral port and announces it through the file, so N workers never
  race for ports;
* **readiness** -- poll the announce file, then probe ``GET /healthz``
  until it answers 200; only then does the slot join the hash ring;
* **liveness** -- ``proc.poll()`` catches crashes (including
  ``kill -9``) and periodic health probes catch wedged workers; a dead
  worker leaves the ring immediately (its keys re-slot onto the
  survivors) and is restarted with exponential backoff
  (``restart_backoff_s * 2^k``, capped, jittered);
* **circuit breaker** -- after ``breaker_failures`` consecutive
  failures the slot is marked FAILED and no longer restarted (a worker
  that crashes on boot would otherwise flap forever); staying READY for
  ``breaker_reset_s`` closes the breaker.  ``cluster reload``/``scale``
  clear FAILED slots explicitly;
* **drain** -- SIGTERM to every worker reuses the serve layer's drain
  (every accepted request is answered), bounded by ``drain_grace_s``,
  then SIGKILL for stragglers -- no orphans;
* **scale / rolling reload** -- ``scale(n)`` adds slots or drains the
  highest ones away; ``reload()`` restarts slots one at a time, waiting
  for each to turn READY before touching the next, so capacity never
  drops by more than one worker.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import random
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field

import repro
from repro.cluster.membership import (
    DEAD,
    DRAINING,
    FAILED,
    READY,
    STARTING,
    STOPPED,
    Membership,
)
from repro.engine.metrics import Metrics

__all__ = ["ClusterConfig", "Supervisor"]

@dataclass
class ClusterConfig:
    """Every knob of the cluster (router + supervisor + worker spawn)."""

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 8787
    machine: str = "alpha"
    max_body: int = 64 * 1024
    request_timeout_s: float = 30.0
    drain_grace_s: float = 30.0
    metrics_path: str | None = None
    # supervision
    startup_timeout_s: float = 60.0
    probe_interval_s: float = 0.5
    probe_timeout_s: float = 2.0
    probe_failures: int = 3
    restart_backoff_s: float = 0.25
    restart_backoff_max_s: float = 10.0
    breaker_failures: int = 5
    breaker_reset_s: float = 5.0
    # routing
    ring_replicas: int = 64
    retry_attempts: int = 1
    key_cache: int = 4096
    #: Router-side second-level result cache entries (0 disables): warm
    #: repeats are answered at the front door without a worker hop.
    l2_cache: int = 4096
    #: Hot structural keys replayed to READY workers after scale/reload
    #: (0 disables speculative pre-warming).
    prewarm_top_k: int = 32
    #: Directory of the cross-worker mmap-backed shared table store
    #: (default: <runtime_dir>/shared; "" disables sharing).
    shared_dir: str | None = None
    # worker passthrough
    cache: bool = False
    cache_dir: str | None = None
    trace: bool = False
    worker_threads: int = 4
    worker_batch_max: int = 16
    worker_deadline_ms: float = 10.0
    worker_queue_limit: int = 256
    worker_pool_workers: int = 0
    runtime_dir: str | None = None  # announce files (default: a tempdir)
    worker_extra_args: list[str] = field(default_factory=list)

class Supervisor:
    """Owns the worker subprocesses; mutate only from the event loop."""

    def __init__(self, config: ClusterConfig,
                 membership: Membership | None = None,
                 metrics: Metrics | None = None):
        self.config = config
        self.membership = (membership if membership is not None
                           else Membership(replicas=config.ring_replicas))
        self.metrics = metrics if metrics is not None else Metrics()
        self.target = config.workers
        self.draining = False
        self._procs: dict[int, subprocess.Popen] = {}
        self._probe_misses: dict[int, int] = {}
        self._task: asyncio.Task | None = None
        self._owns_runtime_dir = config.runtime_dir is None
        self.runtime_dir = pathlib.Path(
            config.runtime_dir if config.runtime_dir is not None
            else tempfile.mkdtemp(prefix="repro-cluster-"))

    # -- spawning ------------------------------------------------------------

    def _announce_path(self, slot: int) -> pathlib.Path:
        return self.runtime_dir / f"worker-{slot}.json"

    def _worker_cmd(self, slot: int) -> list[str]:
        cfg = self.config
        cmd = [sys.executable, "-m", "repro.cluster.worker",
               "--slot", str(slot),
               "--announce", str(self._announce_path(slot)),
               "--machine", cfg.machine,
               "--timeout", str(cfg.request_timeout_s),
               "--max-body", str(cfg.max_body),
               "--threads", str(cfg.worker_threads),
               "--batch-max", str(cfg.worker_batch_max),
               "--batch-deadline-ms", str(cfg.worker_deadline_ms),
               "--queue-limit", str(cfg.worker_queue_limit),
               "--pool-workers", str(cfg.worker_pool_workers)]
        if cfg.cache:
            cmd.append("--cache")
            if cfg.cache_dir:
                cmd.extend(["--cache-dir", cfg.cache_dir])
        shared = self.shared_dir()
        if shared is not None:
            cmd.extend(["--shared-dir", str(shared)])
        cmd.extend(cfg.worker_extra_args)
        return cmd

    def shared_dir(self) -> pathlib.Path | None:
        """The cross-worker shared table store directory (``None`` when
        sharing is disabled with ``shared_dir=""``)."""
        if self.config.shared_dir == "":
            return None
        if self.config.shared_dir is not None:
            return pathlib.Path(self.config.shared_dir)
        return self.runtime_dir / "shared"

    def _worker_env(self) -> dict:
        env = dict(os.environ)
        # Make sure the child can import this very repro checkout even
        # when the parent was launched via a source tree on sys.path.
        src_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (src_root + os.pathsep + existing
                                 if existing else src_root)
        if self.config.trace:
            env["REPRO_TRACE"] = "1"
        return env

    def launch(self, slot: int) -> None:
        """Spawn (or respawn) the worker for ``slot``."""
        announce = self._announce_path(slot)
        try:
            announce.unlink()
        except OSError:
            pass
        # Worker stdout is silenced (the announce file carries the port);
        # stderr stays attached for crash diagnostics.
        proc = subprocess.Popen(self._worker_cmd(slot),
                                env=self._worker_env(),
                                stdout=subprocess.DEVNULL)
        self._procs[slot] = proc
        self._probe_misses[slot] = 0
        info = self.membership.transition(slot, STARTING)
        info.pid = proc.pid
        info.port = None
        info.started_at = time.monotonic()
        info.next_restart_at = None
        self.metrics.count("cluster.worker_launches")

    def start(self) -> None:
        """Spawn the initial fleet and begin monitoring."""
        for slot in range(self.target):
            self.launch(slot)
        self._task = asyncio.get_running_loop().create_task(
            self._monitor(), name="repro-cluster-supervisor")

    # -- monitoring ----------------------------------------------------------

    async def _monitor(self) -> None:
        while True:
            try:
                await self._sweep()
            except asyncio.CancelledError:
                raise
            except Exception as err:  # monitoring must never die
                self.metrics.count("cluster.supervisor_errors")
                print(f"repro-cluster: supervisor sweep failed: "
                      f"{type(err).__name__}: {err}", file=sys.stderr,
                      flush=True)
            await asyncio.sleep(self.config.probe_interval_s)

    async def _sweep(self) -> None:
        if self.draining:
            return
        now = time.monotonic()
        for slot in sorted(self.membership.workers):
            info = self.membership.workers[slot]
            if info.state == FAILED:
                continue
            if info.state == DEAD:
                if (info.next_restart_at is not None
                        and now >= info.next_restart_at):
                    self.launch(slot)
                continue
            proc = self._procs.get(slot)
            if proc is None:
                continue
            if proc.poll() is not None and info.state in (STARTING, READY):
                self._on_death(slot, f"exited with code {proc.returncode}")
                continue
            if info.state == STARTING:
                await self._check_startup(slot, info)
            elif info.state == READY:
                await self._check_liveness(slot, info, now)

    async def _check_startup(self, slot: int, info) -> None:
        if info.port is None:
            document = self._read_announce(slot)
            if document is None:
                if (time.monotonic() - info.started_at
                        > self.config.startup_timeout_s):
                    self._kill(slot)
                    self._on_death(slot, "startup timeout (no announce)")
                return
            info.port = int(document["port"])
        if await self.probe_health(info.port):
            self.membership.transition(slot, READY)
            self.metrics.count("cluster.worker_ready")
        elif (time.monotonic() - info.started_at
                > self.config.startup_timeout_s):
            self._kill(slot)
            self._on_death(slot, "startup timeout (healthz never 200)")

    async def _check_liveness(self, slot: int, info, now: float) -> None:
        if (info.consecutive_failures
                and info.ready_at is not None
                and now - info.ready_at > self.config.breaker_reset_s):
            info.consecutive_failures = 0  # stable again: close the breaker
        if await self.probe_health(info.port):
            self._probe_misses[slot] = 0
            return
        self._probe_misses[slot] = self._probe_misses.get(slot, 0) + 1
        self.metrics.count("cluster.probe_misses")
        if self._probe_misses[slot] >= self.config.probe_failures:
            self._kill(slot)
            self._on_death(slot, f"unresponsive to "
                                 f"{self._probe_misses[slot]} probes")

    def _read_announce(self, slot: int) -> dict | None:
        try:
            text = self._announce_path(slot).read_text()
            document = json.loads(text)
        except (OSError, json.JSONDecodeError, ValueError):
            return None
        return document if isinstance(document, dict) and "port" in document \
            else None

    async def probe_health(self, port: int | None) -> bool:
        """One bounded ``GET /healthz`` against a worker port."""
        if port is None:
            return False
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection("127.0.0.1", port),
                self.config.probe_timeout_s)
        except (OSError, asyncio.TimeoutError):
            return False
        try:
            writer.write(b"GET /healthz HTTP/1.1\r\n"
                         b"host: cluster\r\nconnection: close\r\n\r\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(),
                                          self.config.probe_timeout_s)
            return b" 200 " in line
        except (OSError, asyncio.TimeoutError, ConnectionError):
            return False
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    # -- failure handling ----------------------------------------------------

    def _on_death(self, slot: int, reason: str) -> None:
        info = self.membership.transition(slot, DEAD)
        info.last_error = reason
        info.restarts += 1
        info.consecutive_failures += 1
        info.port = None
        self._probe_misses[slot] = 0
        self.metrics.count("cluster.worker_deaths")
        if info.consecutive_failures >= self.config.breaker_failures:
            self.membership.transition(slot, FAILED)
            self.metrics.count("cluster.breaker_open")
            print(f"repro-cluster: worker {slot} failed "
                  f"{info.consecutive_failures}x consecutively; circuit "
                  f"breaker open ({reason})", file=sys.stderr, flush=True)
            return
        backoff = min(self.config.restart_backoff_max_s,
                      self.config.restart_backoff_s
                      * (2 ** (info.consecutive_failures - 1)))
        backoff *= 1.0 + 0.25 * random.random()  # jitter: no thundering herd
        info.next_restart_at = time.monotonic() + backoff
        print(f"repro-cluster: worker {slot} died ({reason}); restart in "
              f"{backoff:.2f}s", file=sys.stderr, flush=True)

    def note_suspect(self, slot: int) -> None:
        """The router hit a connection error on this worker; probe it on
        the next sweep rather than waiting a full liveness period."""
        self._probe_misses[slot] = max(self._probe_misses.get(slot, 0), 1)

    def _kill(self, slot: int) -> None:
        proc = self._procs.get(slot)
        if proc is not None and proc.poll() is None:
            proc.kill()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                pass

    # -- scale / reload / drain ----------------------------------------------

    async def scale(self, target: int) -> dict:
        """Grow to ``target`` slots, or drain the highest slots away.
        Also relaunches FAILED slots within the target (explicit admin
        action closes the breaker)."""
        if target < 1:
            raise ValueError("cluster needs at least one worker")
        previous = self.target
        self.target = target
        for slot in range(target):
            info = self.membership.workers.get(slot)
            if info is None:
                self.launch(slot)
            elif info.state in (FAILED, STOPPED):
                info.consecutive_failures = 0
                self.launch(slot)
        removed = [slot for slot in sorted(self.membership.workers)
                   if slot >= target]
        for slot in removed:
            await self._drain_slot(slot)
            self.membership.drop(slot)
        self.metrics.count("cluster.scales")
        return {"previous": previous, "target": target,
                "removed": removed}

    async def reload(self) -> dict:
        """Rolling restart: one slot at a time, waiting for READY."""
        reloaded = []
        for slot in sorted(self.membership.workers):
            info = self.membership.workers[slot]
            if info.state not in (READY, STARTING, FAILED):
                continue
            await self._drain_slot(slot)
            info.consecutive_failures = 0
            self.launch(slot)
            deadline = time.monotonic() + self.config.startup_timeout_s
            while time.monotonic() < deadline:
                if self.membership.workers[slot].state == READY:
                    break
                await asyncio.sleep(self.config.probe_interval_s / 2)
            reloaded.append(slot)
        self.metrics.count("cluster.reloads")
        return {"reloaded": reloaded}

    async def _drain_slot(self, slot: int) -> None:
        """SIGTERM one worker and wait for its serve-layer drain."""
        info = self.membership.workers.get(slot)
        proc = self._procs.get(slot)
        if info is not None:
            self.membership.transition(slot, DRAINING)
        if proc is None or proc.poll() is not None:
            if info is not None:
                self.membership.transition(slot, STOPPED)
            return
        try:
            proc.send_signal(signal.SIGTERM)
        except OSError:
            pass
        deadline = time.monotonic() + self.config.drain_grace_s
        while proc.poll() is None and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        if info is not None:
            self.membership.transition(slot, STOPPED)

    async def drain(self) -> None:
        """Graceful cluster-wide drain (SIGTERM path): every worker
        drains concurrently, stragglers are killed, nothing is left."""
        self.draining = True
        for slot in list(self.membership.workers):
            info = self.membership.workers[slot]
            if info.state in (READY, STARTING):
                self.membership.transition(slot, DRAINING)
                proc = self._procs.get(slot)
                if proc is not None and proc.poll() is None:
                    try:
                        proc.send_signal(signal.SIGTERM)
                    except OSError:
                        pass
        deadline = time.monotonic() + self.config.drain_grace_s
        while time.monotonic() < deadline:
            if all(proc.poll() is not None
                   for proc in self._procs.values()):
                break
            await asyncio.sleep(0.05)
        for slot, proc in self._procs.items():
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            self.membership.transition(slot, STOPPED)
        await self.stop()

    async def stop(self) -> None:
        """Tear the monitor down and reap every child (idempotent)."""
        if self._task is not None:
            self._task.cancel()
            await asyncio.gather(self._task, return_exceptions=True)
            self._task = None
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.kill()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                pass
        if self._owns_runtime_dir:
            for path in self.runtime_dir.glob("worker-*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
            try:
                self.runtime_dir.rmdir()
            except OSError:
                pass
