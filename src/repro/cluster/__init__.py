"""Sharded multi-process serving: router, supervisor, workers.

``python -m repro serve --workers N`` runs :func:`run_cluster`: N worker
processes (each the full single-process serving stack of
docs/SERVING.md, with a warm memoizing engine and a per-shard disk-cache
namespace) behind one asyncio router that consistent-hash-routes
requests on the engine's structural key.  See docs/CLUSTER.md for the
architecture and semantics; ``python -m repro cluster`` administers a
running router.
"""

# NOTE: repro.cluster.worker is deliberately NOT imported here -- the
# supervisor spawns it with ``python -m repro.cluster.worker``, and
# importing it from the package __init__ would make runpy warn about
# re-executing an already-imported module in every worker process.
from repro.cluster.membership import HashRing, Membership, WorkerInfo
from repro.cluster.router import (
    ClusterRouter,
    ClusterThread,
    SHARD_HEADER,
    run_cluster,
)
from repro.cluster.supervisor import ClusterConfig, Supervisor

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "ClusterThread",
    "HashRing",
    "Membership",
    "SHARD_HEADER",
    "Supervisor",
    "WorkerInfo",
    "run_cluster",
]
