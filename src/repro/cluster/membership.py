"""Cluster membership: worker states and the consistent-hash ring.

The routing insight (ISSUE 4, after MARS-style usage partitioning): the
engine memoizes per-nest artifacts behind
:meth:`~repro.ir.nodes.LoopNest.structural_key`, so partitioning traffic
by that key keeps reuse local -- a duplicate nest always lands on the
worker whose caches are already warm for it.

* :class:`HashRing` -- consistent hashing with virtual nodes.  Each
  member owns ``replicas`` pseudo-random points on a 64-bit ring
  (SHA-256 of ``"{member}#{vnode}"``); a key routes to the first point
  clockwise from its own hash.  Adding or removing one member moves only
  the keys adjacent to that member's points -- about ``1/N`` of the key
  space -- which is what keeps the other workers' memo caches warm
  across membership changes (tests/test_cluster_ring.py proves the
  bound).
* :class:`WorkerInfo` / :class:`Membership` -- the supervisor's view of
  each worker slot (state machine below) plus the ring over the READY
  subset.  The router only consults READY workers; DRAINING/DEAD/FAILED
  slots are out of the ring, so their keys re-slot onto the survivors.

State machine::

    STARTING -> READY -> DRAINING -> STOPPED
        |         |
        v         v
      DEAD  <-  DEAD -> (backoff restart) -> STARTING
        |
        v
      FAILED  (circuit breaker: too many consecutive failures)

Everything here is loop-confined (mutated only from the router/
supervisor event loop); no locks are taken.
"""

from __future__ import annotations

import bisect
import hashlib
import time
from typing import Iterable

__all__ = ["HashRing", "Membership", "WorkerInfo",
           "STARTING", "READY", "DRAINING", "DEAD", "FAILED", "STOPPED"]

STARTING = "starting"
READY = "ready"
DRAINING = "draining"
DEAD = "dead"
FAILED = "failed"    # circuit breaker open: no more restarts
STOPPED = "stopped"  # drained cleanly on request

#: Virtual nodes per member: enough to spread 1/N evenly, cheap to build.
DEFAULT_REPLICAS = 64

def _ring_hash(value: str) -> int:
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")

class HashRing:
    """Consistent hashing over string member ids with virtual nodes."""

    def __init__(self, members: Iterable[str] = (),
                 replicas: int = DEFAULT_REPLICAS):
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._points: list[int] = []      # sorted vnode hashes
        self._owners: dict[int, str] = {}  # vnode hash -> member id
        self._members: set[str] = set()
        for member in members:
            self.add(member)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    @property
    def members(self) -> set[str]:
        return set(self._members)

    def add(self, member: str) -> None:
        if member in self._members:
            return
        self._members.add(member)
        for vnode in range(self.replicas):
            point = _ring_hash(f"{member}#{vnode}")
            # A full-width SHA collision between distinct member#vnode
            # labels is negligible; first owner wins deterministically.
            if point not in self._owners:
                self._owners[point] = member
                bisect.insort(self._points, point)

    def remove(self, member: str) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        dropped = [point for point, owner in self._owners.items()
                   if owner == member]
        for point in dropped:
            del self._owners[point]
        dropped_set = set(dropped)
        self._points = [p for p in self._points if p not in dropped_set]

    def lookup(self, key: str) -> str | None:
        """The member owning ``key``, or ``None`` on an empty ring."""
        if not self._points:
            return None
        point = _ring_hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap: first point clockwise
        return self._owners[self._points[index]]

    def preference(self, key: str) -> list[str]:
        """Every member, nearest-first, for failover re-routing: the
        owner, then the member the key would move to if the owner left,
        and so on."""
        if not self._points:
            return []
        point = _ring_hash(key)
        start = bisect.bisect_right(self._points, point)
        seen: list[str] = []
        for offset in range(len(self._points)):
            owner = self._owners[
                self._points[(start + offset) % len(self._points)]]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self._members):
                    break
        return seen

class WorkerInfo:
    """The supervisor's bookkeeping for one worker slot."""

    __slots__ = ("slot", "state", "port", "pid", "restarts",
                 "consecutive_failures", "pending", "started_at",
                 "ready_at", "last_error", "next_restart_at")

    def __init__(self, slot: int):
        self.slot = slot
        self.state = STARTING
        self.port: int | None = None
        self.pid: int | None = None
        self.restarts = 0
        self.consecutive_failures = 0
        self.pending = 0            # router-tracked in-flight requests
        self.started_at = time.monotonic()
        self.ready_at: float | None = None
        self.last_error: str | None = None
        self.next_restart_at: float | None = None

    @property
    def member_id(self) -> str:
        """The ring identity.  Slot-based, not pid-based: a restarted
        worker re-slots onto exactly the points its predecessor owned,
        so only the crashed shard's keys ever move."""
        return f"w{self.slot}"

    def to_dict(self) -> dict:
        return {
            "slot": self.slot,
            "state": self.state,
            "port": self.port,
            "pid": self.pid,
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "pending": self.pending,
            "uptime_s": (time.monotonic() - self.ready_at
                         if self.ready_at is not None else 0.0),
            "last_error": self.last_error,
        }

class Membership:
    """Worker slots plus the ring over the READY subset."""

    def __init__(self, replicas: int = DEFAULT_REPLICAS):
        self.workers: dict[int, WorkerInfo] = {}
        self.ring = HashRing(replicas=replicas)
        self.generation = 0  # bumped on every ring change (observability)

    def ensure(self, slot: int) -> WorkerInfo:
        info = self.workers.get(slot)
        if info is None:
            info = self.workers[slot] = WorkerInfo(slot)
        return info

    def drop(self, slot: int) -> None:
        info = self.workers.pop(slot, None)
        if info is not None and info.member_id in self.ring:
            self.ring.remove(info.member_id)
            self.generation += 1

    def transition(self, slot: int, state: str) -> WorkerInfo:
        """Move a slot to ``state``, keeping the ring consistent: only
        READY workers hold ring points."""
        info = self.ensure(slot)
        was_ready = info.state == READY
        info.state = state
        if state == READY and not was_ready:
            info.ready_at = time.monotonic()
            self.ring.add(info.member_id)
            self.generation += 1
        elif state != READY and was_ready:
            self.ring.remove(info.member_id)
            self.generation += 1
        return info

    def by_member(self, member_id: str) -> WorkerInfo | None:
        for info in self.workers.values():
            if info.member_id == member_id:
                return info
        return None

    def ready(self) -> list[WorkerInfo]:
        return [info for info in self.workers.values()
                if info.state == READY]

    def least_pending(self) -> WorkerInfo | None:
        """The READY worker with the shortest router-side queue -- the
        fallback for requests whose body yields no structural key."""
        candidates = self.ready()
        if not candidates:
            return None
        return min(candidates, key=lambda info: (info.pending, info.slot))

    def route(self, key: str | None) -> list[WorkerInfo]:
        """READY workers to try for ``key``, best first.

        With a key: the ring owner then its failover successors.  Without
        one: least-pending first.  Workers that left READY since their
        ring points were read are filtered out.
        """
        if key is None:
            ordered = sorted(self.ready(),
                             key=lambda info: (info.pending, info.slot))
            return ordered
        members = self.ring.preference(key)
        ordered = []
        for member in members:
            info = self.by_member(member)
            if info is not None and info.state == READY:
                ordered.append(info)
        return ordered

    def states(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for info in self.workers.values():
            tally[info.state] = tally.get(info.state, 0) + 1
        return tally

    def to_dict(self) -> dict:
        return {
            "generation": self.generation,
            "states": self.states(),
            "workers": {str(slot): info.to_dict()
                        for slot, info in sorted(self.workers.items())},
        }
