"""The cluster worker: one warm engine behind the serve stack, announced.

``python -m repro.cluster.worker --slot N --announce PATH`` hosts a
:class:`~repro.serve.server.AnalysisServer` (the full micro-batching /
coalescing / backpressure stack of docs/SERVING.md) on an ephemeral
loopback port and *announces* the bound port by atomically writing a
small JSON document to ``PATH``::

    {"slot": 3, "port": 43817, "pid": 12345}

The supervisor polls for that file instead of parsing stdout, then
probes ``/healthz`` until the worker turns READY.  Ephemeral ports mean
N workers never race for a port range, and a restarted worker simply
re-announces its new port.

Shard discipline:

* the server is tagged ``shard=<slot>`` so its health/metrics documents
  identify themselves in the router's federated view;
* with ``--cache``, the on-disk table cache lives under
  ``<cache-dir>/shard-<slot>`` -- a per-worker namespace.  Together with
  the router's sticky structural-key routing this gives each cache
  entry a single writer, so shards never fight over entries (the
  engine's atomic-replace writes make even accidental sharing safe, but
  the namespace removes the contention entirely);
* with ``--shared-dir``, hot unroll tables are shared *across* shards
  through the mmap-backed read-mostly store
  (:mod:`repro.engine.shared`): whichever worker builds a table first
  publishes it, and every other shard -- including ones spawned later
  by ``scale`` -- reads it straight from the shared page cache.

SIGTERM drains gracefully through the serve layer's drain: the listener
closes, every accepted request is answered, then the process exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import signal
import sys

from repro.engine import AnalysisEngine, default_cache_dir
from repro.serve.batcher import BatchConfig
from repro.serve.server import AnalysisServer, ServeConfig

__all__ = ["build_worker_server", "main", "shard_cache_dir"]

def shard_cache_dir(base: str | os.PathLike | None, slot: int) -> pathlib.Path:
    """The per-worker disk-cache namespace for ``slot``."""
    root = pathlib.Path(base) if base is not None else default_cache_dir()
    return root / f"shard-{slot}"

def _write_announce(path: pathlib.Path, document: dict) -> None:
    """Write-to-temp + atomic rename: the supervisor never reads a
    partially written announcement."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    tmp.write_text(json.dumps(document, sort_keys=True))
    os.replace(tmp, path)

def build_worker_server(args: argparse.Namespace) -> AnalysisServer:
    cache_dir = None
    if args.cache:
        cache_dir = shard_cache_dir(args.cache_dir, args.slot)
    engine = AnalysisEngine(disk_cache=args.cache, cache_dir=cache_dir,
                            shared_dir=getattr(args, "shared_dir", None))
    config = ServeConfig(
        host=args.host, port=args.port, machine=args.machine,
        max_body=args.max_body, request_timeout_s=args.timeout,
        metrics_path=args.metrics_out, shard=str(args.slot),
        model_path=getattr(args, "model", None),
        predict=not getattr(args, "no_predict", False),
        auto_confidence=getattr(args, "auto_confidence", None),
        batch=BatchConfig(max_batch=args.batch_max,
                          deadline_s=args.batch_deadline_ms / 1000.0,
                          queue_limit=args.queue_limit,
                          threads=args.threads,
                          workers=args.pool_workers))
    return AnalysisServer(config, engine)

async def _serve(server: AnalysisServer, announce: pathlib.Path | None,
                 slot: int) -> int:
    await server.start()
    if announce is not None:
        _write_announce(announce, {"slot": slot, "port": server.port,
                                   "pid": os.getpid()})
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except (NotImplementedError, RuntimeError):
            pass
    await server._shutdown.wait()
    await server.shutdown()
    return 0

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="one repro.cluster worker shard (spawned by the "
                    "supervisor; see docs/CLUSTER.md)")
    parser.add_argument("--slot", type=int, required=True,
                        help="shard slot index (stable across restarts)")
    parser.add_argument("--announce", default=None,
                        help="write {slot, port, pid} JSON here once "
                             "listening")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 (default) binds an ephemeral port")
    parser.add_argument("--machine", default="alpha")
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--max-body", type=int, default=64 * 1024)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--batch-max", type=int, default=16)
    parser.add_argument("--batch-deadline-ms", type=float, default=10.0)
    parser.add_argument("--queue-limit", type=int, default=256)
    parser.add_argument("--pool-workers", type=int, default=0,
                        help="engine process-pool size for large flushes")
    parser.add_argument("--cache", action="store_true",
                        help="per-shard on-disk table cache")
    parser.add_argument("--cache-dir", default=None,
                        help="cache base; the shard namespace is "
                             "<dir>/shard-<slot>")
    parser.add_argument("--shared-dir", default=None,
                        help="cross-worker mmap-backed shared table "
                             "store directory (all shards share it)")
    parser.add_argument("--metrics-out", default=None,
                        help="flush the final metrics snapshot here on "
                             "drain")
    parser.add_argument("--model", default=None,
                        help="tier=fast model artifact (default: the "
                             "committed default)")
    parser.add_argument("--no-predict", action="store_true",
                        help="disable the learned fast tier on this shard")
    parser.add_argument("--auto-confidence", type=float, default=None,
                        help="tier=auto confidence threshold override")
    return parser

def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    server = build_worker_server(args)
    announce = pathlib.Path(args.announce) if args.announce else None
    try:
        return asyncio.run(_serve(server, announce, args.slot))
    except KeyboardInterrupt:
        return 0

if __name__ == "__main__":
    sys.exit(main())
