"""``python -m repro cluster`` -- the admin client for a running router.

A thin synchronous client over the router's admin routes::

    python -m repro cluster status --port 8787
    python -m repro cluster drain  --port 8787
    python -m repro cluster scale  --port 8787 --to 4
    python -m repro cluster reload --port 8787

``status`` prints the membership table (slot, state, pid, port,
restarts, pending); ``drain`` asks the cluster to shut down gracefully;
``scale`` grows or shrinks the fleet; ``reload`` rolls every worker one
at a time.  Exit status is 0 exactly when the router answered 200.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.serve.client import ServeClient

__all__ = ["build_parser", "main", "run_admin"]

def _format_status(document: dict) -> str:
    lines = []
    cluster = document.get("cluster", {})
    router = document.get("router", {})
    lines.append(f"router :{router.get('port')} "
                 f"uptime {router.get('uptime_s', 0.0):.1f}s"
                 + (" DRAINING" if router.get("draining") else ""))
    lines.append(f"workers: {cluster.get('ready', 0)}/"
                 f"{cluster.get('target', 0)} ready, "
                 f"generation {cluster.get('generation', 0)}, "
                 f"pending {cluster.get('pending', 0)}")
    workers = document.get("membership", {}).get("workers", {})
    if workers:
        lines.append(f"{'slot':>4} {'state':<9} {'pid':>7} {'port':>6} "
                     f"{'restarts':>8} {'pending':>7}  last_error")
        for slot in sorted(workers, key=int):
            info = workers[slot]
            lines.append(
                f"{info.get('slot'):>4} {info.get('state', '?'):<9} "
                f"{info.get('pid') or '-':>7} {info.get('port') or '-':>6} "
                f"{info.get('restarts', 0):>8} {info.get('pending', 0):>7}"
                f"  {info.get('last_error') or ''}")
    return "\n".join(lines)

def run_admin(action: str, host: str, port: int,
              to: int | None = None, timeout: float = 120.0,
              as_json: bool = False) -> int:
    """Execute one admin action against the router; prints the result."""
    client = ServeClient(host, port, timeout=timeout)
    try:
        if action == "status":
            status, document = client.request("GET", "/cluster/status")
        elif action == "drain":
            status, document = client.request("POST", "/cluster/drain", {})
        elif action == "scale":
            if to is None:
                print("scale needs --to N", file=sys.stderr)
                return 2
            status, document = client.request("POST", "/cluster/scale",
                                              {"workers": to})
        elif action == "reload":
            status, document = client.request("POST", "/cluster/reload", {})
        else:  # pragma: no cover - argparse restricts choices
            print(f"unknown action {action!r}", file=sys.stderr)
            return 2
    except OSError as err:
        print(f"cannot reach router at {host}:{port}: {err}",
              file=sys.stderr)
        return 2
    finally:
        client.close()
    if as_json or action != "status":
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(_format_status(document))
    if status != 200:
        print(f"router answered HTTP {status}", file=sys.stderr)
        return 1
    return 0

def build_parser(parser: argparse.ArgumentParser | None = None
                 ) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(
            description="administer a running repro cluster router")
    parser.add_argument("action",
                        choices=("status", "drain", "scale", "reload"))
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument("--to", type=int, default=None,
                        help="target worker count (scale)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="HTTP timeout; reload of a large fleet can "
                             "take a while")
    parser.add_argument("--json", action="store_true",
                        help="print raw JSON instead of the status table")
    return parser

def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run_admin(args.action, args.host, args.port, to=args.to,
                     timeout=args.timeout, as_json=args.json)

if __name__ == "__main__":
    sys.exit(main())
