"""Exact rational linear algebra used by the reuse and unroll models.

Every quantity in the Wolf-Lam reuse model (kernels of subscript matrices,
merge-distance solutions, localized vector spaces) must be exact: a reuse
vector either lies in the localized space or it does not.  This package
therefore works over the rationals with :class:`fractions.Fraction` entries
rather than floating point.

Public API:

* :class:`Matrix` -- immutable rational matrix with solve/nullspace/rank.
* :class:`VectorSpace` -- subspace of Q^n with membership, intersection, sum.
* :class:`AffineSolution` -- solution set of ``A x = b`` (particular +
  homogeneous space), possibly empty.
"""

from repro.linalg.matrix import AffineSolution, Matrix
from repro.linalg.space import VectorSpace

__all__ = ["AffineSolution", "Matrix", "VectorSpace"]
