"""Subspaces of Q^n: spans of reuse vectors and localized vector spaces.

Wolf & Lam abstract the *localized iteration space* (the iterations whose
reuse a cache or register file can actually exploit) to a vector space.  The
reuse analysis then reduces to questions about these spaces: does the
self-temporal reuse space intersect the localized space?  does a group-reuse
equation have a solution inside it?  This module supplies that vocabulary.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from repro.linalg.matrix import Matrix, Rational, _frac

class VectorSpace:
    """A linear subspace of Q^n represented by a canonical (RREF) basis.

    Instances are immutable and hashable; two spaces compare equal iff they
    contain exactly the same vectors.
    """

    __slots__ = ("dimension_ambient", "basis")

    def __init__(self, vectors: Iterable[Sequence[Rational]], ambient: int):
        vecs = [tuple(_frac(x) for x in v) for v in vectors]
        if any(len(v) != ambient for v in vecs):
            raise ValueError("vector length does not match ambient dimension")
        if vecs:
            reduced = Matrix(vecs, ncols=ambient).rref()
            basis = tuple(row for row in reduced.rows if any(x != 0 for x in row))
        else:
            basis = ()
        object.__setattr__(self, "dimension_ambient", ambient)
        object.__setattr__(self, "basis", basis)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("VectorSpace is immutable")

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def zero(ambient: int) -> "VectorSpace":
        return VectorSpace([], ambient)

    @staticmethod
    def full(ambient: int) -> "VectorSpace":
        return VectorSpace(Matrix.identity(ambient).rows, ambient)

    @staticmethod
    def spanned_by_axes(axes: Iterable[int], ambient: int) -> "VectorSpace":
        """The span of the given coordinate axes (0-indexed, outer first).

        ``spanned_by_axes([n-1], n)`` is the usual "innermost loop only"
        localized space.
        """
        vectors = []
        for axis in axes:
            if not 0 <= axis < ambient:
                raise ValueError(f"axis {axis} out of range for ambient {ambient}")
            vec = [Fraction(0)] * ambient
            vec[axis] = Fraction(1)
            vectors.append(vec)
        return VectorSpace(vectors, ambient)

    # -- queries --------------------------------------------------------------

    @property
    def dim(self) -> int:
        return len(self.basis)

    def is_zero(self) -> bool:
        return not self.basis

    def contains(self, vector: Sequence[Rational]) -> bool:
        vec = tuple(_frac(x) for x in vector)
        if len(vec) != self.dimension_ambient:
            raise ValueError("vector has wrong ambient dimension")
        if all(x == 0 for x in vec):
            return True
        if not self.basis:
            return False
        span = Matrix(self.basis, ncols=self.dimension_ambient)
        return bool(span.transpose().solve(vec))

    def contains_space(self, other: "VectorSpace") -> bool:
        return all(self.contains(v) for v in other.basis)

    def basis_matrix(self) -> Matrix:
        """Basis vectors as *columns* (an n x dim matrix)."""
        return Matrix.from_columns(self.basis, nrows=self.dimension_ambient) \
            if self.basis else Matrix([[] for _ in range(self.dimension_ambient)], ncols=0)

    # -- lattice operations ---------------------------------------------------

    def sum(self, other: "VectorSpace") -> "VectorSpace":
        self._check_ambient(other)
        return VectorSpace(list(self.basis) + list(other.basis), self.dimension_ambient)

    def intersect(self, other: "VectorSpace") -> "VectorSpace":
        """Intersection via the kernel of the stacked basis combination.

        Writing U, V for the basis column-matrices, every vector of the
        intersection is ``U a = V b``; solving ``[U | -V] [a; b] = 0`` and
        mapping the ``a`` parts through U enumerates a spanning set.
        """
        self._check_ambient(other)
        if self.is_zero() or other.is_zero():
            return VectorSpace.zero(self.dimension_ambient)
        u_cols = self.basis
        v_cols = other.basis
        stacked = Matrix.from_columns(
            [list(col) for col in u_cols] + [[-x for x in col] for col in v_cols],
            nrows=self.dimension_ambient)
        vectors = []
        for kernel_vec in stacked.nullspace():
            coeffs = kernel_vec[: len(u_cols)]
            combo = [sum((coeffs[k] * u_cols[k][i] for k in range(len(u_cols))), Fraction(0))
                     for i in range(self.dimension_ambient)]
            vectors.append(combo)
        return VectorSpace(vectors, self.dimension_ambient)

    def _check_ambient(self, other: "VectorSpace") -> None:
        if self.dimension_ambient != other.dimension_ambient:
            raise ValueError("ambient dimension mismatch")

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, VectorSpace)
                and self.dimension_ambient == other.dimension_ambient
                and self.basis == other.basis)

    def __hash__(self) -> int:
        return hash((self.dimension_ambient, self.basis))

    def __repr__(self) -> str:
        if not self.basis:
            return f"VectorSpace(0 in Q^{self.dimension_ambient})"
        spans = ", ".join("(" + ", ".join(str(x) for x in v) + ")" for v in self.basis)
        return f"VectorSpace(span{{{spans}}} in Q^{self.dimension_ambient})"
