"""Integer linear algebra: Hermite normal form and integer solvability.

Reuse happens at whole iterations, so the group-reuse equations of the
model are *integer* systems: ``H x = c2 - c1`` needs a solution in
``L ∩ Z^n``, not merely in L.  This module supplies the exact machinery:
column-style Hermite normal form over Z and integer system solving, used
by :mod:`repro.reuse.group` to decide integrality without the decoupled
(SIV-only) shortcut.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Sequence

from repro.linalg.matrix import Matrix, Rational

def _to_int_rows(matrix: Matrix) -> tuple[list[list[int]], list[int]]:
    """Scale each row to integers; returns (rows, per-row scale factors)."""
    rows = []
    scales = []
    for row in matrix.rows:
        denom = 1
        for x in row:
            denom = denom * x.denominator // gcd(denom, x.denominator)
        rows.append([int(x * denom) for x in row])
        scales.append(denom)
    return rows, scales

def hermite_normal_form(matrix: Matrix) -> tuple[Matrix, Matrix]:
    """Column-style HNF: returns (H, U) with ``matrix @ U = H``, U
    unimodular, H lower-triangular-ish with non-negative pivots.

    Entries of ``matrix`` must be integers (Fractions with denominator 1).
    """
    for row in matrix.rows:
        for x in row:
            if x.denominator != 1:
                raise ValueError("HNF needs an integer matrix")
    m, n = matrix.nrows, matrix.ncols
    a = [[int(x) for x in row] for row in matrix.rows]
    u = [[int(i == j) for j in range(n)] for i in range(n)]

    def col_op(j: int, k: int, factor: int) -> None:
        """column j -= factor * column k (in both a and u)."""
        for i in range(m):
            a[i][j] -= factor * a[i][k]
        for i in range(n):
            u[i][j] -= factor * u[i][k]

    def col_swap(j: int, k: int) -> None:
        for i in range(m):
            a[i][j], a[i][k] = a[i][k], a[i][j]
        for i in range(n):
            u[i][j], u[i][k] = u[i][k], u[i][j]

    def col_negate(j: int) -> None:
        for i in range(m):
            a[i][j] = -a[i][j]
        for i in range(n):
            u[i][j] = -u[i][j]

    pivot_col = 0
    for row in range(m):
        if pivot_col >= n:
            break
        # Euclidean reduction across columns pivot_col..n-1 on this row.
        while True:
            nonzero = [j for j in range(pivot_col, n) if a[row][j] != 0]
            if not nonzero:
                break
            j_min = min(nonzero, key=lambda j: abs(a[row][j]))
            col_swap(pivot_col, j_min)
            if a[row][pivot_col] < 0:
                col_negate(pivot_col)
            done = True
            for j in range(pivot_col + 1, n):
                if a[row][j] != 0:
                    factor = a[row][j] // a[row][pivot_col]
                    col_op(j, pivot_col, factor)
                    if a[row][j] != 0:
                        done = False
            if done:
                break
        if a[row][pivot_col] != 0:
            # Reduce earlier columns of this row modulo the pivot.
            for j in range(pivot_col):
                factor = a[row][j] // a[row][pivot_col]
                if factor:
                    col_op(j, pivot_col, factor)
            pivot_col += 1
    return Matrix(a), Matrix(u)

def integer_solve(matrix: Matrix, rhs: Sequence[Rational]) -> tuple[int, ...] | None:
    """An integer solution x of ``matrix @ x = rhs``, or None.

    ``matrix`` may have rational entries; each equation is scaled to
    integers first (which can also prove unsolvability when the scaled
    right-hand side is fractional).
    """
    if len(rhs) != matrix.nrows:
        raise ValueError("rhs length mismatch")
    rows, scales = _to_int_rows(matrix)
    b = []
    for value, scale in zip(rhs, scales):
        scaled = Fraction(value) * scale
        if scaled.denominator != 1:
            return None
        b.append(int(scaled))
    int_matrix = Matrix(rows, ncols=matrix.ncols)
    hnf, unimod = hermite_normal_form(int_matrix)
    # Solve hnf @ y = b by substitution; hnf columns beyond the pivots are
    # zero.  Then x = unimod @ y.
    n = matrix.ncols
    y = [0] * n
    residual = list(b)
    col = 0
    for row in range(matrix.nrows):
        if col < n and hnf.entry(row, col) != 0:
            pivot = int(hnf.entry(row, col))
            if residual[row] % pivot:
                return None
            y[col] = residual[row] // pivot
            for r2 in range(matrix.nrows):
                residual[r2] -= y[col] * int(hnf.entry(r2, col))
            col += 1
        elif residual[row] != 0:
            return None
    if any(residual):
        return None
    x = unimod.matvec(y)
    return tuple(int(v) for v in x)

def integer_solvable(matrix: Matrix, rhs: Sequence[Rational]) -> bool:
    return integer_solve(matrix, rhs) is not None

def annihilator_rows(space_basis: tuple[tuple[Fraction, ...], ...],
                     ambient: int) -> Matrix:
    """Rows spanning the annihilator of a subspace: ``a`` with ``a·l = 0``
    for every l in the span.  Used to express ``x ∈ L`` as equations."""
    if not space_basis:
        return Matrix.identity(ambient)
    basis_matrix = Matrix(space_basis, ncols=ambient)
    return Matrix(basis_matrix.nullspace(), ncols=ambient) \
        if basis_matrix.nullspace() else Matrix([], ncols=ambient)
