"""Immutable exact rational matrices.

Sizes in this project are tiny (loop depths <= 6, array ranks <= 4), but
the merge-point solver and the locality scorer run eliminations inside the
hottest analysis loops, so arithmetic overhead matters.  Two exact paths
coexist:

* an **integer-first** path for all-integer matrices (the common case for
  subscript matrices H): fraction-free Bareiss forward elimination over
  plain ``int``, normalizing to :class:`fractions.Fraction` only at the
  boundary.  The reduced row echelon form of a matrix is unique, so every
  derived quantity (rank, nullspace, solve) is bit-identical to the
  reference path;
* the reference Gauss-Jordan elimination over ``Fraction``, kept both as
  the fallback for genuinely rational matrices and as the seed algorithm
  the parity fuzz suite compares against (see
  :func:`fraction_elimination`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Sequence

Rational = int | Fraction

def _frac(value: Rational) -> Fraction:
    return value if isinstance(value, Fraction) else Fraction(value)

#: When False, every elimination runs the reference Fraction path -- the
#: seed algorithm.  Toggled by :func:`fraction_elimination` for parity
#: tests and seed-path benchmark measurements.
_INTEGER_FAST_PATH = True

@contextmanager
def fraction_elimination() -> Iterator[None]:
    """Force the reference Fraction elimination (the seed algorithm) for
    the duration of the block.  Used by parity tests and by the
    cold-analysis benchmark's seed-path measurement."""
    global _INTEGER_FAST_PATH
    previous = _INTEGER_FAST_PATH
    _INTEGER_FAST_PATH = False
    try:
        yield
    finally:
        _INTEGER_FAST_PATH = previous

def _freeze(rows: Iterable[Iterable[Rational]]) -> tuple[tuple[Fraction, ...], ...]:
    return tuple(tuple(_frac(x) for x in row) for row in rows)

#: Sentinel for the lazily computed integer-rows cache.
_UNSET = object()

@dataclass(frozen=True)
class AffineSolution:
    """The solution set of ``A x = b``.

    ``particular`` is one solution; ``homogeneous`` is a basis of the kernel
    of ``A``.  The full solution set is ``particular + span(homogeneous)``.
    An inconsistent system is represented by :data:`NO_SOLUTION` (where
    ``exists`` is False).
    """

    exists: bool
    particular: tuple[Fraction, ...] = ()
    homogeneous: tuple[tuple[Fraction, ...], ...] = ()

    def is_unique(self) -> bool:
        return self.exists and not self.homogeneous

    def __bool__(self) -> bool:
        return self.exists

NO_SOLUTION = AffineSolution(exists=False)

class Matrix:
    """An immutable matrix over the rationals.

    Rows are tuples of :class:`fractions.Fraction`.  All arithmetic is exact.
    """

    __slots__ = ("rows", "nrows", "ncols", "_int_rows")

    def __init__(self, rows: Iterable[Iterable[Rational]], ncols: int | None = None):
        frozen = _freeze(rows)
        if frozen:
            width = len(frozen[0])
            if any(len(row) != width for row in frozen):
                raise ValueError("ragged rows in matrix")
            if ncols is not None and ncols != width:
                raise ValueError(f"ncols={ncols} does not match row width {width}")
        else:
            if ncols is None:
                raise ValueError("empty matrix needs an explicit ncols")
            width = ncols
        object.__setattr__(self, "rows", frozen)
        object.__setattr__(self, "nrows", len(frozen))
        object.__setattr__(self, "ncols", width)
        object.__setattr__(self, "_int_rows", _UNSET)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Matrix is immutable")

    def __reduce__(self):
        # __slots__ plus the blocked __setattr__ defeat default pickling;
        # rebuild through the constructor instead (needed to ship analysis
        # results across process-pool workers).
        return (Matrix, (self.rows, self.ncols))

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def identity(n: int) -> "Matrix":
        return Matrix([[Fraction(int(i == j)) for j in range(n)] for i in range(n)])

    @staticmethod
    def zero(nrows: int, ncols: int) -> "Matrix":
        return Matrix([[Fraction(0)] * ncols for _ in range(nrows)], ncols=ncols)

    @staticmethod
    def from_columns(columns: Sequence[Sequence[Rational]], nrows: int | None = None) -> "Matrix":
        if not columns:
            if nrows is None:
                raise ValueError("empty column list needs explicit nrows")
            return Matrix([[] for _ in range(nrows)], ncols=0) if nrows else Matrix([], ncols=0)
        height = len(columns[0])
        if any(len(col) != height for col in columns):
            raise ValueError("ragged columns")
        return Matrix([[columns[j][i] for j in range(len(columns))] for i in range(height)],
                      ncols=len(columns))

    # -- basics ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Matrix) and self.rows == other.rows and self.ncols == other.ncols

    def __hash__(self) -> int:
        return hash((self.rows, self.ncols))

    def __repr__(self) -> str:
        body = "; ".join(" ".join(str(x) for x in row) for row in self.rows)
        return f"Matrix({self.nrows}x{self.ncols}: {body})"

    def row(self, i: int) -> tuple[Fraction, ...]:
        return self.rows[i]

    def column(self, j: int) -> tuple[Fraction, ...]:
        return tuple(row[j] for row in self.rows)

    def entry(self, i: int, j: int) -> Fraction:
        return self.rows[i][j]

    def is_zero(self) -> bool:
        return all(x == 0 for row in self.rows for x in row)

    def transpose(self) -> "Matrix":
        return Matrix([self.column(j) for j in range(self.ncols)], ncols=self.nrows)

    def with_zero_row(self, index: int) -> "Matrix":
        """A copy of this matrix whose ``index``-th row is zeroed.

        Used to build the *spatial* subscript matrix H_S: with column-major
        storage the first (fastest-varying) array dimension is dropped when
        testing for spatial reuse.
        """
        rows = [tuple(Fraction(0) for _ in row) if i == index else row
                for i, row in enumerate(self.rows)]
        return Matrix(rows, ncols=self.ncols)

    def integer_rows(self) -> tuple[tuple[int, ...], ...] | None:
        """The rows as plain ``int`` tuples when every entry is integral,
        else None.  Cached: the answer never changes for an immutable
        matrix."""
        cached = self._int_rows
        if cached is _UNSET:
            if all(x.denominator == 1 for row in self.rows for x in row):
                cached = tuple(tuple(x.numerator for x in row)
                               for row in self.rows)
            else:
                cached = None
            object.__setattr__(self, "_int_rows", cached)
        return cached

    # -- arithmetic -----------------------------------------------------------

    def matvec(self, vector: Sequence[Rational]) -> tuple[Fraction, ...]:
        if len(vector) != self.ncols:
            raise ValueError(f"vector length {len(vector)} != ncols {self.ncols}")
        ints = self.integer_rows() if _INTEGER_FAST_PATH else None
        if ints is not None and all(type(x) is int for x in vector):
            return tuple(Fraction(sum(row[j] * vector[j]
                                      for j in range(self.ncols)))
                         for row in ints)
        vec = [_frac(x) for x in vector]
        return tuple(sum((row[j] * vec[j] for j in range(self.ncols)), Fraction(0))
                     for row in self.rows)

    def matmul(self, other: "Matrix") -> "Matrix":
        if self.ncols != other.nrows:
            raise ValueError("dimension mismatch in matmul")
        if _INTEGER_FAST_PATH:
            a, b = self.integer_rows(), other.integer_rows()
            if a is not None and b is not None:
                return Matrix(
                    [[sum(a[i][k] * b[k][j] for k in range(self.ncols))
                      for j in range(other.ncols)]
                     for i in range(self.nrows)],
                    ncols=other.ncols)
        return Matrix(
            [[sum((self.rows[i][k] * other.rows[k][j] for k in range(self.ncols)), Fraction(0))
              for j in range(other.ncols)]
             for i in range(self.nrows)],
            ncols=other.ncols)

    def stack(self, other: "Matrix") -> "Matrix":
        """Vertical concatenation."""
        if self.ncols != other.ncols:
            raise ValueError("column mismatch in stack")
        return Matrix(self.rows + other.rows, ncols=self.ncols)

    # -- elimination ----------------------------------------------------------

    def _rref(self) -> tuple[list[list[Fraction]], list[int]]:
        """Reduced row echelon form; returns (rows, pivot column indices).

        Dispatches to the fraction-free Bareiss path for all-integer
        matrices.  The RREF of a matrix is unique, so both paths return
        bit-identical results.
        """
        ints = self.integer_rows() if _INTEGER_FAST_PATH else None
        if ints is not None:
            return _rref_bareiss(ints, self.ncols)
        return self._rref_fraction()

    def _rref_fraction(self) -> tuple[list[list[Fraction]], list[int]]:
        """The reference Gauss-Jordan elimination over Fractions (the seed
        algorithm, exercised directly under :func:`fraction_elimination`)."""
        rows = [list(row) for row in self.rows]
        pivots: list[int] = []
        r = 0
        for c in range(self.ncols):
            pivot_row = next((i for i in range(r, len(rows)) if rows[i][c] != 0), None)
            if pivot_row is None:
                continue
            rows[r], rows[pivot_row] = rows[pivot_row], rows[r]
            inv = rows[r][c]
            rows[r] = [x / inv for x in rows[r]]
            for i in range(len(rows)):
                if i != r and rows[i][c] != 0:
                    factor = rows[i][c]
                    rows[i] = [a - factor * b for a, b in zip(rows[i], rows[r])]
            pivots.append(c)
            r += 1
            if r == len(rows):
                break
        return rows, pivots

    def rref(self) -> "Matrix":
        rows, _ = self._rref()
        return Matrix(rows, ncols=self.ncols)

    def rank(self) -> int:
        ints = self.integer_rows() if _INTEGER_FAST_PATH else None
        if ints is not None:
            # Rank needs only the forward (fraction-free) sweep.
            _, pivots = _bareiss_forward([list(row) for row in ints],
                                         self.ncols)
            return len(pivots)
        _, pivots = self._rref()
        return len(pivots)

    def nullspace(self) -> tuple[tuple[Fraction, ...], ...]:
        """A basis for ``{x : A x = 0}`` (possibly empty)."""
        rows, pivots = self._rref()
        free_cols = [c for c in range(self.ncols) if c not in pivots]
        basis = []
        for free in free_cols:
            vec = [Fraction(0)] * self.ncols
            vec[free] = Fraction(1)
            for r, pc in enumerate(pivots):
                vec[pc] = -rows[r][free]
            basis.append(tuple(vec))
        return tuple(basis)

    def solve(self, rhs: Sequence[Rational]) -> AffineSolution:
        """Solve ``A x = b`` over the rationals, returning the full set."""
        if len(rhs) != self.nrows:
            raise ValueError(f"rhs length {len(rhs)} != nrows {self.nrows}")
        augmented = Matrix([list(row) + [_frac(rhs[i])] for i, row in enumerate(self.rows)],
                           ncols=self.ncols + 1)
        rows, pivots = augmented._rref()
        if augmented.ncols - 1 in pivots:
            return NO_SOLUTION
        particular = [Fraction(0)] * self.ncols
        for r, pc in enumerate(pivots):
            particular[pc] = rows[r][-1]
        return AffineSolution(exists=True, particular=tuple(particular),
                              homogeneous=self.nullspace())

def _bareiss_forward(rows: list[list[int]],
                     ncols: int) -> tuple[list[list[int]], list[int]]:
    """Fraction-free Bareiss forward elimination, in place.

    After step ``r`` with pivot ``p_r``, every entry below row ``r`` is the
    determinant of a minor of the original matrix divided by the previous
    pivot, so the ``//`` division is exact.  The update must touch *every*
    row below the pivot (even ones with a zero multiplier) to keep that
    invariant; skipping rows would leave stale denominators behind.
    Returns the echelon rows and the pivot column indices.
    """
    pivots: list[int] = []
    nrows = len(rows)
    r = 0
    prev = 1
    for c in range(ncols):
        pivot_row = next((i for i in range(r, nrows) if rows[i][c]), None)
        if pivot_row is None:
            continue
        if pivot_row != r:
            rows[r], rows[pivot_row] = rows[pivot_row], rows[r]
        pivot = rows[r][c]
        top = rows[r]
        for i in range(r + 1, nrows):
            low = rows[i]
            factor = low[c]
            rows[i] = [(pivot * low[j] - factor * top[j]) // prev
                       for j in range(ncols)]
        prev = pivot
        pivots.append(c)
        r += 1
        if r == nrows:
            break
    return rows, pivots

def _rref_bareiss(int_rows: Sequence[Sequence[int]],
                  ncols: int) -> tuple[list[list[Fraction]], list[int]]:
    """RREF of an all-integer matrix via Bareiss + back-substitution.

    The forward sweep stays in exact integer arithmetic; only the final
    normalization to reduced form produces Fractions.  Because the RREF is
    unique, the result is bit-identical to :meth:`Matrix._rref_fraction`.
    """
    echelon, pivots = _bareiss_forward([list(row) for row in int_rows],
                                       ncols)
    nrows = len(echelon)
    reduced: list[list[Fraction]] = [
        [Fraction(0)] * ncols for _ in range(nrows)]
    # Back-substitute from the last pivot row upward: normalize the pivot
    # to 1, then clear the pivot column in all rows above using the
    # already-reduced rows below.
    for r in range(len(pivots) - 1, -1, -1):
        pc = pivots[r]
        pivot = echelon[r][pc]
        row = [Fraction(x, pivot) for x in echelon[r]]
        for rr in range(r + 1, len(pivots)):
            factor = row[pivots[rr]]
            if factor:
                lower = reduced[rr]
                row = [a - factor * b for a, b in zip(row, lower)]
                row[pivots[rr]] = Fraction(0)
        reduced[r] = row
    return reduced, pivots
