"""Feature schemas: deterministic nest featurization for the fast tier.

The fast tier's budget is a small fraction of the exact cold path, so
schema **v1** (the default) touches neither the dependence graph, the
locality scores, nor the unroll tables.  One walk over the statements
and array references derives cheap proxies for exactly the quantities
the exact search weighs -- per-level invariant and group-reused
references (the loads unroll-and-jam can amortize), register cost per
unroll copy, and the gap between the nest's naive loop balance and the
machine balance -- plus the machine-preset parameters, so one model can
serve every preset.

Schema **v2** is strictly additive: the full v1 layout, then summary
statistics of the static reuse-distance profile
(:func:`repro.reuse.profile.reuse_profile`, docs/REUSE.md) -- cold
fraction, set-conflict probability on the machine's own geometry, the
median log reuse distance, the in-cache fraction, and per-level carried
reuse mass.  Those cost a UGS partition per nest (still no dependence
graph), so v2 trades a little featurization time for cache-behavior
signal.  v1 artifacts keep loading and serving unchanged.

The schema is frozen per version: :func:`feature_names` is embedded in
every model artifact and checked at load time, so a model can never be
applied to vectors laid out differently from its training data.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable

from repro.ir.nodes import ArrayRef, LoopNest
from repro.machine.model import MachineModel
from repro.unroll.space import DEFAULT_BOUND

__all__ = [
    "FEATURE_SCHEMA_VERSION",
    "LATEST_FEATURE_VERSION",
    "MAX_DEPTH",
    "SUPPORTED_FEATURE_VERSIONS",
    "feature_names",
    "featurize",
]

#: The default schema: what new artifacts are trained with unless asked
#: otherwise, and what the committed default model ships with.
FEATURE_SCHEMA_VERSION = 1

#: Every layout this build can compute and serve.  An artifact records
#: the version it was trained with; the loader accepts any of these and
#: featurizes accordingly.
SUPPORTED_FEATURE_VERSIONS = (1, 2)
LATEST_FEATURE_VERSION = 2

#: Per-level feature slots are padded/truncated to this many loops.
MAX_DEPTH = 4

#: Reuse lags are capped here so one outlier constant cannot dominate.
_LAG_CAP = 16.0

_GLOBAL_NAMES = (
    "depth", "statements", "flops", "reads", "writes", "arrays",
    "scalar_temps", "params", "ref_groups", "max_group_size",
    "group_excess", "self_rw_statements", "naive_loads", "loop_balance",
    "machine_balance", "balance_gap", "balance_ratio",
)

_LEVEL_NAMES = (
    "active", "invariant_refs", "contiguous_refs", "carried_groups",
    "reuse_pairs", "reuse_lag", "loads_saved", "register_cost",
    "saved_per_flop", "max_unroll_by_regs", "gap_closure",
    "contiguous_frac", "balance_unroll", "feasible_unroll",
    "saved_margin",
)

_MACHINE_NAMES = (
    "m_balance", "m_registers", "m_line_words", "m_log_cache_words",
    "m_miss_penalty", "m_mem_issue", "m_fp_issue", "m_prefetch_bw",
)

_PARAM_NAMES = ("p_bound", "p_trip")

#: Schema v2's additive tail: reuse-profile summary statistics
#: (docs/REUSE.md), globals first, then one carried-mass slot per level.
_V2_GLOBAL_NAMES = (
    "rp_lines_per_iter", "rp_cold_fraction", "rp_conflict_prob",
    "rp_median_log_distance", "rp_in_cache_fraction",
)


def feature_names(max_depth: int = MAX_DEPTH,
                  version: int = FEATURE_SCHEMA_VERSION) -> list[str]:
    """The frozen, ordered names of one schema version (v1 is length 87
    at depth 4; v2 appends its reuse-profile tail)."""
    if version not in SUPPORTED_FEATURE_VERSIONS:
        raise ValueError(f"unsupported feature schema version {version!r}")
    names = list(_GLOBAL_NAMES)
    for level in range(max_depth):
        names.extend(f"l{level}_{name}" for name in _LEVEL_NAMES)
    names.extend(_MACHINE_NAMES)
    names.extend(_PARAM_NAMES)
    if version >= 2:
        names.extend(_V2_GLOBAL_NAMES)
        names.extend(f"rp_carried_l{level}" for level in range(max_depth))
    return names


def _group_key(ref: ArrayRef) -> tuple:
    """References whose subscripts differ only in constants form one
    group -- the cheap stand-in for a uniformly generated set."""
    return (ref.array,
            tuple((sub.loop_coeffs, sub.param_coeffs)
                  for sub in ref.subscripts))


def _collect_refs(nest: LoopNest) -> tuple[list[ArrayRef], list[ArrayRef]]:
    reads: list[ArrayRef] = []
    writes: list[ArrayRef] = []
    for statement in nest.body:
        reads.extend(statement.array_reads())
        writes.extend(statement.array_writes())
    return reads, writes


def _level_features(refs: list[ArrayRef],
                    groups: dict[tuple, list[ArrayRef]],
                    by_array: dict[str, list[ArrayRef]],
                    index_name: str, flops: int, naive_loads: int,
                    registers: int, bound: int,
                    machine_balance: float) -> list[float]:
    invariant = sum(
        1 for ref in refs
        if all(sub.coeff(index_name) == 0 for sub in ref.subscripts))
    contiguous = sum(
        1 for ref in refs
        if ref.subscripts and ref.subscripts[0].coeff(index_name) != 0
        and all(sub.coeff(index_name) == 0 for sub in ref.subscripts[1:]))
    carried_groups = sum(
        1 for members in groups.values()
        if any(sub.coeff(index_name) != 0
               for sub in members[0].subscripts))
    # Temporal reuse pairs this level carries: same array, identical
    # coefficient structure, constants differing only where this index
    # participates.  Unrolling the level turns each pair into a register
    # reuse, which is the load the exact model amortizes.
    reuse_pairs = 0
    lag_total = 0.0
    for members in by_array.values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                a, b = members[i], members[j]
                if len(a.subscripts) != len(b.subscripts):
                    continue
                carried = 0
                for sub_a, sub_b in zip(a.subscripts, b.subscripts):
                    if (sub_a.loop_coeffs != sub_b.loop_coeffs
                            or sub_a.param_coeffs != sub_b.param_coeffs):
                        carried = -1
                        break
                    if sub_a.const != sub_b.const:
                        if sub_a.coeff(index_name) != 0:
                            carried = max(carried,
                                          abs(sub_a.const - sub_b.const))
                        else:
                            carried = -1
                            break
                if carried > 0:
                    reuse_pairs += 1
                    lag_total += min(float(carried), _LAG_CAP)
    saved = invariant + reuse_pairs
    register_cost = len(refs) - invariant
    feasible_unroll = min(float(bound),
                          registers / max(1.0, float(register_cost)))
    # Unrolling this level by u amortizes ~``saved`` loads over u+1
    # copies: loads(u) = naive_loads - saved*u/(u+1).  Solving
    # loads(u)/flops = machine_balance for u gives the balance-optimal
    # unroll in closed form -- the quantity the exact search converges
    # to when one level dominates.
    gap_loads = naive_loads - machine_balance * flops
    if gap_loads <= 0.0:
        balance_unroll = 0.0
    elif saved <= gap_loads:
        balance_unroll = float(bound)  # unreachable balance: saturate
    else:
        balance_unroll = min(float(bound), gap_loads / (saved - gap_loads))
    return [
        1.0,
        float(invariant),
        float(contiguous),
        float(carried_groups),
        float(reuse_pairs),
        min(lag_total, _LAG_CAP),
        float(saved),
        float(register_cost),
        saved / max(1.0, float(flops)),
        feasible_unroll,
        saved / max(1.0, float(naive_loads)),
        contiguous / max(1.0, float(len(refs))),
        balance_unroll,
        min(balance_unroll, feasible_unroll),
        float(saved),  # saved_margin: rewritten below vs the best sibling
    ]


def _v2_tail(nest: LoopNest, machine: MachineModel, trip: int,
             max_depth: int) -> list[float]:
    """Schema v2's reuse-profile statistics (zeros when the profile
    machinery cannot handle the nest, so v2 degrades, never raises)."""
    from repro.machine.cache import CacheSpec
    from repro.reuse.profile import reuse_profile

    try:
        profile = reuse_profile(nest, line_size=machine.cache_line_words,
                                trip=trip)
        spec = CacheSpec.for_machine(machine)
    except Exception:
        return [0.0] * (len(_V2_GLOBAL_NAMES) + max_depth)
    median = profile.distance_quantile(0.5)
    carried = profile.carried_fractions()
    tail = [
        profile.lines_per_iteration,
        profile.cold_fraction(),
        profile.conflict_probability(spec),
        math.log2(1.0 + median) if median is not None else 0.0,
        profile.fraction_under(float(spec.num_lines)),
    ]
    for level in range(max_depth):
        tail.append(carried[level] if level < len(carried) else 0.0)
    return tail


def featurize(nest: LoopNest, machine: MachineModel,
              bound: int = DEFAULT_BOUND, trip: int = 100,
              max_depth: int = MAX_DEPTH,
              version: int = FEATURE_SCHEMA_VERSION) -> list[float]:
    """The feature vector of one nest on one machine, laid out per
    ``version`` (default: schema v1).

    v1 is purely structural and arithmetic -- no dependence analysis, no
    table construction -- so the cost is a few hundred microseconds on
    the deepest corpus nests.  v2 appends reuse-profile statistics,
    which additionally cost a UGS partition (:mod:`repro.reuse.profile`).
    Deterministic for equal structural keys: two nests that coerce to
    the same interned structure produce the same vector on the same
    machine and parameters.
    """
    if version not in SUPPORTED_FEATURE_VERSIONS:
        raise ValueError(f"unsupported feature schema version {version!r}")
    reads, writes = _collect_refs(nest)
    refs = reads + writes
    groups: dict[tuple, list[ArrayRef]] = defaultdict(list)
    by_array: dict[str, list[ArrayRef]] = defaultdict(list)
    for ref in refs:
        groups[_group_key(ref)].append(ref)
        by_array[ref.array].append(ref)
    group_sizes = [len(members) for members in groups.values()] or [0]
    flops = nest.flops_per_iteration()
    naive_loads = len(groups)
    loop_balance = naive_loads / max(1.0, float(flops))
    machine_balance = float(machine.balance)
    self_rw = sum(
        1 for statement in nest.body
        if {w.array for w in statement.array_writes()}
        & {r.array for r in statement.array_reads()})

    vector = [
        float(nest.depth),
        float(len(nest.body)),
        float(flops),
        float(len(reads)),
        float(len(writes)),
        float(len(by_array)),
        float(len(nest.scalar_temporaries())),
        float(len(nest.parameters())),
        float(len(groups)),
        float(max(group_sizes)),
        float(sum(size - 1 for size in group_sizes)),
        float(self_rw),
        float(naive_loads),
        loop_balance,
        machine_balance,
        loop_balance - machine_balance,
        loop_balance / max(1e-9, machine_balance),
    ]
    index_names = nest.index_names
    level_rows = []
    for level in range(max_depth):
        if level >= nest.depth:
            level_rows.append([0.0] * len(_LEVEL_NAMES))
            continue
        level_rows.append(_level_features(
            refs, groups, by_array, index_names[level], flops,
            naive_loads, machine.registers, bound, machine_balance))
    # ``saved_margin``: this level's amortizable loads minus the best
    # sibling's -- the cross-level comparison that decides *which* loop
    # the exact search unrolls.
    saved_slot = _LEVEL_NAMES.index("loads_saved")
    margin_slot = _LEVEL_NAMES.index("saved_margin")
    for level in range(min(nest.depth, max_depth)):
        siblings = [level_rows[other][saved_slot]
                    for other in range(min(nest.depth, max_depth))
                    if other != level]
        best_other = max(siblings) if siblings else 0.0
        level_rows[level][margin_slot] = \
            level_rows[level][saved_slot] - best_other
    for row in level_rows:
        vector.extend(row)
    vector.extend([
        machine_balance,
        float(machine.registers),
        float(machine.cache_line_words),
        math.log2(max(2.0, float(machine.cache_size_words))),
        float(machine.miss_penalty),
        float(machine.mem_issue),
        float(machine.fp_issue),
        float(machine.prefetch_bandwidth or 0.0),
    ])
    vector.extend([float(bound), float(trip)])
    if version >= 2:
        vector.extend(_v2_tail(nest, machine, trip, max_depth))
    return vector


def standardize_stats(rows: Iterable[list[float]]) -> tuple[list[float],
                                                            list[float]]:
    """Per-column mean and (floored) standard deviation of a sample --
    the normalization embedded in every artifact."""
    matrix = list(rows)
    if not matrix:
        raise ValueError("cannot standardize an empty sample")
    count = len(matrix)
    dims = len(matrix[0])
    means = [sum(row[d] for row in matrix) / count for d in range(dims)]
    sds = []
    for d in range(dims):
        variance = sum((row[d] - means[d]) ** 2 for row in matrix) / count
        sds.append(max(1e-9, math.sqrt(variance)))
    return means, sds
