"""The loaded model artifact: microsecond unroll prediction.

:class:`UnrollPredictor` wraps one versioned JSON artifact produced by
:mod:`repro.predict.train`.  An artifact embeds everything scoring
needs -- the feature schema it was trained on, per-depth class lists,
standardization statistics, and weights -- so loading validates the
schema once and every prediction is a dot product:

* ``algorithm="softmax"`` -- per-depth multinomial logistic: scores are
  ``W @ standardized(x)``, confidence is the softmax probability of the
  arg-max class;
* ``algorithm="stumps"`` -- per-depth boosted depth-1 trees: each round
  adds a per-class left/right value keyed on one feature threshold;
  confidence is the softmax of the summed scores.

Depths the artifact has no head for (never seen in training) predict
``None`` -- the serving layer then falls through to the exact engine
and counts ``predict.unsupported``.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass

from repro.ir.nodes import LoopNest
from repro.machine.model import MachineModel
from repro.predict.features import (
    SUPPORTED_FEATURE_VERSIONS,
    feature_names,
    featurize,
)
from repro.unroll.space import DEFAULT_BOUND

__all__ = [
    "ModelFormatError",
    "Prediction",
    "UnrollPredictor",
    "default_model_path",
    "load_default_model",
    "load_model",
]

#: The artifact format this module reads; bumped on incompatible change.
ARTIFACT_FORMAT_VERSION = 1

#: Where the committed default artifact ships inside the package.
_DEFAULT_ARTIFACT = pathlib.Path(__file__).parent / "artifacts" / \
    "default.json"


class ModelFormatError(ValueError):
    """An artifact this build of the predictor cannot serve."""


@dataclass(frozen=True)
class Prediction:
    """One fast-tier answer: the predicted vector and how sure the model
    is (the arg-max softmax probability, in ``(0, 1]``)."""

    unroll: tuple[int, ...]
    confidence: float
    model_id: str


def default_model_path() -> pathlib.Path:
    """The committed default artifact's location."""
    return _DEFAULT_ARTIFACT


def load_model(path: "str | pathlib.Path") -> "UnrollPredictor":
    """Load and validate one artifact file."""
    path = pathlib.Path(path)
    try:
        artifact = json.loads(path.read_text())
    except OSError as err:
        raise ModelFormatError(f"cannot read model {path}: {err}") from None
    except json.JSONDecodeError as err:
        raise ModelFormatError(
            f"model {path} is not valid JSON: {err}") from None
    return UnrollPredictor(artifact, source=str(path))


def load_default_model() -> "UnrollPredictor | None":
    """The committed default artifact, or ``None`` when absent (a
    source tree stripped of artifacts still serves ``tier=exact``)."""
    if not _DEFAULT_ARTIFACT.exists():
        return None
    return load_model(_DEFAULT_ARTIFACT)


def _softmax(scores: list[float]) -> list[float]:
    peak = max(scores)
    exps = [math.exp(score - peak) for score in scores]
    total = sum(exps)
    return [value / total for value in exps]


class UnrollPredictor:
    """One artifact, ready to score; all reads, no mutation, so a single
    instance is safely shared across server threads."""

    def __init__(self, artifact: dict, source: str | None = None):
        if not isinstance(artifact, dict):
            raise ModelFormatError("artifact must be a JSON object")
        version = artifact.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise ModelFormatError(
                f"artifact format {version!r} unsupported (this build "
                f"reads {ARTIFACT_FORMAT_VERSION})")
        schema = artifact.get("feature_schema") or {}
        if schema.get("version") not in SUPPORTED_FEATURE_VERSIONS:
            raise ModelFormatError(
                f"feature schema {schema.get('version')!r} unsupported "
                f"(this build computes "
                f"{', '.join(map(str, SUPPORTED_FEATURE_VERSIONS))})")
        self.feature_version = int(schema["version"])
        if schema.get("names") != feature_names(
                version=self.feature_version):
            raise ModelFormatError(
                "artifact feature names do not match this build's "
                f"v{self.feature_version} schema")
        algorithm = artifact.get("algorithm")
        if algorithm not in ("softmax", "stumps"):
            raise ModelFormatError(f"unknown algorithm {algorithm!r}")
        self.algorithm = algorithm
        self.source = source
        self.model_id = str(artifact.get("model_id", "unversioned"))
        self.confidence_floor = float(artifact.get("confidence_floor", 0.0))
        self.metrics = dict(artifact.get("metrics") or {})
        self.trained = dict(artifact.get("trained") or {})
        self._dims = len(feature_names(version=self.feature_version))
        self._heads: dict[int, dict] = {}
        depths = artifact.get("depths")
        if not isinstance(depths, dict) or not depths:
            raise ModelFormatError("artifact carries no depth heads")
        for key, head in depths.items():
            try:
                depth = int(key)
            except (TypeError, ValueError):
                raise ModelFormatError(
                    f"bad depth key {key!r}") from None
            self._heads[depth] = self._validate_head(depth, head)

    def _validate_head(self, depth: int, head: dict) -> dict:
        classes = [tuple(int(u) for u in cls)
                   for cls in head.get("classes", [])]
        if not classes or any(len(cls) != depth for cls in classes):
            raise ModelFormatError(
                f"depth-{depth} head has malformed classes")
        mean, sd = head.get("mean"), head.get("sd")
        if (not isinstance(mean, list) or not isinstance(sd, list)
                or len(mean) != self._dims or len(sd) != self._dims):
            raise ModelFormatError(
                f"depth-{depth} head standardization does not match the "
                f"{self._dims}-feature schema")
        validated = {"classes": classes, "mean": mean, "sd": sd}
        if self.algorithm == "softmax":
            weights = head.get("weights")
            if (not isinstance(weights, list)
                    or len(weights) != len(classes)
                    or any(len(row) != self._dims + 1 for row in weights)):
                raise ModelFormatError(
                    f"depth-{depth} softmax weights are malformed")
            validated["weights"] = weights
        else:
            base = head.get("base")
            rounds = head.get("rounds")
            if (not isinstance(base, list) or len(base) != len(classes)
                    or not isinstance(rounds, list)):
                raise ModelFormatError(
                    f"depth-{depth} stump head is malformed")
            for entry in rounds:
                if (not isinstance(entry, list)
                        or len(entry) != len(classes)
                        or any(len(stump) != 4 for stump in entry)):
                    raise ModelFormatError(
                        f"depth-{depth} stump rounds are malformed")
            validated["base"] = base
            validated["rounds"] = rounds
        return validated

    # -- scoring -------------------------------------------------------------

    @property
    def depths(self) -> tuple[int, ...]:
        return tuple(sorted(self._heads))

    def supports_depth(self, depth: int) -> bool:
        return depth in self._heads

    def _scores(self, head: dict, vector: list[float]) -> list[float]:
        mean, sd = head["mean"], head["sd"]
        x = [(vector[d] - mean[d]) / sd[d] for d in range(self._dims)]
        if self.algorithm == "softmax":
            x.append(1.0)
            return [sum(w[d] * x[d] for d in range(self._dims + 1))
                    for w in head["weights"]]
        scores = list(head["base"])
        for entry in head["rounds"]:
            for cls, (feat, threshold, left, right) in enumerate(entry):
                scores[cls] += left if x[feat] <= threshold else right
        return scores

    def predict_vector(self, vector: list[float],
                       depth: int) -> Prediction | None:
        """Score one pre-computed feature vector, or ``None`` when the
        artifact has no head for this depth."""
        head = self._heads.get(depth)
        if head is None:
            return None
        scores = self._scores(head, vector)
        probabilities = _softmax(scores)
        best = max(range(len(scores)), key=scores.__getitem__)
        return Prediction(unroll=head["classes"][best],
                          confidence=probabilities[best],
                          model_id=self.model_id)

    def predict(self, nest: LoopNest, machine: MachineModel,
                bound: int = DEFAULT_BOUND,
                trip: int = 100) -> Prediction | None:
        """Featurize (with the artifact's own schema version) and score
        one nest -- the serving layer's call."""
        vector = featurize(nest, machine, bound=bound, trip=trip,
                           version=self.feature_version)
        return self.predict_vector(vector, nest.depth)

    # -- introspection -------------------------------------------------------

    def describe(self) -> dict:
        """The summary the server's health document advertises."""
        return {
            "model_id": self.model_id,
            "algorithm": self.algorithm,
            "depths": list(self.depths),
            "feature_schema_version": self.feature_version,
            "held_out_top1": self.metrics.get("held_out_top1"),
            "confidence_floor": self.confidence_floor,
        }
