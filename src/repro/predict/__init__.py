"""``repro.predict`` -- the learned fast tier in front of the exact engine.

The exact UGS table search (:mod:`repro.unroll.optimize`) answers in
milliseconds cold; this package trains a small stdlib-only model on
engine-labeled corpora and serves its unroll predictions in
microseconds as the ``tier=fast`` serving mode (docs/PREDICT.md):

* :mod:`repro.predict.features` -- the deterministic per-nest feature
  vectors every model is trained and served on (schema v1 by default;
  the additive v2 appends reuse-profile statistics, docs/REUSE.md);
* :mod:`repro.predict.train` -- corpus labeling through
  :func:`repro.api.optimize_many`, per-depth softmax training, and the
  versioned JSON model artifact (``python -m repro train``);
* :mod:`repro.predict.model` -- :class:`UnrollPredictor`, the loaded
  artifact the serving layer calls per request.

The committed default artifact lives at
``src/repro/predict/artifacts/default.json`` and is what
``repro serve`` loads when no ``--model`` is given.
"""

from repro.predict.features import (
    FEATURE_SCHEMA_VERSION,
    LATEST_FEATURE_VERSION,
    MAX_DEPTH,
    SUPPORTED_FEATURE_VERSIONS,
    feature_names,
    featurize,
)
from repro.predict.model import (
    ModelFormatError,
    Prediction,
    UnrollPredictor,
    default_model_path,
    load_default_model,
    load_model,
)

__all__ = [
    "FEATURE_SCHEMA_VERSION",
    "LATEST_FEATURE_VERSION",
    "MAX_DEPTH",
    "SUPPORTED_FEATURE_VERSIONS",
    "ModelFormatError",
    "Prediction",
    "UnrollPredictor",
    "default_model_path",
    "feature_names",
    "featurize",
    "load_default_model",
    "load_model",
]
