"""Train the fast tier: label a corpus exactly, fit per-depth softmax.

``python -m repro train`` drives :func:`train`:

1. **Label** -- generate the seeded corpus
   (:mod:`repro.corpus.generator`) and run every nest through the exact
   engine via :func:`repro.api.optimize_many` (process-pool fan-out;
   labeling dominates training wall time).  The label of a nest is the
   exact search's chosen unroll vector.
2. **Fit** -- per nest depth, a multinomial logistic head over the
   schema-v1 feature vectors (:mod:`repro.predict.features`), trained
   by seeded full-batch-shuffled SGD with L2 and ordinal label
   smoothing: corpus unroll vectors order naturally by their unroll
   amounts, and spreading a little target mass onto adjacent amounts
   steers mistakes toward near-misses the objective barely
   distinguishes.
3. **Gate** -- accuracy is measured on a held-out split that never
   touched the fit; :func:`save_artifact` refuses to write an artifact
   whose held-out top-1 is below the configured floor (``--force``
   overrides, for experiments).

The artifact is JSON with the feature schema embedded; see
docs/PREDICT.md for the format.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import pathlib
import random
import sys
import time
from dataclasses import dataclass, field

from repro import api
from repro.corpus import CorpusConfig
from repro.corpus.generator import generate_corpus
from repro.predict.features import (
    FEATURE_SCHEMA_VERSION,
    SUPPORTED_FEATURE_VERSIONS,
    feature_names,
    featurize,
    standardize_stats,
)
from repro.predict.model import ARTIFACT_FORMAT_VERSION, UnrollPredictor
from repro.unroll.space import DEFAULT_BOUND

__all__ = [
    "Example",
    "TrainConfig",
    "TrainError",
    "label_corpus",
    "fit_heads",
    "train",
    "save_artifact",
    "main",
]

#: Below this held-out top-1, :func:`save_artifact` refuses to write.
DEFAULT_ACCURACY_FLOOR = 0.85

#: The default suggested ``tier=auto`` confidence threshold embedded in
#: artifacts (the server can override it).
DEFAULT_CONFIDENCE_FLOOR = 0.5


class TrainError(RuntimeError):
    """Training could not produce (or refuse to ship) an artifact."""


@dataclass(frozen=True)
class Example:
    """One labeled sample: features, exact unroll vector, nest depth."""

    name: str
    features: list[float]
    label: tuple[int, ...]
    depth: int
    machine: str


@dataclass(frozen=True)
class TrainConfig:
    """Everything one training run depends on (all seeded)."""

    routines: int = 4800
    corpus_seed: int = 1997
    machines: tuple[str, ...] = ("alpha",)
    bound: int = DEFAULT_BOUND
    trip: int = 100
    max_loops: int = 2
    workers: int | None = None
    held_out_fraction: float = 0.2
    shuffle_seed: int = 7
    epochs: int = 250
    learning_rate: float = 0.05
    lr_decay: float = 0.99
    l2: float = 1e-4
    label_smoothing: float = 0.08
    accuracy_floor: float = DEFAULT_ACCURACY_FLOOR
    confidence_floor: float = DEFAULT_CONFIDENCE_FLOOR
    #: Which feature layout to train on (see repro.predict.features);
    #: the default keeps new artifacts on the v1 schema.
    feature_version: int = FEATURE_SCHEMA_VERSION


# -- labeling -----------------------------------------------------------------

def label_corpus(config: TrainConfig, engine=None,
                 log=lambda msg: None) -> list[Example]:
    """Generate the corpus and label it with the exact engine, once per
    configured machine preset (machine parameters are features, so one
    model serves every preset it was trained for)."""
    nests = generate_corpus(CorpusConfig(routines=config.routines,
                                         seed=config.corpus_seed))
    examples: list[Example] = []
    for machine_name in config.machines:
        machine = api.coerce_machine(machine_name)
        started = time.monotonic()
        report = api.optimize_many(
            nests, machine, workers=config.workers, bound=config.bound,
            max_loops=config.max_loops, trip=config.trip, engine=engine)
        log(f"labeled {len(nests)} nests on {machine_name} in "
            f"{time.monotonic() - started:.1f}s "
            f"({report.nests_per_sec:.1f}/s)")
        for nest, item in zip(nests, report.items):
            if not item.ok or item.result is None:
                continue
            examples.append(Example(
                name=nest.name,
                features=featurize(nest, machine, bound=config.bound,
                                   trip=config.trip,
                                   version=config.feature_version),
                label=tuple(item.result.unroll),
                depth=nest.depth,
                machine=machine_name))
    if not examples:
        raise TrainError("labeling produced no usable examples")
    return examples


# -- fitting ------------------------------------------------------------------

def _ordinal_targets(classes: list[tuple[int, ...]], label: tuple[int, ...],
                     smoothing: float) -> list[float]:
    """Soft targets: ``1 - smoothing`` on the exact label, the rest
    spread over classes whose unroll amounts differ from it by one in a
    single position (the near-misses the exact objective barely
    separates).  Falls back to a hard target when no neighbor exists."""
    target = [0.0] * len(classes)
    exact = classes.index(label)
    if smoothing <= 0.0:
        target[exact] = 1.0
        return target
    neighbors = [
        index for index, cls in enumerate(classes)
        if index != exact
        and sum(abs(a - b) for a, b in zip(cls, label)) == 1
    ]
    if not neighbors:
        target[exact] = 1.0
        return target
    target[exact] = 1.0 - smoothing
    share = smoothing / len(neighbors)
    for index in neighbors:
        target[index] = share
    return target


def fit_heads(examples: list[Example],
              config: TrainConfig) -> dict[str, dict]:
    """One softmax head per depth present in ``examples``."""
    rng = random.Random(config.shuffle_seed)
    dims = len(feature_names(version=config.feature_version))
    by_depth: dict[int, list[Example]] = {}
    for example in examples:
        by_depth.setdefault(example.depth, []).append(example)
    heads: dict[str, dict] = {}
    for depth in sorted(by_depth):
        sample = by_depth[depth]
        classes = sorted({example.label for example in sample})
        class_index = {cls: i for i, cls in enumerate(classes)}
        means, sds = standardize_stats(
            [example.features for example in sample])
        standardized = [
            [(example.features[d] - means[d]) / sds[d]
             for d in range(dims)] + [1.0]
            for example in sample
        ]
        targets = [
            _ordinal_targets(classes, example.label,
                             config.label_smoothing)
            for example in sample
        ]
        count = len(classes)
        weights = [[0.0] * (dims + 1) for _ in range(count)]
        rate = config.learning_rate
        order = list(range(len(sample)))
        for _epoch in range(config.epochs):
            rng.shuffle(order)
            for row in order:
                x = standardized[row]
                scores = [sum(w[d] * x[d] for d in range(dims + 1))
                          for w in weights]
                peak = max(scores)
                exps = [math.exp(score - peak) for score in scores]
                total = sum(exps)
                target = targets[row]
                for cls in range(count):
                    gradient = exps[cls] / total - target[cls]
                    w = weights[cls]
                    for d in range(dims + 1):
                        w[d] -= rate * (gradient * x[d] + config.l2 * w[d])
            rate *= config.lr_decay
        heads[str(depth)] = {
            "classes": [list(cls) for cls in classes],
            "mean": means,
            "sd": sds,
            "weights": weights,
        }
        _ = class_index  # kept for symmetry; targets already indexed
    return heads


# -- the full run -------------------------------------------------------------

def _split(examples: list[Example],
           config: TrainConfig) -> tuple[list[Example], list[Example]]:
    rng = random.Random(config.shuffle_seed)
    order = list(range(len(examples)))
    rng.shuffle(order)
    held = max(1, int(len(order) * config.held_out_fraction))
    held_idx = set(order[:held])
    train_set = [examples[i] for i in order[held:]]
    held_set = [examples[i] for i in sorted(held_idx)]
    return train_set, held_set


def _accuracy(predictor: UnrollPredictor,
              examples: list[Example]) -> tuple[float, dict[str, dict]]:
    correct = 0
    per_depth: dict[str, dict] = {}
    for example in examples:
        prediction = predictor.predict_vector(example.features,
                                              example.depth)
        hit = prediction is not None and prediction.unroll == example.label
        correct += hit
        bucket = per_depth.setdefault(str(example.depth),
                                      {"correct": 0, "total": 0})
        bucket["total"] += 1
        bucket["correct"] += hit
    for bucket in per_depth.values():
        bucket["top1"] = bucket["correct"] / bucket["total"]
    return (correct / len(examples) if examples else 0.0), per_depth


def _model_id(heads: dict[str, dict]) -> str:
    digest = hashlib.sha256(
        json.dumps(heads, sort_keys=True).encode("utf-8")).hexdigest()
    return f"predict-v{ARTIFACT_FORMAT_VERSION}-{digest[:12]}"


def build_artifact(heads: dict[str, dict], config: TrainConfig,
                   metrics: dict) -> dict:
    return {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "algorithm": "softmax",
        "model_id": _model_id(heads),
        "feature_schema": {
            "version": config.feature_version,
            "names": feature_names(version=config.feature_version),
        },
        "confidence_floor": config.confidence_floor,
        "depths": heads,
        "trained": {
            "routines": config.routines,
            "corpus_seed": config.corpus_seed,
            "machines": list(config.machines),
            "bound": config.bound,
            "trip": config.trip,
            "max_loops": config.max_loops,
            "held_out_fraction": config.held_out_fraction,
            "shuffle_seed": config.shuffle_seed,
            "epochs": config.epochs,
            "label_smoothing": config.label_smoothing,
        },
        "metrics": metrics,
    }


def train(config: TrainConfig | None = None, engine=None,
          examples: list[Example] | None = None,
          log=lambda msg: None) -> dict:
    """Label (unless ``examples`` is given), fit, evaluate; returns the
    artifact dict (not yet written -- :func:`save_artifact` gates that)."""
    config = config or TrainConfig()
    if examples is None:
        examples = label_corpus(config, engine=engine, log=log)
    train_set, held_set = _split(examples, config)
    log(f"fitting on {len(train_set)} examples "
        f"({len(held_set)} held out) across depths "
        f"{sorted({e.depth for e in train_set})}")
    started = time.monotonic()
    heads = fit_heads(train_set, config)
    log(f"fit {len(heads)} depth head(s) in "
        f"{time.monotonic() - started:.1f}s")
    probe = UnrollPredictor(build_artifact(heads, config, {}))
    train_top1, _ = _accuracy(probe, train_set)
    held_top1, per_depth = _accuracy(probe, held_set)
    metrics = {
        "train_top1": train_top1,
        "held_out_top1": held_top1,
        "held_out_n": len(held_set),
        "per_depth": per_depth,
    }
    log(f"train top-1 {train_top1:.3f}, held-out top-1 {held_top1:.3f} "
        f"on {len(held_set)} examples")
    return build_artifact(heads, config, metrics)


def save_artifact(artifact: dict, path: "str | pathlib.Path",
                  floor: float = DEFAULT_ACCURACY_FLOOR,
                  force: bool = False) -> pathlib.Path:
    """Write the artifact -- unless its held-out accuracy is below the
    floor, in which case refuse loudly (``force`` overrides)."""
    held = float(artifact.get("metrics", {}).get("held_out_top1", 0.0))
    if held < floor and not force:
        raise TrainError(
            f"refusing to save: held-out top-1 {held:.3f} is below the "
            f"accuracy floor {floor:.2f} (use --force to override)")
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=1, sort_keys=True) + "\n")
    return path


# -- CLI (python -m repro train) ---------------------------------------------

def add_train_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--routines", type=int, default=4800,
                        help="corpus size to label (default 4800)")
    parser.add_argument("--seed", type=int, default=1997,
                        help="corpus generator seed")
    parser.add_argument("--machine", action="append", default=None,
                        help="machine preset(s) to label on (repeatable; "
                             "default alpha)")
    parser.add_argument("--bound", type=int, default=DEFAULT_BOUND)
    parser.add_argument("--trip", type=int, default=100)
    parser.add_argument("--feature-version", type=int,
                        default=FEATURE_SCHEMA_VERSION,
                        choices=SUPPORTED_FEATURE_VERSIONS,
                        help="feature schema to train on (2 adds "
                             "reuse-profile statistics; docs/REUSE.md)")
    parser.add_argument("--workers", type=int, default=None,
                        help="labeling process-pool size")
    parser.add_argument("--epochs", type=int, default=250)
    parser.add_argument("--held-out", type=float, default=0.2,
                        help="held-out fraction for the accuracy gate")
    parser.add_argument("--floor", type=float,
                        default=DEFAULT_ACCURACY_FLOOR,
                        help="refuse to save below this held-out top-1")
    parser.add_argument("--force", action="store_true",
                        help="save even below the accuracy floor")
    parser.add_argument("--out", default=None,
                        help="artifact path (default: the committed "
                             "default artifact location)")
    parser.add_argument("--json", action="store_true",
                        help="print the metrics document as JSON")


def run_train(args: argparse.Namespace) -> int:
    from repro.predict.model import default_model_path

    config = TrainConfig(
        routines=args.routines,
        corpus_seed=args.seed,
        machines=tuple(args.machine) if args.machine else ("alpha",),
        bound=args.bound,
        trip=args.trip,
        workers=args.workers,
        held_out_fraction=args.held_out,
        epochs=args.epochs,
        accuracy_floor=args.floor,
        feature_version=args.feature_version,
    )
    log = (lambda msg: None) if args.json else \
        (lambda msg: print(msg, flush=True))
    artifact = train(config, log=log)
    target = pathlib.Path(args.out) if args.out else default_model_path()
    try:
        written = save_artifact(artifact, target, floor=args.floor,
                                force=args.force)
    except TrainError as err:
        print(f"repro train: {err}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({"model_id": artifact["model_id"],
                          "path": str(written),
                          "metrics": artifact["metrics"]},
                         indent=2, sort_keys=True))
    else:
        print(f"saved {artifact['model_id']} to {written}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="train the tier=fast unroll predictor "
                    "(see docs/PREDICT.md)")
    add_train_arguments(parser)
    return run_train(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
