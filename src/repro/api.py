"""The public facade: uniform entry points over every input shape.

Callers hold nests in many forms -- a Table 2 kernel name, a DO-loop
source string, a path to a nest file, or an already-built
:class:`~repro.ir.nodes.LoopNest`.  This module owns the *one* coercion
helper (:func:`coerce_nest`) that every consumer (the CLI, the batch
engine, the experiments) goes through, and the four documented verbs:

* :func:`analyze` -- dependence graph, safety bounds, locality, UGS
  partition (an :class:`~repro.engine.NestArtifacts`);
* :func:`optimize` -- the paper's unroll-and-jam decision
  (an :class:`~repro.unroll.optimize.OptimizationResult`);
* :func:`optimize_many` -- a whole corpus through the batch engine
  (a :class:`~repro.engine.BatchReport`);
* :func:`transform` -- the transformed nest itself
  (an :class:`~repro.unroll.transform.UnrolledNest`).

All four accept the same nest shapes and accept machines as presets by
name (``"alpha"``, ``"pa"``, ...) or as :class:`MachineModel` objects.
They are re-exported from :mod:`repro`, so ``repro.optimize("jacobi")``
is the supported spelling of the common workflow.
"""

from __future__ import annotations

import difflib
import os
import pathlib
import warnings
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover -- type names only
    from repro.reuse.profile import NestReuseProfile

from repro.engine import (
    AnalysisEngine,
    BatchError,
    BatchReport,
    NestArtifacts,
)
from repro.ir.nodes import LoopNest, intern_nest
from repro.obs.trace import span as _span
from repro.ir.parser import ParseError, parse_nest
from repro.machine.model import MachineModel
from repro.machine.presets import (
    dec_alpha,
    future_wide,
    hp_pa_risc,
    mips_r10k,
    prefetching_machine,
)
from repro.unroll.optimize import OptimizationResult
from repro.unroll.space import DEFAULT_BOUND
from repro.unroll.transform import UnrolledNest, unroll_and_jam

__all__ = [
    "MACHINES",
    "NestResolutionError",
    "analyze",
    "coerce_machine",
    "coerce_nest",
    "default_engine",
    "optimize",
    "optimize_many",
    "optimize_stream",
    "predict_unroll",
    "reuse_profile",
    "serialize_nest",
    "transform",
    "vectorize",
]

#: The machine presets addressable by name everywhere a machine is taken.
MACHINES = {
    "alpha": dec_alpha,
    "pa": hp_pa_risc,
    "prefetch": prefetching_machine,
    "mips": mips_r10k,
    "future": future_wide,
}

class NestResolutionError(ValueError):
    """A nest specification that could not be resolved, with a diagnosis
    that distinguishes *parse failures* from *unknown names*.

    ``kind`` is the machine-readable facet of that diagnosis (consumed by
    the serving layer's structured error responses):

    * ``"parse"``   -- the input was source text but does not parse;
    * ``"unknown"`` -- a name that matches no kernel and no file;
    * ``"io"``      -- a path that exists but cannot be read;
    * ``"invalid"`` -- a shape :func:`coerce_nest` does not accept at all.
    """

    def __init__(self, message: str, kind: str = "invalid"):
        super().__init__(message)
        self.kind = kind

# -- coercion (the one shared helper) ----------------------------------------

def _nest_from_path(path: pathlib.Path, name: str | None = None) -> LoopNest:
    try:
        text = path.read_text()
    except OSError as err:
        raise NestResolutionError(f"cannot read {path}: {err}",
                                  kind="io") from None
    try:
        return parse_nest(text, name=name or path.stem)
    except ParseError as err:
        # The file exists; say exactly where parsing stopped.
        raise NestResolutionError(
            f"{path} exists but does not parse: {err}", kind="parse") from None

def _looks_like_source(text: str) -> bool:
    upper = text.upper()
    return ("\n" in text or "ENDDO" in upper
            or upper.lstrip().startswith("DO "))

def coerce_nest(spec: "LoopNest | str | os.PathLike",
                name: str | None = None) -> LoopNest:
    """Resolve any accepted nest shape to a :class:`LoopNest`.

    Accepts, in order of precedence: a ``LoopNest`` (returned as-is), a
    path object, a serialized nest mapping (``{"source": ..., "name": ...}``
    as produced by :func:`serialize_nest` -- the wire form the serving
    layer speaks), a DO-loop source string, a Table 2 kernel name, or a
    string path to a nest file.  Raises :class:`NestResolutionError` with
    a parser error and line number when a file or source string is
    malformed, or with a closest-match suggestion when a kernel name is
    unknown.

    Every result is interned (:func:`repro.ir.nodes.intern_nest`): two
    resolutions of the same structure yield one shared node whose
    structural key is computed exactly once, which is what keeps the
    serving layer's per-request key derivation near-free.
    """
    if isinstance(spec, LoopNest):
        return intern_nest(spec)
    if isinstance(spec, os.PathLike):
        return intern_nest(_nest_from_path(pathlib.Path(spec), name))
    if isinstance(spec, Mapping):
        source = spec.get("source")
        if not isinstance(source, str):
            raise NestResolutionError(
                "a serialized nest needs a 'source' string of DO-loop text")
        label = spec.get("name") or name or "parsed"
        try:
            return intern_nest(parse_nest(source, name=str(label)))
        except ParseError as err:
            raise NestResolutionError(
                f"serialized nest does not parse: {err}", kind="parse") \
                from None
    if not isinstance(spec, str):
        raise NestResolutionError(
            f"cannot make a loop nest from {type(spec).__name__!s}")
    if _looks_like_source(spec):
        try:
            return intern_nest(parse_nest(spec, name=name or "parsed"))
        except ParseError as err:
            raise NestResolutionError(
                f"nest source does not parse: {err}", kind="parse") from None

    from repro.kernels import all_kernels, kernel_by_name

    try:
        return intern_nest(kernel_by_name(spec).nest)
    except KeyError:
        pass
    path = pathlib.Path(spec)
    if path.exists():
        return intern_nest(_nest_from_path(path, name))
    names = [kernel.name for kernel in all_kernels()]
    close = difflib.get_close_matches(spec, names, n=3, cutoff=0.5)
    hint = f"; did you mean {', '.join(close)}?" if close else \
        "; try 'python -m repro kernels' for the list"
    raise NestResolutionError(
        f"unknown kernel {spec!r} (and no such file){hint}", kind="unknown")

def serialize_nest(nest: LoopNest) -> dict:
    """The JSON-ready wire form of a nest: ``{"name", "source"}``.

    ``source`` is the canonical printed DO-loop text, which
    :func:`coerce_nest` parses back; the round trip preserves the
    structural key, so serialized twins share every engine cache entry.
    """
    from repro.ir.printer import format_nest

    return {"name": nest.name, "source": format_nest(nest)}

def coerce_machine(machine: "MachineModel | str") -> MachineModel:
    """A :class:`MachineModel` from a preset name or a model object."""
    if isinstance(machine, MachineModel):
        return machine
    if isinstance(machine, str):
        try:
            return MACHINES[machine]()
        except KeyError:
            raise ValueError(f"unknown machine {machine!r}; choose from "
                             f"{sorted(MACHINES)}") from None
    raise ValueError(f"cannot make a machine from {type(machine).__name__!s}")

# -- the default engine -------------------------------------------------------

_DEFAULT_ENGINE: AnalysisEngine | None = None

def default_engine() -> AnalysisEngine:
    """The process-wide engine the facade verbs share (so repeated calls
    stay warm); create your own :class:`AnalysisEngine` for isolation."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = AnalysisEngine()
    return _DEFAULT_ENGINE

# -- the documented verbs -----------------------------------------------------

def analyze(nest_or_source, machine: "MachineModel | str" = "alpha",
            engine: AnalysisEngine | None = None) -> NestArtifacts:
    """Reuse/safety/dependence analysis of one nest, memoized."""
    with _span("api.analyze"):
        nest = coerce_nest(nest_or_source)
        model = coerce_machine(machine)
        engine = engine if engine is not None else default_engine()
        return engine.analyze(nest, model)

def optimize(nest_or_source, machine: "MachineModel | str" = "alpha",
             bound: int = DEFAULT_BOUND, max_loops: int = 2,
             include_cache: bool = True, trip: int = 100,
             cache_model: str = "binary",
             vectorize: bool = False,
             engine: AnalysisEngine | None = None) -> OptimizationResult:
    """The paper's unroll-and-jam decision for one nest (identical to
    :func:`repro.unroll.optimize.choose_unroll`, served from the cache).

    ``cache_model="assoc"`` swaps the binary Equation-1 miss charge for
    the reuse-distance profile's set-associative estimate on this
    machine's cache geometry (docs/REUSE.md).  ``vectorize=True`` ranks
    candidates by the SLP lane cost model instead of the balance
    objective (docs/VECTORIZE.md)."""
    with _span("api.optimize"):
        nest = coerce_nest(nest_or_source)
        model = coerce_machine(machine)
        engine = engine if engine is not None else default_engine()
        return engine.optimize(nest, model, bound=bound,
                               max_loops=max_loops,
                               include_cache=include_cache, trip=trip,
                               cache_model=cache_model,
                               vectorize=vectorize)

def vectorize(nest_or_source, machine: "MachineModel | str" = "future",
              unroll: Sequence[int] | None = None,
              bound: int = DEFAULT_BOUND, max_loops: int = 2,
              include_cache: bool = True, trip: int = 100,
              engine: AnalysisEngine | None = None):
    """Vectorization-aware unroll-and-jam (docs/VECTORIZE.md).

    Runs the search with the SLP lane cost objective
    (``vectorize=True``), then packs and costs the jammed body at the
    chosen unroll vector -- or at an explicit ``unroll`` when given.
    Returns ``(OptimizationResult, SimdReport)``.

    The default machine is ``"future"``: the vector-capable preset.  On
    a machine without a vector unit the search degrades to the scalar
    decision and the report contains no packs.
    """
    with _span("api.vectorize"):
        nest = coerce_nest(nest_or_source)
        model = coerce_machine(machine)
        engine = engine if engine is not None else default_engine()
        result = engine.optimize(nest, model, bound=bound,
                                 max_loops=max_loops,
                                 include_cache=include_cache, trip=trip,
                                 vectorize=True)
        at = tuple(unroll) if unroll is not None else result.unroll
        report = engine.simd_report(nest, model, at, trip=trip)
        return result, report

def reuse_profile(nest_or_source, machine: "MachineModel | str" = "alpha",
                  trip: int = 100,
                  engine: AnalysisEngine | None = None) -> "NestReuseProfile":
    """The static reuse-distance profile of one nest (docs/REUSE.md).

    Per-reference reuse-distance histograms derived from the UGS /
    localized-vector-space machinery, scaled to ``trip`` iterations per
    loop; feed the result's :meth:`miss_ratio` a
    :class:`repro.machine.cache.CacheSpec` to price any geometry.  The
    machine sets the cache-line size the distances are measured in."""
    with _span("api.reuse_profile"):
        nest = coerce_nest(nest_or_source)
        model = coerce_machine(machine)
        engine = engine if engine is not None else default_engine()
        return engine.reuse_profile(nest, model, trip=trip)

def optimize_many(specs: Sequence, machine: "MachineModel | str" = "alpha",
                  workers: int | None = None, bound: int = DEFAULT_BOUND,
                  max_loops: int = 2, include_cache: bool = True,
                  trip: int = 100,
                  engine: AnalysisEngine | None = None) -> BatchReport:
    """Optimize a corpus of nest specifications (any accepted shape).

    Specifications that fail to coerce become reported failures in the
    returned :class:`BatchReport`; the rest of the batch completes.
    """
    with _span("api.optimize_many"):
        model = coerce_machine(machine)
        engine = engine if engine is not None else default_engine()
        entries: list = []
        for index, spec in enumerate(specs):
            try:
                entries.append(coerce_nest(spec))
            except NestResolutionError as err:
                label = spec if isinstance(spec, str) else \
                    getattr(spec, "name", f"item{index}")
                entries.append(BatchError(name=str(label),
                                          message=str(err)))
        return engine.optimize_many(entries, model, workers=workers,
                                    bound=bound, max_loops=max_loops,
                                    include_cache=include_cache, trip=trip)

def optimize_stream(specs, machine: "MachineModel | str" = "alpha",
                    workers: int | None = None, bound: int = DEFAULT_BOUND,
                    max_loops: int = 2, include_cache: bool = True,
                    trip: int = 100, chunk_size: int = 32,
                    engine: AnalysisEngine | None = None):
    """Optimize an *iterable* corpus, yielding per-nest results as they
    complete (the streaming sibling of :func:`optimize_many`).

    ``specs`` may be any iterable -- including a generator such as
    :func:`repro.corpus.iter_corpus` -- and is consumed lazily, so a
    100k-nest sweep never materializes its corpus or its result list.
    Yields :class:`repro.engine.BatchItem`; with ``workers > 1`` items
    arrive in completion order (each carries its input ``index``).
    Specifications that fail to coerce become reported failures, like in
    :func:`optimize_many`.
    """
    model = coerce_machine(machine)
    engine = engine if engine is not None else default_engine()

    def entries():
        for index, spec in enumerate(specs):
            try:
                yield coerce_nest(spec)
            except NestResolutionError as err:
                label = spec if isinstance(spec, str) else \
                    getattr(spec, "name", f"item{index}")
                yield BatchError(name=str(label), message=str(err))

    with _span("api.optimize_stream"):
        yield from engine.optimize_stream(
            entries(), model, workers=workers, bound=bound,
            max_loops=max_loops, include_cache=include_cache, trip=trip,
            chunk_size=chunk_size)

def predict_unroll(nest_or_source,
                   machine: "MachineModel | str" = "alpha",
                   bound: int = DEFAULT_BOUND, trip: int = 100,
                   model=None):
    """The learned fast tier's unroll decision for one nest, in
    microseconds (docs/PREDICT.md).

    Returns a :class:`repro.predict.model.Prediction` -- the predicted
    vector plus the model's confidence -- or ``None`` when no model is
    available for this nest's depth.  ``model`` accepts a loaded
    :class:`~repro.predict.model.UnrollPredictor` or an artifact path;
    omitted, the committed default artifact is used.  This is advisory:
    :func:`optimize` remains the exact answer.
    """
    from repro.predict.model import (
        UnrollPredictor, load_default_model, load_model)

    with _span("api.predict_unroll"):
        nest = coerce_nest(nest_or_source)
        machine_model = coerce_machine(machine)
        if model is None:
            predictor = load_default_model()
        elif isinstance(model, UnrollPredictor):
            predictor = model
        else:
            predictor = load_model(model)
        if predictor is None:
            return None
        return predictor.predict(nest, machine_model, bound=bound,
                                 trip=trip)

def transform(nest_or_source, unroll: Sequence[int] | None = None,
              machine: "MachineModel | str" = "alpha",
              bound: int = DEFAULT_BOUND,
              engine: AnalysisEngine | None = None) -> UnrolledNest:
    """Unroll-and-jam a nest: by an explicit vector, or by the model's
    chosen vector when ``unroll`` is omitted."""
    with _span("api.transform"):
        nest = coerce_nest(nest_or_source)
        if unroll is None:
            unroll = optimize(nest, machine, bound=bound,
                              engine=engine).unroll
        return unroll_and_jam(nest, tuple(int(u) for u in unroll))

# -- deprecation plumbing -----------------------------------------------------

_WARNED: set[str] = set()

def warn_deprecated(old: str, new: str) -> None:
    """Emit a :class:`DeprecationWarning` for ``old`` exactly once per
    process (the contract the facade's shims are tested against)."""
    if old in _WARNED:
        return
    _WARNED.add(old)
    warnings.warn(f"{old} is deprecated; use {new} instead",
                  DeprecationWarning, stacklevel=3)
