"""repro: Unroll-and-Jam Using Uniformly Generated Sets (Carr & Guan,
MICRO 1997) -- a complete Python reproduction.

The one-stop imports for the common workflow::

    from repro import NestBuilder, choose_unroll, dec_alpha, unroll_and_jam

    b = NestBuilder("intro")
    J, I = b.loops(("J", 0, "N"), ("I", 0, "M"))
    b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
    nest = b.build()

    result = choose_unroll(nest, dec_alpha(), bound=8)
    transformed = unroll_and_jam(nest, result.unroll).main

See README.md for the tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for the paper-vs-measured results.
"""

from repro.ir.builder import NestBuilder
from repro.ir.nodes import LoopNest
from repro.ir.parser import parse_nest
from repro.ir.printer import format_nest
from repro.machine.model import MachineModel
from repro.machine.presets import dec_alpha, hp_pa_risc
from repro.unroll.optimize import choose_unroll
from repro.unroll.tables import build_tables
from repro.unroll.transform import unroll_and_jam

__version__ = "1.0.0"

__all__ = [
    "LoopNest",
    "MachineModel",
    "NestBuilder",
    "build_tables",
    "choose_unroll",
    "dec_alpha",
    "format_nest",
    "hp_pa_risc",
    "parse_nest",
    "unroll_and_jam",
    "__version__",
]
