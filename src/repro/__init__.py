"""repro: Unroll-and-Jam Using Uniformly Generated Sets (Carr & Guan,
MICRO 1997) -- a complete Python reproduction.

The documented entry points live in :mod:`repro.api` and accept kernel
names, DO-loop source strings, file paths, or built nests uniformly::

    import repro

    result = repro.optimize("jacobi", machine="alpha", bound=8)
    print(result.unroll, float(result.balance))

    transformed = repro.transform("jacobi", unroll=result.unroll)
    report = repro.optimize_many(["jacobi", "afold", "mmjik"], workers=2)

Building nests programmatically still works the classic way::

    from repro import NestBuilder, choose_unroll, dec_alpha

    b = NestBuilder("intro")
    J, I = b.loops(("J", 0, "N"), ("I", 0, "M"))
    b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
    nest = b.build()
    result = choose_unroll(nest, dec_alpha(), bound=8)

The long-lived HTTP analysis service lives in :mod:`repro.serve`
(``python -m repro serve``; see docs/SERVING.md).

See README.md for the tour, DESIGN.md for the system inventory,
docs/ENGINE.md for the batch analysis engine, and EXPERIMENTS.md for the
paper-vs-measured results.
"""

from repro.api import (
    MACHINES,
    NestResolutionError,
    analyze,
    coerce_machine,
    coerce_nest,
    default_engine,
    optimize,
    optimize_many,
    optimize_stream,
    reuse_profile,
    transform,
    vectorize,
)
from repro.engine import AnalysisEngine, BatchReport
from repro.ir.builder import NestBuilder
from repro.ir.nodes import LoopNest
from repro.ir.parser import parse_nest
from repro.ir.printer import format_nest
from repro.machine.model import MachineModel
from repro.machine.presets import dec_alpha, hp_pa_risc
from repro.unroll.optimize import choose_unroll
from repro.unroll.tables import build_tables
from repro.unroll.transform import unroll_and_jam

__version__ = "1.2.0"

__all__ = [
    "AnalysisEngine",
    "BatchReport",
    "LoopNest",
    "MACHINES",
    "MachineModel",
    "NestBuilder",
    "NestResolutionError",
    "analyze",
    "build_tables",
    "choose_unroll",
    "coerce_machine",
    "coerce_nest",
    "dec_alpha",
    "default_engine",
    "format_nest",
    "hp_pa_risc",
    "optimize",
    "optimize_many",
    "optimize_stream",
    "parse_nest",
    "reuse_profile",
    "transform",
    "unroll_and_jam",
    "vectorize",
    "__version__",
]
