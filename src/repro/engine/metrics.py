"""Lightweight instrumentation for the analysis engine.

Every stage of the engine (dependence graph, locality, table build, cache
probes, batch dispatch) is timed with the monotonic clock and counted, so
throughput claims ("tables answer every unroll query without re-unrolling")
are measurable instead of asserted.  A :class:`Metrics` object carries

* **counters** -- monotone integers (cache hits/misses, batch items, ...);
* **stage timers** -- per-stage wall time with count/total/min/max and a
  log-scale histogram of individual durations.

Snapshots are plain JSON-serializable dicts; worker processes ship their
snapshots back to the parent, which merges them.  ``to_json()`` is the
export the benchmark harness and ``python -m repro batch --json`` emit.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Mapping

#: Inclusive upper bounds of the duration histogram buckets, in seconds.
#: One final open-ended bucket catches everything slower than the last bound.
BUCKET_BOUNDS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

class StageStats:
    """Aggregated wall-time observations for one named stage."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)
        for slot, bound in enumerate(BUCKET_BOUNDS):
            if seconds <= bound:
                self.buckets[slot] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 < q <= 1``) in seconds.

        Derived from the log-scale histogram by linear interpolation inside
        the containing bucket; the first and last buckets are clamped to the
        observed ``min``/``max``, so the estimate always lies inside the
        observed range.  Exact when the stage was observed once.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("percentile rank must be in (0, 1]")
        if not self.count:
            return 0.0
        if self.count == 1 or self.min == self.max:
            # One observation -- or identical observations merged from
            # worker snapshots -- pins every percentile to the observed
            # value; the histogram interpolation below would otherwise
            # report a bucket bound (or 0.0) instead.
            return self.min
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for slot, upper in enumerate(BUCKET_BOUNDS):
            in_bucket = self.buckets[slot]
            if in_bucket and cumulative + in_bucket >= target:
                lo = max(lower, self.min)
                hi = max(lo, min(upper, self.max))
                fraction = (target - cumulative) / in_bucket
                return lo + fraction * (hi - lo)
            cumulative += in_bucket
            lower = upper
        # Open-ended final bucket: everything slower than the last bound.
        # Clamp into [min, max]: a degenerate histogram (e.g. merged from
        # a snapshot without bucket data) must still answer in range.
        in_bucket = self.buckets[-1]
        lo = min(max(lower, self.min), self.max)
        hi = max(lo, self.max)
        fraction = (target - cumulative) / in_bucket if in_bucket else 1.0
        return lo + min(fraction, 1.0) * (hi - lo)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "p50_s": self.percentile(0.50),
            "p95_s": self.percentile(0.95),
            "p99_s": self.percentile(0.99),
            "histogram": list(self.buckets),
        }

    def merge_dict(self, data: Mapping) -> None:
        if not data.get("count"):
            return
        self.count += data["count"]
        self.total += data["total_s"]
        self.min = min(self.min, data["min_s"])
        self.max = max(self.max, data["max_s"])
        for slot, value in enumerate(data.get("histogram", ())):
            if slot < len(self.buckets):
                self.buckets[slot] += value

class Metrics:
    """Counters plus per-stage timing, mergeable across processes.

    Recording and reading are protected by a reentrant lock, so one
    ``Metrics`` may be shared by the serving layer's worker threads and the
    asyncio dispatcher without torn counter updates.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.stages: dict[str, StageStats] = {}
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]  # locks do not pickle; workers get a fresh one
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- recording -----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, stage: str, seconds: float) -> None:
        with self._lock:
            stats = self.stages.get(stage)
            if stats is None:
                stats = self.stages[stage] = StageStats()
            stats.observe(seconds)

    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """Time a block with the monotonic clock and record it under
        ``stage``."""
        start = time.monotonic()
        try:
            yield
        finally:
            self.observe(stage, time.monotonic() - start)

    # -- reading -------------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self.counters.get(name, 0)

    def hit_rate(self, family: str) -> float:
        """``hits / (hits + misses)`` for a ``<family>.hit``/``.miss``
        counter pair; 0.0 when the family was never probed."""
        hits = self.counter(f"{family}.hit")
        misses = self.counter(f"{family}.miss")
        probes = hits + misses
        return hits / probes if probes else 0.0

    def snapshot(self) -> dict:
        """A JSON-serializable copy of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "stages": {name: stats.to_dict()
                           for name, stats in sorted(self.stages.items())},
                "histogram_bounds_s": list(BUCKET_BOUNDS),
            }

    def merge(self, snapshot: Mapping) -> None:
        """Fold another Metrics' :meth:`snapshot` into this one (used to
        aggregate worker-process metrics after a batch)."""
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.count(name, value)
            for name, data in snapshot.get("stages", {}).items():
                stats = self.stages.get(name)
                if stats is None:
                    stats = self.stages[name] = StageStats()
                stats.merge_dict(data)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

def delta(before: Mapping[str, int], after: Mapping[str, int]) -> dict[str, int]:
    """Counter-wise ``after - before`` (only non-zero entries), for
    isolating what one run contributed."""
    out = {}
    for name, value in after.items():
        diff = value - before.get(name, 0)
        if diff:
            out[name] = diff
    return out
