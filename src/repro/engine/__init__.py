"""The batch analysis engine: memoized per-nest artifacts + corpus fan-out.

The paper's efficiency claim is that the precomputed GTS/GSS/RRS/RL tables
answer balance and register-pressure queries for *every* unroll vector
without re-unrolling.  :class:`AnalysisEngine` extends that claim across
nests and across runs:

* every expensive per-nest artifact (dependence graph, locality scores,
  safety bounds, :class:`~repro.unroll.tables.UnrollTables`) is memoized
  behind :meth:`repro.ir.nodes.LoopNest.structural_key` -- structurally
  identical nests (including loop-variable renamings) share one analysis;
* the in-process memo is a bounded LRU; tables can additionally persist to
  an on-disk JSON cache (default ``~/.cache/repro/``, override with the
  ``REPRO_CACHE_DIR`` environment variable) reusing
  :mod:`repro.unroll.serialize`;
* :meth:`AnalysisEngine.optimize_many` fans a corpus out over a process
  pool with picklable task/result envelopes and per-nest error capture, so
  one malformed nest degrades to a reported failure instead of killing the
  batch;
* every stage is instrumented through :mod:`repro.engine.metrics`.

``engine.optimize(nest, machine)`` is guaranteed to return the same
decision as :func:`repro.unroll.optimize.choose_unroll` -- the test suite
and ``benchmarks/bench_engine_throughput.py`` enforce vector-level parity.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover -- type names only
    from repro.engine.shared import SharedTableStore
    from repro.reuse.profile import NestReuseProfile

from repro.dependence.graph import DependenceGraph, build_dependence_graph
from repro.engine.metrics import Metrics
from repro.engine.ugscache import UgsTableCache
from repro.ir.nodes import LoopNest
from repro.obs import profile as _obs_profile
from repro.obs import trace as _obs_trace
from repro.obs.trace import span as _span
from repro.machine.model import MachineModel
from repro.reuse.locality import loop_locality_scores
from repro.reuse.ugs import UniformlyGeneratedSet, partition_ugs
from repro.unroll.optimize import OptimizationResult, choose_unroll
from repro.unroll.safety import safe_unroll_bounds
from repro.unroll.serialize import tables_from_json, tables_to_json
from repro.unroll.space import DEFAULT_BOUND, UnrollSpace
from repro.unroll.tables import UnrollTables, build_tables

__all__ = [
    "AnalysisEngine",
    "BatchError",
    "BatchItem",
    "BatchReport",
    "NestArtifacts",
    "clear_disk_cache",
    "default_cache_dir",
    "disk_cache_stats",
]

#: Bump when the on-disk key derivation or payload layout changes.
DISK_FORMAT_VERSION = 1

def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override).expanduser()
    return pathlib.Path.home() / ".cache" / "repro"

class _LRU:
    """A bounded mapping with least-recently-used eviction.

    Thread-safe: the serving layer calls into one engine from a pool of
    worker threads, so every access (including the recency bump inside
    :meth:`get`) happens under a per-instance lock.  Concurrent misses on
    the same key may both compute and :meth:`put`; the artifacts an engine
    caches are deterministic per key, so the duplicate work is benign.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("LRU capacity must be positive")
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            if key not in self._data:
                return None
            self._data.move_to_end(key)
            return self._data[key]

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data

@dataclass(frozen=True)
class NestArtifacts:
    """The memoized analysis bundle for one structural equivalence class.

    When a cache hit serves a *renamed* twin of the nest that was analyzed
    first, the artifacts reference that first nest's occurrences; every
    numeric quantity (safety bounds, locality scores, table values) is
    identical across the class by construction of
    :meth:`LoopNest.structural_key`.
    """

    key: str
    graph: DependenceGraph  # the UGS compiler view: no input dependences
    safety: tuple[int, ...]
    locality: tuple[Fraction, ...]
    ugs: tuple[UniformlyGeneratedSet, ...]
    line_size: int

@dataclass(frozen=True)
class BatchError:
    """An input that failed before reaching the engine (e.g. coercion)."""

    name: str
    message: str

@dataclass
class BatchItem:
    """Per-nest envelope of :meth:`AnalysisEngine.optimize_many`."""

    index: int
    name: str
    ok: bool
    result: OptimizationResult | None = None
    error: str | None = None
    duration_s: float = 0.0
    metrics: dict | None = None  # worker-side snapshot, merged by the parent
    spans: list | None = None    # worker-side trace spans, ingested likewise

    def to_dict(self) -> dict:
        row: dict = {"index": self.index, "name": self.name, "ok": self.ok,
                     "duration_s": self.duration_s}
        if self.ok and self.result is not None:
            row["unroll"] = list(self.result.unroll)
            row["balance"] = float(self.result.balance)
            row["objective"] = float(self.result.objective)
            row["feasible"] = self.result.feasible
        else:
            row["error"] = self.error
        return row

@dataclass
class BatchReport:
    """Everything :meth:`AnalysisEngine.optimize_many` learned."""

    items: list[BatchItem]
    workers: int
    wall_time_s: float
    metrics: dict = field(default_factory=dict)

    @property
    def results(self) -> list[OptimizationResult]:
        return [item.result for item in self.items
                if item.ok and item.result is not None]

    @property
    def failures(self) -> list[BatchItem]:
        return [item for item in self.items if not item.ok]

    @property
    def nests_per_sec(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return len(self.items) / self.wall_time_s

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "nests": len(self.items),
            "failures": len(self.failures),
            "nests_per_sec": self.nests_per_sec,
            "items": [item.to_dict() for item in self.items],
            "metrics": self.metrics,
        }

class AnalysisEngine:
    """Memoizing, metric-instrumented front end over the paper's analyses.

    Parameters
    ----------
    capacity:
        Bound of each in-process LRU (graphs, artifacts, tables).
    metrics:
        An existing :class:`Metrics` to record into (default: fresh).
    disk_cache:
        Persist/look up serialized tables under ``cache_dir``.
    cache_dir:
        On-disk cache location (default :func:`default_cache_dir`).
    ugs_cache:
        Memoize per-UGS tables under their canonical signature
        (:mod:`repro.engine.ugscache`) so structurally *different* nests
        that share sets skip the lattice counting.  On by default; the
        benchmarks disable it to measure the whole-nest-only fast path.
    """

    def __init__(self, capacity: int = 256, metrics: Metrics | None = None,
                 disk_cache: bool = False,
                 cache_dir: str | os.PathLike | None = None,
                 profiler: "_obs_profile.Profiler | None" = None,
                 shared_dir: str | os.PathLike | None = None,
                 ugs_cache: bool = True):
        self.metrics = metrics if metrics is not None else Metrics()
        self.profiler = (profiler if profiler is not None
                         else _obs_profile.get_profiler())
        self.disk_cache = disk_cache
        self.cache_dir = (pathlib.Path(cache_dir) if cache_dir is not None
                          else default_cache_dir())
        #: Cross-process mmap-backed table store (cluster workers share
        #: one; see repro.engine.shared).  ``None`` = not sharing.
        self.shared: "SharedTableStore | None" = None
        if shared_dir is not None:
            from repro.engine.shared import SharedTableStore

            self.shared = SharedTableStore(shared_dir)
        self._graphs = _LRU(capacity)
        self._artifacts = _LRU(capacity)
        self._tables = _LRU(capacity)
        self._profiles = _LRU(capacity)
        self._simd = _LRU(capacity)
        #: Sub-structural cache: distinct UGS signatures are far more
        #: numerous than distinct nests in the LRU, so it gets more slots.
        self.ugs_cache: UgsTableCache | None = None
        if ugs_cache:
            self.ugs_cache = UgsTableCache(
                capacity=max(16 * capacity, 1024), metrics=self.metrics,
                shared=self.shared)

    # -- memoized building blocks -------------------------------------------

    def dependence_graph(self, nest: LoopNest,
                         include_input: bool = False) -> DependenceGraph:
        """The nest's dependence graph, memoized by structural key."""
        key = (nest.structural_key(), include_input)
        cached = self._graphs.get(key)
        if cached is not None:
            self.metrics.count("cache.graph.hit")
            return cached
        self.metrics.count("cache.graph.miss")
        with self.metrics.timer("stage.dependence_graph"), \
                _span("engine.dependence_graph", nest=nest.name):
            graph = build_dependence_graph(nest, include_input=include_input)
        self._graphs.put(key, graph)
        return graph

    def analyze(self, nest: LoopNest,
                machine: MachineModel | None = None,
                line_size: int | None = None) -> NestArtifacts:
        """Dependence graph + safety bounds + locality scores + UGS
        partition for one nest, memoized by structural key."""
        if line_size is None:
            line_size = machine.cache_line_words if machine is not None else 4
        key = (nest.structural_key(), line_size)
        cached = self._artifacts.get(key)
        if cached is not None:
            self.metrics.count("cache.artifacts.hit")
            return cached
        self.metrics.count("cache.artifacts.miss")
        with _span("engine.analyze", nest=nest.name), \
                self.profiler.profile("stage.analyze"):
            graph = self.dependence_graph(nest, include_input=False)
            with self.metrics.timer("stage.safety"), _span("engine.safety"):
                safety = safe_unroll_bounds(nest, graph)
            with self.metrics.timer("stage.locality"), \
                    _span("engine.locality"):
                locality = tuple(loop_locality_scores(nest,
                                                      line_size=line_size))
            with self.metrics.timer("stage.ugs_partition"), \
                    _span("ugs.partition"):
                ugs = tuple(partition_ugs(nest))
        artifacts = NestArtifacts(key=key[0], graph=graph, safety=safety,
                                  locality=locality, ugs=ugs,
                                  line_size=line_size)
        self._artifacts.put(key, artifacts)
        return artifacts

    def reuse_profile(self, nest: LoopNest,
                      machine: MachineModel | None = None,
                      line_size: int | None = None,
                      trip: int = 100) -> "NestReuseProfile":
        """The static reuse-distance profile of one nest, memoized by
        structural key (see :func:`repro.reuse.profile.reuse_profile`)."""
        from repro.reuse.profile import reuse_profile as build_profile

        if line_size is None:
            line_size = machine.cache_line_words if machine is not None else 4
        key = (nest.structural_key(), line_size, trip)
        cached = self._profiles.get(key)
        if cached is not None:
            self.metrics.count("cache.profile.hit")
            return cached
        self.metrics.count("cache.profile.miss")
        artifacts = self.analyze(nest, line_size=line_size)
        with self.metrics.timer("stage.reuse_profile"), \
                _span("engine.reuse_profile", nest=nest.name):
            profile = build_profile(nest, line_size=line_size, trip=trip,
                                    ugs=artifacts.ugs)
        self._profiles.put(key, profile)
        return profile

    def tables(self, nest: LoopNest, space: UnrollSpace, line_size: int,
               trip: int = 100,
               ugs: Sequence[UniformlyGeneratedSet] | None = None,
               ) -> UnrollTables:
        """The GTS/GSS/RRS/RL tables, memoized in memory and (optionally)
        on disk.  ``ugs`` optionally reuses a precomputed partition (the
        partition is a pure function of the nest, so the memo key is
        unaffected)."""
        key = (nest.structural_key(), space.dims, space.bounds, line_size,
               trip)
        cached = self._tables.get(key)
        if cached is not None:
            self.metrics.count("cache.tables.hit")
            self.metrics.count("cache.memory.hit")
            return _rebind_tables(cached, nest)
        self.metrics.count("cache.memory.miss")
        shared = self._load_shared_tables(key, nest)
        if shared is not None:
            self.metrics.count("cache.tables.hit")
            self._tables.put(key, shared)
            return shared
        loaded = self._load_disk_tables(key, nest)
        if loaded is not None:
            self.metrics.count("cache.tables.hit")
            self._tables.put(key, loaded)
            self._store_shared_tables(key, loaded)
            return loaded
        self.metrics.count("cache.tables.miss")
        with self.metrics.timer("stage.build_tables"), \
                _span("tables.build", nest=nest.name), \
                self.profiler.profile("stage.build_tables"):
            tables = build_tables(nest, space, line_size=line_size, trip=trip,
                                  ugs=list(ugs) if ugs is not None else None,
                                  ugs_cache=self.ugs_cache)
        self._tables.put(key, tables)
        self._store_shared_tables(key, tables)
        self._store_disk_tables(key, tables)
        return tables

    # -- the end-to-end decision --------------------------------------------

    def optimize(self, nest: LoopNest, machine: MachineModel,
                 bound: int = DEFAULT_BOUND, max_loops: int = 2,
                 include_cache: bool = True,
                 trip: int = 100,
                 cache_model: str = "binary",
                 vectorize: bool = False) -> OptimizationResult:
        """Memoized equivalent of :func:`repro.unroll.optimize.choose_unroll`
        (same decision, byte-identical unroll vector).

        Delegates to :func:`choose_unroll` with the memoized artifacts
        (dependence graph, safety bounds, locality scores, UGS partition)
        and this engine's cached table layer, so nothing is rebuilt on the
        warm path.

        ``cache_model="assoc"`` ranks candidates with the reuse-distance
        profile's set-associative miss estimate for this machine's cache
        geometry instead of the paper's binary hit/miss charge
        (docs/REUSE.md); the default ``"binary"`` keeps the decision
        byte-identical to the paper's algorithm.

        ``vectorize=True`` ranks candidates with the SLP lane cost model
        instead (docs/VECTORIZE.md); a no-op on machines without a
        vector unit, and the default ``False`` keeps every existing
        decision bit-identical.
        """
        if cache_model not in ("binary", "assoc"):
            raise ValueError(f"unknown cache model {cache_model!r} "
                             "(expected 'binary' or 'assoc')")
        with self.metrics.timer("stage.optimize"), \
                _span("engine.optimize", nest=nest.name,
                      machine=machine.name), \
                self.profiler.profile("stage.optimize"):
            line_size = machine.cache_line_words
            artifacts = self.analyze(nest, line_size=line_size)

            def tables_builder(target: LoopNest, space: UnrollSpace,
                               line: int, trip_: int) -> UnrollTables:
                return self.tables(target, space, line, trip_,
                                   ugs=artifacts.ugs)

            @contextmanager
            def stage(name: str):
                with self.metrics.timer(f"stage.{name}"), \
                        _span(f"unroll.{name}"):
                    yield

            miss_model = None
            if cache_model == "assoc":
                from repro.reuse.profile import AssocMissModel

                profile = self.reuse_profile(nest, machine, line_size, trip)
                miss_model = AssocMissModel.for_machine(profile, machine)
            result = choose_unroll(
                nest, machine, bound, max_loops, include_cache, trip,
                graph=artifacts.graph, safety=artifacts.safety,
                scores=artifacts.locality, tables_builder=tables_builder,
                stage=stage, miss_model=miss_model, vectorize=vectorize)
        self.metrics.count("engine.optimize")
        return result

    def simd_report(self, nest: LoopNest, machine: MachineModel,
                    unroll: tuple[int, ...], trip: int = 100):
        """Memoized :func:`repro.simd.vectorize_nest`: the pack set,
        schedule and lane cost estimate of ``nest`` jammed by ``unroll``
        on ``machine`` (docs/VECTORIZE.md)."""
        from repro.simd import vectorize_nest

        # The report embeds the nest's display name, so the key must too
        # (structural keys are deliberately name-blind).
        key = (nest.structural_key(), nest.name, machine.name, tuple(unroll))
        cached = self._simd.get(key)
        if cached is not None:
            self.metrics.count("cache.simd.hits")
            return cached
        self.metrics.count("cache.simd.misses")
        with self.metrics.timer("stage.simd"), \
                _span("engine.simd", nest=nest.name, machine=machine.name):
            report = vectorize_nest(nest, tuple(unroll), machine)
        self._simd.put(key, report)
        return report

    # -- corpus fan-out ------------------------------------------------------

    def optimize_many(self, nests: Sequence[object], machine: MachineModel,
                      workers: int | None = None,
                      bound: int = DEFAULT_BOUND, max_loops: int = 2,
                      include_cache: bool = True,
                      trip: int = 100) -> BatchReport:
        """Optimize a whole corpus.

        ``workers=None`` or ``1`` runs in-process (sharing this engine's
        caches); ``workers=N`` fans out over a process pool.  Entries that
        are not :class:`LoopNest` (or are :class:`BatchError` placeholders
        from upstream coercion) and nests whose analysis raises become
        failed items; the rest of the batch completes.

        Structurally identical nests are deduplicated *before* dispatch:
        one representative runs, its result fans back out to every
        duplicate index (``engine.dedup.hits`` counts the slots saved).
        """
        start = time.monotonic()
        params = dict(bound=bound, max_loops=max_loops,
                      include_cache=include_cache, trip=trip)
        with _span("engine.optimize_many", nests=len(nests),
                   workers=workers or 1):
            pairs, duplicates = self._dedup_pairs(enumerate(nests))
            if workers is not None and workers > 1:
                items = self._run_parallel(pairs, machine, workers, params)
            else:
                items = [self._run_one(i, nest, machine, params)
                         for i, nest in pairs]
            if duplicates:
                by_index = {item.index: item for item in items}
                for rep_index, waiters in duplicates.items():
                    rep = by_index[rep_index]
                    items.extend(_fan_item(rep, i, nest)
                                 for i, nest in waiters)
                items.sort(key=lambda item: item.index)
        wall = time.monotonic() - start
        self.metrics.count("batch.runs")
        self.metrics.count("batch.items", len(items))
        self.metrics.count("batch.failures",
                           sum(1 for item in items if not item.ok))
        self.metrics.observe("stage.batch", wall)
        return BatchReport(items=items, workers=workers or 1,
                           wall_time_s=wall,
                           metrics=self.metrics.snapshot())

    def _run_one(self, index: int, nest: object, machine: MachineModel,
                 params: dict) -> BatchItem:
        name = getattr(nest, "name", f"item{index}")
        if isinstance(nest, BatchError):
            return BatchItem(index=index, name=nest.name, ok=False,
                             error=nest.message)
        if not isinstance(nest, LoopNest):
            return BatchItem(index=index, name=str(name), ok=False,
                             error=f"not a loop nest: {type(nest).__name__}")
        t0 = time.monotonic()
        try:
            result = self.optimize(nest, machine, **params)
        except Exception as err:  # per-nest capture: the batch survives
            return BatchItem(index=index, name=nest.name, ok=False,
                             error=f"{type(err).__name__}: {err}",
                             duration_s=time.monotonic() - t0)
        return BatchItem(index=index, name=nest.name, ok=True, result=result,
                         duration_s=time.monotonic() - t0)

    def _dedup_pairs(self, pairs: Iterable[tuple[int, object]],
                     ) -> tuple[list[tuple[int, object]],
                                dict[int, list[tuple[int, LoopNest]]]]:
        """Split indexed entries into unique work and structural twins.

        Returns ``(unique, duplicates)``: the first-seen entry of every
        structural key (plus every non-nest entry) in order, and a map
        from each representative's index to its duplicates' ``(index,
        nest)`` pairs.  Counts the saved slots as ``engine.dedup.hits``.
        """
        seen: dict[object, int] = {}
        unique: list[tuple[int, object]] = []
        duplicates: dict[int, list[tuple[int, LoopNest]]] = {}
        hits = 0
        for index, nest in pairs:
            if isinstance(nest, LoopNest):
                key = nest.structural_key()
                rep = seen.get(key)
                if rep is not None:
                    duplicates.setdefault(rep, []).append((index, nest))
                    hits += 1
                    continue
                seen[key] = index
            unique.append((index, nest))
        if hits:
            self.metrics.count("engine.dedup.hits", hits)
        return unique, duplicates

    def _run_parallel(self, pairs: Sequence[tuple[int, object]],
                      machine: MachineModel,
                      workers: int, params: dict) -> list[BatchItem]:
        from concurrent import futures

        # When tracing, ship the current (trace_id, span_id) to every
        # worker so the spans it records come back rooted under this
        # batch's span -- parent/child nesting survives the pool hop.
        trace_ctx = (_obs_trace.current_context()
                     if _obs_trace.get_tracer().enabled else None)
        local: list[BatchItem] = []
        tasks: list[_Task] = []
        for index, nest in pairs:
            if isinstance(nest, LoopNest):
                tasks.append(_Task(index=index, nest=nest, machine=machine,
                                   params=params,
                                   disk_cache=self.disk_cache,
                                   cache_dir=str(self.cache_dir),
                                   trace=trace_ctx))
            else:
                local.append(self._run_one(index, nest, machine, params))
        items = list(local)
        try:
            with futures.ProcessPoolExecutor(max_workers=workers) as pool:
                pending = {pool.submit(_optimize_task, task): task
                           for task in tasks}
                for future in futures.as_completed(pending):
                    task = pending[future]
                    try:
                        item = future.result()
                    except Exception as err:  # broken pool / unpicklable
                        item = BatchItem(index=task.index,
                                         name=task.nest.name, ok=False,
                                         error=f"worker failed: "
                                               f"{type(err).__name__}: {err}")
                    if item.metrics is not None:
                        self.metrics.merge(item.metrics)
                        item.metrics = None
                    if item.spans is not None:
                        _obs_trace.get_tracer().ingest(item.spans)
                        item.spans = None
                    items.append(item)
        except (OSError, PermissionError, NotImplementedError):
            # No process pool available here: degrade to in-process.
            self.metrics.count("batch.pool_fallback")
            done = {item.index for item in items}
            for task in tasks:
                if task.index not in done:
                    items.append(self._run_one(task.index, task.nest,
                                               machine, params))
        items.sort(key=lambda item: item.index)
        return items

    # -- streaming corpus fan-out --------------------------------------------

    def optimize_stream(self, nests: Iterable[object],
                        machine: MachineModel,
                        workers: int | None = None,
                        bound: int = DEFAULT_BOUND, max_loops: int = 2,
                        include_cache: bool = True, trip: int = 100,
                        chunk_size: int = 32,
                        window: int = 4096) -> Iterator[BatchItem]:
        """Optimize an *iterable* corpus, yielding items as they complete.

        The streaming sibling of :meth:`optimize_many` for corpora too
        large to materialize: nothing holds the input list or the result
        list, so peak memory stays near-flat in the corpus size.

        * ``workers=None``/``1`` runs in-process, yielding in input
          order; ``workers=N`` fans chunks of ``chunk_size`` nests over a
          process pool (eagerly warmed via a pool initializer, so every
          worker's UGS cache is hot from its first chunk) with at most
          ``2 * workers`` chunks in flight, yielding in *completion*
          order -- consume :attr:`BatchItem.index` to reorder.
        * structural twins dedup against a sliding ``window`` of recent
          results (and against in-flight chunks) before dispatch, counted
          as ``engine.dedup.hits``.

        Every yielded item is a :class:`BatchItem`; failures are reported
        items exactly as in :meth:`optimize_many`.
        """
        params = dict(bound=bound, max_loops=max_loops,
                      include_cache=include_cache, trip=trip)
        self.metrics.count("stream.runs")
        if workers is not None and workers > 1:
            yield from self._stream_parallel(nests, machine, workers,
                                             params, chunk_size, window)
        else:
            yield from self._stream_serial(nests, machine, params, window)

    def _stream_serial(self, nests: Iterable[object], machine: MachineModel,
                       params: dict, window: int) -> Iterator[BatchItem]:
        recent = _LRU(window)
        for index, nest in enumerate(nests):
            key = (nest.structural_key()
                   if isinstance(nest, LoopNest) else None)
            if key is not None:
                rep = recent.get(key)
                if rep is not None:
                    self.metrics.count("engine.dedup.hits")
                    yield _fan_item(rep, index, nest)
                    continue
            item = self._run_one(index, nest, machine, params)
            self.metrics.count("stream.items")
            if key is not None:
                recent.put(key, item)
            yield item

    def _stream_parallel(self, nests: Iterable[object],
                         machine: MachineModel, workers: int, params: dict,
                         chunk_size: int,
                         window: int) -> Iterator[BatchItem]:
        from concurrent import futures

        trace_ctx = (_obs_trace.current_context()
                     if _obs_trace.get_tracer().enabled else None)
        try:
            pool = futures.ProcessPoolExecutor(
                max_workers=workers, initializer=_init_worker,
                initargs=(self.disk_cache, str(self.cache_dir)))
        except (OSError, PermissionError, NotImplementedError):
            self.metrics.count("batch.pool_fallback")
            yield from self._stream_serial(nests, machine, params, window)
            return

        recent = _LRU(window)
        #: key -> duplicates waiting on an in-flight representative.
        waiting: dict[object, list[tuple[int, LoopNest]]] = {}
        chunk: list[tuple[int, LoopNest, object]] = []
        pending: dict = {}  # future -> its chunk's (index, nest, key) list
        max_pending = 2 * workers
        source = iter(enumerate(nests))
        exhausted = False

        def submit() -> None:
            nonlocal chunk
            if not chunk:
                return
            entries = chunk
            chunk = []
            task = _Chunk(entries=tuple((i, nest) for i, nest, _ in entries),
                          machine=machine, params=params,
                          disk_cache=self.disk_cache,
                          cache_dir=str(self.cache_dir), trace=trace_ctx)
            pending[pool.submit(_optimize_chunk, task)] = entries
            self.metrics.count("stream.chunks")

        def resolve_local(index: int, nest: LoopNest,
                          key: object) -> Iterator[BatchItem]:
            """In-process completion of one entry plus its waiters (the
            no-process-pool degradation path)."""
            item = self._run_one(index, nest, machine, params)
            self.metrics.count("stream.items")
            recent.put(key, item)
            yield item
            dups = waiting.pop(key, ())
            if dups:
                self.metrics.count("engine.dedup.hits", len(dups))
            for dup_index, dup_nest in dups:
                yield _fan_item(item, dup_index, dup_nest)

        def drain(future) -> Iterator[BatchItem]:
            entries = pending.pop(future)
            try:
                out = future.result()
            except Exception as err:  # broken pool / unpicklable
                out = _ChunkResult(items=[
                    BatchItem(index=i, name=nest.name, ok=False,
                              error=f"worker failed: "
                                    f"{type(err).__name__}: {err}")
                    for i, nest, _ in entries])
            if out.metrics is not None:
                self.metrics.merge(out.metrics)
            if out.spans is not None:
                _obs_trace.get_tracer().ingest(out.spans)
            by_index = {item.index: item for item in out.items}
            for index, nest, key in entries:
                item = by_index.get(index)
                if item is None:  # defensive: worker dropped an entry
                    item = BatchItem(index=index, name=nest.name, ok=False,
                                     error="worker returned no result")
                self.metrics.count("stream.items")
                recent.put(key, item)
                yield item
                dups = waiting.pop(key, ())
                if dups:
                    self.metrics.count("engine.dedup.hits", len(dups))
                for dup_index, dup_nest in dups:
                    yield _fan_item(item, dup_index, dup_nest)

        try:
            while True:
                # Fill the pipeline up to the in-flight bound.
                while not exhausted and len(pending) < max_pending:
                    try:
                        index, nest = next(source)
                    except StopIteration:
                        exhausted = True
                        break
                    if not isinstance(nest, LoopNest):
                        yield self._run_one(index, nest, machine, params)
                        continue
                    key = nest.structural_key()
                    rep = recent.get(key)
                    if rep is not None:
                        self.metrics.count("engine.dedup.hits")
                        yield _fan_item(rep, index, nest)
                        continue
                    if key in waiting:
                        waiting[key].append((index, nest))
                        continue
                    waiting[key] = []
                    chunk.append((index, nest, key))
                    if len(chunk) >= chunk_size:
                        submit()
                if exhausted:
                    submit()  # flush the partial tail chunk
                if not pending:
                    break
                done, _ = futures.wait(
                    pending, return_when=futures.FIRST_COMPLETED)
                for future in done:
                    yield from drain(future)
        except (OSError, PermissionError, NotImplementedError):
            # No working process pool here (sandbox, no fork): degrade to
            # in-process for everything not yet completed.
            self.metrics.count("batch.pool_fallback")
            leftovers = [entry for entries in pending.values()
                         for entry in entries]
            for future in pending:
                future.cancel()
            pending.clear()
            leftovers.extend(chunk)
            chunk = []
            for index, nest, key in leftovers:
                yield from resolve_local(index, nest, key)
            if not exhausted:
                for index, nest in source:
                    if not isinstance(nest, LoopNest):
                        yield self._run_one(index, nest, machine, params)
                        continue
                    key = nest.structural_key()
                    rep = recent.get(key)
                    if rep is not None:
                        self.metrics.count("engine.dedup.hits")
                        yield _fan_item(rep, index, nest)
                        continue
                    yield from resolve_local(index, nest, key)
        finally:
            for future in pending:
                future.cancel()
            pool.shutdown(wait=False, cancel_futures=True)

    # -- cache management ----------------------------------------------------

    def cache_stats(self) -> dict:
        """Sizes and hit counters of every cache layer."""
        stats = {
            "memory": {
                "graphs": len(self._graphs),
                "artifacts": len(self._artifacts),
                "tables": len(self._tables),
                "capacity": self._tables.capacity,
                "ugs": (len(self.ugs_cache)
                        if self.ugs_cache is not None else 0),
            },
            "counters": {
                name: value for name, value in
                sorted(self.metrics.counters.items())
                if name.startswith("cache.")},
            # Per-tier ratios: "tables" is the any-tier aggregate;
            # memory/shared/disk are the lookup tiers in probe order, and
            # "ugs" is the sub-structural per-set cache.  All flow into
            # the Prometheus exposition as repro_cache_hit_rate_<family>.
            "hit_rates": {
                family: self.metrics.hit_rate(f"cache.{family}")
                for family in ("graph", "artifacts", "tables", "memory",
                               "shared", "disk", "ugs")},
            "disk_enabled": self.disk_cache,
        }
        if self.disk_cache:
            stats["disk"] = disk_cache_stats(self.cache_dir)
        if self.shared is not None:
            stats["shared"] = self.shared.stats()
        return stats

    def clear(self) -> None:
        """Drop every in-memory memo (the disk cache is left alone)."""
        self._graphs.clear()
        self._artifacts.clear()
        self._tables.clear()
        if self.ugs_cache is not None:
            self.ugs_cache.clear()

    # -- disk layer ----------------------------------------------------------

    def _disk_path(self, key: tuple) -> pathlib.Path:
        return self.cache_dir / f"tables-{self._table_digest(key)}.json"

    @staticmethod
    def _table_digest(key: tuple) -> str:
        """The stable digest naming a table entry in the disk cache and
        the shared segment (one derivation, one versioning knob)."""
        digest = hashlib.sha256(
            f"v{DISK_FORMAT_VERSION}:{key!r}".encode("utf-8")).hexdigest()
        return digest[:32]

    def _load_shared_tables(self, key: tuple,
                            nest: LoopNest) -> UnrollTables | None:
        if self.shared is None:
            return None
        with self.metrics.timer("stage.shared_load"):
            tables = self.shared.get(self._table_digest(key))
        if tables is None:
            self.metrics.count("cache.shared.miss")
            return None
        self.metrics.count("cache.shared.hit")
        return _rebind_tables(tables, nest)

    def _store_shared_tables(self, key: tuple,
                             tables: UnrollTables) -> None:
        if self.shared is None:
            return
        with self.metrics.timer("stage.shared_store"):
            if self.shared.put(self._table_digest(key), tables):
                self.metrics.count("cache.shared.store")

    def _load_disk_tables(self, key: tuple,
                          nest: LoopNest) -> UnrollTables | None:
        if not self.disk_cache:
            return None
        path = self._disk_path(key)
        try:
            text = path.read_text()
        except OSError:
            self.metrics.count("cache.disk.miss")
            return None
        try:
            with self.metrics.timer("stage.disk_load"):
                tables = tables_from_json(text)
        except Exception:
            # Corrupt or truncated entry: treat it as evicted and
            # recompute rather than fail the request.  The slot is NOT
            # unlinked here -- under concurrent multi-process use another
            # engine may have just atomically replaced it with a fresh
            # valid entry, and unlinking would delete that good work.
            # The recompute path's write-to-temp + os.replace store
            # overwrites the corrupt bytes instead, which is safe to
            # race: last writer wins with a complete entry either way.
            self.metrics.count("cache.disk.error")
            self.metrics.count("cache.disk.evict")
            return None
        self.metrics.count("cache.disk.hit")
        return _rebind_tables(tables, nest)

    def _store_disk_tables(self, key: tuple, tables: UnrollTables) -> None:
        if not self.disk_cache:
            return
        path = self._disk_path(key)
        # Write-to-temp + atomic rename: a concurrent reader (another thread
        # or process) never observes a partially written entry.
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with self.metrics.timer("stage.disk_store"):
                tmp.write_text(tables_to_json(tables))
                os.replace(tmp, path)
            self.metrics.count("cache.disk.store")
        except OSError:
            self.metrics.count("cache.disk.error")
            try:
                tmp.unlink()
            except OSError:
                pass

def _fan_item(rep: BatchItem, index: int, nest: LoopNest) -> BatchItem:
    """A duplicate index's item, cloned from its structural twin's.

    The result is re-reported under the duplicate's own nest (twins may
    differ in name and loop variables); every numeric field is shared.
    Failures fan out too: a twin of a failing nest fails identically.
    """
    result = rep.result
    if result is not None and result.nest is not nest:
        result = replace(result, nest=nest)
    return BatchItem(index=index, name=nest.name, ok=rep.ok, result=result,
                     error=rep.error, duration_s=0.0)

def _rebind_tables(tables: UnrollTables, nest: LoopNest) -> UnrollTables:
    """Serve cached tables under the caller's nest object.

    The cached entry may belong to a structurally identical twin (renamed
    loop variables, different nest name); every numeric table is shared,
    only the ``nest`` the result reports is swapped.
    """
    if tables.nest is nest:
        return tables
    rebound = UnrollTables(nest, tables.space, tables.line_size, tables.trip,
                           tables.per_ugs)
    rebound._points = tables._points  # share the point memo too
    return rebound

# -- worker-process plumbing -------------------------------------------------

@dataclass(frozen=True)
class _Task:
    """Picklable work unit shipped to pool workers."""

    index: int
    nest: LoopNest
    machine: MachineModel
    params: dict
    disk_cache: bool
    cache_dir: str
    trace: tuple[str, str] | None = None  # parent (trace_id, span_id)

@dataclass(frozen=True)
class _Chunk:
    """Picklable streaming work unit: a slice of the corpus shipped to a
    pool worker in one hop (amortizes the per-task IPC of ``_Task``)."""

    entries: tuple[tuple[int, LoopNest], ...]
    machine: MachineModel
    params: dict
    disk_cache: bool = False
    cache_dir: str = ""
    trace: tuple[str, str] | None = None

@dataclass
class _ChunkResult:
    """One chunk's items plus a single merged metrics/spans envelope."""

    items: list[BatchItem]
    metrics: dict | None = None
    spans: list | None = None

_WORKER_ENGINE: AnalysisEngine | None = None

def _init_worker(disk_cache: bool, cache_dir: str) -> None:
    """Pool initializer: build the per-process engine eagerly so every
    worker's caches (tables LRU, UGS cache) exist -- and stay warm --
    from its very first chunk."""
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None:
        _WORKER_ENGINE = AnalysisEngine(disk_cache=disk_cache,
                                        cache_dir=cache_dir)

def _worker_engine(disk_cache: bool, cache_dir: str) -> AnalysisEngine:
    """The per-process engine with a fresh Metrics for this task, so the
    snapshot shipped back covers exactly this task's work."""
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None:
        _WORKER_ENGINE = AnalysisEngine(disk_cache=disk_cache,
                                        cache_dir=cache_dir)
    engine = _WORKER_ENGINE
    engine.metrics = Metrics()
    if engine.ugs_cache is not None:
        engine.ugs_cache.metrics = engine.metrics
    return engine

def _optimize_chunk(chunk: _Chunk) -> _ChunkResult:
    """Run one streamed chunk in a worker; per-nest errors degrade to
    failed items, exactly as in :meth:`AnalysisEngine._run_one`."""
    engine = _worker_engine(chunk.disk_cache, chunk.cache_dir)
    worker_tracer = None
    previous_tracer = None
    if chunk.trace is not None:
        worker_tracer = _obs_trace.Tracer(enabled=True)
        previous_tracer = _obs_trace.set_tracer(worker_tracer)
    items: list[BatchItem] = []
    try:
        with _obs_trace.activate(chunk.trace):
            for index, nest in chunk.entries:
                items.append(engine._run_one(index, nest, chunk.machine,
                                             chunk.params))
    finally:
        if previous_tracer is not None:
            _obs_trace.set_tracer(previous_tracer)
    spans = ([span_obj.to_dict() for span_obj in worker_tracer.spans()]
             if worker_tracer is not None else None)
    return _ChunkResult(items=items, metrics=engine.metrics.snapshot(),
                        spans=spans)

def _optimize_task(task: _Task) -> BatchItem:
    """Run one task in a worker, reusing a per-process engine so repeated
    structures stay warm within the worker; returns a picklable item
    carrying the task's metrics snapshot for the parent to merge."""
    engine = _worker_engine(task.disk_cache, task.cache_dir)
    # Trace propagation: when the parent traced the batch, record this
    # task's spans into a fresh worker tracer rooted at the parent's
    # context and ship them back serialized on the item.
    worker_tracer = None
    previous_tracer = None
    if task.trace is not None:
        worker_tracer = _obs_trace.Tracer(enabled=True)
        previous_tracer = _obs_trace.set_tracer(worker_tracer)
    t0 = time.monotonic()
    try:
        with _obs_trace.activate(task.trace):
            result = engine.optimize(task.nest, task.machine, **task.params)
        item = BatchItem(index=task.index, name=task.nest.name, ok=True,
                         result=result, duration_s=time.monotonic() - t0)
    except Exception as err:
        item = BatchItem(index=task.index, name=task.nest.name, ok=False,
                         error=f"{type(err).__name__}: {err}",
                         duration_s=time.monotonic() - t0)
    finally:
        if previous_tracer is not None:
            _obs_trace.set_tracer(previous_tracer)
    if worker_tracer is not None:
        item.spans = [span_obj.to_dict()
                      for span_obj in worker_tracer.spans()]
    item.metrics = engine.metrics.snapshot()
    return item

# -- module-level disk-cache utilities ---------------------------------------

def disk_cache_stats(cache_dir: str | os.PathLike | None = None) -> dict:
    """Entry count and byte total of the on-disk table cache."""
    directory = (pathlib.Path(cache_dir) if cache_dir is not None
                 else default_cache_dir())
    entries = 0
    total = 0
    if directory.is_dir():
        for path in directory.glob("tables-*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
    return {"dir": str(directory), "entries": entries, "bytes": total}

def clear_disk_cache(cache_dir: str | os.PathLike | None = None) -> int:
    """Delete every cached table file; returns how many were removed."""
    directory = (pathlib.Path(cache_dir) if cache_dir is not None
                 else default_cache_dir())
    removed = 0
    if directory.is_dir():
        for path in directory.glob("tables-*.json"):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
    return removed
