"""A cross-process, mmap-backed, read-mostly store of hot engine tables.

Cluster workers each memoize unroll tables in-process, so N workers pay
for every table up to N times and a freshly scaled-up shard starts
stone-cold.  :class:`SharedTableStore` closes that gap with the classic
read-mostly design:

* **one segment file** holds every published entry: a small index
  (key digest -> blob offset/length) followed by the serialized tables
  (:func:`repro.unroll.serialize.tables_to_json` blobs).  Readers
  ``mmap`` the segment once and serve lookups straight out of the page
  cache -- no locks, no syscalls on the hot path, and the physical pages
  are shared by every worker on the machine;
* **publish-on-miss** -- a worker that had to build tables appends them
  to the store by writing a *new* segment (current entries + the new
  one) to a temp file and atomically swapping it in (``os.replace``),
  then flipping the ``CURRENT`` pointer file the same way.  Readers that
  still hold the old mmap keep working; they pick up the new generation
  on their next miss.  Concurrent publishers race last-writer-wins,
  which can drop the loser's entry -- acceptable for a cache of
  deterministic values (the loser republishes on its next miss);
* **generations** -- every swap increments a generation number embedded
  in the segment header; :meth:`stats` exposes it so tests and the
  cluster status document can watch propagation.

Everything is stdlib (``mmap``, ``struct``, ``os.replace``); the store
degrades to a no-op when the directory cannot be created or written.
"""

from __future__ import annotations

import mmap
import os
import pathlib
import struct

from repro.unroll.serialize import tables_from_json, tables_to_json

__all__ = ["SharedTableStore"]

_MAGIC = b"RSHM"
_VERSION = 1
#: header: magic, format version, generation, entry count, index size.
_HEADER = struct.Struct("!4sBQII")
#: index entry: key-digest length, blob offset, blob length.
_ENTRY = struct.Struct("!HQI")

#: Hard bounds so one runaway corpus cannot grow the segment forever.
_MAX_ENTRIES = 4096
_MAX_BLOB = 8 * 1024 * 1024

class SharedTableStore:
    """One process's handle on the shared segment (reader + publisher)."""

    def __init__(self, directory: "str | os.PathLike",
                 max_entries: int = _MAX_ENTRIES):
        self.directory = pathlib.Path(directory)
        self.max_entries = max_entries
        self.generation = 0
        self._index: dict[str, tuple[int, int]] = {}
        self._mmap: mmap.mmap | None = None
        self._file = None
        self._current_seen: bytes | None = None
        self.hits = 0
        self.misses = 0
        self.publishes = 0
        self.errors = 0
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._enabled = True
        except OSError:
            self._enabled = False
        self._refresh()

    # -- reading --------------------------------------------------------------

    @property
    def _current_path(self) -> pathlib.Path:
        return self.directory / "CURRENT"

    def _refresh(self) -> bool:
        """Re-open the segment iff the ``CURRENT`` pointer moved."""
        if not self._enabled:
            return False
        try:
            pointer = self._current_path.read_bytes()
        except OSError:
            return False
        if pointer == self._current_seen:
            return False
        segment = self.directory / pointer.decode("utf-8").strip()
        try:
            handle = open(segment, "rb")
        except OSError:
            return False
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            index, generation = self._parse_index(mapped)
        except (OSError, ValueError):
            handle.close()
            self.errors += 1
            return False
        self._close_map()
        self._file, self._mmap = handle, mapped
        self._index, self.generation = index, generation
        self._current_seen = pointer
        return True

    @staticmethod
    def _parse_index(mapped) -> tuple[dict[str, tuple[int, int]], int]:
        header = bytes(mapped[:_HEADER.size])
        if len(header) < _HEADER.size:
            raise ValueError("segment too short")
        magic, version, generation, count, index_size = \
            _HEADER.unpack(header)
        if magic != _MAGIC or version != _VERSION:
            raise ValueError(f"bad segment header {magic!r} v{version}")
        index: dict[str, tuple[int, int]] = {}
        cursor = _HEADER.size
        limit = _HEADER.size + index_size
        for _ in range(count):
            if cursor + _ENTRY.size > limit:
                raise ValueError("truncated segment index")
            key_len, offset, length = _ENTRY.unpack(
                bytes(mapped[cursor:cursor + _ENTRY.size]))
            cursor += _ENTRY.size
            key = bytes(mapped[cursor:cursor + key_len]).decode("ascii")
            cursor += key_len
            if offset + length > len(mapped):
                raise ValueError("blob beyond segment end")
            index[key] = (offset, length)
        return index, generation

    def _close_map(self) -> None:
        if self._mmap is not None:
            try:
                self._mmap.close()
            except (BufferError, OSError):
                pass
            self._mmap = None
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None

    def get_blob(self, key: str) -> bytes | None:
        """The raw serialized-tables blob for ``key``, or ``None``."""
        if not self._enabled:
            return None
        entry = self._index.get(key)
        if entry is None:
            # Maybe another worker published since we last mapped.
            if not self._refresh():
                self.misses += 1
                return None
            entry = self._index.get(key)
            if entry is None:
                self.misses += 1
                return None
        offset, length = entry
        try:
            blob = bytes(self._mmap[offset:offset + length])
        except (ValueError, OSError):
            self.errors += 1
            return None
        self.hits += 1
        return blob

    def get(self, key: str):
        """Deserialized :class:`~repro.unroll.tables.UnrollTables` for
        ``key``, or ``None`` (corrupt blobs count as misses)."""
        blob = self.get_blob(key)
        if blob is None:
            return None
        try:
            return tables_from_json(blob.decode("utf-8"))
        except Exception:
            self.errors += 1
            return None

    # -- publishing -----------------------------------------------------------

    def put(self, key: str, tables) -> bool:
        """Publish one entry (serialize, merge with the current segment,
        atomic generation swap).  Returns whether the entry landed."""
        if not self._enabled:
            return False
        try:
            blob = tables_to_json(tables).encode("utf-8")
        except Exception:
            self.errors += 1
            return False
        return self.put_blob(key, blob)

    def put_blob(self, key: str, blob: bytes) -> bool:
        if not self._enabled or len(blob) > _MAX_BLOB:
            return False
        self._refresh()
        if key in self._index:
            return True  # someone else already published it
        merged: dict[str, bytes] = {}
        for existing, (offset, length) in self._index.items():
            try:
                merged[existing] = bytes(self._mmap[offset:offset + length])
            except (ValueError, OSError):
                continue
        merged[key] = blob
        while len(merged) > self.max_entries:
            # Drop an arbitrary old entry (insertion order: oldest first).
            merged.pop(next(iter(merged)))
        generation = self.generation + 1
        name = f"segment-{generation:08d}-{os.getpid()}.bin"
        index_size = sum(_ENTRY.size + len(k.encode("ascii"))
                         for k in merged)
        offset = _HEADER.size + index_size
        index_bytes = bytearray()
        blob_bytes = bytearray()
        for k, value in merged.items():
            raw = k.encode("ascii")
            index_bytes += _ENTRY.pack(len(raw), offset, len(value))
            index_bytes += raw
            blob_bytes += value
            offset += len(value)
        payload = _HEADER.pack(_MAGIC, _VERSION, generation, len(merged),
                               index_size) + bytes(index_bytes) \
            + bytes(blob_bytes)
        tmp = self.directory / f".{name}.tmp{os.getpid()}"
        try:
            tmp.write_bytes(payload)
            os.replace(tmp, self.directory / name)
            pointer_tmp = self.directory / f".CURRENT.tmp{os.getpid()}"
            pointer_tmp.write_bytes(name.encode("utf-8"))
            os.replace(pointer_tmp, self._current_path)
        except OSError:
            self.errors += 1
            for leftover in (tmp,):
                try:
                    leftover.unlink()
                except OSError:
                    pass
            return False
        self.publishes += 1
        self._gc(keep=name)
        self._refresh()
        return True

    def _gc(self, keep: str) -> None:
        """Unlink superseded segments (best-effort; readers holding an
        old mmap are unaffected -- the inode lives on)."""
        try:
            for path in self.directory.glob("segment-*.bin"):
                if path.name != keep:
                    try:
                        path.unlink()
                    except OSError:
                        pass
        except OSError:
            pass

    # -- bookkeeping -----------------------------------------------------------

    def stats(self) -> dict:
        return {
            "enabled": self._enabled,
            "generation": self.generation,
            "entries": len(self._index),
            "hits": self.hits,
            "misses": self.misses,
            "publishes": self.publishes,
            "errors": self.errors,
        }

    def close(self) -> None:
        self._close_map()
        self._current_seen = None

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
