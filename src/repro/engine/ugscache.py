"""Cross-nest memoization of per-UGS tables (sub-structural caching).

Every cache the engine had before this module keys on the *whole-nest*
structural key, so two different nests that share identical uniformly
generated sets recompute every GTS/GSS/RRS/register table from scratch.
But the paper's math factors per UGS: each set's tables depend only on

* the subscript matrix H,
* the members' constant vectors **up to uniform translation** (merges and
  spatial relations consume pairwise deltas only, and the stream-chain
  touch times shift uniformly under translation, preserving order and
  spans),
* each member's read/write role and the members' *relative* textual
  order (positions only break touch-time ties, so only their rank
  matters),
* the unroll space (depth, dims, bounds), the localized vector space,
  the cache line size and the trip count (through the Equation-1 base
  factor).

:func:`ugs_signature` canonicalizes exactly that tuple -- notably
subtracting the first member's constant vector from every member, so
``A(I,J)+A(I-1,J)`` and ``A(I+4,J)+A(I+3,J)`` (and the same pattern on a
differently named array) share one entry.  :class:`UgsTableCache` then
memoizes :class:`~repro.unroll.tables.UgsTables` under that signature in
a process-local LRU, optionally backed by the cross-process mmap
:class:`~repro.engine.shared.SharedTableStore` (UGS entries ride the
store's generic blob API under a distinct ``ugs-`` key prefix).

Hits rebind only the ``ugs`` field of the cached entry; every numeric
table is shared, so a cold nest whose sets were seen in *any* prior nest
folds cached tables in O(1) per set instead of re-running the lattice
counting.  The parity fuzz suite (tests/test_ugs_cache.py) checks the
served tables are bit-identical to a fresh build.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.linalg import VectorSpace
from repro.reuse.ugs import UniformlyGeneratedSet
from repro.unroll.serialize import ugs_tables_from_json, ugs_tables_to_json
from repro.unroll.space import UnrollSpace
from repro.unroll.tables import UgsTables

if TYPE_CHECKING:  # pragma: no cover -- type names only
    from repro.engine.metrics import Metrics
    from repro.engine.shared import SharedTableStore

__all__ = ["UgsTableCache", "ugs_digest", "ugs_signature"]

#: Bump when the signature derivation or the serialized payload changes.
UGS_FORMAT_VERSION = 1

def ugs_signature(group: UniformlyGeneratedSet, space: UnrollSpace,
                  localized: VectorSpace, line_size: int,
                  trip: int) -> tuple:
    """The canonical, hashable key under which ``group``'s tables are
    valid for any nest.

    The array name and the absolute constant vectors are deliberately
    absent: tables consume constant *deltas* (plus uniform-shift-invariant
    touch times), so translating every member by the first member's
    constants maximizes cross-nest sharing without changing a single
    table value.  Member positions enter only as their rank order (the
    touch-time tie-break compares positions, never their values).
    """
    members = group.members
    consts = group.constants()
    base = consts[0]
    normalized = tuple(tuple(c - b for c, b in zip(vec, base))
                       for vec in consts)
    by_position = sorted(range(len(members)),
                         key=lambda i: members[i].position)
    ranks = [0] * len(members)
    for rank, member in enumerate(by_position):
        ranks[member] = rank
    return (
        UGS_FORMAT_VERSION,
        group.matrix.rows,
        normalized,
        tuple(m.is_write for m in members),
        tuple(ranks),
        space.depth, space.dims, space.bounds,
        localized.dimension_ambient, localized.basis,
        line_size, trip,
    )

def ugs_digest(signature: tuple) -> str:
    """The stable shared-store key for a signature.  The ``ugs-`` prefix
    keeps UGS entries disjoint from the engine's whole-nest table digests
    inside one :class:`SharedTableStore` segment."""
    digest = hashlib.sha256(repr(signature).encode("utf-8")).hexdigest()
    return f"ugs-{digest[:32]}"

class UgsTableCache:
    """Process-local LRU of per-UGS tables, optionally shared cross-process.

    Thread-safe (one lock around the recency-ordered map); the entries are
    frozen dataclasses over immutable tables, so sharing them between
    threads -- and across every nest the engine ever sees -- is safe.

    ``metrics`` is read through the attribute on every probe, so an engine
    that swaps its :class:`Metrics` (the pool workers do, per task) only
    has to re-point ``cache.metrics``.
    """

    def __init__(self, capacity: int = 4096,
                 metrics: "Metrics | None" = None,
                 shared: "SharedTableStore | None" = None):
        if capacity <= 0:
            raise ValueError("UGS cache capacity must be positive")
        self.capacity = capacity
        self.metrics = metrics
        self.shared = shared
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.count(name, n)

    def key_for(self, group: UniformlyGeneratedSet, space: UnrollSpace,
                localized: VectorSpace, line_size: int, trip: int) -> tuple:
        return ugs_signature(group, space, localized, line_size, trip)

    def fetch(self, key: tuple,
              group: UniformlyGeneratedSet) -> UgsTables | None:
        """The cached tables under ``key`` rebound to ``group``, or
        ``None`` on a full miss.  Probes the in-process LRU first, then
        the shared segment (promoting shared hits into the LRU)."""
        with self._lock:
            entry = self._data.get(key)
            if entry is not None:
                self._data.move_to_end(key)
        if entry is not None:
            self._count("cache.ugs.hit")
            return replace(entry, ugs=group)
        entry = self._fetch_shared(key, group)
        if entry is not None:
            self._count("cache.ugs.hit")
            self._count("cache.ugs.shared_hit")
            self._put(key, entry)
            return entry
        self._count("cache.ugs.miss")
        return None

    def store(self, key: tuple, entry: UgsTables) -> None:
        """Publish freshly built tables under ``key`` (LRU + shared)."""
        self._put(key, entry)
        self._count("cache.ugs.store")
        if self.shared is not None:
            try:
                blob = ugs_tables_to_json(entry).encode("utf-8")
            except Exception:
                return
            if self.shared.put_blob(ugs_digest(key), blob):
                self._count("cache.ugs.shared_store")

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    # -- internals -----------------------------------------------------------

    def _put(self, key: tuple, entry: UgsTables) -> None:
        with self._lock:
            self._data[key] = entry
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def _fetch_shared(self, key: tuple,
                      group: UniformlyGeneratedSet) -> UgsTables | None:
        if self.shared is None:
            return None
        blob = self.shared.get_blob(ugs_digest(key))
        if blob is None:
            return None
        try:
            return ugs_tables_from_json(blob.decode("utf-8"), group)
        except Exception:
            return None
