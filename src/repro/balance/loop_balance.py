"""Loop balance with the cache/prefetch term (section 3.2).

    beta_L = (M + max(m - p*c, 0) * lambda_m/lambda_c) / F

where M is the number of memory operations the (scalar-replaced, unrolled)
body issues per iteration, F its flops, m the main-memory accesses per
iteration from Equation 1, p the machine's prefetch-issue bandwidth and c
the estimated cycles one iteration takes.  Every prefetch the machine has
no bandwidth to issue becomes a cache miss costing lambda_m/lambda_c
memory-op equivalents.  With p = 0 every main-memory access pays the miss.

The "No Cache" configuration of Figures 8/9 (the model of Carr-Kennedy
TOPLAS'94) is the same formula with the miss term dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from typing import TYPE_CHECKING, Protocol

from repro.machine.model import MachineModel

if TYPE_CHECKING:  # avoid a circular import; only the type name is needed
    from repro.unroll.tables import UnrollPoint

class MissModel(Protocol):
    """Anything that can price a search point's misses per iteration."""

    def misses(self, point: "UnrollPoint") -> Fraction:
        ...

@dataclass(frozen=True)
class BalanceBreakdown:
    """Loop balance plus the intermediate terms, for reporting."""

    memory_ops: Fraction
    flops: Fraction
    misses: Fraction
    cycles: Fraction
    unserviced: Fraction
    miss_term: Fraction
    balance: Fraction

def estimated_cycles(memory_ops: Fraction, flops: Fraction,
                     machine: MachineModel) -> Fraction:
    """Resource-bound cycle estimate for one body iteration."""
    return max(memory_ops / machine.mem_issue,
               flops / machine.fp_issue,
               Fraction(1))

def loop_balance(point: "UnrollPoint", machine: MachineModel,
                 include_cache: bool = True,
                 miss_model: "MissModel | None" = None) -> BalanceBreakdown:
    """beta_L for the loop body described by ``point``.

    ``miss_model`` optionally replaces the binary Equation-1 miss charge
    (``point.cache_cost``) with a finer estimate -- e.g.
    :class:`repro.reuse.profile.AssocMissModel`, which adds the expected
    set-conflict misses of a concrete cache geometry.  ``None`` (the
    default) keeps the paper's model bit-for-bit.
    """
    memory_ops = point.memory_ops
    flops = max(point.flops, Fraction(1))
    if not include_cache:
        misses = Fraction(0)
    elif miss_model is not None:
        misses = miss_model.misses(point)
    else:
        misses = point.cache_cost
    cycles = estimated_cycles(memory_ops, flops, machine)
    serviced = machine.prefetch_bandwidth * cycles
    unserviced = max(misses - serviced, Fraction(0))
    miss_term = unserviced * machine.miss_cost_ratio
    balance = (memory_ops + miss_term) / flops
    return BalanceBreakdown(memory_ops, flops, misses, cycles, unserviced,
                            miss_term, balance)

def miss_cycles(breakdown: BalanceBreakdown,
                machine: MachineModel) -> Fraction:
    """Cycle charge of the unserviced misses: the additive term the
    vectorized objective (:mod:`repro.simd.cost`) shares with the scalar
    estimate -- packing changes issue pressure, not the footprint."""
    return breakdown.unserviced * machine.miss_penalty

def objective(point: "UnrollPoint", machine: MachineModel,
              include_cache: bool = True,
              miss_model: "MissModel | None" = None) -> Fraction:
    """The optimization objective of section 3.3: distance from machine
    balance.  Smaller is better; zero means the loop matches the machine."""
    breakdown = loop_balance(point, machine, include_cache, miss_model)
    return abs(breakdown.balance - machine.balance)
