"""Machine balance and loop balance (sections 3.1-3.3)."""

from repro.balance.loop_balance import (
    BalanceBreakdown,
    estimated_cycles,
    loop_balance,
    objective,
)

__all__ = [
    "BalanceBreakdown",
    "estimated_cycles",
    "loop_balance",
    "objective",
]
