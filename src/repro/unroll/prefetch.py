"""Software prefetching (the section 6 future-work direction).

The balance model of section 3.2 already *accounts* for prefetches; this
pass actually plans them: every issued load whose stream misses (no
self-temporal reuse in the innermost loop) gets a prefetch ``distance``
iterations ahead, where the distance covers the miss latency at the loop's
steady-state issue rate.  Self-spatial streams only need one prefetch per
cache line; the simulator issues those at line boundaries.

The plan is consumed by :func:`repro.machine.simulator.simulate` via its
``software_prefetch`` flag: prefetch instructions occupy memory-issue
slots (they are real instructions) but their misses do not stall, and the
lines they pull in turn later demand misses into hits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.ir.nodes import LoopNest
from repro.machine.model import MachineModel
from repro.reuse.selfreuse import has_self_spatial, has_self_temporal
from repro.reuse.ugs import partition_ugs
from repro.unroll.scalar_replacement import (
    ScalarReplacementPlan,
    plan_scalar_replacement,
)
from repro.unroll.streams import is_analyzable, stream_chains

@dataclass(frozen=True)
class PrefetchCandidate:
    """One planned prefetch: the textual position of the load it covers."""

    position: int
    distance: int  # innermost iterations ahead
    per_line: bool  # only issue when crossing a cache line

@dataclass(frozen=True)
class PrefetchPlan:
    """All prefetches for one loop body."""

    nest: LoopNest
    candidates: tuple[PrefetchCandidate, ...]
    distance: int

    def by_position(self) -> dict[int, PrefetchCandidate]:
        return {c.position: c for c in self.candidates}

    @property
    def prefetches_per_iteration(self) -> Fraction:
        """Model-level prefetch instruction count (per-line ones
        amortized by the line size are counted as 1 here and discounted by
        the caller that knows the line size)."""
        return Fraction(len(self.candidates))

def prefetch_distance(nest: LoopNest, machine: MachineModel,
                      sr_plan: ScalarReplacementPlan | None = None) -> int:
    """Iterations of lead time needed to hide one miss: ceil(lambda_m /
    cycles-per-iteration) at the balance model's issue estimate."""
    sr_plan = sr_plan if sr_plan is not None else plan_scalar_replacement(nest)
    flops = max(nest.flops_per_iteration(), 1)
    cycles = max(Fraction(sr_plan.memory_ops) / machine.mem_issue,
                 Fraction(flops) / machine.fp_issue,
                 Fraction(1))
    return max(1, math.ceil(machine.miss_penalty / cycles))

def plan_prefetch(nest: LoopNest, machine: MachineModel,
                  sr_plan: ScalarReplacementPlan | None = None) -> PrefetchPlan:
    """Plan prefetches for every issued load that can miss.

    Stores are not prefetched (write buffers hide them in this model);
    innermost-invariant streams never miss after their first touch.
    """
    sr_plan = sr_plan if sr_plan is not None else plan_scalar_replacement(nest)
    distance = prefetch_distance(nest, machine, sr_plan)
    inner_axis = nest.depth - 1
    from repro.linalg import VectorSpace

    localized = VectorSpace.spanned_by_axes([inner_axis], nest.depth)
    zero = tuple(0 for _ in range(nest.depth))
    candidates: list[PrefetchCandidate] = []
    for ugs in partition_ugs(nest):
        if not is_analyzable(ugs):
            continue
        if has_self_temporal(ugs.matrix, localized):
            continue
        per_line = has_self_spatial(ugs.matrix, localized)
        summary = stream_chains(ugs, zero, dims=())
        for chain in summary.chains:
            if chain.hoisted:
                continue
            head_member = chain.nodes[0][0]
            head = ugs.members[head_member]
            if head.is_write:
                continue
            if not sr_plan.issues_memory_op(head.position):
                continue
            candidates.append(PrefetchCandidate(
                position=head.position,
                distance=distance,
                per_line=per_line,
            ))
    return PrefetchPlan(nest=nest, candidates=tuple(candidates),
                        distance=distance)

def format_plan(plan: PrefetchPlan) -> str:
    from repro.ir.matrixform import occurrences

    occ_by_position = {o.position: o for o in occurrences(plan.nest)}
    lines = [f"prefetch plan for {plan.nest.name} "
             f"(distance {plan.distance} iterations):"]
    if not plan.candidates:
        lines.append("  (nothing to prefetch)")
    for cand in plan.candidates:
        ref = occ_by_position[cand.position].ref.pretty()
        mode = "per line" if cand.per_line else "every iteration"
        lines.append(f"  PREFETCH {ref} +{cand.distance} ({mode})")
    return "\n".join(lines)
