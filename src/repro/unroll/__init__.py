"""Unroll-and-jam driven by uniformly generated sets (section 4).

This package is the paper's contribution:

* :mod:`repro.unroll.space` -- unroll vectors and the bounded unroll space
* :mod:`repro.unroll.merge` -- the merge-point solver: the unroll offset at
  which copies of two references fall into the same reuse group (§4.2)
* :mod:`repro.unroll.streams` -- exact group/stream counting on the
  (leader, offset) lattice, *without materializing unrolled code*
* :mod:`repro.unroll.tables` -- the precomputed tables (GTSTable, GSSTable,
  RRSTable, RLTable; Figures 2, 3, 5, 7)
* :mod:`repro.unroll.rrs` -- register-reuse sets and mergeable RRSs (Fig 4)
* :mod:`repro.unroll.transform` -- the actual unroll-and-jam rewriting
* :mod:`repro.unroll.safety` -- legality bounds from dependence distances
* :mod:`repro.unroll.scalar_replacement` -- which references stay in
  registers after the transform
* :mod:`repro.unroll.optimize` -- loop selection and the balance search
  (§4.5)
"""

from repro.unroll.space import UnrollSpace, UnrollVector
from repro.unroll.merge import MergeSolution, solve_merge
from repro.unroll.tables import UnrollTables, build_tables
from repro.unroll.transform import unroll_and_jam
from repro.unroll.safety import max_safe_unroll
from repro.unroll.optimize import OptimizationResult, choose_unroll

__all__ = [
    "MergeSolution",
    "OptimizationResult",
    "UnrollSpace",
    "UnrollTables",
    "UnrollVector",
    "build_tables",
    "choose_unroll",
    "max_safe_unroll",
    "solve_merge",
    "unroll_and_jam",
]
