"""Legality bounds for unroll-and-jam (section 3.3's safety premise).

Unroll-and-jam of loop l fuses iterations l, l+1, ..., l+u into one pass of
the inner loops.  A dependence carried by loop l at distance δ whose inner
distance component is lexicographically *negative* would be reversed by
that fusion -- unless the fused block is too narrow to contain both
endpoints, i.e. u + 1 <= δ.  The classic bound therefore is:

    max safe unroll of loop l = min over violating dependences (δ - 1)

with unknown-distance ("*") carriers forbidding unrolling entirely.  This
matches the treatment the paper inherits from Callahan, Cocke & Kennedy.
"""

from __future__ import annotations

from repro.dependence.graph import DependenceGraph, build_dependence_graph
from repro.dependence.siv import STAR
from repro.ir.nodes import LoopNest

UNBOUNDED = 10 ** 9

def _inner_part_can_be_negative(distance, level: int) -> bool:
    """Is the distance sub-vector strictly inside level l possibly
    lexicographically negative?"""
    for entry in distance[level + 1:]:
        if entry == STAR:
            return True
        if entry < 0:
            return True
        if entry > 0:
            return False
    return False

def max_safe_unroll(nest: LoopNest, level: int,
                    graph: DependenceGraph | None = None) -> int:
    """The largest legal unroll amount for loop ``level`` (extra copies).

    Returns :data:`UNBOUNDED` when no dependence constrains the loop.
    Input dependences never constrain correctness and are ignored, matching
    the paper's point that they are needed only for reuse analysis.
    """
    if graph is None:
        graph = build_dependence_graph(nest, include_input=False)
    bound = UNBOUNDED
    for dep in graph:
        if dep.is_input:
            continue
        carrier = dep.distance[level]
        if carrier == STAR:
            if _inner_part_can_be_negative(dep.distance, level):
                return 0
            continue
        if carrier <= 0:
            continue
        if _inner_part_can_be_negative(dep.distance, level):
            bound = min(bound, carrier - 1)
    return bound

def safe_unroll_bounds(nest: LoopNest,
                       graph: DependenceGraph | None = None) -> tuple[int, ...]:
    """Per-loop safety bounds (innermost entry is 0 by convention)."""
    if graph is None:
        graph = build_dependence_graph(nest, include_input=False)
    bounds = [max_safe_unroll(nest, level, graph)
              for level in range(nest.depth)]
    bounds[-1] = 0
    return tuple(bounds)
